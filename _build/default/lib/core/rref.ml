type t = { parent : Oid.t; attr : string; exclusive : bool; dependent : bool }

let equal a b =
  Oid.equal a.parent b.parent
  && String.equal a.attr b.attr
  && a.exclusive = b.exclusive
  && a.dependent = b.dependent

let pp ppf t =
  Format.fprintf ppf "<-%a.%s%s%s" Oid.pp t.parent t.attr
    (if t.exclusive then " X" else "")
    (if t.dependent then " D" else "")

type gref = {
  g_parent : Oid.t;
  g_attr : string;
  g_exclusive : bool;
  g_dependent : bool;
  mutable count : int;
}

let pp_gref ppf g =
  Format.fprintf ppf "<~%a.%s%s%s (count %d)" Oid.pp g.g_parent g.g_attr
    (if g.g_exclusive then " X" else "")
    (if g.g_dependent then " D" else "")
    g.count

type refsets = { ix : t list; dx : t list; is_ : t list; ds : t list }

let classify rrefs =
  let split test refs = List.partition test refs in
  let exclusive, shared = split (fun r -> r.exclusive) rrefs in
  let dx, ix = split (fun r -> r.dependent) exclusive in
  let ds, is_ = split (fun r -> r.dependent) shared in
  { ix; dx; is_; ds }
