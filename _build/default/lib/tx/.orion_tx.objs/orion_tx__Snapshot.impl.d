lib/tx/snapshot.ml: Database Instance List Oid Orion_core Rref
