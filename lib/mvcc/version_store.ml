module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex
open Orion_core

type image = { inst : Instance.t; rrefs : Rref.t list }

type entry = Present of image | Tombstone

(* Newest first; each element is (commit clock, state as of that clock).
   The base pre-image sits at clock 0: it is the committed state before
   the store first saw the object written, valid for every snapshot
   older than the first publish. *)
type chain = { mutable entries : (int * entry) list }

type t = {
  mutable sealed_clock : int;
  chains : chain Oid.Tbl.t;
  pins : int Oid.Tbl.t;  (* oid -> dirty-writer refcount *)
  dirty : (int, unit Oid.Tbl.t) Hashtbl.t;  (* tx id -> oids it pinned *)
  snaps : (int, int) Hashtbl.t;  (* snapshot id -> begin clock *)
  mu : Omutex.t;
  published : Obs.counter;
  pruned : Obs.counter;
  reads : Obs.counter;
  fallthroughs : Obs.counter;
  snapshots : Obs.counter;
}

let with_mu t f = Omutex.with_lock t.mu f

let create db =
  let t =
    {
      sealed_clock = snd (Database.counters db);
      chains = Oid.Tbl.create 256;
      pins = Oid.Tbl.create 64;
      dirty = Hashtbl.create 16;
      snaps = Hashtbl.create 8;
      mu = Omutex.create Omutex.mvcc_version_store;
      published = Obs.counter "mvcc.published";
      pruned = Obs.counter "mvcc.pruned";
      reads = Obs.counter "mvcc.reads";
      fallthroughs = Obs.counter "mvcc.fallthroughs";
      snapshots = Obs.counter "mvcc.snapshots";
    }
  in
  Obs.gauge "mvcc.chains" (fun () -> Oid.Tbl.length t.chains);
  Obs.gauge "mvcc.open_snapshots" (fun () -> Hashtbl.length t.snaps);
  Obs.gauge "mvcc.sealed_clock" (fun () -> t.sealed_clock);
  t

let current_clock t = with_mu t (fun () -> t.sealed_clock)

let pinned t oid = Oid.Tbl.mem t.pins oid

(* Oldest clock any open snapshot still reads at. *)
let watermark t =
  Hashtbl.fold (fun _ clock acc -> min clock acc) t.snaps t.sealed_clock

(* Keep the newest entry at-or-below the watermark (some open snapshot
   may read it) plus everything above; drop the strictly-older tail. *)
let prune_chain t ~watermark chain =
  let rec cut = function
    | [] -> []
    | ((c, _) as keep) :: rest when c <= watermark ->
        (match List.length rest with
        | 0 -> ()
        | n -> Obs.incr t.pruned ~by:n);
        [ keep ]
    | e :: rest -> e :: cut rest
  in
  chain.entries <- cut chain.entries

(* A chain reduced to one version at-or-below the watermark duplicates
   the live database (the newest committed state of an unpinned object
   is what the database holds), so reads can fall through: drop it. *)
let drop_if_redundant t ~watermark oid chain =
  match chain.entries with
  | [] -> Oid.Tbl.remove t.chains oid
  | [ (c, _) ] when c <= watermark && not (pinned t oid) ->
      Oid.Tbl.remove t.chains oid
  | _ -> ()

let gc_unlocked t =
  let w = watermark t in
  let doomed = ref [] in
  Oid.Tbl.iter
    (fun oid chain ->
      prune_chain t ~watermark:w chain;
      match chain.entries with
      | [] -> doomed := oid :: !doomed
      | [ (c, _) ] when c <= w && not (pinned t oid) ->
          doomed := oid :: !doomed
      | _ -> ())
    t.chains;
  List.iter (fun oid -> Oid.Tbl.remove t.chains oid) !doomed

let gc t = with_mu t (fun () -> gc_unlocked t)

let entry_of = function Some img -> Present img | None -> Tombstone

let note_base ?tx t oid base =
  with_mu t (fun () ->
      if not (Oid.Tbl.mem t.chains oid) then
        Oid.Tbl.replace t.chains oid { entries = [ (0, entry_of base) ] };
      match tx with
      | None -> ()
      | Some tx ->
          let set =
            match Hashtbl.find_opt t.dirty tx with
            | Some set -> set
            | None ->
                let set = Oid.Tbl.create 8 in
                Hashtbl.replace t.dirty tx set;
                set
          in
          if not (Oid.Tbl.mem set oid) then begin
            Oid.Tbl.replace set oid ();
            let n = Option.value ~default:0 (Oid.Tbl.find_opt t.pins oid) in
            Oid.Tbl.replace t.pins oid (n + 1)
          end)

let settle t ~tx =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.dirty tx with
      | None -> ()
      | Some set ->
          Hashtbl.remove t.dirty tx;
          let w = watermark t in
          Oid.Tbl.iter
            (fun oid () ->
              (match Oid.Tbl.find_opt t.pins oid with
              | Some n when n > 1 -> Oid.Tbl.replace t.pins oid (n - 1)
              | Some _ -> Oid.Tbl.remove t.pins oid
              | None -> ());
              match Oid.Tbl.find_opt t.chains oid with
              | Some chain ->
                  prune_chain t ~watermark:w chain;
                  drop_if_redundant t ~watermark:w oid chain
              | None -> ())
            set)

let publish t ~clock items =
  with_mu t (fun () ->
      if clock > t.sealed_clock then t.sealed_clock <- clock;
      let w = watermark t in
      List.iter
        (fun (oid, img) ->
          let chain =
            match Oid.Tbl.find_opt t.chains oid with
            | Some chain -> chain
            | None ->
                (* Defensive: writers note_base before publishing, so a
                   missing chain means nobody older can be watching. *)
                let chain = { entries = [] } in
                Oid.Tbl.replace t.chains oid chain;
                chain
          in
          chain.entries <- (clock, entry_of img) :: chain.entries;
          Obs.incr t.published;
          prune_chain t ~watermark:w chain;
          drop_if_redundant t ~watermark:w oid chain)
        items)

let publish_records t ~clock records =
  let items =
    List.filter_map
      (function
        | Orion_wal.Wal_record.Obj_put { oid; cluster_with; rrefs; data; _ } ->
            let inst = Codec.decode data in
            inst.Instance.cluster_with <- cluster_with;
            Some (oid, Some { inst; rrefs })
        | Orion_wal.Wal_record.Obj_delete { oid; _ } -> Some (oid, None)
        | _ -> None)
      records
  in
  (* Even an empty commit advances the sealed clock. *)
  publish t ~clock items

let read t ~clock oid =
  with_mu t (fun () ->
      Obs.incr t.reads;
      match Oid.Tbl.find_opt t.chains oid with
      | None ->
          Obs.incr t.fallthroughs;
          `Fallthrough
      | Some chain ->
          let rec at = function
            | [] -> `Absent
            | (c, Present img) :: _ when c <= clock -> `Image img
            | (c, Tombstone) :: _ when c <= clock -> `Absent
            | _ :: rest -> at rest
          in
          at chain.entries)

let open_snap t ~id =
  with_mu t (fun () ->
      Obs.incr t.snapshots;
      Hashtbl.replace t.snaps id t.sealed_clock;
      t.sealed_clock)

let close_snap t ~id =
  with_mu t (fun () ->
      if Hashtbl.mem t.snaps id then begin
        Hashtbl.remove t.snaps id;
        gc_unlocked t
      end)

let open_snaps t = with_mu t (fun () -> Hashtbl.length t.snaps)
let chain_count t = with_mu t (fun () -> Oid.Tbl.length t.chains)
