(* Multi-client throughput/latency benchmark for the network layer.

   Spins up the single-threaded reactor on a Unix-domain socket and
   drives it with 1, 8 and 32 concurrent clients under two workloads:

   - conflict-heavy: every transaction takes the X composite lock on
     one shared Assembly root before appending a Part, so commits are
     strictly serialized and most sessions spend their time parked;
   - disjoint: each client owns a private root, so transactions never
     contend and the bench measures raw reactor/protocol overhead.

   Each op is one transaction (begin, lock-composite, make, commit);
   latency is wall time per op including deadlock/timeout retries.
   `--json PATH` writes BENCH_PR3.json-style output, `--quick` trims
   the op counts to a smoke-test size. *)

module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Client = Orion_client
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr
module Oid = Orion_core.Oid
module Value = Orion_core.Value

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let temp_dir () =
  let dir = Filename.temp_file "orion_bench_server" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

type result = {
  workload : string;
  clients : int;
  ops : int;
  elapsed_s : float;
  throughput : float; (* ops/s *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  retries : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* One scenario on a fresh server: [clients] threads each running
   [ops_per_client] append transactions against either one shared root
   or a per-client root. *)
let run_scenario ~workload ~clients ~ops_per_client =
  let dir = temp_dir () in
  let sock = Filename.concat dir "bench.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let server = Server.create env (Addr.Unix_path sock) in
  let thread = Thread.create Server.run server in
  let addr = Addr.Unix_path sock in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread;
      (try Sys.remove sock with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let setup = Client.connect ~client_name:"bench-setup" addr in
      let shared_root =
        match Client.eval setup "(make Assembly)" with
        | Message.Obj oid -> oid
        | _ -> failwith "make Assembly"
      in
      let roots =
        Array.init clients (fun _ ->
            match workload with
            | "conflict-heavy" -> shared_root
            | _ -> (
                match Client.eval setup "(make Assembly)" with
                | Message.Obj oid -> oid
                | _ -> failwith "make Assembly"))
      in
      Client.close setup;
      let latencies = Array.make (clients * ops_per_client) 0.0 in
      let retries = Array.make clients 0 in
      let failures = Queue.create () in
      let failures_mu = Mutex.create () in
      let worker i () =
        try
          let c = Client.connect ~client_name:"bench" addr in
          let root = roots.(i) in
          for j = 0 to ops_per_client - 1 do
            let t0 = Unix.gettimeofday () in
            let rec attempt budget =
              ignore (Client.begin_tx c : int);
              match
                Client.lock_composite c ~root Message.Update;
                ignore
                  (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                     ~attrs:[ ("Name", Value.Str (Printf.sprintf "p-%d-%d" i j)) ]
                     ()
                    : Oid.t);
                Client.commit c
              with
              | () -> ()
              | exception Client.Error ((Message.Conflict | Message.Timeout), _)
                when budget > 0 ->
                  retries.(i) <- retries.(i) + 1;
                  attempt (budget - 1)
            in
            attempt 20;
            latencies.((i * ops_per_client) + j) <- Unix.gettimeofday () -. t0
          done;
          Client.close c
        with e ->
          Mutex.lock failures_mu;
          Queue.push (i, Printexc.to_string e) failures;
          Mutex.unlock failures_mu
      in
      let t_start = Unix.gettimeofday () in
      let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      let elapsed = Unix.gettimeofday () -. t_start in
      (match Queue.peek_opt failures with
      | Some (i, msg) -> failwith (Printf.sprintf "client %d failed: %s" i msg)
      | None -> ());
      let total_ops = clients * ops_per_client in
      (* Serializability spot-check rides along for free: every append
         must be visible exactly once. *)
      let check = Client.connect ~client_name:"bench-check" addr in
      let seen =
        Array.fold_left
          (fun acc root ->
            if List.mem root acc then acc else root :: acc)
          [] roots
        |> List.fold_left
             (fun acc root -> acc + List.length (Client.components_of check root))
             0
      in
      Client.close check;
      if seen <> total_ops then
        failwith
          (Printf.sprintf "lost updates: %d parts visible, %d committed" seen
             total_ops);
      let sorted = Array.copy latencies in
      Array.sort Float.compare sorted;
      let mean =
        Array.fold_left ( +. ) 0.0 latencies /. float_of_int total_ops
      in
      {
        workload;
        clients;
        ops = total_ops;
        elapsed_s = elapsed;
        throughput = float_of_int total_ops /. elapsed;
        mean_ms = mean *. 1e3;
        p50_ms = percentile sorted 0.50 *. 1e3;
        p95_ms = percentile sorted 0.95 *. 1e3;
        max_ms = sorted.(total_ops - 1) *. 1e3;
        retries = Array.fold_left ( + ) 0 retries;
      })

let write_json ~path results =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-server-v1\",\n";
  Bench_meta.add buf;
  (* The server ran in this process: its registry holds the run's lock,
     pool and dispatch numbers alongside the latency rows below. *)
  Bench_meta.add_metrics buf (Orion_obs.Metrics.snapshot ());
  Buffer.add_string buf "  \"results\": {\n";
  let workloads = [ "conflict-heavy"; "disjoint" ] in
  List.iteri
    (fun wi workload ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" workload);
      let rows = List.filter (fun r -> r.workload = workload) results in
      List.iteri
        (fun i r ->
          Buffer.add_string buf
            (Printf.sprintf
               "      \"clients-%d\": { \"ops\": %d, \"elapsed_s\": %.3f, \
                \"throughput_ops_per_s\": %.1f, \"latency_ms\": { \"mean\": \
                %.3f, \"p50\": %.3f, \"p95\": %.3f, \"max\": %.3f }, \
                \"retries\": %d }%s\n"
               r.clients r.ops r.elapsed_s r.throughput r.mean_ms r.p50_ms
               r.p95_ms r.max_ms r.retries
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if wi = List.length workloads - 1 then "" else ",")))
    workloads;
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let json_path =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let ops_per_client = if quick then 4 else 40 in
  let client_counts = if quick then [ 1; 8 ] else [ 1; 8; 32 ] in
  print_endline "=== Network server bench: multi-client transactions ===";
  Printf.printf "%d ops/client, one transaction per op\n%!" ops_per_client;
  let results =
    List.concat_map
      (fun workload ->
        List.map
          (fun clients ->
            let r = run_scenario ~workload ~clients ~ops_per_client in
            Printf.printf
              "%-15s %2d clients: %7.1f ops/s  mean %6.2f ms  p95 %7.2f ms  \
               (%d retries)\n%!"
              workload clients r.throughput r.mean_ms r.p95_ms r.retries;
            r)
          client_counts)
      [ "conflict-heavy"; "disjoint" ]
  in
  match json_path with Some path -> write_json ~path results | None -> ()
