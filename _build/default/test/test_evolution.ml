(* Tests for Orion_evolution: the §4 schema evolution semantics —
   dropping attributes/superclasses/classes with Deletion-Rule
   behaviour, the I/D change taxonomy, immediate vs deferred
   application and the CC catch-up machinery. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Change = Orion_evolution.Change
module Evolution = Orion_evolution.Evolution

let check_integrity db =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations

let comp ?(dependent = true) ?(exclusive = true) () =
  A.composite ~dependent ~exclusive ()

let fixture ?(refkind = comp ()) () =
  let db = Database.create () in
  let schema = Database.schema db in
  let define ?superclasses name attrs =
    ignore
      (Schema.define schema ?superclasses ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "C" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_string) () ];
  define "Cp"
    [
      A.make ~name:"A" ~domain:(D.Class "C") ~collection:A.Set ~refkind ();
      A.make ~name:"Plain" ~domain:(D.Primitive D.P_integer) ();
    ];
  let ev = Evolution.attach db in
  (db, ev)

let linked db =
  let h = Object_manager.create db ~cls:"Cp" () in
  let c = Object_manager.create db ~cls:"C" ~parents:[ (h, "A") ] () in
  (h, c)

(* Taxonomy classification (pure). *)
let test_classification () =
  let open Change in
  let w = A.Weak in
  let c ~e ~d = A.Composite { exclusive = e; dependent = d } in
  let check name expected from_ to_ =
    Alcotest.(check (list (Alcotest.testable pp_primitive ( = ))))
      name expected (classify ~from_ ~to_)
  in
  check "no change" [] w w;
  check "I1" [ I1 ] (c ~e:true ~d:true) w;
  check "D1" [ D1 ] w (c ~e:true ~d:false);
  check "D2" [ D2 ] w (c ~e:false ~d:true);
  check "I2" [ I2 ] (c ~e:true ~d:true) (c ~e:false ~d:true);
  check "D3" [ D3 ] (c ~e:false ~d:true) (c ~e:true ~d:true);
  check "I3" [ I3 ] (c ~e:true ~d:true) (c ~e:true ~d:false);
  check "I4" [ I4 ] (c ~e:true ~d:false) (c ~e:true ~d:true);
  check "compound I2+I3" [ I2; I3 ] (c ~e:true ~d:true) (c ~e:false ~d:false);
  check "compound D3+I4" [ D3; I4 ] (c ~e:false ~d:false) (c ~e:true ~d:true);
  Alcotest.(check bool) "D-changes are state dependent" true
    (state_dependent [ I2; D3 ]);
  Alcotest.(check bool) "I-changes are not" false (state_dependent [ I1; I2; I3; I4 ])

let test_drop_attribute_deletes_dependents () =
  let db, ev = fixture () in
  let h, c = linked db in
  Evolution.drop_attribute ev ~cls:"Cp" ~attr:"A";
  Alcotest.(check bool) "dependent component deleted" false (Database.exists db c);
  Alcotest.(check bool) "holder survives" true (Database.exists db h);
  Alcotest.(check bool) "attribute gone from schema" true
    (Schema.attribute (Database.schema db) "Cp" "A" = None);
  check_integrity db

let test_drop_attribute_keeps_independents () =
  let db, ev = fixture ~refkind:(comp ~dependent:false ()) () in
  let _, c = linked db in
  Evolution.drop_attribute ev ~cls:"Cp" ~attr:"A";
  Alcotest.(check bool) "independent component survives" true (Database.exists db c);
  Alcotest.(check (list Alcotest.int)) "no reverse references left" []
    (List.map (fun _ -> 0) (Database.rrefs db c));
  check_integrity db

let test_drop_superclass () =
  let db, ev = fixture () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Sub" ~superclasses:[ "Cp" ] ~attributes:[] ()
      : Orion_schema.Class_def.t);
  let h = Object_manager.create db ~cls:"Sub" () in
  let c = Object_manager.create db ~cls:"C" ~parents:[ (h, "A") ] () in
  Evolution.drop_superclass ev ~cls:"Sub" ~super:"Cp";
  Alcotest.(check bool) "lost composite attribute cascades" false
    (Database.exists db c);
  Alcotest.(check bool) "holder survives" true (Database.exists db h);
  Alcotest.(check bool) "attribute no longer effective" true
    (Schema.attribute schema "Sub" "A" = None);
  check_integrity db

let test_drop_class () =
  let db, ev = fixture () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Sub" ~superclasses:[ "Cp" ] ~attributes:[] ()
      : Orion_schema.Class_def.t);
  let h, c = linked db in
  let sub = Object_manager.create db ~cls:"Sub" () in
  let sub_c = Object_manager.create db ~cls:"C" ~parents:[ (sub, "A") ] () in
  Evolution.drop_class ev "Cp";
  Alcotest.(check bool) "instances of the class deleted" false (Database.exists db h);
  Alcotest.(check bool) "their dependent components deleted" false
    (Database.exists db c);
  Alcotest.(check bool) "subclass instances survive" true (Database.exists db sub);
  Alcotest.(check bool) "but lose the inherited composite components" false
    (Database.exists db sub_c);
  Alcotest.(check bool) "class gone" false (Schema.mem schema "Cp");
  check_integrity db

let expect_ok = function
  | Ok prims -> prims
  | Error r -> Alcotest.failf "unexpected rejection: %a" Evolution.pp_rejection r

let test_i1_immediate_and_deferred () =
  List.iter
    (fun mode ->
      let db, ev = fixture () in
      let _, c = linked db in
      let prims =
        expect_ok
          (Evolution.change_attribute_type ev ~mode ~cls:"Cp" ~attr:"A" ~to_:A.Weak ())
      in
      Alcotest.(check int) "classified I1" 1 (List.length prims);
      (* Deferred: the reverse reference disappears on first access. *)
      ignore (Database.get db c : Instance.t);
      Alcotest.(check int) "reverse references dropped" 0
        (List.length (Database.rrefs db c));
      Alcotest.(check bool) "object survives I1" true (Database.exists db c);
      Evolution.flush_all ev;
      check_integrity db)
    [ Evolution.Immediate; Evolution.Deferred ]

let test_i2_allows_sharing_afterwards () =
  let db, ev = fixture () in
  let _, c = linked db in
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
          ~to_:(comp ~exclusive:false ())
          ()));
  let h2 = Object_manager.create db ~cls:"Cp" () in
  Object_manager.make_component db ~parent:h2 ~attr:"A" ~child:c;
  Alcotest.(check int) "two parents now" 2
    (List.length (Traversal.parents_of db c));
  check_integrity db

let test_i4_then_deletion_semantics_change () =
  (* independent -> dependent (I4): after the change, deleting the
     holder must delete the component. *)
  let db, ev = fixture ~refkind:(comp ~dependent:false ()) () in
  let h, c = linked db in
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
          ~to_:(comp ~dependent:true ())
          ()));
  Object_manager.delete db h;
  Alcotest.(check bool) "component now dependent: deleted" false
    (Database.exists db c);
  check_integrity db

let test_deferred_catch_up_on_access () =
  let db, ev = fixture () in
  let _, c = linked db in
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~mode:Evolution.Deferred ~cls:"Cp"
          ~attr:"A"
          ~to_:(comp ~dependent:false ())
          ()));
  (* Before any access the stored flag is stale; reading through the
     hook repairs it. *)
  let refs = Database.rrefs db c in
  Alcotest.(check bool) "flag repaired lazily" true
    (List.for_all (fun (r : Rref.t) -> not r.Rref.dependent) refs);
  check_integrity db

let test_deferred_multiple_changes_in_order () =
  let db, ev = fixture () in
  let _, c = linked db in
  let change to_ =
    ignore
      (expect_ok
         (Evolution.change_attribute_type ev ~mode:Evolution.Deferred ~cls:"Cp"
            ~attr:"A" ~to_ ()))
  in
  change (comp ~dependent:false ());
  change (comp ~dependent:false ~exclusive:false ());
  change (comp ~dependent:true ~exclusive:false ());
  (* One access applies all three in CC order; the final state wins. *)
  let refs = Database.rrefs db c in
  Alcotest.(check bool) "final flags: dependent shared" true
    (List.for_all
       (fun (r : Rref.t) -> r.Rref.dependent && not r.Rref.exclusive)
       refs);
  Evolution.flush_all ev;
  check_integrity db

let test_new_instance_skips_old_entries () =
  (* §4.3: "when a new instance is created, its CC is set to the current
     CC of the class" — stale log entries never apply to it. *)
  let db, ev = fixture () in
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~mode:Evolution.Deferred ~cls:"Cp"
          ~attr:"A" ~to_:A.Weak ()));
  (* Make it composite again (D2 is immediate). *)
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
          ~to_:(comp ~exclusive:false ~dependent:false ())
          ()));
  let h, c = linked db in
  ignore h;
  (* Accessing the fresh object must NOT apply the old Drop_rrefs. *)
  ignore (Database.get db c : Instance.t);
  Alcotest.(check int) "reverse reference intact" 1
    (List.length (Database.rrefs db c));
  check_integrity db

let test_d1_verification () =
  let db, ev = fixture ~refkind:A.Weak () in
  let h = Object_manager.create db ~cls:"Cp" () in
  let c = Object_manager.create db ~cls:"C" () in
  Object_manager.add_to_set db h "A" c;
  (* Clean: accepted, reverse references installed. *)
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
          ~to_:(comp ~exclusive:true ~dependent:false ())
          ()));
  Alcotest.(check int) "reverse reference added" 1
    (List.length (Database.rrefs db c));
  check_integrity db

let test_d1_rejects_double_reference () =
  let db, ev = fixture ~refkind:A.Weak () in
  let h1 = Object_manager.create db ~cls:"Cp" () in
  let h2 = Object_manager.create db ~cls:"Cp" () in
  let c = Object_manager.create db ~cls:"C" () in
  Object_manager.add_to_set db h1 "A" c;
  Object_manager.add_to_set db h2 "A" c;
  (match
     Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
       ~to_:(comp ~exclusive:true ~dependent:false ())
       ()
   with
  | Error (Evolution.Target_referenced_twice _) -> ()
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error r -> Alcotest.failf "wrong rejection: %a" Evolution.pp_rejection r);
  (* Rejected atomically: still weak, no reverse references. *)
  Alcotest.(check int) "no reverse refs" 0 (List.length (Database.rrefs db c));
  Alcotest.(check bool) "schema unchanged" false
    (Schema.compositep (Database.schema db) "Cp" ~attr:"A" ());
  check_integrity db

let test_d2_then_existing_values_become_components () =
  let db, ev = fixture ~refkind:A.Weak () in
  let h = Object_manager.create db ~cls:"Cp" () in
  let c = Object_manager.create db ~cls:"C" () in
  Object_manager.add_to_set db h "A" c;
  ignore
    (expect_ok
       (Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
          ~to_:(comp ~exclusive:false ~dependent:true ())
          ()));
  Alcotest.(check bool) "now a component" true (Traversal.component_of db c h);
  (* And deletion semantics apply. *)
  Object_manager.delete db h;
  Alcotest.(check bool) "dependent component dies" false (Database.exists db c);
  check_integrity db

let test_d_change_rejects_cycle () =
  (* Weak references may form cycles; converting them to composite must
     be refused when it would create a composite cycle (decision D4). *)
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"N"
       ~attributes:[ A.make ~name:"Next" ~domain:(D.Class "N") () ]
       ()
      : Orion_schema.Class_def.t);
  let ev = Evolution.attach db in
  let a = Object_manager.create db ~cls:"N" () in
  let b = Object_manager.create db ~cls:"N" ~attrs:[ ("Next", Value.Ref a) ] () in
  Object_manager.write_attr db a "Next" (Value.Ref b);
  (match
     Evolution.change_attribute_type ev ~cls:"N" ~attr:"Next"
       ~to_:(comp ~exclusive:false ~dependent:false ())
       ()
   with
  | Error (Evolution.Would_cycle _) -> ()
  | Ok _ -> Alcotest.fail "expected cycle rejection"
  | Error r -> Alcotest.failf "wrong rejection: %a" Evolution.pp_rejection r);
  Alcotest.(check bool) "schema rolled back" false
    (Schema.compositep schema "N" ~attr:"Next" ());
  check_integrity db

let test_primitive_domain_cannot_become_composite () =
  let db, ev = fixture () in
  ignore db;
  match
    Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"Plain" ~to_:(comp ()) ()
  with
  | Error (Evolution.Not_a_reference _) -> ()
  | Ok _ -> Alcotest.fail "expected Not_a_reference"
  | Error r -> Alcotest.failf "wrong rejection: %a" Evolution.pp_rejection r

(* Property: for any sequence of legal state-independent flips, the
   deferred strategy flushed at the end agrees with the immediate one. *)
let prop_deferred_equals_immediate =
  QCheck.Test.make ~name:"deferred+flush == immediate" ~count:30
    QCheck.(make Gen.(list_size (int_bound 8) (pair bool bool)))
    (fun flips ->
      let run mode =
        let db, ev = fixture () in
        let _, c = linked db in
        List.iter
          (fun (exclusive, dependent) ->
            match
              Evolution.change_attribute_type ev ~mode ~cls:"Cp" ~attr:"A"
                ~to_:(A.Composite { exclusive; dependent })
                ()
            with
            | Ok _ | Error _ -> ())
          flips;
        Evolution.flush_all ev;
        (Database.rrefs db c, Integrity.check db = [])
      in
      let refs_imm, ok_imm = run Evolution.Immediate in
      let refs_def, ok_def = run Evolution.Deferred in
      ok_imm && ok_def
      && List.length refs_imm = List.length refs_def
      && List.for_all2
           (fun (a : Rref.t) (b : Rref.t) ->
             a.Rref.exclusive = b.Rref.exclusive
             && a.Rref.dependent = b.Rref.dependent)
           refs_imm refs_def)

let () =
  Alcotest.run "orion_evolution"
    [
      ("taxonomy", [ Alcotest.test_case "classification" `Quick test_classification ]);
      ( "drops (§4.1)",
        [
          Alcotest.test_case "drop attribute: dependents die" `Quick
            test_drop_attribute_deletes_dependents;
          Alcotest.test_case "drop attribute: independents live" `Quick
            test_drop_attribute_keeps_independents;
          Alcotest.test_case "drop superclass" `Quick test_drop_superclass;
          Alcotest.test_case "drop class" `Quick test_drop_class;
        ] );
      ( "state-independent (§4.2-4.3)",
        [
          Alcotest.test_case "I1 both modes" `Quick test_i1_immediate_and_deferred;
          Alcotest.test_case "I2 enables sharing" `Quick
            test_i2_allows_sharing_afterwards;
          Alcotest.test_case "I4 changes deletion" `Quick
            test_i4_then_deletion_semantics_change;
          Alcotest.test_case "deferred catch-up" `Quick
            test_deferred_catch_up_on_access;
          Alcotest.test_case "deferred ordering" `Quick
            test_deferred_multiple_changes_in_order;
          Alcotest.test_case "new instances skip old entries" `Quick
            test_new_instance_skips_old_entries;
        ] );
      ( "state-dependent (§4.2-4.3)",
        [
          Alcotest.test_case "D1 verification" `Quick test_d1_verification;
          Alcotest.test_case "D1 double reference" `Quick
            test_d1_rejects_double_reference;
          Alcotest.test_case "D2 components gain semantics" `Quick
            test_d2_then_existing_values_become_components;
          Alcotest.test_case "cycle rejection" `Quick test_d_change_rejects_cycle;
          Alcotest.test_case "primitive domain" `Quick
            test_primitive_domain_cannot_become_composite;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_deferred_equals_immediate ]);
    ]
