lib/core/instance.mli: Format Oid Orion_storage Rref Value
