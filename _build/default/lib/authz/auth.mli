(** Authorization algebra (§6, after [RABI88]).

    An authorization is an access type (Read or Write) with a sign
    (positive grants, negative prohibits) and a strength (a strong
    authorization cannot be overridden; a weak one can).  The
    implication rules are the paper's: a positive W implies a positive
    R, and a negative R implies a negative W — each at the strength of
    the implying authorization.

    {!combine} resolves the authorizations implied on one object by
    several sources (e.g. two composite objects sharing the component,
    Figure 5): strong–strong and weak–weak contradictions are
    conflicts; a strong authorization overrides a contradicting weak
    one (design decision D7). *)

type atype = Read | Write
type sign = Positive | Negative
type strength = Strong | Weak

type t = { atype : atype; sign : sign; strength : strength }

val make : ?strength:strength -> ?sign:sign -> atype -> t
(** Defaults: [Strong], [Positive]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Paper notation: [sR], [sW], [s¬R], [s¬W], [wR], [wW], [w¬R], [w¬W]. *)

val all : t list
(** The eight authorizations, in the paper's display order. *)

val closure : t -> t list
(** The authorization together with everything it implies. *)

type combined =
  | Conflict
  | Effective of t list
      (** closed under implication, strong-overrides-weak applied,
          duplicates removed *)

val combine : t list -> combined

val display : combined -> string
(** Figure-6 cell rendering: ["Conflict"], or the strongest members of
    the effective set (positive W subsumes positive R; negative R
    subsumes negative W), e.g. ["sW"] or ["sR w¬W"]. *)

val allows : combined -> atype -> bool
(** Does the combined authorization allow the operation: a positive
    authorization for it is effective and no negative one is. *)
