open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Class_def = Orion_schema.Class_def

type t = {
  db : Database.t;
  log : Operation_log.t;
  mutable busy : bool;  (* reentrancy guard for the access hook *)
}

type mode = Immediate | Deferred

type rejection =
  | Not_a_reference of { cls : string; attr : string }
  | Target_already_composite of Oid.t
  | Target_referenced_twice of Oid.t
  | Target_has_exclusive of Oid.t
  | Target_shared_elsewhere of Oid.t
  | Would_cycle of Oid.t

let pp_rejection ppf = function
  | Not_a_reference { cls; attr } ->
      Format.fprintf ppf "%s.%s has a primitive domain" cls attr
  | Target_already_composite oid ->
      Format.fprintf ppf "%a already has a composite reference (D1)" Oid.pp oid
  | Target_referenced_twice oid ->
      Format.fprintf ppf "%a would gain two exclusive references (D1)" Oid.pp oid
  | Target_has_exclusive oid ->
      Format.fprintf ppf "%a has an exclusive reference (D2, Topology Rule 3)"
        Oid.pp oid
  | Target_shared_elsewhere oid ->
      Format.fprintf ppf "%a has more than one reverse composite reference (D3)"
        Oid.pp oid
  | Would_cycle oid ->
      Format.fprintf ppf "conversion would create a composite cycle through %a"
        Oid.pp oid

let database t = t.db

(* Catch-up machinery (§4.3). ------------------------------------------------ *)

let class_of_parent_key db pkey =
  match Database.find db pkey with Some p -> Some p.Instance.cls | None -> None

let rref_matches db ~referencing_cls ~attr (r : Rref.t) =
  String.equal r.attr attr
  &&
  match class_of_parent_key db r.parent with
  | Some cls -> Schema.is_subclass_of (Database.schema db) ~sub:cls ~super:referencing_cls
  | None -> false

let gref_matches db ~referencing_cls ~attr (g : Rref.gref) =
  String.equal g.g_attr attr
  &&
  match class_of_parent_key db g.g_parent with
  | Some cls -> Schema.is_subclass_of (Database.schema db) ~sub:cls ~super:referencing_cls
  | None -> false

let apply_entry t (inst : Instance.t) entry =
  let db = t.db in
  match entry with
  | Operation_log.Set_flags { referencing_cls; attr; exclusive; dependent } ->
      let rrefs =
        List.map
          (fun (r : Rref.t) ->
            if rref_matches db ~referencing_cls ~attr r then
              { r with exclusive; dependent }
            else r)
          (Database.rrefs db inst.oid)
      in
      Database.set_rrefs db inst.oid rrefs;
      (match Instance.generic_info inst with
      | Some gi ->
          gi.grefs <-
            List.map
              (fun (g : Rref.gref) ->
                if gref_matches db ~referencing_cls ~attr g then
                  {
                    g with
                    Rref.g_exclusive = exclusive;
                    g_dependent = dependent;
                  }
                else g)
              gi.grefs
      | None -> ())
  | Operation_log.Drop_rrefs { referencing_cls; attr } ->
      let rrefs =
        List.filter
          (fun r -> not (rref_matches db ~referencing_cls ~attr r))
          (Database.rrefs db inst.oid)
      in
      Database.set_rrefs db inst.oid rrefs;
      (match Instance.generic_info inst with
      | Some gi ->
          gi.grefs <-
            List.filter (fun g -> not (gref_matches db ~referencing_cls ~attr g)) gi.grefs
      | None -> ())

let catch_up_unguarded t (inst : Instance.t) =
  let current = Operation_log.current_cc t.log in
  if inst.cc < current then begin
    let classes =
      inst.cls :: Schema.all_superclasses (Database.schema t.db) inst.cls
    in
    let pending = Operation_log.pending_for t.log ~classes ~since:inst.cc in
    List.iter (fun (_, entry) -> apply_entry t inst entry) pending;
    inst.cc <- current
  end

let catch_up t inst =
  if not t.busy then begin
    t.busy <- true;
    Fun.protect ~finally:(fun () -> t.busy <- false) (fun () -> catch_up_unguarded t inst)
  end

let attach db =
  let t = { db; log = Operation_log.create (); busy = false } in
  Database.set_access_hook db (Some (catch_up t));
  t

let flush_all t =
  let insts = Database.fold t.db ~init:[] ~f:(fun acc inst -> inst :: acc) in
  List.iter (catch_up t) insts

let pending_changes t = Operation_log.entry_count t.log

(* Attribute-type changes (§4.2/§4.3). --------------------------------------- *)

let own_attribute_exn schema cls attr =
  let cdef = Schema.find_exn schema cls in
  match Class_def.own_attribute cdef attr with
  | Some a -> a
  | None -> raise (Schema.Error (Schema.Unknown_attribute { cls; attr }))

(* Every (holder, target) pair currently linked through [cls.attr]. *)
let reference_pairs t ~cls ~attr =
  Database.instances_of t.db ~subclasses:true cls
  |> List.concat_map (fun holder ->
         match Database.find t.db holder with
         | None -> []
         | Some inst ->
             if Instance.is_generic inst then []
             else
               (match Instance.attr inst attr with
               | Some v -> Value.refs v
               | None -> [])
               |> List.filter (Database.exists t.db)
               |> List.map (fun target -> (holder, target)))

let composite_parent_count db oid =
  match Database.find db oid with
  | None -> 0
  | Some inst -> (
      match Instance.generic_info inst with
      | Some gi -> List.length gi.grefs
      | None -> List.length (Database.rrefs db oid))

let has_exclusive_parent db oid =
  match Database.find db oid with
  | None -> false
  | Some inst -> (
      match Instance.generic_info inst with
      | Some gi -> List.exists (fun (g : Rref.gref) -> g.g_exclusive) gi.grefs
      | None -> List.exists (fun (r : Rref.t) -> r.exclusive) (Database.rrefs db oid))

exception Reject of rejection

let verify_state_dependent t ~pairs primitives =
  let check_d1 () =
    let seen = Oid.Tbl.create 16 in
    List.iter
      (fun (_, target) ->
        if Oid.Tbl.mem seen target then raise (Reject (Target_referenced_twice target));
        Oid.Tbl.add seen target ();
        if composite_parent_count t.db target > 0 then
          raise (Reject (Target_already_composite target)))
      pairs
  in
  let check_d2 () =
    List.iter
      (fun (_, target) ->
        if has_exclusive_parent t.db target then
          raise (Reject (Target_has_exclusive target)))
      pairs
  in
  let check_d3 () =
    (* "Reject if an instance O has more than one reverse composite
       reference and at least one is from an instance of C'." *)
    List.iter
      (fun (_, target) ->
        if composite_parent_count t.db target > 1 then
          raise (Reject (Target_shared_elsewhere target)))
      pairs
  in
  List.iter
    (function
      | Change.D1 -> check_d1 ()
      | Change.D2 -> check_d2 ()
      | Change.D3 -> check_d3 ()
      | Change.I1 | Change.I2 | Change.I3 | Change.I4 -> ())
    primitives

(* Rewrite flags (I2/I3/I4) or drop reverse references (I1), immediately,
   for all instances of the domain class. *)
let apply_immediate t ~domain_cls entry =
  List.iter
    (fun oid ->
      match Database.find t.db oid with
      | None -> ()
      | Some inst ->
          catch_up t inst;
          apply_entry t inst entry)
    (Database.instances_of t.db ~subclasses:true domain_cls)

let change_attribute_type t ?(mode = Immediate) ~cls ~attr ~to_ () =
  let schema = Database.schema t.db in
  let spec = own_attribute_exn schema cls attr in
  let primitives = Change.classify ~from_:spec.refkind ~to_ in
  if primitives = [] then Ok []
  else
    match D.class_name spec.domain with
    | None -> Error (Not_a_reference { cls; attr })
    | Some domain_cls -> (
        let pairs = reference_pairs t ~cls ~attr in
        let new_spec = { spec with A.refkind = to_ } in
        try
          verify_state_dependent t ~pairs primitives;
          match (spec.refkind, to_) with
          | A.Weak, A.Composite _ ->
              (* D1/D2: install reverse references; always immediate. *)
              Schema.replace_attribute schema ~cls new_spec;
              let attached = ref [] in
              (try
                 List.iter
                   (fun (holder, target) ->
                     Object_manager.attach_child t.db ~parent:holder ~attr
                       ~spec:new_spec ~child:target;
                     attached := (holder, target) :: !attached)
                   pairs
               with Core_error.Error (Core_error.Topology_violation v) ->
                 List.iter
                   (fun (holder, target) ->
                     Object_manager.detach_child_quiet t.db ~parent:holder ~attr
                       ~spec:new_spec ~child:target)
                   !attached;
                 Schema.replace_attribute schema ~cls spec;
                 raise (Reject (Would_cycle v.child)));
              Ok primitives
          | A.Composite _, A.Weak -> (
              (* I1 *)
              Schema.replace_attribute schema ~cls new_spec;
              let entry = Operation_log.Drop_rrefs { referencing_cls = cls; attr } in
              match mode with
              | Immediate -> apply_immediate t ~domain_cls entry; Ok primitives
              | Deferred ->
                  let cc = Operation_log.append t.log ~domain_cls entry in
                  Database.set_current_cc t.db cc;
                  Ok primitives)
          | A.Composite _, A.Composite { exclusive; dependent } -> (
              (* Flag changes: I2/I3/I4 are state-independent; D3 was
                 verified above and its flag rewrite needs no further
                 state inspection, so it can share the machinery —
                 except that the verification itself was immediate, as
                 §4.3 requires. *)
              Schema.replace_attribute schema ~cls new_spec;
              let entry =
                Operation_log.Set_flags
                  { referencing_cls = cls; attr; exclusive; dependent }
              in
              match mode with
              | Immediate -> apply_immediate t ~domain_cls entry; Ok primitives
              | Deferred when not (Change.state_dependent primitives) ->
                  let cc = Operation_log.append t.log ~domain_cls entry in
                  Database.set_current_cc t.db cc;
                  Ok primitives
              | Deferred ->
                  (* D3 requires immediate flag verification; apply now. *)
                  apply_immediate t ~domain_cls entry;
                  Ok primitives)
          | A.Weak, A.Weak -> Ok primitives
        with Reject r -> Error r)

(* §4.1: dropping attributes, superclasses and classes. ----------------------- *)

let drop_attribute_values t ~holders ~attr ~(spec : A.t) =
  List.iter
    (fun holder ->
      match Database.find t.db holder with
      | None -> ()
      | Some inst ->
          if not (Instance.is_generic inst) then begin
            (match Instance.attr inst attr with
            | Some v when A.is_composite spec ->
                List.iter
                  (fun target ->
                    if Database.exists t.db target then
                      Object_manager.detach_child t.db ~parent:holder ~attr ~spec
                        ~child:target)
                  (Value.refs v)
            | Some _ | None -> ());
            match Database.find t.db holder with
            | Some inst ->
                Database.write_value t.db inst attr Value.Null;
                Instance.remove_attr inst attr
            | None -> ()
          end)
    holders

let drop_attribute t ~cls ~attr =
  let schema = Database.schema t.db in
  let spec = own_attribute_exn schema cls attr in
  let holders = Database.instances_of t.db ~subclasses:true cls in
  drop_attribute_values t ~holders ~attr ~spec;
  ignore (Schema.drop_attribute schema ~cls ~attr : A.t)

(* After a lattice change, reconcile each affected class's instances
   with the attributes the class lost. *)
let reconcile_lost_attributes t ~affected ~before =
  let schema = Database.schema t.db in
  List.iter
    (fun cls ->
      if Schema.mem schema cls then begin
        let after = Schema.effective_attributes schema cls in
        let lost =
          List.filter
            (fun (a : A.t) ->
              not (List.exists (fun (b : A.t) -> String.equal a.name b.name) after))
            (List.assoc cls before)
        in
        let holders = Database.instances_of t.db ~subclasses:false cls in
        List.iter
          (fun (a : A.t) -> drop_attribute_values t ~holders ~attr:a.name ~spec:a)
          lost
      end)
    affected

let drop_superclass t ~cls ~super =
  let schema = Database.schema t.db in
  let affected = cls :: Schema.all_subclasses schema cls in
  let before =
    List.map (fun c -> (c, Schema.effective_attributes schema c)) affected
  in
  Schema.drop_superclass schema ~cls ~super;
  reconcile_lost_attributes t ~affected ~before

let drop_class t cls =
  let schema = Database.schema t.db in
  let affected = Schema.all_subclasses schema cls in
  let before =
    List.map (fun c -> (c, Schema.effective_attributes schema c)) affected
  in
  (* Instances of the dropped class are deleted, cascading per the
     Deletion Rule. *)
  List.iter
    (fun oid -> if Database.exists t.db oid then Object_manager.delete t.db oid)
    (Database.instances_of t.db ~subclasses:false cls);
  ignore (Schema.drop_class schema cls : Class_def.t);
  reconcile_lost_attributes t ~affected ~before
