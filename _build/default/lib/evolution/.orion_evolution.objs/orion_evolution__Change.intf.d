lib/evolution/change.mli: Format Orion_schema
