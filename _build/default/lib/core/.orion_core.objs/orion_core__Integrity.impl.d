lib/core/integrity.ml: Database Format Instance List Object_manager Oid Orion_schema Rref String Topology Value
