lib/evolution/change.ml: Format List Orion_schema
