open Orion_core
module Obs = Orion_obs.Metrics
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module Store = Orion_storage.Store
module Disk = Orion_storage.Disk
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr
module Schema = Orion_schema.Schema
module Version_store = Orion_mvcc.Version_store

exception Fatal of string

(* Raised inside the stream loop when the replica is sealed (promoted
   or stopping) — unwinds to the loop exit, never escapes. *)
exception Sealed_exn

type t = {
  primary : Addr.t;
  client_name : string;
  wal : Wal.t;  (** local byte-for-byte mirror of the primary's log *)
  db_path : string;  (** mirror snapshots land here (checkpoint cadence) *)
  mutable mirror : Store.t option;  (** physical replay target *)
  mutable serving : Database.t option;  (** built at the first sealed checkpoint *)
  pending : (int, Wal_record.t list) Hashtbl.t;  (** tx → ops, newest first *)
  mutable sealed : bool;
  mutable failed : string option;
  mutable locked : (unit -> unit) -> unit;
  mutable client : Orion_client.t option;
  mutable mvcc : Version_store.t option;
      (** feeds replica-side snapshot reads; installed by the server
          once the serving database exists *)
  mutable thread : Thread.t option;
  mutable checkpoints : int;
  applied_frames : Obs.counter;
  applied_bytes : Obs.counter;
  applied_commits : Obs.counter;
  reconnects : Obs.counter;
}

let create ~primary ?(client_name = "orion-replica") ~wal ~db_path () =
  let t =
    {
      primary;
      client_name;
      wal;
      db_path;
      mirror = None;
      serving = None;
      pending = Hashtbl.create 16;
      sealed = false;
      failed = None;
      locked = (fun f -> f ());
      client = None;
      mvcc = None;
      thread = None;
      checkpoints = 0;
      applied_frames = Obs.counter "repl.applied_frames";
      applied_bytes = Obs.counter "repl.applied_bytes";
      applied_commits = Obs.counter "repl.applied_commits";
      reconnects = Obs.counter "repl.reconnects";
    }
  in
  Obs.gauge "repl.applied_lsn" (fun () -> Wal.size t.wal);
  Obs.gauge "repl.connected" (fun () ->
      if t.client <> None && not t.sealed then 1 else 0);
  t

let db t =
  match t.serving with
  | Some db -> db
  | None -> raise (Fatal "replica: no serving database before first checkpoint")

let wal t = t.wal
let db_path t = t.db_path
let applied_lsn t = Wal.size t.wal
let sealed t = t.sealed
let checkpoints t = t.checkpoints
let set_locked t locked = t.locked <- locked
let set_mvcc t vs = t.mvcc <- Some vs

(* {1 Apply} *)

let mirror_exn t =
  match t.mirror with
  | Some s -> s
  | None -> raise (Fatal "replica: stream carries no genesis record")

(* The serving database's instances never own a record slot: record
   lifecycle on a replica belongs exclusively to the shipped physical
   stream (the mirror store).  A [Some rid] leaking into
   [Database.remove] would [Store.delete] a record the primary still
   accounts for and desync the mirror's allocator replay. *)
let detach_rid db oid =
  match Database.find db oid with
  | Some old -> old.Instance.rid <- None
  | None -> ()

let apply_logical db op =
  match op with
  | Wal_record.Obj_put { oid; cluster_with; rrefs; data; _ } ->
      let inst = Codec.decode data in
      inst.Instance.rid <- None;
      inst.Instance.cluster_with <- cluster_with;
      detach_rid db oid;
      Database.add db inst;
      Database.set_rrefs db oid rrefs
  | Obj_delete { oid; _ } ->
      detach_rid db oid;
      Database.remove db oid
  | _ -> ()

let advance_counters db ~next_oid ~clock ~cc =
  let next_oid0, clock0 = Database.counters db in
  Database.restore_counters db ~next_oid:(max next_oid next_oid0)
    ~clock:(max clock clock0);
  Database.set_current_cc db (max cc (Database.current_cc db))

(* Before mutating the serving database, note each touched object's
   committed pre-image in the version store (first capture wins), so a
   snapshot opened at an older applied clock keeps reading the state
   it began at instead of falling through to the freshly-applied
   one. *)
let note_bases t db ops =
  match t.mvcc with
  | None -> ()
  | Some vs ->
      List.iter
        (fun op ->
          match op with
          | Wal_record.Obj_put { oid; _ } | Obj_delete { oid; _ } ->
              let base =
                match Database.find db oid with
                | Some inst ->
                    Some
                      {
                        Version_store.inst = Instance.copy inst;
                        rrefs = Database.rrefs db oid;
                      }
                | None -> None
              in
              Version_store.note_base vs oid base
          | _ -> ())
        ops

let seal_tx t tx ~next_oid ~clock ~cc =
  let ops =
    List.rev (Option.value (Hashtbl.find_opt t.pending tx) ~default:[])
  in
  Hashtbl.remove t.pending tx;
  match t.serving with
  | None -> ()  (* absorbed by the first checkpoint's catalog *)
  | Some db ->
      note_bases t db ops;
      List.iter (apply_logical db) ops;
      advance_counters db ~next_oid ~clock ~cc;
      (match t.mvcc with
      | Some vs -> Version_store.publish_records vs ~clock ops
      | None -> ());
      Obs.incr t.applied_commits;
      if ops <> [] then Database.emit db Database.Invalidated

(* Full catalog resync: make the serving database agree with the
   mirror store exactly as the checkpoint sealed it.  This also heals
   divergence no logical record covers — the primary's
   non-transactional mutations ship physically at its next checkpoint,
   the same durability stance its own crash recovery takes.

   The version store is deliberately not fed here: everything the
   resync rewrites that a commit record also covered is already
   versioned, and what only the checkpoint covers (non-transactional
   DDL-adjacent state) is read live by snapshots anyway — the same
   stance the primary takes for schema reads. *)
let resync db mirror =
  let cat =
    match Store.read_catalog mirror with
    | Some blob -> Persist.decode_catalog blob
    | None -> raise (Fatal "replica: checkpoint sealed without a catalog")
  in
  Schema.reimport (Database.schema db) cat.Persist.cat_schema;
  let live = Hashtbl.create 256 in
  List.iter
    (fun (e : Persist.catalog_entry) ->
      Hashtbl.replace live e.ce_oid ();
      match Store.read mirror e.ce_rid with
      | None -> raise (Fatal "replica: catalog names a missing record")
      | Some data ->
          let inst = Codec.decode data in
          inst.Instance.rid <- None;
          inst.Instance.cluster_with <- e.ce_cluster_with;
          detach_rid db e.ce_oid;
          Database.add db inst;
          if cat.cat_external_rrefs then
            Database.set_rrefs db e.ce_oid e.ce_rrefs)
    cat.cat_entries;
  let stale =
    Database.fold db ~init:[] ~f:(fun acc i ->
        if Hashtbl.mem live i.Instance.oid then acc else i.Instance.oid :: acc)
  in
  List.iter
    (fun oid ->
      detach_rid db oid;
      Database.remove db oid)
    stale;
  advance_counters db ~next_oid:cat.cat_next_oid ~clock:cat.cat_clock
    ~cc:cat.cat_cc;
  Database.emit db Database.Invalidated

let on_checkpoint t =
  Hashtbl.reset t.pending;
  let mirror = mirror_exn t in
  (* Shipped [Page_write]s go straight to the disk image, under any
     pages the buffer pool cached — drop the cache so catalog reads
     see the checkpoint's bytes. *)
  Store.drop_cache mirror;
  (match t.serving with
  | None -> t.serving <- Some (Persist.load mirror)
  | Some db -> resync db mirror);
  t.checkpoints <- t.checkpoints + 1;
  (* The replica's own durable snapshot, byte-identical to the
     primary's: a promoted replica restarts from it like any primary. *)
  Store.save_file mirror t.db_path

let apply_record t r =
  (match r with
  | Wal_record.Genesis { page_size } -> (
      match t.mirror with
      | None -> t.mirror <- Some (Store.create ~page_size ())
      | Some _ -> raise (Fatal "replica: duplicate genesis in stream"))
  | Page_alloc { page_no } ->
      let got = Disk.alloc (Store.disk (mirror_exn t)) in
      if got <> page_no then
        raise
          (Fatal
             (Printf.sprintf
                "replica: page allocation replayed out of order (%d, expected \
                 %d)"
                got page_no))
  | Page_write { page_no; image } ->
      Disk.write (Store.disk (mirror_exn t)) page_no image
  | Segment_new { id } -> Store.restore_segment (mirror_exn t) id
  | Record_put { rid } -> Store.restore_record (mirror_exn t) rid
  | Record_delete { rid } -> Store.forget_record (mirror_exn t) rid
  | Catalog_set { page } -> Store.restore_catalog (mirror_exn t) page
  | Obj_put _ | Obj_delete _ | Commit _ | Commit_group _ | Checkpoint_begin
  | Checkpoint ->
      ());
  match r with
  | Wal_record.Obj_put { tx; _ } | Obj_delete { tx; _ } ->
      let sofar = Option.value (Hashtbl.find_opt t.pending tx) ~default:[] in
      Hashtbl.replace t.pending tx (r :: sofar)
  | Commit { tx; next_oid; clock; cc } -> seal_tx t tx ~next_oid ~clock ~cc
  | Commit_group { txs; next_oid; clock; cc } ->
      List.iter (fun tx -> seal_tx t tx ~next_oid ~clock ~cc) txs
  | Checkpoint -> on_checkpoint t
  | _ -> ()

let ingest t ~lsn data =
  let size = Wal.size t.wal in
  if lsn <> size then
    raise
      (Fatal
         (Printf.sprintf "replica: stream gap (batch at LSN %d, local log at %d)"
            lsn size));
  let records = Wal.decode_frames data in
  Wal.append_raw t.wal data;
  List.iter (apply_record t) records;
  Obs.incr t.applied_frames ~by:(List.length records);
  Obs.incr t.applied_bytes ~by:(Bytes.length data)

(* Restart path: the local log already mirrors a prefix of the
   primary's — rebuild mirror and serving database from it before
   subscribing for the rest.  A torn tail (killed mid-sync) is legal
   crash residue: chop it and resume from the intact prefix. *)
let replay_local t =
  if Wal.size t.wal > 0 then begin
    let { Wal.records; torn_tail; valid_bytes } = Wal.scan t.wal in
    if torn_tail then Wal.tear t.wal ~bytes:(Wal.size t.wal - valid_bytes);
    List.iter (apply_record t) records
  end

(* {1 Streaming} *)

let dial t =
  let c = Orion_client.connect ~client_name:t.client_name t.primary in
  t.client <- Some c;
  (match Orion_client.repl_subscribe c ~from_lsn:(Wal.size t.wal) with
  | (_ : int) -> ()
  | exception Orion_client.Error (Message.Repl_error, msg) ->
      Orion_client.close c;
      t.client <- None;
      raise (Fatal ("replica: subscription refused: " ^ msg)));
  c

let drop_client t =
  (match t.client with
  | Some c -> ( try Orion_client.close c with _ -> ())
  | None -> ());
  t.client <- None

(* One push.  Raises [Sealed_exn] once sealed, [Disconnected] on a
   dead primary, [Fatal] on stream damage. *)
let step t c =
  match Orion_client.next_push c with
  | Message.Repl_frames { lsn; data } ->
      t.locked (fun () -> if not t.sealed then ingest t ~lsn data);
      if t.sealed then raise Sealed_exn;
      Wal.sync t.wal;
      Orion_client.repl_ack c ~lsn:(Wal.size t.wal)
  | Message.Repl_heartbeat _ ->
      if t.sealed then raise Sealed_exn;
      Orion_client.repl_ack c ~lsn:(Wal.size t.wal)
  | Message.Goodbye { msg } ->
      raise (Orion_client.Disconnected ("primary shut down: " ^ msg))
  | Message.Deadlock_victim _ -> ()

let bootstrap ?(dial_attempts = 50) t =
  replay_local t;
  let backoff = ref 0.2 in
  let attempts = ref 0 in
  let rec go () =
    if t.sealed then raise (Fatal "replica: sealed during bootstrap");
    match
      let c = dial t in
      while t.serving = None && not t.sealed do
        step t c
      done
    with
    | () -> ()
    | exception
        ( Orion_client.Disconnected _ | Orion_client.Error _
        | Unix.Unix_error _ ) ->
        drop_client t;
        incr attempts;
        if !attempts >= dial_attempts then
          raise (Fatal "replica: primary unreachable during bootstrap");
        Unix.sleepf !backoff;
        backoff := Float.min 2.0 (!backoff *. 2.);
        go ()
  in
  go ();
  db t

let start t =
  let run () =
    let backoff = ref 0.2 in
    (try
       while not t.sealed && t.failed = None do
         match
           let c =
             match t.client with Some c -> c | None -> dial t
           in
           backoff := 0.2;
           while true do
             step t c
           done
         with
         | () -> ()
         | exception Sealed_exn -> ()
         | exception Fatal msg ->
             prerr_endline msg;
             t.failed <- Some msg
         | exception
             ( Orion_client.Disconnected _ | Orion_client.Error _
             | Unix.Unix_error _ ) ->
             drop_client t;
             if not t.sealed then begin
               Obs.incr t.reconnects;
               Unix.sleepf !backoff;
               backoff := Float.min 2.0 (!backoff *. 2.)
             end
       done
     with e ->
       t.failed <- Some (Printexc.to_string e);
       prerr_endline ("replica: applier died: " ^ Printexc.to_string e));
    drop_client t
  in
  t.thread <- Some (Thread.create run ())

let failed t = t.failed

(* Promote half one: flip the flag under the service lock so any
   in-flight batch the applier holds is discarded, not applied over
   the new primary's writes. *)
let seal t = t.sealed <- true

let stop t =
  seal t;
  (match t.client with Some c -> Orion_client.shutdown c | None -> ());
  (match t.thread with Some thr -> Thread.join thr | None -> ());
  t.thread <- None

(* Save the replica's durable state on graceful shutdown: the mirror
   store image and the synced local log.  Deliberately NOT the primary
   shutdown path — [Persist.save] on the serving database would
   checkpoint its workspace into the mirror and diverge it from the
   primary's bytes. *)
let save t =
  (match t.mirror with
  | Some mirror -> Store.save_file mirror t.db_path
  | None -> ());
  Wal.sync t.wal
