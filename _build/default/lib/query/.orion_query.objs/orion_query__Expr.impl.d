lib/query/expr.ml: Database Float Format Instance Int List Oid Orion_core Orion_schema String Traversal Value
