(** Memo of {!Traversal.edges}: the resolved outgoing composite edges of
    an object, keyed by OID.

    Every cached entry records the OIDs it was derived from ([deps]: the
    raw reference targets plus their version-resolved forms), and a
    reverse index maps each of those OIDs back to the caching parents,
    so a deletion or version change at a target invalidates exactly the
    entries that embedded it.  Schema changes are handled wholesale: the
    cache carries the schema generation it was filled under and empties
    itself when a lookup arrives with a newer one.

    The structure is passive — {!Database} owns one and feeds it from
    the change-event bus; {!Traversal} fills and reads it. *)

type t

type stats = { hits : int; misses : int; invalidations : int }

val create : unit -> t

val find : t -> generation:int -> Oid.t -> (bool * Oid.t) list option
(** Cached [(exclusive, resolved target)] edges.  [generation] is the
    current schema version; a mismatch empties the cache (counted as
    invalidations) before the lookup. *)

val add : t -> generation:int -> Oid.t -> deps:Oid.t list -> (bool * Oid.t) list -> unit
(** Record the edges of [oid] together with every OID the computation
    depended on.  A pre-existing entry is kept. *)

val invalidate : t -> Oid.t -> unit
(** Remove the entry of [oid] and every entry depending on [oid]. *)

val flush : t -> unit
(** Empty the cache (bulk state change). *)

val length : t -> int
(** Live entries (tests and introspection). *)

val stats : t -> stats
val reset_stats : t -> unit
