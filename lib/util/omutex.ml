(* Ranked mutexes.  See the .mli for the contract; what matters in here
   is the cost model: with no tracer installed every operation is the
   raw Mutex call behind one [if !enabled] — no allocation, no
   callstack capture, nothing the branch predictor cannot hide.  All
   bookkeeping (class registry, site extraction) happens either at
   declaration time or only when a tracer is listening. *)

type klass = {
  k_name : string;
  k_rank : int;
  k_no_block : bool;
  k_asc_region : string option;
  k_doc : string;
}

(* Declarations happen at module-init time (and in tests), never on a
   hot path, so a plain mutex guards the registry.  Plain mutexes are
   invisible to the tracer by construction — the checker must never
   observe its own machinery. *)
let registry : (string, klass) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let declare ?(no_block = false) ?asc_region ~doc ~name ~rank () =
  let k =
    {
      k_name = name;
      k_rank = rank;
      k_no_block = no_block;
      k_asc_region = asc_region;
      k_doc = doc;
    }
  in
  Mutex.lock registry_mu;
  let dup = Hashtbl.mem registry name in
  if not dup then Hashtbl.replace registry name k;
  Mutex.unlock registry_mu;
  if dup then invalid_arg (Printf.sprintf "Omutex.declare: duplicate class %S" name);
  k

let name k = k.k_name
let rank k = k.k_rank
let no_block k = k.k_no_block
let asc_region k = k.k_asc_region
let doc k = k.k_doc

let classes () =
  Mutex.lock registry_mu;
  let all = Hashtbl.fold (fun _ k acc -> k :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare (a.k_rank, a.k_name) (b.k_rank, b.k_name)) all

let hierarchy_markdown () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "| rank | class | no-block | same-class nesting | role |\n";
  Buffer.add_string b "|-----:|-------|----------|--------------------|------|\n";
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "| %d | `%s` | %s | %s | %s |\n" k.k_rank k.k_name
           (if k.k_no_block then "yes" else "—")
           (match k.k_asc_region with
           | Some r -> Printf.sprintf "ascending in `%s`" r
           | None -> "never")
           k.k_doc))
    (classes ());
  Buffer.contents b

(* The engine hierarchy, outermost (lowest rank) first.  The rank gaps
   are deliberate room for future classes.  Ordering arguments, in
   brief: the service core is the outermost thing any dispatch holds;
   partition mutexes nest under it (lock acquisition runs inside
   dispatch); the obs registry sits in the middle because creation
   paths take it while holding core/partition locks (label cells,
   per-class histograms) and Obs.snapshot holds it while calling gauge
   closures that read the tailer and the WAL; the WAL log mutex and
   the version store are innermost — everything logs and publishes,
   nothing is acquired under them. *)

let txsvc_core =
  declare ~no_block:true ~name:"txsvc.core" ~rank:10
    ~doc:"service core: db, sessions, tx bookkeeping; one tick at a time"
    ()

let shard_inbox =
  declare ~name:"shard.inbox" ~rank:20
    ~doc:"per-shard cross-domain message inbox (instance = shard id)" ()

let lock_partition =
  declare ~no_block:true ~asc_region:"merged-search" ~name:"lock.partition"
    ~rank:30
    ~doc:
      "one lock-table partition (instance = partition index); at most \
       one held, except the merged deadlock search" ()

let group_commit =
  declare ~name:"wal.group_commit" ~rank:40
    ~doc:"group-commit batch queue and committer condition" ()

let obs_registry =
  declare ~name:"obs.registry" ~rank:50
    ~doc:"metrics registry; snapshot holds it across gauge closures" ()

let repl_tailer =
  declare ~name:"repl.tailer" ~rank:60
    ~doc:"replication tailer: subscriber table and cursors" ()

let wal_log =
  declare ~name:"wal.log" ~rank:70
    ~doc:"WAL append/seal/sync; held across the fsync-point by design" ()

let mvcc_version_store =
  declare ~name:"mvcc.version_store" ~rank:80
    ~doc:"version chains and snapshot registry; innermost, pure leaf" ()

type event =
  | Acquire of { cls : klass; inst : int; site : string }
  | Release of { cls : klass; inst : int }
  | Blocking of { op : string; site : string }
  | Region_enter of string
  | Region_exit of string
  | Allow_enter of string
  | Allow_exit of string

let enabled = ref false
let tracer : (event -> unit) ref = ref (fun _ -> ())

let set_tracer = function
  | None ->
      enabled := false;
      tracer := fun _ -> ()
  | Some f ->
      tracer := f;
      enabled := true

(* First stack slot outside this module: the acquisition site a witness
   names.  Only runs with a tracer installed; without debug info (or
   from a toplevel) it degrades to "?". *)
let site () =
  let bt = Printexc.get_callstack 16 in
  match Printexc.backtrace_slots bt with
  | None -> "?"
  | Some slots ->
      let best = ref "?" in
      (try
         Array.iter
           (fun slot ->
             match Printexc.Slot.location slot with
             | Some loc ->
                 let base = Filename.basename loc.Printexc.filename in
                 if base <> "omutex.ml" && base <> "lockdep.ml" then begin
                   best := Printf.sprintf "%s:%d" base loc.Printexc.line_number;
                   raise Exit
                 end
             | None -> ())
           slots
       with Exit -> ());
      !best

type t = { m : Mutex.t; cls : klass; inst : int }

(* Without an explicit instance number, every created mutex gets its
   own (negative, so it can never collide with a caller-chosen index):
   two servers in one test process each own a wal.log, and the checker
   must see two instances, not one mutex recursively locked. *)
let next_auto = Atomic.make 1

let create ?inst cls =
  let inst =
    match inst with
    | Some i -> i
    | None -> -Atomic.fetch_and_add next_auto 1
  in
  { m = Mutex.create (); cls; inst }

let lock t =
  (* Report before blocking: if this acquisition is the second half of
     an inversion, the finding lands even when the lock then deadlocks
     for real. *)
  if !enabled then
    !tracer (Acquire { cls = t.cls; inst = t.inst; site = site () });
  Mutex.lock t.m

let try_lock t =
  let got = Mutex.try_lock t.m in
  if got && !enabled then
    !tracer (Acquire { cls = t.cls; inst = t.inst; site = site () });
  got

let unlock t =
  if !enabled then !tracer (Release { cls = t.cls; inst = t.inst });
  Mutex.unlock t.m

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let wait cond t =
  if !enabled then !tracer (Release { cls = t.cls; inst = t.inst });
  Condition.wait cond t.m;
  if !enabled then
    !tracer (Acquire { cls = t.cls; inst = t.inst; site = site () })

let blocking ~op f =
  if !enabled then !tracer (Blocking { op; site = site () });
  f ()

let allow_blocking opname f =
  if not !enabled then f ()
  else begin
    !tracer (Allow_enter opname);
    Fun.protect ~finally:(fun () -> !tracer (Allow_exit opname)) f
  end

let in_region rname f =
  if not !enabled then f ()
  else begin
    !tracer (Region_enter rname);
    Fun.protect ~finally:(fun () -> !tracer (Region_exit rname)) f
  end
