lib/tx/scheduler.mli: Database Oid Orion_core Orion_locking Tx_manager
