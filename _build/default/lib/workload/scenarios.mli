(** The paper's worked schemas, reusable by tests, examples and
    benchmarks.

    [vehicle] is Example 1 (§2.3): a {e physical} part hierarchy —
    every composite attribute is an independent exclusive reference, so
    parts belong to at most one vehicle but survive dismantling.

    [document] is Example 2 (§2.3): a {e logical} part hierarchy —
    sections and paragraphs are dependent shared (they live while at
    least one document/section holds them), annotations are dependent
    exclusive, figures are independent shared. *)

open Orion_core

type vehicle_classes = {
  vehicle : string;
  auto_body : string;
  auto_drivetrain : string;
  auto_tires : string;
  company : string;
}

val define_vehicle_schema : Database.t -> vehicle_classes
(** Classes: [Company], [AutoBody], [AutoDrivetrain], [AutoTires],
    [Vehicle] with attributes [Manufacturer] (weak), [Body],
    [Drivetrain] (independent exclusive), [Tires] (set-of, independent
    exclusive) and [Color] (string), mirroring the paper's
    [make-class 'Vehicle]. *)

type document_classes = {
  document : string;
  section : string;
  paragraph : string;
  image : string;
}

val define_document_schema : Database.t -> document_classes
(** Classes: [Paragraph], [Image], [Section] (Content: set-of Paragraph,
    dependent shared), [Document] (Title, Authors, Sections: dependent
    shared; Figures: independent shared; Annotations: set-of Paragraph,
    dependent exclusive). *)

type vehicle = {
  v_vehicle : Oid.t;
  v_body : Oid.t;
  v_drivetrain : Oid.t;
  v_tires : Oid.t list;
}

val build_vehicle :
  Database.t -> vehicle_classes -> ?tires:int -> color:string -> unit -> vehicle
(** Bottom-up: parts created first, then assembled into a vehicle. *)

type document = {
  d_document : Oid.t;
  d_sections : Oid.t list;
  d_paragraphs : Oid.t list list;  (** per section *)
}

val build_document :
  Database.t ->
  document_classes ->
  title:string ->
  sections:int ->
  paragraphs_per_section:int ->
  document
