test/test_authz.mli:
