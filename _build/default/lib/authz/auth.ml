type atype = Read | Write
type sign = Positive | Negative
type strength = Strong | Weak

type t = { atype : atype; sign : sign; strength : strength }

let make ?(strength = Strong) ?(sign = Positive) atype = { atype; sign; strength }

let equal a b = a = b

let to_string a =
  Printf.sprintf "%s%s%s"
    (match a.strength with Strong -> "s" | Weak -> "w")
    (match a.sign with Positive -> "" | Negative -> "\xc2\xac" (* ¬ *))
    (match a.atype with Read -> "R" | Write -> "W")

let pp ppf a = Format.pp_print_string ppf (to_string a)

let all =
  [
    { atype = Read; sign = Positive; strength = Strong };
    { atype = Write; sign = Positive; strength = Strong };
    { atype = Read; sign = Negative; strength = Strong };
    { atype = Write; sign = Negative; strength = Strong };
    { atype = Read; sign = Positive; strength = Weak };
    { atype = Write; sign = Positive; strength = Weak };
    { atype = Read; sign = Negative; strength = Weak };
    { atype = Write; sign = Negative; strength = Weak };
  ]

(* W+ implies R+; R- implies W-; each at the strength of the implier. *)
let closure a =
  match (a.atype, a.sign) with
  | Write, Positive -> [ a; { a with atype = Read } ]
  | Read, Negative -> [ a; { a with atype = Write } ]
  | (Read, Positive) | (Write, Negative) -> [ a ]

type combined = Conflict | Effective of t list

let dedup auths =
  List.fold_left (fun acc a -> if List.mem a acc then acc else acc @ [ a ]) [] auths

let contradiction auths =
  List.exists
    (fun a ->
      List.exists (fun b -> a.atype = b.atype && a.sign <> b.sign) auths)
    auths

let combine sources =
  let closed = dedup (List.concat_map closure sources) in
  let strong, weak = List.partition (fun a -> a.strength = Strong) closed in
  if contradiction strong then Conflict
  else
    (* Strong authorizations override contradicting weak ones. *)
    let weak =
      List.filter
        (fun w ->
          not
            (List.exists (fun s -> s.atype = w.atype && s.sign <> w.sign) strong))
        weak
    in
    if contradiction weak then Conflict
    else
      (* A weak authorization also adds nothing when the same
         authorization holds strongly. *)
      let weak =
        List.filter
          (fun w ->
            not (List.exists (fun s -> s.atype = w.atype && s.sign = w.sign) strong))
          weak
      in
      Effective (strong @ weak)

(* Keep only the strongest representatives: positive W subsumes positive
   R; negative R subsumes negative W — per strength level. *)
let strongest auths =
  List.filter
    (fun a ->
      let subsumed_by b =
        b.strength = a.strength && b.sign = a.sign
        &&
        match a.sign with
        | Positive -> a.atype = Read && b.atype = Write
        | Negative -> a.atype = Write && b.atype = Read
      in
      not (List.exists subsumed_by auths))
    auths

(* Canonical display order (the {!all} order) so cells compare as
   strings regardless of combination order. *)
let canonical auths =
  List.filter (fun a -> List.mem a auths) all

let display = function
  | Conflict -> "Conflict"
  | Effective [] -> "-"
  | Effective auths -> String.concat " " (List.map to_string (canonical (strongest auths)))

let allows combined op =
  match combined with
  | Conflict -> false
  | Effective auths ->
      List.exists (fun a -> a.atype = op && a.sign = Positive) auths
      && not (List.exists (fun a -> a.atype = op && a.sign = Negative) auths)
