(* Tests for Orion_storage: slotted pages, buffer pool, record store
   (including clustering placement and long records). *)

module Disk = Orion_storage.Disk
module Page = Orion_storage.Page
module Buffer_pool = Orion_storage.Buffer_pool
module Store = Orion_storage.Store
module Bytes_rw = Orion_storage.Bytes_rw

let bytes_of_string = Bytes.of_string

let test_page_basics () =
  let page = Page.init (Bytes.make 256 '\000') in
  let s0 = Page.insert page (bytes_of_string "hello") in
  let s1 = Page.insert page (bytes_of_string "world!") in
  Alcotest.(check (option string))
    "read s0" (Some "hello")
    (Option.map Bytes.to_string (Page.read_slot page (Option.get s0)));
  Alcotest.(check (option string))
    "read s1" (Some "world!")
    (Option.map Bytes.to_string (Page.read_slot page (Option.get s1)));
  Alcotest.(check int) "live" 2 (List.length (Page.live_slots page))

let test_page_delete_reuse () =
  let page = Page.init (Bytes.make 256 '\000') in
  let s0 = Option.get (Page.insert page (bytes_of_string "aaaaaaaa")) in
  Page.delete_slot page s0;
  Alcotest.(check (option string)) "deleted" None
    (Option.map Bytes.to_string (Page.read_slot page s0));
  (* A smaller record reuses the dead slot. *)
  let s1 = Option.get (Page.insert page (bytes_of_string "bbbb")) in
  Alcotest.(check int) "slot reused" s0 s1;
  Alcotest.(check (option string))
    "reads new content" (Some "bbbb")
    (Option.map Bytes.to_string (Page.read_slot page s1))

let test_page_update () =
  let page = Page.init (Bytes.make 256 '\000') in
  let s = Option.get (Page.insert page (bytes_of_string "longcontent")) in
  Alcotest.(check bool) "shrink ok" true (Page.update_slot page s (bytes_of_string "tiny"));
  Alcotest.(check (option string))
    "updated" (Some "tiny")
    (Option.map Bytes.to_string (Page.read_slot page s));
  Alcotest.(check bool) "grow fails" false
    (Page.update_slot page s (bytes_of_string "muchlongercontentthanbefore"))

let test_page_full () =
  let page = Page.init (Bytes.make 64 '\000') in
  let rec fill n =
    match Page.insert page (bytes_of_string "0123456789") with
    | Some _ -> fill (n + 1)
    | None -> n
  in
  let inserted = fill 0 in
  Alcotest.(check bool) "page holds a few records" true (inserted >= 2);
  Alcotest.(check bool) "eventually full" true
    (Page.insert page (bytes_of_string "0123456789") = None)

let test_buffer_pool_eviction () =
  let disk = Disk.create ~page_size:128 in
  let pool = Buffer_pool.create ~capacity:2 disk in
  let p0 = Disk.alloc disk and p1 = Disk.alloc disk and p2 = Disk.alloc disk in
  Disk.reset_stats disk;
  ignore (Buffer_pool.get pool p0 : Page.t);
  ignore (Buffer_pool.get pool p1 : Page.t);
  ignore (Buffer_pool.get pool p0 : Page.t) (* hit *);
  ignore (Buffer_pool.get pool p2 : Page.t) (* evicts p1 (LRU) *);
  ignore (Buffer_pool.get pool p0 : Page.t) (* still resident *);
  let stats = Buffer_pool.stats pool in
  Alcotest.(check int) "misses" 3 stats.misses;
  Alcotest.(check int) "hits" 2 stats.hits;
  Alcotest.(check int) "evictions" 1 stats.evictions;
  Alcotest.(check int) "physical reads" 3 (Disk.stats disk).reads

(* Regression: under repeated [get] of the same page, eviction must
   never pick the most-recently-used frame — the O(n) victim scan this
   replaced broke ties by hash-table order, which could land on the hot
   frame; the recency list cannot. *)
let test_buffer_pool_mru_never_evicted () =
  let disk = Disk.create ~page_size:128 in
  let capacity = 4 in
  let pool = Buffer_pool.create ~capacity disk in
  let hot = Disk.alloc disk in
  ignore (Buffer_pool.get pool hot : Page.t);
  for _ = 1 to 64 do
    (* Fill the pool, re-touch the hot page, then force an eviction. *)
    let cold = Disk.alloc disk in
    ignore (Buffer_pool.get pool cold : Page.t);
    for _ = 1 to 3 do
      ignore (Buffer_pool.get pool hot : Page.t)
    done;
    let before = (Buffer_pool.stats pool).misses in
    ignore (Buffer_pool.get pool hot : Page.t);
    let after = (Buffer_pool.stats pool).misses in
    Alcotest.(check int) "hot page still resident" before after
  done;
  Alcotest.(check bool) "evictions happened" true
    ((Buffer_pool.stats pool).evictions > 0)

let test_buffer_pool_writeback () =
  let disk = Disk.create ~page_size:128 in
  let pool = Buffer_pool.create ~capacity:1 disk in
  let p0 = Disk.alloc disk in
  let page = Buffer_pool.get pool p0 in
  Bytes.set (Page.image page) 10 'Z';
  Buffer_pool.mark_dirty pool p0;
  (* Force eviction by touching another page. *)
  let p1 = Disk.alloc disk in
  ignore (Buffer_pool.get pool p1 : Page.t);
  let reread = Buffer_pool.get pool p0 in
  Alcotest.(check char) "write back happened" 'Z' (Bytes.get (Page.image reread) 10)

let test_store_roundtrip () =
  let store = Store.create ~page_size:256 ~pool_capacity:4 () in
  let seg = Store.new_segment store in
  let rid = Store.insert store ~segment:seg (bytes_of_string "record one") in
  Alcotest.(check (option string))
    "read back" (Some "record one")
    (Option.map Bytes.to_string (Store.read store rid));
  let rid2 = Store.update store rid (bytes_of_string "new") in
  Alcotest.(check (option string))
    "updated in place" (Some "new")
    (Option.map Bytes.to_string (Store.read store rid2));
  Store.delete store rid2;
  Alcotest.(check (option string)) "deleted" None
    (Option.map Bytes.to_string (Store.read store rid2));
  Alcotest.(check int) "count" 0 (Store.record_count store seg)

let test_store_clustering () =
  let store = Store.create ~page_size:512 ~pool_capacity:8 () in
  let seg = Store.new_segment store in
  let parent = Store.insert store ~segment:seg (bytes_of_string "parent") in
  let child = Store.insert store ~segment:seg ~near:parent (bytes_of_string "child") in
  Alcotest.(check int) "same page" parent.Store.page child.Store.page

let test_store_long_records () =
  let store = Store.create ~page_size:256 ~pool_capacity:8 () in
  let seg = Store.new_segment store in
  let big = String.init 2000 (fun i -> Char.chr (65 + (i mod 26))) in
  let rid = Store.insert store ~segment:seg (bytes_of_string big) in
  Alcotest.(check int) "marked long" (-1) rid.Store.slot;
  Alcotest.(check (option string))
    "read back" (Some big)
    (Option.map Bytes.to_string (Store.read store rid));
  Store.delete store rid;
  Alcotest.(check (option string)) "long gone" None
    (Option.map Bytes.to_string (Store.read store rid))

let test_store_iter () =
  let store = Store.create ~page_size:256 ~pool_capacity:8 () in
  let seg = Store.new_segment store in
  let contents = [ "a"; "bb"; "ccc"; String.make 1000 'x' ] in
  List.iter
    (fun s -> ignore (Store.insert store ~segment:seg (bytes_of_string s) : Store.rid))
    contents;
  let seen = ref [] in
  Store.iter_segment store seg (fun _ data -> seen := Bytes.to_string data :: !seen);
  Alcotest.(check (list string))
    "all records" (List.sort compare contents)
    (List.sort compare !seen)

let test_store_file_roundtrip () =
  let store = Store.create ~page_size:256 ~pool_capacity:4 () in
  let seg = Store.new_segment store in
  let small = Store.insert store ~segment:seg (bytes_of_string "hello") in
  let big_payload = String.init 1500 (fun i -> Char.chr (97 + (i mod 26))) in
  let big = Store.insert store ~segment:seg (bytes_of_string big_payload) in
  Store.write_catalog store (bytes_of_string "catalog-bytes");
  let path = Filename.temp_file "orion" ".odb" in
  Store.save_file store path;
  let reopened = Store.load_file path in
  Sys.remove path;
  Alcotest.(check (option string))
    "small record survives" (Some "hello")
    (Option.map Bytes.to_string (Store.read reopened small));
  Alcotest.(check (option string))
    "long record survives" (Some big_payload)
    (Option.map Bytes.to_string (Store.read reopened big));
  Alcotest.(check (option string))
    "catalog survives" (Some "catalog-bytes")
    (Option.map Bytes.to_string (Store.read_catalog reopened));
  Alcotest.(check int) "live count" 2 (Store.record_count reopened seg);
  (* The reopened store keeps allocating without clobbering. *)
  let extra = Store.insert reopened ~segment:seg (bytes_of_string "new") in
  Alcotest.(check (option string))
    "new insert works" (Some "new")
    (Option.map Bytes.to_string (Store.read reopened extra));
  Alcotest.(check (option string))
    "old record intact" (Some "hello")
    (Option.map Bytes.to_string (Store.read reopened small))

let test_store_file_bad_magic () =
  let path = Filename.temp_file "orion" ".odb" in
  let oc = open_out path in
  output_string oc "not a store";
  close_out oc;
  (match Store.load_file path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Sys.remove path

let test_bytes_rw_roundtrip () =
  let module W = Bytes_rw.Writer in
  let module R = Bytes_rw.Reader in
  let w = W.create () in
  W.int w 0;
  W.int w 42;
  W.int w (-42);
  W.int w max_int;
  W.int w min_int;
  W.float w 3.14159;
  W.string w "hello";
  W.bool w true;
  W.bool w false;
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "zero" 0 (R.int r);
  Alcotest.(check int) "42" 42 (R.int r);
  Alcotest.(check int) "-42" (-42) (R.int r);
  Alcotest.(check int) "max_int" max_int (R.int r);
  Alcotest.(check int) "min_int" min_int (R.int r);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (R.float r);
  Alcotest.(check string) "string" "hello" (R.string r);
  Alcotest.(check bool) "true" true (R.bool r);
  Alcotest.(check bool) "false" false (R.bool r);
  Alcotest.(check bool) "at end" true (R.at_end r)

let prop_page_roundtrip =
  QCheck.Test.make ~name:"page insert/read roundtrip" ~count:200
    QCheck.(list (string_of_size Gen.(0 -- 40)))
    (fun records ->
      let page = Page.init (Bytes.make 4096 '\000') in
      let inserted =
        List.filter_map
          (fun s ->
            Option.map (fun slot -> (slot, s)) (Page.insert page (Bytes.of_string s)))
          records
      in
      List.for_all
        (fun (slot, s) ->
          match Page.read_slot page slot with
          | Some data -> Bytes.to_string data = s
          | None -> false)
        inserted)

(* Disk: write validation and crash injection ------------------------------- *)

let test_disk_rejects_unallocated_write () =
  let disk = Disk.create ~page_size:128 in
  let image = Bytes.make 128 'x' in
  (* Never-allocated page numbers must be rejected, not silently
     materialized: a stray write would corrupt the allocation order the
     recovery log replays. *)
  Alcotest.check_raises "write to unallocated page"
    (Invalid_argument "Disk.write: unallocated page 0") (fun () ->
      Disk.write disk 0 image);
  let p = Disk.alloc disk in
  Disk.write disk p image;
  Alcotest.check_raises "write past the high-water mark"
    (Invalid_argument "Disk.write: unallocated page 7") (fun () ->
      Disk.write disk 7 image);
  Alcotest.check_raises "size mismatch still rejected"
    (Invalid_argument "Disk.write: image size mismatch") (fun () ->
      Disk.write disk p (Bytes.make 64 'x'))

let test_disk_fail_after_fault () =
  let disk = Disk.create ~page_size:128 in
  let p = Disk.alloc disk in
  Disk.inject_fault disk (Some (`Fail_after 1));
  Disk.write disk p (Bytes.make 128 'a');
  Alcotest.check_raises "second write crashes" Disk.Crashed (fun () ->
      Disk.write disk p (Bytes.make 128 'b'));
  Alcotest.(check bool) "crashed flag" true (Disk.crashed disk);
  Alcotest.check_raises "reads refused after the crash" Disk.Crashed (fun () ->
      ignore (Disk.read disk p : bytes));
  Alcotest.check_raises "allocs refused after the crash" Disk.Crashed
    (fun () -> ignore (Disk.alloc disk : int));
  Disk.revive disk;
  Alcotest.(check string) "failed write left the old image" "a"
    (String.make 1 (Bytes.get (Disk.read disk p) 0))

let test_disk_torn_write () =
  let disk = Disk.create ~page_size:128 in
  let p = Disk.alloc disk in
  Disk.write disk p (Bytes.make 128 'a');
  Disk.inject_fault disk (Some (`Torn_after 0));
  Alcotest.check_raises "torn write crashes" Disk.Crashed (fun () ->
      Disk.write disk p (Bytes.make 128 'b'));
  Disk.revive disk;
  let image = Disk.read disk p in
  Alcotest.(check char) "prefix reached the platter" 'b' (Bytes.get image 0);
  Alcotest.(check char) "tail kept the old content" 'a'
    (Bytes.get image (128 - 1))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500 QCheck.int (fun n ->
      let w = Bytes_rw.Writer.create () in
      Bytes_rw.Writer.int w n;
      Bytes_rw.Reader.int (Bytes_rw.Reader.of_bytes (Bytes_rw.Writer.contents w)) = n)

let () =
  Alcotest.run "orion_storage"
    [
      ( "page",
        [
          Alcotest.test_case "basics" `Quick test_page_basics;
          Alcotest.test_case "delete/reuse" `Quick test_page_delete_reuse;
          Alcotest.test_case "update" `Quick test_page_update;
          Alcotest.test_case "full page" `Quick test_page_full;
          QCheck_alcotest.to_alcotest prop_page_roundtrip;
        ] );
      ( "disk",
        [
          Alcotest.test_case "rejects unallocated writes" `Quick
            test_disk_rejects_unallocated_write;
          Alcotest.test_case "fail-after fault" `Quick test_disk_fail_after_fault;
          Alcotest.test_case "torn write" `Quick test_disk_torn_write;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "eviction" `Quick test_buffer_pool_eviction;
          Alcotest.test_case "MRU never evicted" `Quick
            test_buffer_pool_mru_never_evicted;
          Alcotest.test_case "writeback" `Quick test_buffer_pool_writeback;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "clustering" `Quick test_store_clustering;
          Alcotest.test_case "long records" `Quick test_store_long_records;
          Alcotest.test_case "iteration" `Quick test_store_iter;
          Alcotest.test_case "file roundtrip" `Quick test_store_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_store_file_bad_magic;
        ] );
      ( "bytes_rw",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytes_rw_roundtrip;
          QCheck_alcotest.to_alcotest prop_varint_roundtrip;
        ] );
    ]
