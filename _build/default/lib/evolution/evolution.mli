(** Schema evolution over live objects (§4).

    One manager is attached to a database; it installs itself as the
    access hook so that deferred changes catch instances up lazily
    (§4.3).  Immediate and deferred modes apply to state-independent
    changes (I1–I4); state-dependent changes (D1–D3) always verify the
    X flags immediately and are rejected atomically on conflict. *)

open Orion_core

type t

val attach : Database.t -> t
(** Create the manager and install its catch-up access hook. *)

val database : t -> Database.t

type mode = Immediate | Deferred

type rejection =
  | Not_a_reference of { cls : string; attr : string }
      (** the attribute's domain is primitive: it cannot become composite *)
  | Target_already_composite of Oid.t  (** D1: would gain an exclusive
      reference while already having a composite reference *)
  | Target_referenced_twice of Oid.t
      (** D1: two prospective exclusive references to the same object *)
  | Target_has_exclusive of Oid.t  (** D2: Topology Rule 3 would break *)
  | Target_shared_elsewhere of Oid.t
      (** D3: more than one reverse composite reference, one from C' *)
  | Would_cycle of Oid.t
      (** D1/D2: converting the weak references to composite ones would
          create a composite cycle (design decision D4) *)

val pp_rejection : Format.formatter -> rejection -> unit

val change_attribute_type :
  t ->
  ?mode:mode ->
  cls:string ->
  attr:string ->
  to_:Orion_schema.Attribute.reference_kind ->
  unit ->
  (Change.primitive list, rejection) result
(** Change the reference kind of [cls.attr] (an own attribute of
    [cls]).  Returns the applied decomposition.  [?mode] (default
    [Immediate]) selects the implementation of the state-independent
    part; a state-dependent decomposition forces immediate
    verification per §4.3. *)

val drop_attribute : t -> cls:string -> attr:string -> unit
(** §4.1(1): objects referenced through the attribute are detached —
    dependent ones deleted per the Deletion Rule — then the attribute
    leaves the class (and, by inheritance, its subclasses). *)

val drop_superclass : t -> cls:string -> super:string -> unit
(** §4.1(3): composite attributes the class loses behave as dropped. *)

val drop_class : t -> string -> unit
(** §4.1(4): instances of the class are deleted (cascading per the
    Deletion Rule), subclasses are relinked to its superclasses, and
    attributes they lose behave as dropped. *)

val catch_up : t -> Instance.t -> unit
(** Apply pending deferred changes to one instance (the access hook). *)

val flush_all : t -> unit
(** Catch every instance up (used before integrity checks and by the
    benchmarks to cost the deferred strategy). *)

val pending_changes : t -> int
(** Total operation-log entries recorded (monitoring/benchmarks). *)
