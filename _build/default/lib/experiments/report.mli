(** Experiment reports: every figure/table reproduction yields one,
    asserted by the tests and printed by [bench/main.exe]. *)

type t = {
  id : string;  (** e.g. "F7" *)
  title : string;
  body : string;  (** the reproduced artifact (matrix, trace, …) *)
  checks : (string * bool) list;  (** named assertions *)
}

val ok : t -> bool

val make :
  id:string -> title:string -> ?body:string -> checks:(string * bool) list -> unit -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
