(* Tests for the composite-graph caching layer (PR1): the schema
   attribute memo, the database edge cache and its invalidation paths —
   attribute rewires, deletion cascades, schema evolution in both
   immediate and deferred modes, and version-default changes.  Every
   scenario warms the cache first, so a pass proves invalidation and
   not merely cold correctness. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Evolution = Orion_evolution.Evolution
module VM = Orion_versions.Version_manager

let oid = Alcotest.testable Oid.pp Oid.equal

let components db root = Traversal.components_of db root

let warm db root =
  (* Two passes: the second is served from the cache. *)
  ignore (components db root : Oid.t list);
  ignore (components db root : Oid.t list)

(* Holder/Item fixture; [dependent]/[exclusive] pick the reference
   nature of Holder.Parts. *)
let fixture ?(dependent = false) ?(exclusive = false) () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Item"
       ~attributes:[ A.make ~name:"N" ~domain:(D.Primitive D.P_integer) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Holder" ~superclasses:[ "Item" ]
       ~attributes:
         [
           A.make ~name:"Parts" ~domain:(D.Class "Item") ~collection:A.Set
             ~refkind:(A.composite ~exclusive ~dependent ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  db

let test_attr_rewrite_invalidates () =
  let db = fixture () in
  let root = Object_manager.create db ~cls:"Holder" () in
  let c1 = Object_manager.create db ~cls:"Item" ~parents:[ (root, "Parts") ] () in
  let c2 = Object_manager.create db ~cls:"Item" ~parents:[ (root, "Parts") ] () in
  let c3 = Object_manager.create db ~cls:"Item" () in
  warm db root;
  Alcotest.(check (list oid)) "before rewire" [ c1; c2 ] (components db root);
  (* Rewire: drop c1, keep c2, add c3 — one Attr_written event. *)
  Object_manager.write_attr db root "Parts"
    (Value.VSet [ Value.Ref c2; Value.Ref c3 ]);
  Alcotest.(check (list oid)) "after rewire" [ c2; c3 ] (components db root);
  let stats = Database.stats db in
  Alcotest.(check bool) "cache served hits" true (stats.hits > 0);
  Alcotest.(check bool) "rewire invalidated" true (stats.invalidations > 0)

let test_make_remove_component_invalidates () =
  let db = fixture () in
  let root = Object_manager.create db ~cls:"Holder" () in
  let mid = Object_manager.create db ~cls:"Holder" ~parents:[ (root, "Parts") ] () in
  let leaf = Object_manager.create db ~cls:"Item" () in
  warm db root;
  Object_manager.make_component db ~parent:mid ~attr:"Parts" ~child:leaf;
  Alcotest.(check (list oid)) "attach seen through cache" [ mid; leaf ]
    (components db root);
  warm db root;
  Object_manager.remove_component db ~parent:mid ~attr:"Parts" ~child:leaf;
  Alcotest.(check (list oid)) "detach seen through cache" [ mid ] (components db root)

let test_schema_drop_attribute_immediate () =
  let db = fixture () in
  let ev = Evolution.attach db in
  let root = Object_manager.create db ~cls:"Holder" () in
  let _c1 = Object_manager.create db ~cls:"Item" ~parents:[ (root, "Parts") ] () in
  warm db root;
  Alcotest.(check int) "one component" 1 (List.length (components db root));
  Evolution.drop_attribute ev ~cls:"Holder" ~attr:"Parts";
  Alcotest.(check (list oid)) "dropped attribute: no components" []
    (components db root)

let test_schema_composite_to_weak_deferred () =
  let db = fixture () in
  let ev = Evolution.attach db in
  let root = Object_manager.create db ~cls:"Holder" () in
  let c1 = Object_manager.create db ~cls:"Item" ~parents:[ (root, "Parts") ] () in
  warm db root;
  Alcotest.(check (list oid)) "component before" [ c1 ] (components db root);
  Alcotest.(check (list oid)) "parent before" [ root ] (Traversal.parents_of db c1);
  (match
     Evolution.change_attribute_type ev ~mode:Evolution.Deferred ~cls:"Holder"
       ~attr:"Parts" ~to_:A.Weak ()
   with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "deferred change rejected: %a" Evolution.pp_rejection r);
  (* The schema-generation guard must flush downward edges before any
     instance caught up. *)
  Alcotest.(check (list oid)) "no components after deferred I1" []
    (components db root);
  (* Upward: querying c1 runs the access hook, which catches the
     instance up and drops its reverse references. *)
  Alcotest.(check (list oid)) "no parents after catch-up" []
    (Traversal.parents_of db c1)

let test_delete_with_dependent_propagation () =
  let db = fixture ~dependent:true ~exclusive:true () in
  let root = Object_manager.create db ~cls:"Holder" () in
  let mid = Object_manager.create db ~cls:"Holder" ~parents:[ (root, "Parts") ] () in
  let leaf = Object_manager.create db ~cls:"Item" ~parents:[ (mid, "Parts") ] () in
  warm db root;
  Alcotest.(check (list oid)) "subtree cached" [ mid; leaf ] (components db root);
  (* Deleting mid cascades into leaf (dependent reference); both Deleted
     events must drop root's cached entry, which embeds them. *)
  Object_manager.delete db mid;
  Alcotest.(check bool) "leaf cascaded" false (Database.exists db leaf);
  Alcotest.(check (list oid)) "no stale components" [] (components db root)

let test_delete_shared_child_keeps_other_parent_fresh () =
  let db = fixture () in
  let p1 = Object_manager.create db ~cls:"Holder" () in
  let p2 = Object_manager.create db ~cls:"Holder" () in
  let c = Object_manager.create db ~cls:"Item" ~parents:[ (p1, "Parts") ] () in
  Object_manager.make_component db ~parent:p2 ~attr:"Parts" ~child:c;
  warm db p1;
  warm db p2;
  Object_manager.delete db p1;
  Alcotest.(check bool) "shared child survives" true (Database.exists db c);
  Alcotest.(check (list oid)) "other parent still fresh" [ c ] (components db p2)

let test_version_default_changes () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~versionable:true ~name:"Vdoc" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Vholder"
       ~attributes:
         [
           A.make ~name:"Doc" ~domain:(D.Class "Vdoc")
             ~refkind:(A.composite ~exclusive:false ~dependent:false ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  let v0 = Object_manager.create db ~cls:"Vdoc" () in
  let generic = VM.generic_of db v0 in
  (* Dynamic binding: the holder references the generic instance. *)
  let holder =
    Object_manager.create db ~cls:"Vholder" ~attrs:[ ("Doc", Value.Ref generic) ] ()
  in
  warm db holder;
  Alcotest.(check (list oid)) "resolves to v0" [ v0 ] (components db holder);
  (* A newly derived version becomes the system default (§5.1): the
     Created event must re-resolve the cached dynamic reference. *)
  let v1 = VM.derive db v0 in
  Alcotest.(check (list oid)) "resolves to derived v1" [ v1 ] (components db holder);
  warm db holder;
  (* set_default_version bypasses the event bus; it invalidates the
     edge cache explicitly. *)
  VM.set_default_version db generic (Some v0);
  Alcotest.(check (list oid)) "user default wins" [ v0 ] (components db holder)

let test_disabled_cache_agrees () =
  let run ~edge_cache =
    let db = Database.create ~edge_cache () in
    let schema = Database.schema db in
    ignore
      (Schema.define schema ~name:"N"
         ~attributes:[ A.make ~name:"T" ~domain:(D.Primitive D.P_integer) () ]
         ()
        : Orion_schema.Class_def.t);
    Schema.add_attribute schema ~cls:"N"
      (A.make ~name:"Subs" ~domain:(D.Class "N") ~collection:A.Set
         ~refkind:(A.composite ~exclusive:false ~dependent:false ())
         ());
    let root = Object_manager.create db ~cls:"N" () in
    let a = Object_manager.create db ~cls:"N" ~parents:[ (root, "Subs") ] () in
    let b = Object_manager.create db ~cls:"N" ~parents:[ (root, "Subs") ] () in
    let c = Object_manager.create db ~cls:"N" ~parents:[ (a, "Subs") ] () in
    Object_manager.make_component db ~parent:b ~attr:"Subs" ~child:c;
    warm db root;
    Object_manager.remove_component db ~parent:a ~attr:"Subs" ~child:c;
    (db, components db root)
  in
  let db_on, with_cache = run ~edge_cache:true in
  let db_off, without_cache = run ~edge_cache:false in
  Alcotest.(check (list oid)) "same traversal" without_cache with_cache;
  Alcotest.(check bool) "cache counted work" true ((Database.stats db_on).hits > 0);
  Alcotest.(check int) "disabled cache counts nothing" 0 (Database.stats db_off).hits

let test_schema_memo_tracks_lattice_edits () =
  let db = fixture () in
  let schema = Database.schema db in
  let composite_count cls = List.length (Schema.composite_attributes schema cls) in
  Alcotest.(check int) "holder has one composite" 1 (composite_count "Holder");
  Alcotest.(check int) "item has none" 0 (composite_count "Item");
  (* Adding a composite attribute to the superclass must show through
     the memo in the subclass. *)
  Schema.add_attribute schema ~cls:"Item"
    (A.make ~name:"Extra" ~domain:(D.Class "Item") ~collection:A.Set
       ~refkind:(A.composite ~exclusive:false ~dependent:false ())
       ());
  Alcotest.(check int) "inherited composite appears" 2 (composite_count "Holder");
  ignore (Schema.drop_attribute schema ~cls:"Item" ~attr:"Extra" : A.t);
  Alcotest.(check int) "dropped composite disappears" 1 (composite_count "Holder");
  Schema.drop_superclass schema ~cls:"Holder" ~super:"Item";
  Alcotest.(check (list string)) "superclass closure fresh" []
    (Schema.all_superclasses schema "Holder")

let () =
  Alcotest.run "orion_cache"
    [
      ( "edge cache",
        [
          Alcotest.test_case "attr rewire" `Quick test_attr_rewrite_invalidates;
          Alcotest.test_case "make/remove component" `Quick
            test_make_remove_component_invalidates;
          Alcotest.test_case "dependent deletion cascade" `Quick
            test_delete_with_dependent_propagation;
          Alcotest.test_case "shared child deletion" `Quick
            test_delete_shared_child_keeps_other_parent_fresh;
          Alcotest.test_case "version default" `Quick test_version_default_changes;
          Alcotest.test_case "disabled cache agrees" `Quick test_disabled_cache_agrees;
        ] );
      ( "schema evolution",
        [
          Alcotest.test_case "drop attribute (immediate)" `Quick
            test_schema_drop_attribute_immediate;
          Alcotest.test_case "composite->weak (deferred)" `Quick
            test_schema_composite_to_weak_deferred;
          Alcotest.test_case "schema memo tracks lattice edits" `Quick
            test_schema_memo_tracks_lattice_edits;
        ] );
    ]
