module Message = Orion_protocol.Message
module Frame = Orion_protocol.Frame
module Addr = Orion_protocol.Addr

type t = {
  fd : Unix.file_descr;
  splitter : Frame.Splitter.t;
  notices : Message.push Queue.t;
  chunk : Bytes.t;
  mutable session : int;
  mutable alive : bool;
}

exception Error of Message.err_code * string
exception Disconnected of string

let fail t msg =
  t.alive <- false;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  raise (Disconnected msg)

let write_all t buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    match Unix.write t.fd buf !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Block until one server frame is available. *)
let rec read_msg t =
  match Frame.Splitter.next t.splitter with
  | Some payload -> (
      try Message.decode_server payload
      with Orion_storage.Bytes_rw.Reader.Corrupt msg ->
        fail t ("undecodable server frame: " ^ msg))
  | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_msg t
      | exception Unix.Unix_error (e, _, _) ->
          fail t ("read: " ^ Unix.error_message e)
      | 0 -> fail t "server closed the connection"
      | n -> (
          (try Frame.Splitter.feed t.splitter t.chunk ~len:n
           with Frame.Corrupt msg -> fail t ("corrupt frame: " ^ msg));
          read_msg t))
  | exception Frame.Corrupt msg -> fail t ("corrupt frame: " ^ msg)

(* The reply to the request just sent, filing away any pushes that
   arrive first. *)
let rec read_reply t =
  match read_msg t with
  | Message.Push p -> Queue.push p t.notices; read_reply t
  | Message.Reply (Message.Error { code; msg }) -> raise (Error (code, msg))
  | Message.Reply r -> r

let request t req =
  if not t.alive then raise (Disconnected "connection already closed");
  match write_all t (Frame.encode (Message.encode_request req)) with
  | () -> read_reply t
  | exception Unix.Unix_error (e, _, _) -> (
      (* The peer may have replied and closed before reading our
         request — an admission refusal does exactly that.  Its parting
         reply is still buffered on the socket; surface it (as the
         error it almost certainly is) rather than the broken pipe. *)
      match read_reply t with
      | reply -> reply
      | exception Disconnected _ -> fail t ("write: " ^ Unix.error_message e))

let unexpected what = raise (Disconnected ("unexpected reply to " ^ what))

let connect ?(client_name = "orion-client") addr =
  (* A write racing the server's close must surface as EPIPE, not kill
     the process. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Addr.to_sockaddr addr) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  let t =
    {
      fd;
      splitter = Frame.Splitter.create ();
      notices = Queue.create ();
      chunk = Bytes.create 65536;
      session = -1;
      alive = true;
    }
  in
  (match
     request t (Message.Hello { version = Message.version; client = client_name })
   with
  | Message.Welcome { session; _ } -> t.session <- session
  | _ -> unexpected "hello"
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  t

let session_id t = t.session

let close t =
  if t.alive then begin
    (try
       match request t Message.Bye with
       | Message.Result Message.Unit | _ -> ()
     with Disconnected _ | Error _ -> ());
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let eval t src =
  match request t (Message.Eval src) with
  | Message.Result v -> v
  | _ -> unexpected "eval"

let begin_tx t =
  match request t Message.Begin with
  | Message.Result (Message.Num id) -> id
  | _ -> unexpected "begin"

let commit t =
  match request t Message.Commit with
  | Message.Result Message.Unit -> ()
  | _ -> unexpected "commit"

let abort t =
  match request t Message.Abort with
  | Message.Result Message.Unit -> ()
  | _ -> unexpected "abort"

let lock_composite t ~root access =
  match request t (Message.Lock_composite { root; access }) with
  | Message.Granted -> ()
  | _ -> unexpected "lock-composite"

let lock_instance t oid access =
  match request t (Message.Lock_instance { oid; access }) with
  | Message.Granted -> ()
  | _ -> unexpected "lock-instance"

let make t ~cls ?(parents = []) ?(attrs = []) () =
  match request t (Message.Make { cls; parents; attrs }) with
  | Message.Result (Message.Obj oid) -> oid
  | _ -> unexpected "make"

let components_of t root =
  match request t (Message.Components_of root) with
  | Message.Result (Message.Objs oids) -> oids
  | _ -> unexpected "components-of"

let ancestors_of t root =
  match request t (Message.Ancestors_of root) with
  | Message.Result (Message.Objs oids) -> oids
  | _ -> unexpected "ancestors-of"

let read_attr t oid attr =
  match request t (Message.Read_attr { oid; attr }) with
  | Message.Result (Message.Value v) -> v
  | _ -> unexpected "read-attr"

let begin_snapshot t =
  match request t Message.Begin_snapshot with
  | Message.Result (Message.Num clock) -> clock
  | _ -> unexpected "begin-snapshot"

let end_snapshot t =
  match request t Message.End_snapshot with
  | Message.Result Message.Unit -> ()
  | _ -> unexpected "end-snapshot"

let ping t =
  match request t Message.Ping with
  | Message.Pong -> ()
  | _ -> unexpected "ping"

let stats t =
  match request t Message.Stats with
  | Message.Stats_reply snapshot -> snapshot
  | _ -> unexpected "stats"

let notices t =
  let out = List.of_seq (Queue.to_seq t.notices) in
  Queue.clear t.notices;
  out

(* {1 Replication} *)

let repl_subscribe t ~from_lsn =
  match request t (Message.Repl_subscribe { from_lsn }) with
  | Message.Repl_ok { lsn } -> lsn
  | _ -> unexpected "repl-subscribe"

let next_push t =
  if not t.alive then raise (Disconnected "connection already closed");
  match Queue.take_opt t.notices with
  | Some p -> p
  | None -> (
      match read_msg t with
      | Message.Push p -> p
      | Message.Reply _ -> fail t "reply arrived with no request in flight")

let send t req =
  if not t.alive then raise (Disconnected "connection already closed");
  match write_all t (Frame.encode (Message.encode_request req)) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      fail t ("write: " ^ Unix.error_message e)

let repl_ack t ~lsn = send t (Message.Repl_ack { lsn })

let shutdown t =
  (* Wake a thread blocked in {!next_push}: the read sees EOF and
     raises [Disconnected] (safer than closing the fd under it). *)
  try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let promote t =
  match request t Message.Promote with
  | Message.Result Message.Unit -> ()
  | _ -> unexpected "promote"
