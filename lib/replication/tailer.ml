module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex
module Wal = Orion_wal.Wal

(* One shipped-but-unacknowledged batch: enough to turn the replica's
   ack into an RTT observation and a record-level lag figure without
   re-decoding any frames. *)
type inflight = { end_lsn : int; frames : int; sent_at : float }

type sub = {
  id : int;
  mutable sent : int;  (** LSN shipped so far *)
  mutable acked : int;  (** LSN the replica reported durable *)
  mutable last_send : float;  (** heartbeat pacing *)
  mutable active : bool;
  inflight : inflight Queue.t;
}

type t = {
  wal : Wal.t;
  mu : Omutex.t;
  subs : (int, sub) Hashtbl.t;
  shipped_frames : Obs.counter;
  shipped_bytes : Obs.counter;
  heartbeats : Obs.counter;
  acks : Obs.counter;
  ack_hist : Obs.histogram;
}

let heartbeat_interval = 1.0
let default_max_bytes = 1 lsl 20

let with_mu t f = Omutex.with_lock t.mu f

let lag_bytes_of t s = max 0 (Wal.durable_lsn t.wal - s.acked)

let lag_records_of s =
  Queue.fold (fun n i -> n + i.frames) 0 s.inflight

let create wal =
  let t =
    {
      wal;
      mu = Omutex.create Omutex.repl_tailer;
      subs = Hashtbl.create 4;
      shipped_frames = Obs.counter "repl.shipped_frames";
      shipped_bytes = Obs.counter "repl.shipped_bytes";
      heartbeats = Obs.counter "repl.heartbeats";
      acks = Obs.counter "repl.acks";
      ack_hist = Obs.histogram "repl.ack_seconds";
    }
  in
  (* Aggregate lag: the worst replica is the one failover cares about. *)
  Obs.gauge "repl.replicas" (fun () ->
      with_mu t (fun () -> Hashtbl.length t.subs));
  Obs.gauge "repl.lag_bytes" (fun () ->
      with_mu t (fun () ->
          Hashtbl.fold (fun _ s m -> max m (lag_bytes_of t s)) t.subs 0));
  Obs.gauge "repl.lag_records" (fun () ->
      with_mu t (fun () ->
          Hashtbl.fold (fun _ s m -> max m (lag_records_of s)) t.subs 0));
  t

let subscribe t ~from_lsn =
  let durable = Wal.durable_lsn t.wal in
  if from_lsn < 0 || from_lsn > durable then
    Error
      (Printf.sprintf "subscribe LSN %d out of range (durable %d)" from_lsn
         durable)
  else begin
    let id, s =
      with_mu t (fun () ->
          (* Smallest free id, so a reconnecting replica reclaims the
             slot it held before: its labeled lag gauges below
             re-register over the dead subscription's (the metrics
             registry replaces on name collision), resetting them to
             the live figures instead of leaving stuck-at-0 cells
             behind and minting new labels on every reconnect. *)
          let rec fresh id =
            if Hashtbl.mem t.subs id then fresh (id + 1) else id
          in
          let id = fresh 0 in
          let s =
            {
              id;
              sent = from_lsn;
              acked = from_lsn;
              last_send = Unix.gettimeofday ();
              active = true;
              inflight = Queue.create ();
            }
          in
          Hashtbl.replace t.subs id s;
          (id, s))
    in
    (* Per-replica lag cells, label convention as per-class lock cells.
       A gauge can't be unregistered, so it reads 0 once the
       subscription is gone.  Registration happens AFTER the tailer
       mutex is released: Obs.snapshot holds the registry mutex while
       calling the aggregate gauges above, which take the tailer mutex
       — registering under it here is the reverse order, a latent
       deadlock lockdep flags as registry/tailer inversion. *)
    let labeled name = Obs.labeled name ("replica", string_of_int id) in
    Obs.gauge (labeled "repl.lag_bytes") (fun () ->
        if s.active then lag_bytes_of t s else 0);
    Obs.gauge (labeled "repl.lag_records") (fun () ->
        if s.active then lag_records_of s else 0);
    Ok (id, durable)
  end

let unsubscribe t id =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.subs id with
      | None -> ()
      | Some s ->
          s.active <- false;
          Hashtbl.remove t.subs id)

let ack t id ~lsn =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.subs id with
      | None -> ()
      | Some s ->
          Obs.incr t.acks;
          if lsn > s.acked then s.acked <- lsn;
          let now = Unix.gettimeofday () in
          let rec pop () =
            match Queue.peek_opt s.inflight with
            | Some i when i.end_lsn <= lsn ->
                ignore (Queue.pop s.inflight : inflight);
                Obs.observe t.ack_hist (now -. i.sent_at);
                pop ()
            | _ -> ()
          in
          pop ())

type pumped =
  | Frames of { lsn : int; data : bytes }
  | Heartbeat of int
  | Idle

let pump ?(max_bytes = default_max_bytes) t id =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.subs id with
      | None -> Idle
      | Some s -> (
          match Wal.read_from t.wal ~lsn:s.sent ~max_bytes with
          | Some (data, end_lsn, frames) ->
              let lsn = s.sent in
              s.sent <- end_lsn;
              let now = Unix.gettimeofday () in
              s.last_send <- now;
              Queue.push { end_lsn; frames; sent_at = now } s.inflight;
              Obs.incr t.shipped_frames ~by:frames;
              Obs.incr t.shipped_bytes ~by:(Bytes.length data);
              Frames { lsn; data }
          | None ->
              let now = Unix.gettimeofday () in
              if now -. s.last_send >= heartbeat_interval then begin
                s.last_send <- now;
                Obs.incr t.heartbeats;
                Heartbeat s.sent
              end
              else Idle))

let replica_count t = with_mu t (fun () -> Hashtbl.length t.subs)
