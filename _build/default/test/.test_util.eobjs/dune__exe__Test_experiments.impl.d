test/test_experiments.ml: Alcotest Orion_experiments
