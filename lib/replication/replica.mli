(** The replica side of WAL shipping: mirror the primary's log
    byte-for-byte, apply it incrementally, serve reads, and promote on
    demand.

    Shipped batches feed three layers at once:

    - the {e local log} — appended verbatim ({!Orion_wal.Wal.append_raw}),
      synced, then acknowledged, so the replica's [.wal] file is
      fsck-checkable and byte-identical to the primary's shipped prefix;
    - the {e mirror store} — physical records ([Page_write],
      directory ops) replayed exactly as
      {!Orion_wal.Recovery.rebuild_from} would, reproducing the
      primary's store image; saved to [db_path] at every sealed
      checkpoint (byte-identical to the primary's snapshot);
    - the {e serving database} — built by [Persist.load] from the
      mirror at the first sealed checkpoint, then kept fresh by commit
      records between checkpoints and a full catalog resync
      (instances, schema, counters) at each one.  Its instances never
      own record slots ([rid = None]): record lifecycle belongs to the
      physical stream alone.

    The stream survives primary restarts (reconnect with backoff,
    resubscribing from the local log's size) and replica restarts
    (local replay, then subscribe for the rest).  {!seal} — under the
    server's service lock — flips the applier off for promotion. *)

type t

exception Fatal of string
(** Unrecoverable stream damage: a gap, a refused subscription, a
    checkpoint without a catalog.  During {!bootstrap} it propagates;
    in the {!start}ed applier it is recorded in {!failed} and the
    stream stops (reads keep being served from the last good state). *)

val create :
  primary:Orion_protocol.Addr.t ->
  ?client_name:string ->
  wal:Orion_wal.Wal.t ->
  db_path:string ->
  unit ->
  t
(** [wal] is the local mirror log (backing file already set); a
    non-empty one resumes a previous replica session. *)

val bootstrap : ?dial_attempts:int -> t -> Orion_core.Database.t
(** Replay the local log, connect (retrying up to [dial_attempts]
    times with backoff — the primary may still be starting), subscribe
    from the local size, and ingest until the serving database exists
    (first sealed checkpoint).  Runs on the caller's thread.
    @raise Fatal when the primary refuses the subscription or stays
    unreachable *)

val set_locked : t -> ((unit -> unit) -> unit) -> unit
(** Install the critical-section runner the applier wraps each batch
    in — the server's service lock, once it exists.  Default: run
    unlocked (single-threaded bootstrap). *)

val set_mvcc : t -> Orion_mvcc.Version_store.t -> unit
(** Install the version store replica-side snapshot reads resolve
    against.  From then on each sealed commit notes the touched
    objects' pre-images before applying and publishes its after-images
    at the commit's clock — so a snapshot opened on the replica reads
    a commit-clock-consistent view at the applied clock, exactly as on
    the primary.  Install under the service lock (same discipline as
    {!set_locked}). *)

val start : t -> unit
(** Spawn the applier thread: keep ingesting (and acknowledging) until
    {!seal}, reconnecting with backoff across primary outages. *)

val seal : t -> unit
(** Stop applying: any batch in flight is discarded, not applied.
    Call under the service lock — this is promotion's first step, and
    the lock is what orders it against the applier's in-flight
    batch. *)

val stop : t -> unit
(** {!seal}, wake the applier off its socket, and join it. *)

val save : t -> unit
(** Graceful-shutdown persistence: save the mirror store image to
    [db_path] and sync the local log.  Deliberately not the primary
    shutdown path — checkpointing the serving database's workspace
    into the mirror would diverge it from the primary's bytes. *)

val db : t -> Orion_core.Database.t
(** The serving database.
    @raise Fatal before {!bootstrap} completes *)

val wal : t -> Orion_wal.Wal.t
val db_path : t -> string
val applied_lsn : t -> int
val sealed : t -> bool
val failed : t -> string option
val checkpoints : t -> int
