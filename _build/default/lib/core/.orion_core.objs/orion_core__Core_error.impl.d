lib/core/core_error.ml: Format Oid
