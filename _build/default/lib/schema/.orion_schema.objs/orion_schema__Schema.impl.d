lib/schema/schema.ml: Attribute Class_def Domain Format Hashtbl List Option String
