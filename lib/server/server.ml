module Eval = Orion_dsl.Eval
module Tx = Orion_tx.Tx_manager
module Frame = Orion_protocol.Frame
module Message = Orion_protocol.Message
module Sexp = Orion_util.Sexp
module Obs = Orion_obs.Metrics
open Orion_core

type addr = Orion_protocol.Addr.t = Tcp of string * int | Unix_path of string

let pp_addr = Orion_protocol.Addr.pp
let parse_addr = Orion_protocol.Addr.parse

type config = {
  max_sessions : int;
  queue_limit : int;
  idle_timeout : float option;
  lock_timeout : float option;
  metrics_interval : float option;
}

let default_config =
  {
    max_sessions = 64;
    queue_limit = 16;
    idle_timeout = None;
    lock_timeout = Some 30.;
    metrics_interval = None;
  }

type stats = {
  accepted : int;
  rejected : int;
  requests : int;
  parks_total : int;
  parked : int;
  deadlock_victims : int;
  lock_timeouts : int;
  idle_closes : int;
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  splitter : Frame.Splitter.t;
  queue : Message.request Queue.t;  (* decoded, not yet processed *)
  out : Bytes.t Queue.t;  (* framed replies awaiting the socket *)
  mutable out_off : int;  (* consumed prefix of [Queue.peek out] *)
  mutable greeted : bool;
  mutable tx : Tx.tx option;
  mutable parked_req : Message.request option;
  mutable parked_since : float;
  mutable deadlock_note : string option;
      (* the transaction was aborted as a deadlock victim while the
         session was not parked; the next transactional request is
         answered [Conflict] instead of [Bad_request] *)
  mutable last_activity : float;
  mutable closing : bool;  (* flush [out], then close *)
}

type phase = Running | Draining of float (* deadline *) | Killed

type t = {
  config : config;
  env : Eval.env;
  db : Database.t;
  manager : Tx.t;
  listen_fd : Unix.file_descr;
  bound : addr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  sessions : (int, session) Hashtbl.t;
  tx_owner : (int, int) Hashtbl.t;  (* tx id -> session id *)
  mutable next_sid : int;
  mutable phase : phase;
  accepted : Obs.counter;
  rejected : Obs.counter;
  requests : Obs.counter;
  parks : Obs.counter;
  deadlock_victims : Obs.counter;
  lock_timeouts : Obs.counter;
  idle_closes : Obs.counter;
  lock_wait_hist : Obs.histogram;
  class_wait_hists : (string, Obs.histogram) Hashtbl.t;
  dispatch_hist : Obs.histogram;
  wal_attached : bool;
  mutable schema_seen : int;
      (* Schema.version at the last checkpoint: schema DDL is
         non-transactional, so with a log attached it is only durable
         once a checkpoint absorbs it — the reactor takes one as soon
         as the catalog changes and no transaction is open. *)
  mutable check_deadlocks : bool;
      (* a wait-for edge appeared since the last cycle search; cycles
         can only form when a request blocks, so the reactor skips the
         search on every other tick *)
}

(* The true gauge: how many sessions are parked right now (the
   lifetime [parks] counter only ever grows). *)
let parked_sessions t =
  Hashtbl.fold
    (fun _ s n -> if s.parked_req <> None then n + 1 else n)
    t.sessions 0

let stats t =
  {
    accepted = Obs.counter_value t.accepted;
    rejected = Obs.counter_value t.rejected;
    requests = Obs.counter_value t.requests;
    parks_total = Obs.counter_value t.parks;
    parked = parked_sessions t;
    deadlock_victims = Obs.counter_value t.deadlock_victims;
    lock_timeouts = Obs.counter_value t.lock_timeouts;
    idle_closes = Obs.counter_value t.idle_closes;
  }

let session_count t = Hashtbl.length t.sessions

let listen_on addr =
  match addr with
  | Tcp _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Orion_protocol.Addr.to_sockaddr addr);
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
        | Unix.ADDR_UNIX p -> Unix_path p
      in
      (fd, bound)
  | Unix_path path ->
      (* A leftover socket file from a dead server would make bind fail;
         connecting distinguishes live from stale. *)
      if Sys.file_exists path then begin
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let alive =
          try
            Unix.connect probe (Unix.ADDR_UNIX path);
            true
          with Unix.Unix_error _ -> false
        in
        Unix.close probe;
        if alive then
          raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
        else Sys.remove path
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_path path)

let create ?(config = default_config) ?wal env addr =
  let listen_fd, bound = listen_on addr in
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_r;
  let db = Eval.database env in
  let t =
    {
      config;
      env;
      db;
      manager = Tx.create ?wal db;
      listen_fd;
      bound;
      stop_r;
      stop_w;
      sessions = Hashtbl.create 32;
      tx_owner = Hashtbl.create 32;
      next_sid = 0;
      phase = Running;
      accepted = Obs.counter "server.accepted";
      rejected = Obs.counter "server.rejected";
      requests = Obs.counter "server.requests";
      parks = Obs.counter "server.parks_total";
      deadlock_victims = Obs.counter "server.deadlock_victims";
      lock_timeouts = Obs.counter "server.lock_timeouts";
      idle_closes = Obs.counter "server.idle_closes";
      lock_wait_hist = Obs.histogram "lock.wait_seconds";
      class_wait_hists = Hashtbl.create 16;
      dispatch_hist = Obs.histogram "server.dispatch_seconds";
      wal_attached = Option.is_some wal;
      schema_seen = Orion_schema.Schema.version (Database.schema db);
      check_deadlocks = false;
    }
  in
  Obs.gauge "server.sessions" (fun () -> Hashtbl.length t.sessions);
  Obs.gauge "server.parked" (fun () -> parked_sessions t);
  (* No log attached: register zeroed WAL counters so the wire snapshot
     always covers the WAL subsystem (matching Database.stats, which
     reports zeros without a source). *)
  if Option.is_none wal then begin
    List.iter
      (fun name -> ignore (Obs.counter name : Obs.counter))
      [ "wal.appends"; "wal.bytes"; "wal.syncs"; "wal.truncations" ];
    List.iter
      (fun name -> ignore (Obs.histogram name : Obs.histogram))
      [ "wal.append_seconds"; "wal.sync_seconds" ]
  end;
  t

(* Schema DDL (make-class, evolution commands) is non-transactional:
   no commit record ever covers it, so with a log attached it is only
   crash-durable once a checkpoint absorbs it.  Checkpoints must be
   transaction-quiescent — an open transaction's uncommitted writes
   would otherwise be snapshotted as if committed — so a catalog
   change made while transactions are open waits here until the last
   one finishes. *)
let maybe_checkpoint t =
  let v = Orion_schema.Schema.version (Database.schema t.db) in
  if v <> t.schema_seen && Hashtbl.length t.tx_owner = 0 then begin
    if t.wal_attached then Orion_core.Persist.save t.db;
    t.schema_seen <- v
  end

let address t = t.bound

let signal t byte =
  try ignore (Unix.write t.stop_w (Bytes.make 1 byte) 0 1 : int)
  with Unix.Unix_error _ -> ()

let stop t = signal t 'G'
let kill t = signal t 'K'

(* Outbound ------------------------------------------------------------------- *)

let send session msg =
  Queue.push (Frame.encode (Message.encode_server msg)) session.out

let reply session r = send session (Message.Reply r)
let push session p = send session (Message.Push p)

let error session code msg = reply session (Message.Error { code; msg })

let flush_out session =
  (* Write as much of the pending frames as the socket accepts. *)
  let progress = ref true in
  while !progress && not (Queue.is_empty session.out) do
    let head = Queue.peek session.out in
    let remaining = Bytes.length head - session.out_off in
    match Unix.write session.fd head session.out_off remaining with
    | written ->
        if written = remaining then begin
          ignore (Queue.pop session.out : Bytes.t);
          session.out_off <- 0
        end
        else begin
          session.out_off <- session.out_off + written;
          progress := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        progress := false
    | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET and kin (SIGPIPE is ignored, so a write to
           a vanished peer surfaces here): the pending output is
           undeliverable.  Drop it and mark the session closing; the
           reactor then destroys it — aborting its transaction — the
           same way {!feed} handles read-side death. *)
        Queue.clear session.out;
        session.out_off <- 0;
        session.closing <- true
  done

(* Session lifecycle ----------------------------------------------------------- *)

(* A park just ended (grant, conflict, deadlock abort or timeout):
   record how long the session waited for its lock — in the total
   histogram, and in a per-class one ([lock.wait_seconds{class=C}])
   when the parked request's target still resolves to a class (the
   holder may have deleted it, in which case only the total sees the
   wait). *)
let parked_class t session =
  match session.parked_req with
  | Some (Message.Lock_composite { root = oid; _ })
  | Some (Message.Lock_instance { oid; _ }) ->
      Option.map (fun i -> i.Instance.cls) (Database.find t.db oid)
  | _ -> None

let observe_wait t session =
  let elapsed = Unix.gettimeofday () -. session.parked_since in
  Obs.observe t.lock_wait_hist elapsed;
  match parked_class t session with
  | None -> ()
  | Some cls ->
      let h =
        match Hashtbl.find_opt t.class_wait_hists cls with
        | Some h -> h
        | None ->
            let h =
              Obs.histogram (Obs.labeled "lock.wait_seconds" ("class", cls))
            in
            Hashtbl.replace t.class_wait_hists cls h;
            h
      in
      Obs.observe h elapsed

let rec destroy t session =
  Hashtbl.remove t.sessions session.sid;
  (match session.tx with
  | Some tx ->
      session.tx <- None;
      Hashtbl.remove t.tx_owner (Tx.tx_id tx);
      resume t (Tx.abort t.manager tx)
  | None -> ());
  (try Unix.close session.fd with Unix.Unix_error _ -> ())

(* Wake every parked session whose transaction the lock table just
   unblocked: re-poll the parked lock request; a full grant answers
   [Granted] and lets the session's queued requests proceed. *)
and resume t tx_ids =
  List.iter
    (fun tx_id ->
      match Hashtbl.find_opt t.tx_owner tx_id with
      | None -> ()
      | Some sid -> (
          match Hashtbl.find_opt t.sessions sid with
          | None -> ()
          | Some session -> (
              match session.parked_req with
              | None -> ()
              | Some req -> (
                  match retry_lock t session req with
                  | `Granted ->
                      observe_wait t session;
                      session.parked_req <- None;
                      reply session Message.Granted;
                      pump t session
                  | `Blocked ->
                      (* Still waiting, now on a later lock of the set:
                         a fresh wait-for edge. *)
                      t.check_deadlocks <- true
                  | exception Core_error.Error e ->
                      (* The lock target vanished while the session was
                         parked (the holder deleted it and committed),
                         so the lock set can no longer be re-derived.
                         The transaction is still [Blocked] and could
                         never commit: abort it and answer the parked
                         request with the conflict. *)
                      observe_wait t session;
                      session.parked_req <- None;
                      let note =
                        Format.asprintf "%a; transaction aborted" Core_error.pp e
                      in
                      (match session.tx with
                      | Some tx ->
                          session.tx <- None;
                          Hashtbl.remove t.tx_owner (Tx.tx_id tx);
                          let unblocked = Tx.abort t.manager tx in
                          error session Message.Conflict note;
                          resume t unblocked
                      | None -> error session Message.Conflict note);
                      pump t session))))
    tx_ids

and retry_lock t session req =
  match (session.tx, req) with
  | Some tx, Message.Lock_composite { root; access } ->
      Tx.lock_composite t.manager tx ~root (protocol_access access)
  | Some tx, Message.Lock_instance { oid; access } ->
      Tx.lock_instance t.manager tx oid (protocol_access access)
  | _ -> `Granted

and protocol_access = function
  | Message.Read -> Orion_locking.Protocol.Read_
  | Message.Update -> Orion_locking.Protocol.Update

(* Decode buffered frames into the request queue, up to the bound.
   Frames beyond it stay in the splitter; {!pump} refills as the queue
   drains, so a pipelined burst never stalls even if the client goes
   quiet (the reactor only gets read events for {e new} bytes). *)
and refill t session =
  match
    while Queue.length session.queue < t.config.queue_limit do
      match Frame.Splitter.next session.splitter with
      | Some payload -> Queue.push (Message.decode_request payload) session.queue
      | None -> raise Exit
    done
  with
  | () -> ()
  | exception Exit -> ()
  | exception Frame.Corrupt msg
  | exception Orion_storage.Bytes_rw.Reader.Corrupt msg ->
      error session Message.Bad_request ("protocol error: " ^ msg);
      session.closing <- true

(* Process a session's decoded requests until it parks, closes, or
   runs dry. *)
and pump t session =
  if (not session.closing) && session.parked_req = None then begin
    if Queue.is_empty session.queue then refill t session;
    if (not session.closing) && not (Queue.is_empty session.queue) then begin
      let req = Queue.pop session.queue in
      Obs.incr t.requests;
      Obs.Span.time ~histogram:t.dispatch_hist "server.dispatch" (fun () ->
          handle t session req);
      pump t session
    end
  end

and handle t session req =
  let v_of_eval : Eval.v -> Message.v = function
    | Eval.Obj oid -> Message.Obj oid
    | Eval.Objs oids -> Message.Objs oids
    | Eval.Bool b -> Message.Bool b
    | Eval.Num n -> Message.Num n
    | Eval.Str s -> Message.Str s
    | Eval.Unit -> Message.Unit
  in
  (* A session whose transaction was sacrificed to a deadlock while it
     was between requests learns about it on its next transactional
     request. *)
  let conflict_or code msg =
    match session.deadlock_note with
    | Some note ->
        session.deadlock_note <- None;
        error session Message.Conflict note
    | None -> error session code msg
  in
  match req with
  | Message.Hello { version; client = _ } ->
      if version <> Message.version then begin
        error session Message.Unsupported_version
          (Printf.sprintf "server speaks version %d, client sent %d"
             Message.version version);
        session.closing <- true
      end
      else begin
        session.greeted <- true;
        reply session (Message.Welcome { version = Message.version; session = session.sid })
      end
  | _ when not session.greeted ->
      error session Message.Bad_request "first request must be hello";
      session.closing <- true
  | Message.Eval src -> (
      match Sexp.parse_many src with
      | exception Sexp.Parse_error msg -> error session Message.Parse_error msg
      | forms -> (
          (* Inside a transaction, evaluated object mutations must be
             transactional like the typed requests — undo on abort,
             after-images at commit — so route them through the
             manager for the duration of the eval.  Single-threaded
             reactor: no other session can observe the swap. *)
          (match session.tx with
          | None -> ()
          | Some tx ->
              Eval.set_mutator t.env
                (Some
                   {
                     Eval.m_create =
                       (fun ~cls ~parents ~attrs ->
                         Tx.create_object t.manager tx ~cls ~parents ~attrs ());
                     m_write_attr =
                       (fun oid attr v -> Tx.write_attr t.manager tx oid attr v);
                     m_make_component =
                       (fun ~parent ~attr ~child ->
                         Tx.make_component t.manager tx ~parent ~attr ~child);
                     m_remove_component =
                       (fun ~parent ~attr ~child ->
                         Tx.remove_component t.manager tx ~parent ~attr ~child);
                     m_delete = (fun oid -> Tx.delete_object t.manager tx oid);
                   }));
          match
            Fun.protect
              ~finally:(fun () -> Eval.set_mutator t.env None)
              (fun () ->
                List.fold_left
                  (fun _ form -> Eval.eval t.env form)
                  Eval.Unit forms)
          with
          | result -> reply session (Message.Result (v_of_eval result))
          | exception Eval.Eval_error msg -> error session Message.Eval_error msg
          | exception Core_error.Error e ->
              error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e)
          | exception Orion_schema.Schema.Error e ->
              error session Message.Eval_error
                (Format.asprintf "%a" Orion_schema.Schema.pp_error e)))
  | Message.Begin -> (
      match session.tx with
      | Some tx ->
          error session Message.Bad_request
            (Printf.sprintf "transaction %d already open" (Tx.tx_id tx))
      | None ->
          let tx = Tx.begin_tx t.manager in
          session.tx <- Some tx;
          session.deadlock_note <- None;
          Hashtbl.replace t.tx_owner (Tx.tx_id tx) session.sid;
          reply session (Message.Result (Message.Num (Tx.tx_id tx))))
  | Message.Commit -> (
      match session.tx with
      | None -> conflict_or Message.Bad_request "no open transaction"
      | Some tx ->
          session.tx <- None;
          Hashtbl.remove t.tx_owner (Tx.tx_id tx);
          let unblocked = Tx.commit t.manager tx in
          reply session (Message.Result Message.Unit);
          resume t unblocked)
  | Message.Abort -> (
      match session.tx with
      | None -> (
          match session.deadlock_note with
          | Some _ ->
              (* The deadlock detector already aborted it; the client's
                 abort is its acknowledgement. *)
              session.deadlock_note <- None;
              reply session (Message.Result Message.Unit)
          | None -> error session Message.Bad_request "no open transaction")
      | Some tx ->
          session.tx <- None;
          Hashtbl.remove t.tx_owner (Tx.tx_id tx);
          let unblocked = Tx.abort t.manager tx in
          reply session (Message.Result Message.Unit);
          resume t unblocked)
  | Message.Lock_composite _ | Message.Lock_instance _ -> (
      match session.tx with
      | None -> conflict_or Message.Bad_request "lock requires an open transaction"
      | Some _ -> (
          match retry_lock t session req with
          | `Granted -> reply session Message.Granted
          | `Blocked ->
              Obs.incr t.parks;
              t.check_deadlocks <- true;
              session.parked_req <- Some req;
              session.parked_since <- Unix.gettimeofday ()
          | exception Core_error.Error e ->
              error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e)))
  | Message.Make { cls; parents; attrs } -> (
      match
        match session.tx with
        | Some tx -> Tx.create_object t.manager tx ~cls ~parents ~attrs ()
        | None -> Object_manager.create t.db ~cls ~parents ~attrs ()
      with
      | oid -> reply session (Message.Result (Message.Obj oid))
      | exception Core_error.Error e ->
          error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e))
  | Message.Components_of root -> (
      match Traversal.components_of t.db root with
      | oids -> reply session (Message.Result (Message.Objs oids))
      | exception Core_error.Error e ->
          error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e))
  | Message.Ping -> reply session Message.Pong
  | Message.Stats -> reply session (Message.Stats_reply (Obs.snapshot ()))
  | Message.Bye ->
      (match session.tx with
      | Some tx ->
          session.tx <- None;
          Hashtbl.remove t.tx_owner (Tx.tx_id tx);
          resume t (Tx.abort t.manager tx)
      | None -> ());
      reply session (Message.Result Message.Unit);
      session.closing <- true

(* Deadlock resolution --------------------------------------------------------- *)

let break_deadlocks t =
  let rec go () =
    match Tx.find_deadlock t.manager with
    | None -> ()
    | Some cycle ->
        (* Abort the youngest transaction in the cycle (the same victim
           policy as the in-process Scheduler). *)
        let victim = List.fold_left max min_int cycle in
        Obs.incr t.deadlock_victims;
        let msg =
          Format.asprintf "transaction %d aborted to break deadlock cycle [%a]"
            victim
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
               Format.pp_print_int)
            cycle
        in
        (* A victim with no live owning session must still be aborted
           through the manager: merely forgetting its id would leave
           its locks (and any queued request) in the table, and
           find_deadlock would return the same cycle forever. *)
        let abort_orphan () =
          Hashtbl.remove t.tx_owner victim;
          resume t (Tx.abort_id t.manager victim)
        in
        (match Hashtbl.find_opt t.tx_owner victim with
        | None -> abort_orphan ()
        | Some sid -> (
            match Hashtbl.find_opt t.sessions sid with
            | None -> abort_orphan ()
            | Some session ->
                (match session.tx with
                | Some tx when Tx.tx_id tx = victim ->
                    session.tx <- None;
                    Hashtbl.remove t.tx_owner victim;
                    push session (Message.Deadlock_victim { tx = victim; msg });
                    (if session.parked_req <> None then begin
                       (* The parked lock request dies with the
                          transaction: answer it with the conflict. *)
                       observe_wait t session;
                       session.parked_req <- None;
                       error session Message.Conflict msg
                     end
                     else session.deadlock_note <- Some msg);
                    let unblocked = Tx.abort t.manager tx in
                    resume t unblocked;
                    pump t session
                | Some _ | None -> abort_orphan ())));
        go ()
  in
  go ()

(* Timeouts -------------------------------------------------------------------- *)

let enforce_timeouts t now =
  let expired = ref [] in
  Hashtbl.iter
    (fun _ session ->
      match t.config.lock_timeout with
      | Some limit
        when session.parked_req <> None && now -. session.parked_since > limit ->
          expired := (`Lock, session) :: !expired
      | _ -> (
          match t.config.idle_timeout with
          | Some limit
            when (not session.closing)
                 && session.parked_req = None
                 && now -. session.last_activity > limit ->
              expired := (`Idle, session) :: !expired
          | _ -> ()))
    t.sessions;
  List.iter
    (fun (kind, session) ->
      match kind with
      | `Lock ->
          (* Cancel the whole transaction: aborting dequeues the pending
             lock request (see Tx_manager.abort), so the queue holds no
             orphan waiter. *)
          Obs.incr t.lock_timeouts;
          observe_wait t session;
          session.parked_req <- None;
          (match session.tx with
          | Some tx ->
              session.tx <- None;
              Hashtbl.remove t.tx_owner (Tx.tx_id tx);
              let unblocked = Tx.abort t.manager tx in
              error session Message.Timeout "lock wait timed out; transaction aborted";
              resume t unblocked
          | None -> error session Message.Timeout "lock wait timed out");
          pump t session
      | `Idle ->
          Obs.incr t.idle_closes;
          push session (Message.Goodbye { msg = "idle timeout" });
          session.closing <- true)
    !expired

(* Accept ---------------------------------------------------------------------- *)

let accept t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | fd, _peer ->
      Unix.set_nonblock fd;
      if Hashtbl.length t.sessions >= t.config.max_sessions then begin
        Obs.incr t.rejected;
        (* Best effort: tell the client why before closing. *)
        let frame =
          Frame.encode
            (Message.encode_server
               (Message.Reply
                  (Message.Error
                     {
                       code = Message.Too_many_sessions;
                       msg =
                         Printf.sprintf "server full (%d sessions)"
                           t.config.max_sessions;
                     })))
        in
        (try ignore (Unix.write fd frame 0 (Bytes.length frame) : int)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Obs.incr t.accepted;
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        Hashtbl.replace t.sessions sid
          {
            sid;
            fd;
            splitter = Frame.Splitter.create ();
            queue = Queue.create ();
            out = Queue.create ();
            out_off = 0;
            greeted = false;
            tx = None;
            parked_req = None;
            parked_since = 0.;
            deadlock_note = None;
            last_activity = Unix.gettimeofday ();
            closing = false;
          }
      end

(* Inbound --------------------------------------------------------------------- *)

let read_chunk = Bytes.create 65536

let feed t session =
  match Unix.read session.fd read_chunk 0 (Bytes.length read_chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ ->
      (* ECONNRESET/EPIPE, but also ETIMEDOUT (keepalive on a dead
         peer) and other socket errors: the peer is unreachable. *)
      destroy t session
  | 0 -> destroy t session
  | n ->
      session.last_activity <- Unix.gettimeofday ();
      Frame.Splitter.feed session.splitter read_chunk ~len:n;
      (* Decode up to the queue bound; leftover frames stay buffered in
         the splitter and the socket stops being selected for reads
         until the queue drains (backpressure). *)
      refill t session

(* Shutdown -------------------------------------------------------------------- *)

let drain_grace = 5.0

let begin_drain t =
  if t.phase = Running then begin
    t.phase <- Draining (Unix.gettimeofday () +. drain_grace);
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* A graceful exit leaves no stale socket file; a [kill] does, like
       a real crash would. *)
    (match t.bound with
    | Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    Hashtbl.iter
      (fun _ session ->
        push session (Message.Goodbye { msg = "server shutting down" });
        (match session.tx with
        | Some tx ->
            session.tx <- None;
            Hashtbl.remove t.tx_owner (Tx.tx_id tx);
            ignore (Tx.abort t.manager tx : int list)
        | None -> ());
        session.parked_req <- None;
        session.closing <- true)
      t.sessions
  end

let drain_stop_pipe t =
  let b = Bytes.create 16 in
  let rec go () =
    match Unix.read t.stop_r b 0 16 with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | 0 -> ()
    | n ->
        for i = 0 to n - 1 do
          match Bytes.get b i with
          | 'K' -> t.phase <- Killed
          | _ -> if t.phase = Running then begin_drain t
        done;
        go ()
  in
  go ()

(* The reactor ------------------------------------------------------------------ *)

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let finished = ref false in
  let next_metrics =
    ref
      (match t.config.metrics_interval with
      | Some interval -> Unix.gettimeofday () +. interval
      | None -> infinity)
  in
  while not !finished do
    let now = Unix.gettimeofday () in
    (match t.config.metrics_interval with
    | Some interval when now >= !next_metrics ->
        prerr_endline ("orion metrics: " ^ Obs.one_line (Obs.snapshot ()));
        next_metrics := now +. interval
    | _ -> ());
    (match t.phase with
    | Draining deadline when now > deadline || Hashtbl.length t.sessions = 0 ->
        (* Grace expired or everyone is gone: close what remains. *)
        let remaining = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
        List.iter
          (fun s ->
            flush_out s;
            destroy t s)
          remaining;
        finished := true
    | Killed ->
        Hashtbl.iter (fun _ s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
          t.sessions;
        Hashtbl.reset t.sessions;
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        finished := true
    | Running | Draining _ -> ());
    if not !finished then begin
      let reads =
        t.stop_r
        :: (if t.phase = Running then [ t.listen_fd ] else [])
        @ Hashtbl.fold
            (fun _ s acc ->
              (* Backpressure: a full request queue or a closing session
                 stops reads. *)
              if (not s.closing) && Queue.length s.queue < t.config.queue_limit then
                s.fd :: acc
              else acc)
            t.sessions []
      in
      let writes =
        Hashtbl.fold
          (fun _ s acc -> if not (Queue.is_empty s.out) then s.fd :: acc else acc)
          t.sessions []
      in
      match Unix.select reads writes [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.mem t.stop_r readable then drain_stop_pipe t;
          if t.phase <> Killed then begin
            if t.phase = Running && List.mem t.listen_fd readable then accept t;
            let session_of fd =
              Hashtbl.fold
                (fun _ s acc -> if s.fd = fd then Some s else acc)
                t.sessions None
            in
            List.iter
              (fun fd ->
                if fd <> t.stop_r && fd <> t.listen_fd then
                  match session_of fd with
                  | Some session ->
                      feed t session;
                      (* The session may have been destroyed by EOF. *)
                      if Hashtbl.mem t.sessions session.sid then pump t session
                  | None -> ())
              readable;
            if t.check_deadlocks then begin
              t.check_deadlocks <- false;
              break_deadlocks t
            end;
            enforce_timeouts t (Unix.gettimeofday ());
            maybe_checkpoint t;
            List.iter
              (fun fd ->
                match session_of fd with
                | Some session -> flush_out session
                | None -> ())
              writable;
            (* Close sessions that have said goodbye and flushed. *)
            let done_ =
              Hashtbl.fold
                (fun _ s acc ->
                  if s.closing then begin
                    flush_out s;
                    if Queue.is_empty s.out then s :: acc else acc
                  end
                  else acc)
                t.sessions []
            in
            List.iter (fun s -> destroy t s) done_
          end
    end
  done
