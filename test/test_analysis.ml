(* Tests for Orion_analysis.Schema_analysis: each hazard analysis on a
   crafted schema that trips it, plus a clean schema on which the
   analyzer must stay silent. *)

module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Obs = Orion_obs.Metrics
module SA = Orion_analysis.Schema_analysis

let define ?superclasses ?segment schema name attrs =
  ignore
    (Schema.define schema ?superclasses ?segment ~name ~attributes:attrs ()
      : Orion_schema.Class_def.t)

let comp ?(dependent = true) ?(exclusive = true) name domain =
  A.make ~name ~domain:(D.Class domain) ~collection:A.Set
    ~refkind:(A.composite ~dependent ~exclusive ())
    ()

let weak name domain = A.make ~name ~domain:(D.Class domain) ()

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_code code findings =
  List.filter (fun f -> f.SA.code = code) findings

(* A well-shaped document schema: no finding at default thresholds. *)
let clean_schema () =
  let schema = Schema.create () in
  define schema "Paragraph"
    [ A.make ~name:"Text" ~domain:(D.Primitive D.P_string) () ];
  define schema "Section" [ comp ~exclusive:false "Content" "Paragraph" ];
  define schema "Document" [ comp "Sections" "Section" ];
  schema

let test_clean_schema_is_silent () =
  Alcotest.(check int) "no findings" 0 (List.length (SA.analyze (clean_schema ())))

let test_composite_cycle () =
  let schema = Schema.create () in
  define schema "A" [ comp "ToB" "B" ];
  define schema "B" [ comp "ToC" "C" ];
  define schema "C" [ comp "ToA" "A" ];
  match with_code "composite-cycle" (SA.analyze schema) with
  | [ f ] ->
      Alcotest.(check bool) "severity error" true (f.SA.severity = SA.Error);
      Alcotest.(check string) "reported for the smallest member" "A" f.SA.cls;
      Alcotest.(check (list string))
        "witness path walks the cycle"
        [ "A.ToB->B"; "B.ToC->C"; "C.ToA->A" ]
        f.SA.path
  | l -> Alcotest.failf "expected exactly one cycle finding, got %d" (List.length l)

(* A cycle closed through inheritance: the attribute's domain is a
   superclass, the subclass completes the loop. *)
let test_cycle_through_subclass () =
  let schema = Schema.create () in
  define schema "Part" [];
  define schema "Assembly" ~superclasses:[ "Part" ] [ comp "Parts" "Part" ];
  Alcotest.(check bool) "cycle found" true
    (with_code "composite-cycle" (SA.analyze schema) <> [])

let test_cascade_radius () =
  let schema = Schema.create () in
  define schema "C3" [];
  define schema "C2" [ comp "Next" "C3" ];
  define schema "C1" [ comp "Next" "C2" ];
  define schema "Root" [ comp "Next" "C1" ];
  (match with_code "cascade-radius" (SA.analyze ~cascade_threshold:3 schema) with
  | [ f ] ->
      Alcotest.(check string) "flags the root" "Root" f.SA.cls;
      Alcotest.(check int) "witness path spans the chain" 3
        (List.length f.SA.path)
  | l -> Alcotest.failf "expected one cascade finding, got %d" (List.length l));
  (* Independent references do not cascade. *)
  let schema = Schema.create () in
  define schema "C3" [];
  define schema "C2" [ comp ~dependent:false "Next" "C3" ];
  define schema "C1" [ comp ~dependent:false "Next" "C2" ];
  define schema "Root" [ comp ~dependent:false "Next" "C1" ];
  Alcotest.(check int) "independent chain is quiet" 0
    (List.length (with_code "cascade-radius" (SA.analyze ~cascade_threshold:3 schema)))

let test_clustering_ambiguity () =
  (* Two exclusive-composite parents sharing the child's segment. *)
  let schema = Schema.create () in
  define schema ~segment:"s" "Child" [];
  define schema ~segment:"s" "P1" [ comp "L" "Child" ];
  define schema ~segment:"s" "P2" [ comp "L" "Child" ];
  (match with_code "clustering-ambiguity" (SA.analyze schema) with
  | [ f ] -> Alcotest.(check string) "flags the child" "Child" f.SA.cls
  | l -> Alcotest.failf "expected one ambiguity, got %d" (List.length l));
  (* Default per-class segments: same shape, no ambiguity. *)
  let schema = Schema.create () in
  define schema "Child" [];
  define schema "P1" [ comp "L" "Child" ];
  define schema "P2" [ comp "L" "Child" ];
  Alcotest.(check int) "separate segments are quiet" 0
    (List.length (with_code "clustering-ambiguity" (SA.analyze schema)))

let test_lock_fanin_and_snapshot_join () =
  let schema = Schema.create () in
  define schema "Leaf" [];
  define schema "Quiet" [];
  define schema "P1" [ comp "L" "Leaf" ];
  define schema "P2" [ comp ~exclusive:false "L" "Leaf" ];
  define schema "P3" [ weak "W" "Quiet"; comp ~dependent:false "L" "Leaf" ];
  (match with_code "lock-fanin" (SA.analyze schema) with
  | [ f ] ->
      Alcotest.(check string) "flags the shared component" "Leaf" f.SA.cls;
      Alcotest.(check int) "one edge per referencing attribute" 3
        (List.length f.SA.path)
  | l -> Alcotest.failf "expected one fan-in finding, got %d" (List.length l));
  (* Joining a snapshot folds observed blocks into the finding and
     surfaces contention on classes the shape does not predict. *)
  let snapshot =
    {
      Obs.counters =
        [
          (Obs.labeled "lock.blocks" ("class", "Leaf"), 7);
          (Obs.labeled "lock.blocks" ("class", "Quiet"), 2);
          ("lock.blocks", 9);
        ];
      gauges = [];
      histograms = [];
    }
  in
  let findings = SA.analyze ~snapshot schema in
  (match with_code "lock-fanin" findings with
  | [ f ] ->
      Alcotest.(check bool) "observed blocks joined" true
        (contains_sub f.SA.detail "7 blocked requests observed")
  | _ -> Alcotest.fail "fan-in finding lost under snapshot");
  match with_code "observed-contention" findings with
  | [ f ] ->
      Alcotest.(check string) "unpredicted contention surfaced" "Quiet" f.SA.cls;
      Alcotest.(check bool) "info only" true (f.SA.severity = SA.Info)
  | l -> Alcotest.failf "expected one contention note, got %d" (List.length l)

let test_dead_composite_attribute () =
  let schema = Schema.create () in
  define schema "Gone" [];
  define schema "Holder" [ comp "L" "Gone" ];
  ignore (Schema.drop_class schema "Gone" : Orion_schema.Class_def.t);
  match with_code "dead-composite-attribute" (SA.analyze schema) with
  | [ f ] ->
      Alcotest.(check string) "names the holder" "Holder" f.SA.cls;
      Alcotest.(check (list string)) "witness" [ "Holder.L->Gone" ] f.SA.path
  | l -> Alcotest.failf "expected one dead attribute, got %d" (List.length l)

(* Base declares a composite Body; Sub overrides it with a weak
   reference; SubSub just inherits Sub's override — only Sub, where the
   shadowing is introduced, is reported. *)
let test_shadowed_composite_attribute () =
  let schema = Schema.create () in
  define schema "Part" [];
  define schema "Base" [ comp "Body" "Part" ];
  define schema "Sub" ~superclasses:[ "Base" ] [ weak "Body" "Part" ];
  define schema "SubSub" ~superclasses:[ "Sub" ] [];
  match with_code "shadowed-composite-attribute" (SA.analyze schema) with
  | [ f ] ->
      Alcotest.(check string) "reported where introduced" "Sub" f.SA.cls;
      Alcotest.(check (list string)) "witness names both ends"
        [ "Base.Body"; "Sub.Body" ] f.SA.path
  | l -> Alcotest.failf "expected one shadowing, got %d" (List.length l)

let test_ordering_and_sexp () =
  let schema = Schema.create () in
  define schema "A" [ comp "ToB" "B" ];
  define schema "B" [ comp "ToA" "A" ];
  define schema "Leaf" [];
  define schema "P1" [ comp "L" "Leaf" ];
  define schema "P2" [ comp "L" "Leaf" ];
  define schema "P3" [ comp "L" "Leaf" ];
  let findings = SA.analyze schema in
  (match findings with
  | first :: _ ->
      Alcotest.(check bool) "errors sort first" true (first.SA.severity = SA.Error)
  | [] -> Alcotest.fail "expected findings");
  List.iter
    (fun f ->
      let sexp = SA.finding_to_sexp f in
      Alcotest.(check bool) "sexp is parseable" true
        (match Orion_util.Sexp.parse sexp with
        | _ -> true
        | exception _ -> false))
    findings

(* DESIGN.md §17 embeds the lock hierarchy between lockdep markers;
   the table is generated (`orion lockdep-check --hierarchy`), and this
   test fails when the document drifts from the declarations in
   omutex.ml.  Lives here rather than in test_lockdep because that
   suite declares private test classes, which would pollute
   [hierarchy_markdown].  The test binary runs from a _build
   subdirectory, so DESIGN.md is found by walking up. *)
let test_design_doc_in_sync () =
  let rec find dir depth =
    let candidate = Filename.concat dir "DESIGN.md" in
    if Sys.file_exists candidate then Some candidate
    else if depth = 0 then None
    else find (Filename.dirname dir) (depth - 1)
  in
  match find (Sys.getcwd ()) 6 with
  | None -> Alcotest.fail "DESIGN.md not found walking up from cwd"
  | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let doc = really_input_string ic n in
      close_in ic;
      let embedded =
        let b = "<!-- lockdep:begin -->\n" and e = "<!-- lockdep:end -->" in
        let rec index_from i =
          if i + String.length b > String.length doc then
            Alcotest.fail "DESIGN.md has no lockdep markers"
          else if String.sub doc i (String.length b) = b then
            i + String.length b
          else index_from (i + 1)
        in
        let start = index_from 0 in
        let rec index_end i =
          if i + String.length e > String.length doc then
            Alcotest.fail "DESIGN.md lockdep block is unterminated"
          else if String.sub doc i (String.length e) = e then i
          else index_end (i + 1)
        in
        String.sub doc start (index_end start - start)
      in
      Alcotest.(check string)
        "DESIGN.md lock hierarchy matches omutex.ml declarations"
        (Orion_util.Omutex.hierarchy_markdown ())
        embedded

let () =
  Alcotest.run "orion_analysis"
    [
      ( "schema hazards",
        [
          Alcotest.test_case "clean schema silent" `Quick test_clean_schema_is_silent;
          Alcotest.test_case "composite cycle" `Quick test_composite_cycle;
          Alcotest.test_case "cycle via subclass" `Quick test_cycle_through_subclass;
          Alcotest.test_case "cascade radius" `Quick test_cascade_radius;
          Alcotest.test_case "clustering ambiguity" `Quick test_clustering_ambiguity;
          Alcotest.test_case "lock fan-in + snapshot" `Quick
            test_lock_fanin_and_snapshot_join;
          Alcotest.test_case "dead attribute" `Quick test_dead_composite_attribute;
          Alcotest.test_case "shadowed attribute" `Quick
            test_shadowed_composite_attribute;
          Alcotest.test_case "ordering and sexp" `Quick test_ordering_and_sexp;
        ] );
      ( "lockdep docs",
        [
          Alcotest.test_case "DESIGN.md \xc2\xa717 in sync" `Quick
            test_design_doc_in_sync;
        ] );
    ]
