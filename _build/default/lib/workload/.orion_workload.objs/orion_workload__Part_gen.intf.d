lib/workload/part_gen.mli: Database Oid Orion_core
