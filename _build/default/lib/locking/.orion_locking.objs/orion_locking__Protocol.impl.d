lib/locking/protocol.ml: Database Instance List Lock_mode Lock_table Oid Orion_core Orion_schema Traversal
