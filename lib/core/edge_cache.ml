type entry = { edges : (bool * Oid.t) list; deps : Oid.t list }

module Obs = Orion_obs.Metrics

type t = {
  entries : entry Oid.Tbl.t;
  rdeps : unit Oid.Tbl.t Oid.Tbl.t;  (* referenced oid -> caching parents *)
  mutable generation : int;
  hits : Obs.counter;
  misses : Obs.counter;
  invalidations : Obs.counter;
}

type stats = { hits : int; misses : int; invalidations : int }

let create () =
  {
    entries = Oid.Tbl.create 256;
    rdeps = Oid.Tbl.create 256;
    generation = 0;
    hits = Obs.counter "edge_cache.hits";
    misses = Obs.counter "edge_cache.misses";
    invalidations = Obs.counter "edge_cache.invalidations";
  }

let flush (t : t) =
  Obs.incr t.invalidations ~by:(Oid.Tbl.length t.entries);
  Oid.Tbl.reset t.entries;
  Oid.Tbl.reset t.rdeps

(* A generation mismatch (schema mutation) empties the whole cache: any
   entry may reflect attributes that no longer exist or changed nature. *)
let sync t ~generation =
  if t.generation <> generation then begin
    flush t;
    t.generation <- generation
  end

let find t ~generation oid =
  sync t ~generation;
  match Oid.Tbl.find_opt t.entries oid with
  | Some e ->
      Obs.incr t.hits;
      Some e.edges
  | None ->
      Obs.incr t.misses;
      None

let register t ~dep ~parent =
  let set =
    match Oid.Tbl.find_opt t.rdeps dep with
    | Some set -> set
    | None ->
        let set = Oid.Tbl.create 4 in
        Oid.Tbl.replace t.rdeps dep set;
        set
  in
  Oid.Tbl.replace set parent ()

let add t ~generation oid ~deps edges =
  sync t ~generation;
  (match Oid.Tbl.find_opt t.entries oid with
  | Some _ -> ()  (* racing recomputation: keep the existing entry *)
  | None ->
      Oid.Tbl.replace t.entries oid { edges; deps };
      List.iter (fun dep -> register t ~dep ~parent:oid) deps)

let drop t oid =
  match Oid.Tbl.find_opt t.entries oid with
  | None -> ()
  | Some e ->
      Oid.Tbl.remove t.entries oid;
      Obs.incr t.invalidations;
      List.iter
        (fun dep ->
          match Oid.Tbl.find_opt t.rdeps dep with
          | None -> ()
          | Some set ->
              Oid.Tbl.remove set oid;
              if Oid.Tbl.length set = 0 then Oid.Tbl.remove t.rdeps dep)
        e.deps

let invalidate t oid =
  drop t oid;
  match Oid.Tbl.find_opt t.rdeps oid with
  | None -> ()
  | Some set ->
      (* Collect first: [drop] edits the very sets we iterate. *)
      let parents = Oid.Tbl.fold (fun p () acc -> p :: acc) set [] in
      List.iter (drop t) parents

let length t = Oid.Tbl.length t.entries

let stats (t : t) : stats =
  {
    hits = Obs.counter_value t.hits;
    misses = Obs.counter_value t.misses;
    invalidations = Obs.counter_value t.invalidations;
  }

let reset_stats (t : t) =
  Obs.reset_counter t.hits;
  Obs.reset_counter t.misses;
  Obs.reset_counter t.invalidations
