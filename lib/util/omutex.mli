(** Ranked mutexes: every internal engine mutex belongs to a declared
    {e lock class} with a rank, and (when a tracer is installed — see
    {!Lockdep} in [orion_analysis]) each acquisition, release, blocking
    operation, and discipline region is reported as an {!event}.

    The hierarchy is the whole point: ranks order the classes from
    outermost (lowest rank, acquired first) to innermost, so the legal
    nesting relation is "may acquire a strictly higher rank while
    holding a lower one".  Two exceptions are first-class here rather
    than folklore:

    - same-class nesting: a class may declare an {e ascending region}
      (e.g. ["merged-search"]) inside which several instances of the
      class may be held at once, provided instance numbers only ever
      ascend — the merged deadlock search over all lock partitions.
    - blocking exemptions: {!allow_blocking} brackets code that holds a
      no-block class across a declared durability point by design (the
      direct-commit fsync, the checkpoint bracket).

    When no tracer is installed ([enabled] false), every operation is a
    flat [bool ref] test away from the raw [Mutex] call — cheap enough
    to leave compiled in everywhere. *)

type klass
(** A lock class: one per mutex {e role}, shared by all its instances
    (each lock partition is an instance of [lock_partition]). *)

val declare :
  ?no_block:bool ->
  ?asc_region:string ->
  doc:string ->
  name:string ->
  rank:int ->
  unit ->
  klass
(** Declare a new lock class.  [no_block] marks classes that must never
    be held across a blocking operation ({!blocking}); [asc_region]
    names the one region inside which same-class nesting in ascending
    instance order is legal.  Raises [Invalid_argument] on a duplicate
    name. *)

val name : klass -> string
val rank : klass -> int
val no_block : klass -> bool
val asc_region : klass -> string option
val doc : klass -> string

val classes : unit -> klass list
(** All declared classes, sorted by rank. *)

val hierarchy_markdown : unit -> string
(** The lock hierarchy as a markdown table (rank-sorted), the exact
    text DESIGN.md §17 embeds between its [lockdep] markers — a test
    keeps the two in sync. *)

(** {1 Engine classes}

    The global hierarchy, outermost first.  Declared centrally so the
    ranks live in one place and {!hierarchy_markdown} can render them
    all. *)

val txsvc_core : klass
val shard_inbox : klass
val lock_partition : klass
val group_commit : klass
val obs_registry : klass
val repl_tailer : klass
val wal_log : klass
val mvcc_version_store : klass

(** {1 Events} *)

type event =
  | Acquire of { cls : klass; inst : int; site : string }
  | Release of { cls : klass; inst : int }
  | Blocking of { op : string; site : string }
      (** A blocking operation (fsync, select, socket write) is about
          to run on this thread. *)
  | Region_enter of string
  | Region_exit of string
  | Allow_enter of string
  | Allow_exit of string

val enabled : bool ref
(** The flat guard every wrapped operation tests.  Managed by
    {!set_tracer}; read-only for everyone else. *)

val set_tracer : (event -> unit) option -> unit
(** Install (or remove) the event consumer.  [Some f] sets [enabled];
    [None] clears it.  [f] is called on the acquiring thread, {e before}
    a blocking [lock] (so an inversion is reported even if the lock
    then deadlocks) and {e after} a successful [try_lock]. *)

(** {1 Wrapped mutexes} *)

type t

val create : ?inst:int -> klass -> t
(** A mutex in [klass]; [inst] distinguishes instances of
    multi-instance classes (partition index, shard id).  Omitted, each
    mutex gets a unique negative instance — distinct singletons (two
    servers in one process) never alias. *)

val lock : t -> unit
val try_lock : t -> bool
val unlock : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a

val wait : Condition.t -> t -> unit
(** [Condition.wait] through the wrapper: the implicit release and
    re-acquisition are reported as events, so the held-set stays
    truthful across the wait. *)

(** {1 Discipline annotations} *)

val blocking : op:string -> (unit -> 'a) -> 'a
(** Declare that [f] performs the blocking operation [op] ("wal.fsync",
    "unix.select", "socket.write").  Holding a [no_block] class here is
    a violation unless inside {!allow_blocking}. *)

val allow_blocking : string -> (unit -> 'a) -> 'a
(** Bracket a declared exemption: blocking inside is legal even while
    holding no-block classes.  Nests (a depth count per thread). *)

val in_region : string -> (unit -> 'a) -> 'a
(** Bracket a named discipline region (e.g. ["merged-search"]), inside
    which a class declaring [asc_region] may nest its own instances in
    ascending order. *)
