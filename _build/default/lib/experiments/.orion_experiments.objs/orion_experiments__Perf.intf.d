lib/experiments/perf.mli: Report
