lib/core/database.ml: Core_error Instance List Oid Option Orion_schema Orion_storage Rref String Value
