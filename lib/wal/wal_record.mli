(** Redo-log record types and their binary codec.

    Two granularities share the stream.  {e Physical} records mirror the
    storage layer ([Page_alloc]/[Page_write] from the disk observer,
    [Segment_new]/[Record_put]/[Record_delete]/[Catalog_set] from the
    store journal): replaying them rebuilds a {!Orion_storage.Store}
    bit-for-bit up to the last flush.  {e Logical} records carry
    transaction durability ([Obj_put]/[Obj_delete] after-images sealed
    by a [Commit]): the store only absorbs workspace changes at
    checkpoint time, so between checkpoints a committed transaction
    exists nowhere but in these records.

    [Checkpoint_begin]/[Checkpoint] bracket a {!Orion_core.Persist.save}:
    recovery discards an unterminated bracket (the crashed checkpoint's
    half-applied store writes) and the truncation protocol drops
    everything once the bracket closes over a durable snapshot. *)

open Orion_core
module Store = Orion_storage.Store

type t =
  | Genesis of { page_size : int }
      (** First record of every log: the disk geometry replay needs. *)
  | Page_alloc of { page_no : int }
  | Page_write of { page_no : int; image : bytes }
  | Segment_new of { id : int }
  | Record_put of { rid : Store.rid }
  | Record_delete of { rid : Store.rid }
  | Catalog_set of { page : int }
  | Obj_put of {
      tx : int;
      oid : Oid.t;
      cluster_with : Oid.t option;
      rrefs : Rref.t list;
      data : bytes;  (** {!Orion_core.Codec}-encoded after-image *)
    }
  | Obj_delete of { tx : int; oid : Oid.t }
  | Commit of { tx : int; next_oid : int; clock : int; cc : int }
      (** Seals the transaction's [Obj_*] records and carries the
          database counters as of the commit. *)
  | Commit_group of { txs : int list; next_oid : int; clock : int; cc : int }
      (** Group commit: seals the [Obj_*] records of {e every} listed
          transaction at once (batched by {!Group_commit}), with the
          max-merged database counters.  One record — so a torn tail
          either seals the whole batch or none of it; recovery never
          replays a partial batch. *)
  | Checkpoint_begin
  | Checkpoint

val encode : t -> bytes

val decode : bytes -> t
(** @raise Orion_storage.Bytes_rw.Reader.Corrupt on a malformed payload. *)

val describe : t -> string
(** One-line rendering for recovery reports and debugging. *)
