(* Every figure/table reproduction must pass all of its checks.  The
   detailed per-subsystem behaviour is tested in the other suites; this
   one asserts the paper-facing experiment reports. *)

module Figures = Orion_experiments.Figures
module Perf = Orion_experiments.Perf
module Report = Orion_experiments.Report

let test_report make () =
  let report = make () in
  if not (Report.ok report) then
    Alcotest.failf "experiment failed:@.%a" Report.pp report

let case id make = Alcotest.test_case id `Quick (test_report make)

let () =
  Alcotest.run "orion_experiments"
    [
      ( "figures",
        [
          case "F1 derive copy semantics" Figures.fig1_derive_copy;
          case "F2 versioned topology" Figures.fig2_versioned_topology;
          case "F3 ref-counts" Figures.fig3_refcounts;
          case "F4 authz on composite" Figures.fig4_authz_composite;
          case "F5 shared authz" Figures.fig5_shared_authz;
          case "F6 authorization matrix" Figures.fig6_matrix;
          case "F7 lock matrix (exclusive)" Figures.fig7_matrix;
          case "F8 lock matrix (shared)" Figures.fig8_matrix;
          case "F9 locking protocol" Figures.fig9_protocol;
          case "G1 root-locking anomaly" Figures.garz88_anomaly;
        ] );
      ( "examples",
        [
          case "E1 vehicle" Figures.example1_vehicle;
          case "E2 document" Figures.example2_document;
        ] );
      ( "tables",
        [
          case "T1 deletion semantics" Figures.t1_deletion_semantics;
          case "T2 topology rules" Figures.t2_topology_rules;
          case "T3 evolution taxonomy" Figures.t3_evolution_taxonomy;
        ] );
      ( "performance",
        [
          case "P4 evolution cost" (fun () -> Perf.p4_evolution_cost ());
          case "P5 clustering" (fun () -> Perf.p5_clustering ());
          case "P6 composite vs instance locking" (fun () ->
              Perf.p6_composite_vs_instance_locking ());
          case "P7 matrix ablation" (fun () -> Perf.p7_matrix_ablation ());
          case "P8 lock escalation" (fun () -> Perf.p8_lock_escalation ());
          case "A1 rref representation" (fun () -> Perf.a1_rref_representation ());
        ] );
    ]
