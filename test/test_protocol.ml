(* Tests for the wire protocol: frame codec (incremental splitting,
   corruption detection) and the message vocabulary round-trips. *)

open Orion_core
module Frame = Orion_protocol.Frame
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr

let oid n = Oid.of_int n

(* Frames ---------------------------------------------------------------------- *)

let feed_all splitter buf = Frame.Splitter.feed splitter buf ~len:(Bytes.length buf)

let drain splitter =
  let rec go acc =
    match Frame.Splitter.next splitter with
    | Some payload -> go (payload :: acc)
    | None -> List.rev acc
  in
  go []

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "hello, orion"; String.make 4096 '\042' ] in
  let splitter = Frame.Splitter.create () in
  List.iter (fun p -> feed_all splitter (Frame.encode (Bytes.of_string p))) payloads;
  Alcotest.(check (list string)) "all payloads, in order" payloads
    (List.map Bytes.to_string (drain splitter));
  Alcotest.(check int) "nothing left buffered" 0 (Frame.Splitter.buffered splitter)

let test_frame_byte_by_byte () =
  (* The stream arrives in the worst chunking read(2) can produce. *)
  let payload = "incremental decoding across chunk boundaries" in
  let wire = Frame.encode (Bytes.of_string payload) in
  let splitter = Frame.Splitter.create () in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Frame.Splitter.feed splitter (Bytes.make 1 c) ~len:1;
      match Frame.Splitter.next splitter with
      | Some p -> got := Bytes.to_string p :: !got
      | None -> ())
    wire;
  Alcotest.(check (list string)) "exactly one payload, at the last byte"
    [ payload ] (List.rev !got)

let test_frame_partial_is_not_ready () =
  let wire = Frame.encode (Bytes.of_string "suspense") in
  let splitter = Frame.Splitter.create () in
  Frame.Splitter.feed splitter wire ~len:(Bytes.length wire - 1);
  Alcotest.(check bool) "incomplete frame yields nothing" true
    (Frame.Splitter.next splitter = None)

let test_frame_corrupt_checksum () =
  let wire = Frame.encode (Bytes.of_string "to be damaged") in
  (* Flip a payload bit; the checksum must catch it. *)
  let i = Frame.header_size + 3 in
  Bytes.set wire i (Char.chr (Char.code (Bytes.get wire i) lxor 0x40));
  let splitter = Frame.Splitter.create () in
  feed_all splitter wire;
  Alcotest.(check bool) "checksum mismatch raises" true
    (match Frame.Splitter.next splitter with
    | exception Frame.Corrupt _ -> true
    | _ -> false)

let test_frame_insane_length () =
  (* A garbage length field must be rejected before any allocation of
     that size — it is how a desynced stream is detected. *)
  let wire = Bytes.create 8 in
  Bytes.set_int32_le wire 0 0x7fffffffl;
  Bytes.set_int32_le wire 4 0l;
  let splitter = Frame.Splitter.create () in
  feed_all splitter wire;
  Alcotest.(check bool) "oversized length raises" true
    (match Frame.Splitter.next splitter with
    | exception Frame.Corrupt _ -> true
    | _ -> false);
  Alcotest.(check bool) "encode refuses oversized payloads too" true
    (match Frame.encode (Bytes.create (Frame.max_payload + 1)) with
    | exception Frame.Corrupt _ -> true
    | _ -> false)

(* Messages -------------------------------------------------------------------- *)

let request = Alcotest.testable Message.pp_request ( = )

let all_requests : Message.request list =
  [
    Hello { version = Message.version; client = "test-suite" };
    Eval "(make-class 'C :attributes ((A :domain Integer)))";
    Begin;
    Commit;
    Abort;
    Lock_composite { root = oid 7; access = Read };
    Lock_composite { root = oid 0; access = Update };
    Lock_instance { oid = oid 12; access = Update };
    Make
      {
        cls = "Vehicle";
        parents = [ (oid 1, "Body"); (oid 2, "Wheels") ];
        attrs = [ ("Color", Value.Str "red"); ("Doors", Value.Int 4) ];
      };
    Make { cls = "Empty"; parents = []; attrs = [] };
    Components_of (oid 3);
    Ping;
    Bye;
    (* v3: the replication family. *)
    Repl_subscribe { from_lsn = 0 };
    Repl_subscribe { from_lsn = 123_456_789_012 };
    Repl_ack { lsn = 0 };
    Repl_ack { lsn = max_int };
    Promote;
    (* v4: the snapshot-read family. *)
    Begin_snapshot;
    End_snapshot;
    Read_attr { oid = oid 41; attr = "Color" };
    Read_attr { oid = oid 0; attr = "" };
    Ancestors_of (oid 17);
  ]

let all_server_msgs : Message.server_msg list =
  [
    Reply (Welcome { version = Message.version; session = 5 });
    Reply (Result Unit);
    Reply (Result (Bool true));
    Reply (Result (Num (-42)));
    Reply (Result (Str "ok"));
    Reply (Result (Obj (oid 9)));
    Reply (Result (Objs [ oid 1; oid 2; oid 3 ]));
    Reply (Result (Objs []));
    Reply Granted;
    Reply Pong;
    Reply (Error { code = Conflict; msg = "deadlock victim" });
    Reply (Error { code = Timeout; msg = "" });
    Push (Deadlock_victim { tx = 3; msg = "cycle [0 -> 3]" });
    Push (Goodbye { msg = "server shutting down" });
    (* v3: the replication family. *)
    Reply (Repl_ok { lsn = 4157 });
    Reply (Error { code = Read_only; msg = "read-only replica" });
    Reply (Error { code = Repl_error; msg = "not a streaming primary" });
    Push (Repl_frames { lsn = 0; data = Bytes.empty });
    Push (Repl_frames { lsn = 8411; data = Bytes.of_string "\x00\x01\xff raw" });
    Push (Repl_heartbeat { lsn = 24948 });
    (* v4: full attribute values travel in replies. *)
    Reply (Result (Value Value.Null));
    Reply (Result (Value (Value.Int 1989)));
    Reply (Result (Value (Value.Str "snapshot")));
    Reply (Result (Value (Value.Ref (oid 6))));
    Reply
      (Result (Value (Value.VSet [ Value.Ref (oid 1); Value.Ref (oid 2) ])));
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.check request
        (Format.asprintf "%a" Message.pp_request req)
        req
        (Message.decode_request (Message.encode_request req)))
    all_requests

let test_server_msg_roundtrip () =
  List.iteri
    (fun i msg ->
      Alcotest.(check bool)
        (Printf.sprintf "server message %d" i)
        true
        (Message.decode_server (Message.encode_server msg) = msg))
    all_server_msgs

let test_decode_rejects_garbage () =
  let corrupt f =
    match f () with
    | exception Orion_storage.Bytes_rw.Reader.Corrupt _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown request tag" true
    (corrupt (fun () -> Message.decode_request (Bytes.make 1 '\255')));
  Alcotest.(check bool) "empty request" true
    (corrupt (fun () -> Message.decode_request Bytes.empty));
  Alcotest.(check bool) "unknown server tag" true
    (corrupt (fun () -> Message.decode_server (Bytes.make 2 '\255')));
  (* Trailing bytes mean a framing bug, not padding: reject them. *)
  let ping = Message.encode_request Message.Ping in
  let padded = Bytes.cat ping (Bytes.make 1 '\000') in
  Alcotest.(check bool) "trailing bytes rejected" true
    (corrupt (fun () -> Message.decode_request padded))

(* Every request survives framing + worst-case chunking + decoding:
   the full client->server path minus the socket. *)
let test_pipeline_roundtrip () =
  let splitter = Frame.Splitter.create () in
  let wire =
    Bytes.concat Bytes.empty
      (List.map (fun r -> Frame.encode (Message.encode_request r)) all_requests)
  in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Frame.Splitter.feed splitter (Bytes.make 1 c) ~len:1;
      match Frame.Splitter.next splitter with
      | Some payload -> got := Message.decode_request payload :: !got
      | None -> ())
    wire;
  Alcotest.(check (list request)) "all requests, in order" all_requests
    (List.rev !got)

(* Properties: the replication family over random LSNs and payloads —
   the frames push in particular carries raw WAL bytes, which must
   survive the codec bit-for-bit at any size and content. *)

let prop_repl_request_roundtrip =
  QCheck.Test.make ~name:"repl request roundtrip" ~count:200
    QCheck.(make Gen.(pair (int_bound 2) nat))
    (fun (pick, lsn) ->
      let req : Message.request =
        match pick with
        | 0 -> Repl_subscribe { from_lsn = lsn }
        | 1 -> Repl_ack { lsn }
        | _ -> Promote
      in
      Message.decode_request (Message.encode_request req) = req)

let prop_repl_push_roundtrip =
  QCheck.Test.make ~name:"repl push/reply roundtrip" ~count:200
    QCheck.(
      make
        Gen.(
          triple (int_bound 2) nat
            (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 4096))))
    (fun (pick, lsn, payload) ->
      let msg : Message.server_msg =
        match pick with
        | 0 -> Push (Repl_frames { lsn; data = Bytes.of_string payload })
        | 1 -> Push (Repl_heartbeat { lsn })
        | _ -> Reply (Repl_ok { lsn })
      in
      Message.decode_server (Message.encode_server msg) = msg)

(* v4 snapshot-read family over random oids and attribute names. *)
let prop_snapshot_request_roundtrip =
  QCheck.Test.make ~name:"snapshot request roundtrip" ~count:200
    QCheck.(make Gen.(triple (int_bound 3) nat (string_size (int_bound 64))))
    (fun (pick, n, attr) ->
      let req : Message.request =
        match pick with
        | 0 -> Begin_snapshot
        | 1 -> End_snapshot
        | 2 -> Read_attr { oid = oid n; attr }
        | _ -> Ancestors_of (oid n)
      in
      Message.decode_request (Message.encode_request req) = req)

(* Addresses -------------------------------------------------------------------- *)

let test_addr_parse () =
  let check s expect =
    Alcotest.(check bool) s true (Addr.parse s = expect)
  in
  check "host:4617" (Addr.Tcp ("host", 4617));
  check ":4617" (Addr.Tcp ("127.0.0.1", 4617));
  check "4617" (Addr.Tcp ("127.0.0.1", 4617));
  check "/tmp/orion.sock" (Addr.Unix_path "/tmp/orion.sock");
  check "./relative.sock" (Addr.Unix_path "./relative.sock");
  Alcotest.(check bool) "garbage rejected" true
    (match Addr.parse "not-an-address" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_protocol"
    [
      ( "frames",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte-by-byte chunking" `Quick test_frame_byte_by_byte;
          Alcotest.test_case "partial frame pends" `Quick
            test_frame_partial_is_not_ready;
          Alcotest.test_case "corrupt checksum" `Quick test_frame_corrupt_checksum;
          Alcotest.test_case "insane length" `Quick test_frame_insane_length;
        ] );
      ( "messages",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "server msg roundtrip" `Quick test_server_msg_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "framed pipeline" `Quick test_pipeline_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_repl_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_repl_push_roundtrip;
          QCheck_alcotest.to_alcotest prop_snapshot_request_roundtrip;
        ] );
      ("addresses", [ Alcotest.test_case "parse" `Quick test_addr_parse ]);
    ]
