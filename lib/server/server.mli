(** The network server: a domain-sharded reactor serving many clients
    over one database.

    Sessions are dealt out to [domains] {e shards} (by session id); each
    shard is a classic single-threaded reactor — it multiplexes its
    connections with [Unix.select], owns its session table, and never
    blocks a thread on a database lock.  Socket I/O and frame decoding
    are fully parallel across shards; the transactional core (database,
    lock table, transaction bookkeeping) is serialized under one service
    mutex, taken once per shard tick around the whole dispatch batch
    ([txsvc.*] instruments measure what it costs).  With [domains = 1]
    everything collapses to the original single-threaded reactor,
    byte-for-byte on the wire.

    Each connection is a {e session} holding at most one open
    {!Orion_tx.Tx_manager} transaction.  A lock request that comes back
    [`Blocked] {e parks} the session — the request is left queued in the
    lock table, no reply is sent, and the reactor moves on.  When
    another session's commit or abort unblocks the transaction, its home
    shard re-polls the parked request and answers [Granted] (cross-shard
    wakeups travel over shard inboxes).  Deadlock cycles are broken by
    aborting the youngest transaction in the cycle; the victim's session
    is told with a [Deadlock_victim] push (plus a [Conflict] error reply
    if it was parked) and can retry.

    Group commit: with a log attached and [group_commit_window > 0],
    commits are submitted to a batching committer instead of syncing
    inline.  Commits that arrive within the window coalesce into one
    log append + one [fsync], sealed by a single commit-group record —
    all-or-none on replay, so a crash mid-batch aborts the whole batch
    (see {!Orion_wal.Group_commit}).  Locks stay held across the batch
    sync (strict 2PL); the client's commit reply is sent only after the
    sync, so an acknowledged commit is always durable.

    Admission control: at most [max_sessions] concurrent sessions
    across all shards (excess connections are refused with
    [Too_many_sessions]); at most [queue_limit] decoded-but-unprocessed
    requests per session, after which the shard stops reading the
    socket (TCP backpressure).  A session parked longer than
    [lock_timeout] has its transaction aborted and gets a [Timeout]
    error; a session idle longer than [idle_timeout] is closed.

    {!stop} drains the server: no new connections, every session gets a
    [Goodbye] push, open transactions are aborted, in-flight group
    commits are flushed to the log, buffered replies are flushed, and
    {!run} returns — the caller then checkpoints the database
    ({!Orion_core.Persist.save}) and retires the log, exactly like a
    clean CLI exit.  {!kill} makes {!run} return without any of that —
    it simulates a crash for recovery tests. *)

type addr = Orion_protocol.Addr.t = Tcp of string * int | Unix_path of string

val pp_addr : Format.formatter -> addr -> unit

val parse_addr : string -> addr
(** See {!Orion_protocol.Addr.parse}: ["host:port"], [":port"]
    (localhost), a bare port number, or a filesystem path (anything
    containing [/]) as a Unix-domain socket.
    @raise Invalid_argument on none of those. *)

type config = Shard.config = {
  max_sessions : int;  (** admission bound, across all shards (default 64) *)
  queue_limit : int;  (** per-session pending-request bound (default 16) *)
  idle_timeout : float option;  (** seconds; [None] = never (default) *)
  lock_timeout : float option;  (** max lock wait (default [Some 30.]) *)
  metrics_interval : float option;
      (** emit a one-line metrics digest to stderr this often;
          [None] = never (default) *)
  domains : int;
      (** reactor shards, each on its own domain (default 1; values
          < 1 are clamped to 1) *)
  group_commit_window : float option;
      (** group-commit batching window in seconds; [None] or [0.]
          syncs every commit inline (default [None]).  Only effective
          with a log attached. *)
  lock_partitions : int;
      (** lock-table partitions, keyed by composite root (class
          granules by storage segment, instance granules by oid hash),
          each behind its own mutex with its own
          [txsvc.partition{p=K}.*] instruments; [0] (the default)
          means one per domain.  [1] is the pre-partitioning single
          table, byte-for-byte. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?wal:Orion_wal.Wal.t ->
  ?repl:Tx_service.repl ->
  Orion_dsl.Eval.env ->
  addr ->
  t
(** Bind and listen.  The environment's database is the one served;
    its bindings ([setq] names) are shared by every session.  [?wal]
    is the log already attached to the database — transactions commit
    through it ({!Orion_tx.Tx_manager}).  [?repl] is the replication
    role (default [Standalone]): a [Primary] tails its log for
    subscribed replicas, a [Replica_of] serves read-only sessions
    while its applier mirrors the primary (and can be promoted).
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> addr
(** The bound address — with [Tcp (host, 0)] the actual port. *)

val run : t -> unit
(** Run the reactor shards; returns after {!stop} or {!kill}, once
    every shard has exited and the group committer (if any) has been
    settled.  With [domains = 1] the reactor runs on the calling
    domain; otherwise each shard gets its own domain and the caller
    runs the acceptor loop.  Sets [SIGPIPE] to ignore. *)

val stop : t -> unit
(** Begin graceful shutdown.  Callable from a signal handler or
    another thread/domain (it only writes to self-pipes). *)

val kill : t -> unit
(** Make {!run} return as soon as possible without draining — the
    simulated [kill -9] for crash-recovery tests. *)

type stats = {
  accepted : int;
  rejected : int;  (** refused by admission control *)
  requests : int;  (** requests processed *)
  parks_total : int;  (** lifetime count of lock requests that parked *)
  parked : int;  (** gauge: sessions parked on a lock {e right now} *)
  deadlock_victims : int;
  lock_timeouts : int;
  idle_closes : int;
}

val stats : t -> stats

val session_count : t -> int

val service : t -> Tx_service.t
(** The shared transactional service (promotion state, service lock). *)

val role : t -> [ `Standalone | `Primary | `Replica ]
(** Current replication role — a node started as a replica reads
    [`Primary] once a [Promote] request lands. *)
