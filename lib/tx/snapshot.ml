open Orion_core

type capture = {
  image : Instance.t;  (* deep copy *)
  rrefs : Rref.t list;  (* as the database reported them (repr-agnostic) *)
}

type t = { mutable captures : capture Oid.Map.t }

let copy_gref (g : Rref.gref) = { g with Rref.count = g.count }

let capture_one db oid =
  match Database.find db oid with
  | None -> None
  | Some inst ->
      Some { image = Instance.copy inst; rrefs = Database.rrefs db oid }

let take db oids =
  let captures =
    List.fold_left
      (fun acc oid ->
        if Oid.Map.mem oid acc then acc
        else
          match capture_one db oid with
          | Some c -> Oid.Map.add oid c acc
          | None -> acc)
      Oid.Map.empty oids
  in
  { captures }

let extend t db oids =
  let fresh = ref [] in
  t.captures <-
    List.fold_left
      (fun acc oid ->
        if Oid.Map.mem oid acc then acc
        else
          match capture_one db oid with
          | Some c ->
              fresh := (oid, c) :: !fresh;
              Oid.Map.add oid c acc
          | None -> acc)
      t.captures oids;
  List.rev !fresh

let restore t db =
  Oid.Map.iter
    (fun oid { image; rrefs } ->
      (match Database.find db oid with
      | Some live ->
          live.Instance.attrs <- image.Instance.attrs;
          live.Instance.cc <- image.Instance.cc;
          live.Instance.cluster_with <- image.Instance.cluster_with;
          (match (live.Instance.kind, image.Instance.kind) with
          | Instance.Generic live_gi, Instance.Generic img_gi ->
              live_gi.Instance.versions <- img_gi.Instance.versions;
              live_gi.Instance.user_default <- img_gi.Instance.user_default;
              live_gi.Instance.next_version_no <- img_gi.Instance.next_version_no;
              live_gi.Instance.grefs <- List.map copy_gref img_gi.Instance.grefs
          | (Instance.Plain | Instance.Version _ | Instance.Generic _), _ -> ())
      | None ->
          (* The object was deleted during the transaction: resurrect the
             copy (a fresh record so later mutation cannot corrupt the
             snapshot).  Its store record is gone, so it must be
             re-placed at the next checkpoint. *)
          let fresh = Instance.copy image in
          fresh.Instance.rid <- None;
          Database.add db fresh);
      Database.set_rrefs db oid rrefs)
    t.captures;
  (* Values changed behind the object manager's back: tell listeners
     (indexes, watchers) to resynchronize. *)
  Database.emit db Database.Invalidated

let captured t = List.map fst (Oid.Map.bindings t.captures)
