module Eval = Orion_dsl.Eval
module Tx = Orion_tx.Tx_manager
module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex
module Tailer = Orion_replication.Tailer
module Replica = Orion_replication.Replica
open Orion_core

(* Cross-shard mail.  Shards never touch each other's session tables;
   anything that must happen on another shard's sessions travels as one
   of these, posted into that shard's inbox. *)
type peer_msg =
  | New_session of { sid : int; fd : Unix.file_descr }
      (* the acceptor assigned this connection to the shard *)
  | Resume of int list
      (* transactions owned by the shard were unblocked by a release
         elsewhere: re-poll their parked lock requests *)
  | Victim of { sid : int; tx_id : int; msg : string }
      (* another shard's deadlock breaker aborted a transaction owned
         by [sid]: deliver the bad news on its home shard *)
  | Commit_done of { sid : int; tx : Tx.tx; ok : bool; err : string }
      (* the group committer settled a submitted commit *)

(* Replication role.  [Primary] tails its log for subscribed replicas;
   [Replica_of] applies a primary's stream and refuses writes until
   {!promote} flips it into a [Primary].  [promote_gate] is the DDL
   gate the CLI configured for primaries, deferred until promotion
   (replicas run with an unconditionally-refusing gate instead). *)
type repl =
  | Standalone
  | Primary of Tailer.t
  | Replica_of of {
      replica : Replica.t;
      promote_gate : (Orion_schema.Schema.t -> unit) option;
    }

type t = {
  env : Eval.env;
  db : Database.t;
  manager : Tx.t;
  gc : Orion_wal.Group_commit.t option;
  mutable wal_attached : bool;
  mutable repl : repl;
  mutable read_only : bool;
  mu : Omutex.t;
  tx_owner : (int, int * int) Hashtbl.t;  (* tx id -> (shard, session id) *)
  mutable posters : (peer_msg -> unit) array;  (* indexed by shard *)
  next_sid : int Atomic.t;
  mutable schema_seen : int;
      (* Schema.version at the last checkpoint: schema DDL is
         non-transactional, so with a log attached it is only durable
         once a checkpoint absorbs it — taken as soon as the catalog
         changes and no transaction is open. *)
  (* Service-lock contention: the proof (or refutation) that one mutex
     around the transactional core is not the new bottleneck. *)
  acquires : Obs.counter;
  contended : Obs.counter;
  lock_wait_seconds : Obs.histogram;
  lock_hold_seconds : Obs.histogram;
  (* Server-wide instruments, shared by every shard. *)
  accepted : Obs.counter;
  rejected : Obs.counter;
  requests : Obs.counter;
  parks : Obs.counter;
  deadlock_victims : Obs.counter;
  lock_timeouts : Obs.counter;
  idle_closes : Obs.counter;
  lock_wait_hist : Obs.histogram;
  class_wait_hists : (string, Obs.histogram) Hashtbl.t;
  dispatch_hist : Obs.histogram;
}

let create ?wal ?group_commit_window ?(repl = Standalone) ?lock_partitions env =
  let db = Eval.database env in
  let manager = Tx.create ?wal ?lock_partitions db in
  let gc =
    match (wal, group_commit_window) with
    | Some wal, Some window when window > 0. ->
        Some
          (Orion_wal.Group_commit.create ~window
             ~on_sealed:(fun ~clock records ->
               Orion_mvcc.Version_store.publish_records
                 (Tx.version_store manager) ~clock records)
             wal)
    | _ -> None
  in
  {
    env;
    db;
    manager;
    gc;
    wal_attached = Option.is_some wal;
    repl;
    read_only = (match repl with Replica_of _ -> true | _ -> false);
    mu = Omutex.create Omutex.txsvc_core;
    tx_owner = Hashtbl.create 32;
    posters = [||];
    next_sid = Atomic.make 0;
    schema_seen = Orion_schema.Schema.version (Database.schema db);
    acquires = Obs.counter "txsvc.acquires";
    contended = Obs.counter "txsvc.contended";
    lock_wait_seconds = Obs.histogram "txsvc.wait_seconds";
    lock_hold_seconds = Obs.histogram "txsvc.hold_seconds";
    accepted = Obs.counter "server.accepted";
    rejected = Obs.counter "server.rejected";
    requests = Obs.counter "server.requests";
    parks = Obs.counter "server.parks_total";
    deadlock_victims = Obs.counter "server.deadlock_victims";
    lock_timeouts = Obs.counter "server.lock_timeouts";
    idle_closes = Obs.counter "server.idle_closes";
    lock_wait_hist = Obs.histogram "lock.wait_seconds";
    class_wait_hists = Hashtbl.create 16;
    dispatch_hist = Obs.histogram "server.dispatch_seconds";
  }

let set_posters t posters = t.posters <- posters

let post t ~shard msg = t.posters.(shard) msg

(* The serialization point of the transactional core: the database and
   the session-transaction bookkeeping ([tx_owner], group-commit
   submit, checkpoint policy).  The lock table itself is no longer
   under it — it is partitioned by composite root, each partition
   behind its own mutex with its own txsvc.partition{p=K}.*
   instruments (see {!Orion_locking.Lock_partitions}).  Each shard
   takes the core lock at most once per reactor tick, and only on
   ticks that have work for it, dispatching its whole batch of ready
   requests under one hold.  The wait/hold histograms and the
   contended counter measure exactly what this mutex costs. *)
let with_lock t f =
  let t0 = Unix.gettimeofday () in
  if not (Omutex.try_lock t.mu) then begin
    Obs.incr t.contended;
    Omutex.lock t.mu
  end;
  Obs.incr t.acquires;
  let acquired = Unix.gettimeofday () in
  Obs.observe t.lock_wait_seconds (acquired -. t0);
  Fun.protect
    ~finally:(fun () ->
      Obs.observe t.lock_hold_seconds (Unix.gettimeofday () -. acquired);
      Omutex.unlock t.mu)
    f

(* Transaction ownership (under the service lock). *)

let claim t ~tx_id ~shard ~sid = Hashtbl.replace t.tx_owner tx_id (shard, sid)
let disown t ~tx_id = Hashtbl.remove t.tx_owner tx_id
let owner t ~tx_id = Hashtbl.find_opt t.tx_owner tx_id
let open_txs t = Hashtbl.length t.tx_owner

let fresh_sid t = Atomic.fetch_and_add t.next_sid 1

let deadlock_check_due t = Tx.deadlock_check_due t.manager

(* Whether the catalog changed since the last checkpoint — the lock-free
   pre-check that lets an idle tick skip the core lock entirely.
   [maybe_checkpoint] re-reads both sides under the lock before acting. *)
let checkpoint_due t =
  Orion_schema.Schema.version (Database.schema t.db) <> t.schema_seen

(* Group commit helpers (under the service lock). *)

(* Nobody else can join the batch when no other transaction could still
   reach its commit point: waiting out the window would be pure added
   latency, so tell the committer to flush eagerly.  Only [Active]
   transactions count — a [Blocked] one is parked behind a lock the
   submitters still hold (strict 2PL keeps it parked across the
   durability point), and [Committing] ones are already in the batch.
   The submitter itself is [Committing] by the time this runs
   ({!Orion_tx.Tx_manager.submit_commit} first), so zero means solo. *)
let submit_is_eager t =
  match t.gc with None -> true | Some _ -> Tx.active_count t.manager = 0

let class_wait_hist t cls =
  match Hashtbl.find_opt t.class_wait_hists cls with
  | Some h -> h
  | None ->
      let h = Obs.histogram (Obs.labeled "lock.wait_seconds" ("class", cls)) in
      Hashtbl.replace t.class_wait_hists cls h;
      h

(* Checkpoint policy, unchanged from the single-domain server except
   for the group-commit quiescence condition: a checkpoint's truncation
   must never race a batch mid-flush (its unsealed records would be cut
   out from under the seal).  [tx_owner] keeps [Committing]
   transactions claimed until their [Commit_done], so emptiness almost
   implies committer quiescence — the explicit check closes the gap. *)
let maybe_checkpoint t =
  let v = Orion_schema.Schema.version (Database.schema t.db) in
  if
    v <> t.schema_seen
    && Hashtbl.length t.tx_owner = 0
    && (match t.gc with
       | Some gc -> Orion_wal.Group_commit.quiescent gc
       | None -> true)
  then begin
    if t.wal_attached then Orion_core.Persist.save t.db;
    t.schema_seen <- v
  end

(* Promote-on-demand (under the service lock — that is what orders the
   flip against the applier's in-flight batch and against every shard's
   dispatch).  Sequence: seal the applier; attach the local log to the
   serving database ([~truncate_on_checkpoint:false]: the log's byte
   offsets must stay valid — the promoted node is immediately a
   shippable primary) — the log is non-empty, so attach skips the base
   backup; late-bind the transaction manager's log; lift the read-only
   guards (Eval mutator, DDL gate); checkpoint once as a primary; and
   start tailing for downstream replicas of our own. *)
let promote t =
  match t.repl with
  | Standalone -> Error "not a replica (started without --replica-of)"
  | Primary _ -> Error "already a primary"
  | Replica_of { replica; promote_gate } ->
      if Replica.sealed replica then Error "promotion already in progress"
      else begin
        Replica.seal replica;
        let wal = Replica.wal replica in
        Orion_wal.Wal.attach ~snapshot_path:(Replica.db_path replica)
          ~truncate_on_checkpoint:false wal t.db;
        Tx.set_wal t.manager wal;
        t.wal_attached <- true;
        t.read_only <- false;
        Eval.set_mutator t.env None;
        Orion_schema.Schema.set_ddl_gate (Database.schema t.db) promote_gate;
        Orion_core.Persist.save t.db;
        t.schema_seen <- Orion_schema.Schema.version (Database.schema t.db);
        t.repl <- Primary (Tailer.create wal);
        Ok ()
      end

let shutdown_committer ~killed t =
  match t.gc with
  | None -> ()
  | Some gc ->
      if killed then Orion_wal.Group_commit.kill gc
      else Orion_wal.Group_commit.shutdown gc
