examples/design_authority.ml: Database Format Integrity List Object_manager Orion_authz Orion_core Orion_locking Orion_schema Orion_tx Value
