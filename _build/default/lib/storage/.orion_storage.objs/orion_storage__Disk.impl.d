lib/storage/disk.ml: Bytes Hashtbl Printf
