(** Object snapshots for transaction undo.

    A snapshot deep-copies the mutable state of a set of instances
    (attribute values, reverse references — inline or external —,
    version/generic bookkeeping).  Restoring re-adds deleted objects
    and rolls every captured field back; objects created after the
    snapshot are untouched (the transaction layer removes those
    separately). *)

open Orion_core

type t

val take : Database.t -> Oid.t list -> t

val extend : t -> Database.t -> Oid.t list -> unit
(** Capture more objects into the same snapshot (first capture of an
    OID wins, so a snapshot taken at operation start is preserved). *)

val restore : t -> Database.t -> unit

val captured : t -> Oid.t list
