module Checksum = Orion_storage.Checksum
module Obs = Orion_obs.Metrics

(* Direct observes, not spans: framing runs on client threads
   concurrently with the server reactor, and the span stack is
   single-threaded. *)
let encode_hist = Obs.histogram "frame.encode_seconds"
let decode_hist = Obs.histogram "frame.decode_seconds"

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun msg -> raise (Corrupt msg)) fmt

let header_size = 8

let max_payload = 16 * 1024 * 1024

let encode payload =
  let started = Unix.gettimeofday () in
  let len = Bytes.length payload in
  if len > max_payload then corrupt "frame payload too large (%d bytes)" len;
  let framed = Bytes.create (header_size + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int len);
  Bytes.set_int32_le framed 4 (Int32.of_int (Checksum.bytes payload));
  Bytes.blit payload 0 framed header_size len;
  Obs.observe encode_hist (Unix.gettimeofday () -. started);
  framed

module Splitter = struct
  (* A compacting accumulator: [buf.(pos .. len)] is the unconsumed
     stream.  Consumed prefixes are dropped lazily, when the live
     window is small relative to the dead one. *)
  type t = { mutable buf : Bytes.t; mutable pos : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; pos = 0; len = 0 }

  let buffered t = t.len - t.pos

  let compact t =
    if t.pos > 0 && (t.pos = t.len || t.pos >= Bytes.length t.buf / 2) then begin
      let live = buffered t in
      Bytes.blit t.buf t.pos t.buf 0 live;
      t.pos <- 0;
      t.len <- live
    end

  let feed t chunk ~len =
    compact t;
    let need = t.len + len in
    if need > Bytes.length t.buf then begin
      let cap = max need (2 * Bytes.length t.buf) in
      let buf = Bytes.create cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    Bytes.blit chunk 0 t.buf t.len len;
    t.len <- t.len + len

  let next t =
    if buffered t < header_size then None
    else begin
      let started = Unix.gettimeofday () in
      let len = Int32.to_int (Bytes.get_int32_le t.buf t.pos) land 0xffffffff in
      let sum = Int32.to_int (Bytes.get_int32_le t.buf (t.pos + 4)) land 0xffffffff in
      if len > max_payload then corrupt "bad frame length %d" len;
      if buffered t < header_size + len then None
      else begin
        let payload = Bytes.sub t.buf (t.pos + header_size) len in
        if Checksum.bytes payload <> sum then corrupt "frame checksum mismatch";
        t.pos <- t.pos + header_size + len;
        compact t;
        Obs.observe decode_hist (Unix.gettimeofday () -. started);
        Some payload
      end
    end
end
