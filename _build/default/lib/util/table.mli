(** ASCII table rendering.

    Used to print the paper's matrices (Figures 6, 7 and 8) and the
    experiment summary tables in a form directly comparable with the
    paper. *)

type t

val create : headers:string list -> t
(** A table whose first row is [headers]. *)

val add_row : t -> string list -> unit
(** Rows may be ragged; missing cells render empty.  Rows appear in
    insertion order. *)

val render : t -> string
(** Box-drawn rendering with every column padded to its widest cell. *)

val render_matrix :
  row_labels:string list ->
  col_labels:string list ->
  cell:(int -> int -> string) ->
  corner:string ->
  string
(** [render_matrix] renders a labelled square/rectangular matrix;
    [cell i j] supplies the content for row [i], column [j], and
    [corner] is printed in the top-left header cell. *)
