module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex

(* A commit submitted for batching: its pre-captured records, the
   counters it would seal with, and how to tell its shard the outcome.
   [notify] runs on the committer thread — implementations must only
   post to a shard inbox (or similar), never touch shard state. *)
type pending = {
  p_tx : int;
  p_records : Wal_record.t list;
  p_next_oid : int;
  p_clock : int;
  p_cc : int;
  p_notify : ok:bool -> err:string -> unit;
}

type t = {
  wal : Wal.t;
  window : float;
  on_sealed : (clock:int -> Wal_record.t list -> unit) option;
      (* runs on the committer thread after a batch's seal is durable,
         before any member is notified: the MVCC version store hooks in
         here, so a batch is visible to snapshots (atomically, at the
         one seal clock) no later than its locks release *)
  mu : Omutex.t;
  cond : Condition.t;
  mutable pending : pending list;  (* newest first *)
  mutable eager : bool;  (* no one else can join: flush without waiting *)
  mutable flushing : bool;
  mutable stopping : bool;
  mutable discard : bool;  (* kill-9: exit without flushing the tail *)
  mutable thread : Thread.t option;
  batches : Obs.counter;
  batched : Obs.counter;
  solo : Obs.counter;
  batch_hist : Obs.histogram;
}

let submit t ~tx ~records ~next_oid ~clock ~cc ~eager ~notify =
  Omutex.lock t.mu;
  if t.stopping then begin
    Omutex.unlock t.mu;
    invalid_arg "Group_commit.submit: committer is shutting down"
  end;
  t.pending <-
    {
      p_tx = tx;
      p_records = records;
      p_next_oid = next_oid;
      p_clock = clock;
      p_cc = cc;
      p_notify = notify;
    }
    :: t.pending;
  if eager then t.eager <- true;
  Condition.signal t.cond;
  Omutex.unlock t.mu

let pending_count t =
  Omutex.lock t.mu;
  let n = List.length t.pending + if t.flushing then 1 else 0 in
  Omutex.unlock t.mu;
  n

(* Write one batch: every member's records, one seal, one sync.  A solo
   member seals with a plain [Commit] — byte-identical to the direct
   path — so `--group-commit-window` changes nothing on disk until two
   commits actually coincide.  K > 1 seals with a single [Commit_group];
   recovery then replays the whole batch or (on a torn seal) none of it. *)
let flush_batch t batch =
  let batch = List.rev batch in
  let records = List.concat_map (fun p -> p.p_records) batch in
  let seal_clock = List.fold_left (fun acc p -> max acc p.p_clock) 0 batch in
  let seal =
    match batch with
    | [ p ] ->
        Wal_record.Commit
          { tx = p.p_tx; next_oid = p.p_next_oid; clock = p.p_clock; cc = p.p_cc }
    | ps ->
        let next_oid =
          List.fold_left (fun acc p -> max acc p.p_next_oid) 0 ps
        in
        let cc = List.fold_left (fun acc p -> max acc p.p_cc) 0 ps in
        Wal_record.Commit_group
          { txs = List.map (fun p -> p.p_tx) ps; next_oid; clock = seal_clock; cc }
  in
  let outcome =
    match Wal.log_batch t.wal ~records ~seal with
    | () -> Ok ()
    | exception e -> Error (Printexc.to_string e)
  in
  (match outcome with
  | Ok () ->
      (* Publish before notifying: members' locks must not release
         before the batch is visible to snapshot readers. *)
      (match t.on_sealed with
      | Some f -> f ~clock:seal_clock records
      | None -> ());
      Obs.incr t.batches;
      (match batch with
      | [ _ ] -> Obs.incr t.solo
      | ps -> Obs.incr t.batched ~by:(List.length ps));
      Obs.observe t.batch_hist (float_of_int (List.length batch))
  | Error _ -> ());
  List.iter
    (fun p ->
      match outcome with
      | Ok () -> p.p_notify ~ok:true ~err:""
      | Error err -> p.p_notify ~ok:false ~err)
    batch

let committer t () =
  let rec loop () =
    Omutex.lock t.mu;
    while t.pending = [] && not t.stopping do
      Omutex.wait t.cond t.mu
    done;
    if t.pending = [] && t.stopping then Omutex.unlock t.mu
    else begin
      let wait = (not t.eager) && (not t.stopping) && t.window > 0. in
      Omutex.unlock t.mu;
      (* The batching window: stay open for stragglers unless the
         submitter told us nobody else can join (no other transaction
         is in flight) — then the delay would be pure added latency. *)
      if wait then Thread.delay t.window;
      Omutex.lock t.mu;
      let batch = t.pending in
      t.pending <- [];
      t.eager <- false;
      t.flushing <- true;
      Omutex.unlock t.mu;
      flush_batch t batch;
      Omutex.lock t.mu;
      t.flushing <- false;
      Omutex.unlock t.mu;
      loop ()
    end
  in
  loop ();
  (* Shutdown: drain whatever arrived after the last wake-up — unless
     this is a simulated kill-9, where losing the un-synced tail is the
     whole point. *)
  if not t.discard then begin
    Omutex.lock t.mu;
    let tail = t.pending in
    t.pending <- [];
    Omutex.unlock t.mu;
    if tail <> [] then flush_batch t tail
  end

let create ?(window = 0.002) ?on_sealed wal =
  let t =
    {
      wal;
      window;
      on_sealed;
      mu = Omutex.create Omutex.group_commit;
      cond = Condition.create ();
      pending = [];
      eager = false;
      flushing = false;
      stopping = false;
      discard = false;
      thread = None;
      batches = Obs.counter "wal.group_commit.batches";
      batched = Obs.counter "wal.group_commit.batched_txs";
      solo = Obs.counter "wal.group_commit.solo_txs";
      batch_hist = Obs.histogram "wal.group_commit.batch_size";
    }
  in
  t.thread <- Some (Thread.create (committer t) ());
  t

let stop ~discard t =
  Omutex.lock t.mu;
  t.stopping <- true;
  t.discard <- discard;
  Condition.signal t.cond;
  Omutex.unlock t.mu;
  match t.thread with
  | Some th ->
      Thread.join th;
      t.thread <- None
  | None -> ()

let shutdown t = stop ~discard:false t
let kill t = stop ~discard:true t

let quiescent t = pending_count t = 0
