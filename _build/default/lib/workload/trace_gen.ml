open Orion_core
module Scheduler = Orion_tx.Scheduler
module Protocol = Orion_locking.Protocol

type config = { txs : int; ops_per_tx : int; update_ratio : float; seed : int }

let default = { txs = 16; ops_per_tx = 4; update_ratio = 0.3; seed = 7 }

let accesses rng config =
  List.init config.ops_per_tx (fun _ ->
      if Random.State.float rng 1.0 < config.update_ratio then Protocol.Update
      else Protocol.Read_)

let pick rng items = List.nth items (Random.State.int rng (List.length items))

let composite_scripts _db ~roots config =
  let rng = Random.State.make [| config.seed |] in
  List.init config.txs (fun _ ->
      List.map
        (fun access -> Scheduler.Lock_composite (pick rng roots, access))
        (accesses rng config))

let instance_scripts db ~roots config =
  let rng = Random.State.make [| config.seed |] in
  List.init config.txs (fun _ ->
      List.concat_map
        (fun access ->
          let root = pick rng roots in
          let members = root :: Traversal.components_of db root in
          List.map (fun oid -> Scheduler.Lock_instance (oid, access)) members)
        (accesses rng config))
