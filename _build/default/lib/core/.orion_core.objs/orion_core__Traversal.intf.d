lib/core/traversal.mli: Database Oid
