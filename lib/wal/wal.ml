open Orion_core
module Store = Orion_storage.Store
module Disk = Orion_storage.Disk
module R = Orion_storage.Bytes_rw.Reader
module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex
module Checksum = Orion_storage.Checksum

exception Crashed

type fault_kind = Fail | Torn

type fault = { kind : fault_kind; mutable remaining : int }

type t = {
  mutable buf : Buffer.t;
  (* The log buffer is shared between shard domains (via the mutator
     observers) and the group-commit committer thread; every buffer
     mutation or read happens under [mu].  The mutex is never held
     across a callback, so there is no nesting.  Ranked wal.log: held
     across the fsync-point by design — that cost is exactly what
     group commit amortizes. *)
  mu : Omutex.t;
  appends : Obs.counter;
  bytes_logged : Obs.counter;
  syncs : Obs.counter;
  truncations : Obs.counter;
  append_hist : Obs.histogram;
  sync_hist : Obs.histogram;
  mutable fault : fault option;
  mutable is_crashed : bool;
  mutable page_size : int option;
  mutable backing : string option;
  mutable durable : int;
      (* buffer length at the last sync: the durable LSN replication
         ships up to (bytes past it may still be torn by a crash) *)
}

let create () =
  {
    buf = Buffer.create 4096;
    mu = Omutex.create Omutex.wal_log;
    appends = Obs.counter "wal.appends";
    bytes_logged = Obs.counter "wal.bytes";
    syncs = Obs.counter "wal.syncs";
    truncations = Obs.counter "wal.truncations";
    append_hist = Obs.histogram "wal.append_seconds";
    sync_hist = Obs.histogram "wal.sync_seconds";
    fault = None;
    is_crashed = false;
    page_size = None;
    backing = None;
    durable = 0;
  }

let with_mu t f = Omutex.with_lock t.mu f

let size t = with_mu t (fun () -> Buffer.length t.buf)

let stats t : Database.wal_stats =
  {
    Database.appends = Obs.counter_value t.appends;
    bytes = Obs.counter_value t.bytes_logged;
    syncs = Obs.counter_value t.syncs;
    truncations = Obs.counter_value t.truncations;
  }

let inject_fault t spec =
  t.fault <-
    (match spec with
    | None -> None
    | Some (`Fail_after n) -> Some { kind = Fail; remaining = n }
    | Some (`Torn_after n) -> Some { kind = Torn; remaining = n })

let crashed t = t.is_crashed

let revive t =
  t.is_crashed <- false;
  t.fault <- None

let frame record =
  let payload = Wal_record.encode record in
  let len = Bytes.length payload in
  let framed = Bytes.create (8 + len) in
  Bytes.set_int32_le framed 0 (Int32.of_int len);
  Bytes.set_int32_le framed 4 (Int32.of_int (Checksum.bytes payload));
  Bytes.blit payload 0 framed 8 len;
  framed

let append_unlocked t record =
  if t.is_crashed then raise Crashed;
  let started = Unix.gettimeofday () in
  (* Remember the geometry: truncation restarts the log with it. *)
  (match record with
  | Wal_record.Genesis { page_size } -> t.page_size <- Some page_size
  | _ -> ());
  let framed = frame record in
  (match t.fault with
  | Some f when f.remaining <= 0 ->
      t.is_crashed <- true;
      (match f.kind with
      | Fail -> ()
      | Torn ->
          (* Half the frame reaches the log device: a torn tail. *)
          Buffer.add_subbytes t.buf framed 0 (Bytes.length framed / 2));
      raise Crashed
  | Some f -> f.remaining <- f.remaining - 1
  | None -> ());
  Buffer.add_bytes t.buf framed;
  Obs.incr t.appends;
  Obs.incr t.bytes_logged ~by:(Bytes.length framed);
  Obs.observe t.append_hist (Unix.gettimeofday () -. started)

let append t record = with_mu t (fun () -> append_unlocked t record)

let save_file_unlocked t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc t.buf);
  Sys.rename tmp path

let save_file t path = with_mu t (fun () -> save_file_unlocked t path)

let set_backing t path = t.backing <- path

let sync_unlocked t =
  if t.is_crashed then raise Crashed;
  Obs.incr t.syncs;
  (* With a backing file, a sync is a real fsync-point: the log bytes
     reach the filesystem, so a process crash loses at most the appends
     since the last commit/checkpoint. *)
  let started = Unix.gettimeofday () in
  (match t.backing with
  | Some path ->
      Omutex.blocking ~op:"wal.fsync" (fun () -> save_file_unlocked t path)
  | None -> ());
  t.durable <- Buffer.length t.buf;
  Obs.observe t.sync_hist (Unix.gettimeofday () -. started)

let sync t = with_mu t (fun () -> sync_unlocked t)

let tear t ~bytes =
  with_mu t (fun () ->
      let keep = max 0 (Buffer.length t.buf - bytes) in
      let surviving = Buffer.sub t.buf 0 keep in
      Buffer.clear t.buf;
      Buffer.add_string t.buf surviving;
      t.durable <- min t.durable keep)

let truncate t =
  with_mu t (fun () ->
      if t.is_crashed then raise Crashed;
      Buffer.clear t.buf;
      Obs.incr t.truncations;
      (match t.page_size with
      | Some page_size -> append_unlocked t (Wal_record.Genesis { page_size })
      | None -> ());
      (match t.backing with Some path -> save_file_unlocked t path | None -> ());
      t.durable <- Buffer.length t.buf)

let durable_lsn t = with_mu t (fun () -> t.durable)

(* Reading ------------------------------------------------------------------ *)

type scan = {
  records : Wal_record.t list;
  torn_tail : bool;
  valid_bytes : int;
}

let scan t =
  let data = with_mu t (fun () -> Buffer.to_bytes t.buf) in
  let total = Bytes.length data in
  let records = ref [] in
  let pos = ref 0 in
  let torn = ref false in
  (try
     while !pos < total do
       if total - !pos < 8 then begin
         torn := true;
         raise Exit
       end;
       let len = Int32.to_int (Bytes.get_int32_le data !pos) land 0xffffffff in
       let sum = Int32.to_int (Bytes.get_int32_le data (!pos + 4)) land 0xffffffff in
       if total - !pos - 8 < len then begin
         torn := true;
         raise Exit
       end;
       if Checksum.bytes ~pos:(!pos + 8) ~len data <> sum then begin
         torn := true;
         raise Exit
       end;
       (match Wal_record.decode (Bytes.sub data (!pos + 8) len) with
       | record -> records := record :: !records
       | exception R.Corrupt _ ->
           torn := true;
           raise Exit);
       pos := !pos + 8 + len
     done
   with Exit -> ());
  { records = List.rev !records; torn_tail = !torn; valid_bytes = !pos }

let contents t = with_mu t (fun () -> Buffer.to_bytes t.buf)

(* Streaming reads for replication: whole frames only, never past the
   durable point (bytes beyond it could still be torn away by a crash,
   and a replica must only mirror what the primary can survive). *)

let read_from t ~lsn ~max_bytes =
  with_mu t (fun () ->
      if lsn < 0 || lsn > t.durable then None
      else begin
        let header_u32 pos =
          (Char.code (Buffer.nth t.buf pos) lor
           (Char.code (Buffer.nth t.buf (pos + 1)) lsl 8) lor
           (Char.code (Buffer.nth t.buf (pos + 2)) lsl 16) lor
           (Char.code (Buffer.nth t.buf (pos + 3)) lsl 24))
          land 0xffffffff
        in
        let pos = ref lsn in
        let frames = ref 0 in
        let stop = ref false in
        while not !stop do
          if t.durable - !pos < 8 then stop := true
          else begin
            let len = header_u32 !pos in
            let frame_end = !pos + 8 + len in
            if
              frame_end > t.durable
              || (!frames > 0 && frame_end - lsn > max_bytes)
            then stop := true
            else begin
              pos := frame_end;
              incr frames
            end
          end
        done;
        if !frames = 0 then None
        else Some (Buffer.sub t.buf lsn (!pos - lsn) |> Bytes.of_string, !pos, !frames)
      end)

(* A pre-framed byte run shipped from a primary, appended verbatim so
   the replica's local log stays a byte mirror of the primary's. *)
let append_raw t data =
  with_mu t (fun () ->
      if t.is_crashed then raise Crashed;
      Buffer.add_bytes t.buf data;
      Obs.incr t.bytes_logged ~by:(Bytes.length data))

(* Decode a shipped batch back into records.  Raises [Failure] on a
   short or checksum-failed frame: shipped bytes were read below the
   sender's durable point, so damage here is a wire-level bug, not
   crash residue. *)
let decode_frames data =
  let total = Bytes.length data in
  let records = ref [] in
  let pos = ref 0 in
  while !pos < total do
    if total - !pos < 8 then failwith "Wal.decode_frames: short frame header";
    let len = Int32.to_int (Bytes.get_int32_le data !pos) land 0xffffffff in
    let sum = Int32.to_int (Bytes.get_int32_le data (!pos + 4)) land 0xffffffff in
    if total - !pos - 8 < len then failwith "Wal.decode_frames: short frame";
    if Checksum.bytes ~pos:(!pos + 8) ~len data <> sum then
      failwith "Wal.decode_frames: frame checksum mismatch";
    (match Wal_record.decode (Bytes.sub data (!pos + 8) len) with
    | record -> records := record :: !records
    | exception R.Corrupt msg -> failwith ("Wal.decode_frames: " ^ msg));
    pos := !pos + 8 + len
  done;
  List.rev !records

let restore_page_size t =
  match scan t with
  | { records = Wal_record.Genesis { page_size } :: _; _ } ->
      t.page_size <- Some page_size
  | _ -> ()

let of_bytes data =
  let t = create () in
  Buffer.add_bytes t.buf data;
  t.durable <- Bytes.length data;
  restore_page_size t;
  t

let load_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes (Bytes.of_string data)

(* Attachment --------------------------------------------------------------- *)

(* A base backup: the store's full physical state journaled as if every
   page and directory entry had just been written.  Needed when an empty
   log is attached to a store that already has history (a recovered or
   reloaded database): without it the log would not reach back to a
   complete base and log-only rebuild would be impossible. *)
let baseline t store =
  let disk = Store.disk store in
  Store.flush store;
  append t (Wal_record.Genesis { page_size = Disk.page_size disk });
  let allocated = (Disk.stats disk).Disk.allocated in
  for page_no = 0 to allocated - 1 do
    append t (Wal_record.Page_alloc { page_no });
    append t (Wal_record.Page_write { page_no; image = Disk.read disk page_no })
  done;
  for id = 0 to Store.segment_count store - 1 do
    append t (Wal_record.Segment_new { id });
    Store.iter_segment store id (fun rid _ ->
        append t (Wal_record.Record_put { rid }))
  done;
  match Store.catalog_page store with
  | Some page -> append t (Wal_record.Catalog_set { page })
  | None -> ()

let attach_store t store =
  let disk = Store.disk store in
  t.page_size <- Some (Disk.page_size disk);
  if Buffer.length t.buf = 0 then baseline t store;
  Disk.set_observer disk
    (Some (fun page_no image -> append t (Wal_record.Page_write { page_no; image })));
  Disk.set_alloc_observer disk
    (Some (fun page_no -> append t (Wal_record.Page_alloc { page_no })));
  Store.set_journal store
    (Some
       (function
       | Store.J_segment_new id -> append t (Wal_record.Segment_new { id })
       | Store.J_record_put rid -> append t (Wal_record.Record_put { rid })
       | Store.J_record_delete rid -> append t (Wal_record.Record_delete { rid })
       | Store.J_catalog_set page -> append t (Wal_record.Catalog_set { page })))

let attach ?snapshot_path ?(truncate_on_checkpoint = true) t db =
  attach_store t (Database.store db);
  Database.set_wal_stats_source db (Some (fun () -> stats t));
  Database.set_checkpoint_hook db
    (Some
       (function
       | Database.Ckpt_begin -> append t Wal_record.Checkpoint_begin
       | Database.Ckpt_end ->
           (* Force: every dirty page reaches the disk (and hence the
              log) before the checkpoint record seals the bracket.
              Checkpoints run under the service lock on purpose — the
              bracket must not interleave with mutators — so the fsync
              inside is a declared lockdep exemption. *)
           Omutex.allow_blocking "checkpoint-durability" @@ fun () ->
           let store = Database.store db in
           Store.flush store;
           (match snapshot_path with
           | Some path -> Store.save_file store path
           | None -> ());
           append t Wal_record.Checkpoint;
           sync t;
           (* Truncation is only safe once a snapshot holds the
              checkpointed state; without one the log stays the sole
              recovery source and must keep its full history.  A
              replication primary keeps the whole log even with a
              snapshot: its byte offsets are the stream's LSNs, and a
              replica subscribing from 0 needs the log to reach back to
              [Genesis]. *)
           (match snapshot_path with
           | Some _ when truncate_on_checkpoint -> truncate t
           | Some _ | None -> ())))

(* The after-image / tombstone records of a commit, without the sealing
   record: the direct path seals with [Commit] below; the group-commit
   committer batches several transactions' records under one
   [Commit_group] seal. *)
let commit_records db ~tx ~touched =
  List.map
    (fun oid ->
      match Database.find db oid with
      | Some inst ->
          Wal_record.Obj_put
            {
              tx;
              oid;
              cluster_with = inst.Instance.cluster_with;
              rrefs = Database.rrefs db oid;
              data = Codec.encode db inst;
            }
      | None -> Wal_record.Obj_delete { tx; oid })
    (List.sort_uniq Oid.compare touched)

(* One durability point for a pre-captured batch: every record, then the
   seal, then a single sync — all under the log mutex so a concurrent
   checkpoint or another committer cannot interleave inside the batch. *)
let log_batch t ~records ~seal =
  with_mu t (fun () ->
      List.iter (append_unlocked t) records;
      append_unlocked t seal;
      sync_unlocked t)

let log_commit t db ~tx ~touched =
  let records = commit_records db ~tx ~touched in
  let next_oid, clock = Database.counters db in
  let cc = Database.current_cc db in
  with_mu t (fun () ->
      List.iter (append_unlocked t) records;
      append_unlocked t (Wal_record.Commit { tx; next_oid; clock; cc });
      sync_unlocked t)
