(** Query predicates over objects and composite paths.

    ORION ([BANE87a]) evaluates queries against a class with predicates
    that may traverse nested attributes; here a {e path} is a sequence
    of attribute names followed from the candidate object, fanning out
    through set values and resolving dynamic bindings through default
    versions.  Comparisons over a path hold when {e some} resolved
    value satisfies them (existential semantics); [Forall] provides the
    universal form. *)

open Orion_core

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type path = string list

type t =
  | Const of bool
  | Cmp of comparison * path * Value.t
      (** some value reached by the path compares as given; only
          same-constructor primitive comparisons hold (no coercion) *)
  | Refers of path * Oid.t  (** some reached reference is this object *)
  | Has of path  (** the path reaches at least one non-null value *)
  | In_class of path * string
      (** some reached object is an instance of the class (subclasses
          included); the empty path tests the candidate itself *)
  | Component_of of Oid.t  (** the candidate is part of that object *)
  | And of t list
  | Or of t list
  | Not of t
  | Exists of path * t
      (** some object reached by the path satisfies the sub-predicate *)
  | Forall of path * t
      (** every object reached by the path does (vacuously true) *)

val pp : Format.formatter -> t -> unit

val resolve_path : Database.t -> Oid.t -> path -> Value.t list
(** Leaf values reached from the object: follows references between
    steps (through default versions for dynamic bindings), flattens
    sets, skips dangling references and missing attributes. *)

val eval : Database.t -> Oid.t -> t -> bool

val indexable : t -> (string * Value.t) option
(** [Some (attr, v)] when the predicate (or one conjunct of a top-level
    [And]) is an equality on a single-step path against a primitive
    value — the case an attribute index can serve. *)
