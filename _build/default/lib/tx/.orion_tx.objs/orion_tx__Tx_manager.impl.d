lib/tx/tx_manager.ml: Database Hashtbl Instance List Object_manager Oid Option Orion_core Orion_locking Snapshot String Traversal Value
