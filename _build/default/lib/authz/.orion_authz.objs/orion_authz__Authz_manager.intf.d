lib/authz/authz_manager.mli: Auth Database Format Oid Orion_core
