(* End-to-end tests of the network layer: reactor, sessions, parked
   transactions, deadlock resolution on the wire, admission control,
   backpressure, and crash recovery of a killed server.

   The server runs in a thread; clients run in other threads over a
   Unix-domain socket in a temp directory.  The reactor itself stays
   single-threaded — the threads here only stand in for separate client
   processes. *)

open Orion_core
module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Client = Orion_client
module Frame = Orion_protocol.Frame
module Message = Orion_protocol.Message
module Wal = Orion_wal.Wal
module Recovery = Orion_wal.Recovery
module Obs = Orion_obs.Metrics

let temp_dir () =
  let dir = Filename.temp_file "orion_server_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

(* ORION_TEST_DOMAINS reruns the whole suite against a sharded reactor
   (the CI matrix runs it at 1 and 4): every test that does not pick a
   domain count itself gets this one, so the single-domain behavioral
   contract is asserted verbatim against the multi-domain server. *)
let test_domains =
  match Sys.getenv_opt "ORION_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* ORION_TEST_LOCK_PARTITIONS does the same for the partitioned lock
   table (CI runs 1 and 4): 0, the default, leaves the config's auto
   value (one partition per domain). *)
let test_lock_partitions =
  match Sys.getenv_opt "ORION_TEST_LOCK_PARTITIONS" with
  | Some s -> ( try max 0 (int_of_string (String.trim s)) with _ -> 0)
  | None -> 0

(* Run [f addr] against a server serving a fresh env; the server is
   stopped and joined afterwards, and its database handed back for
   post-mortem assertions. *)
let with_server ?config ?wal ?env f =
  let dir = temp_dir () in
  let sock = Filename.concat dir "orion.sock" in
  let env =
    match env with
    | Some env -> env
    | None ->
        let env = Eval.create_env () in
        ignore (Eval.eval_program env schema_forms : Eval.v list);
        env
  in
  let config =
    let c = Option.value config ~default:Server.default_config in
    let c =
      if c.Server.domains = Server.default_config.Server.domains then
        { c with Server.domains = test_domains }
      else c
    in
    if
      c.Server.lock_partitions = Server.default_config.Server.lock_partitions
    then { c with Server.lock_partitions = test_lock_partitions }
    else c
  in
  let server = Server.create ~config ?wal env (Server.Unix_path sock) in
  let thread = Thread.create Server.run server in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        Server.stop server;
        Thread.join thread
      end)
    (fun () ->
      let result = f (Orion_protocol.Addr.Unix_path sock) server in
      Server.stop server;
      Thread.join thread;
      finished := true;
      (result, Eval.database env, Server.stats server))

let connect addr = Client.connect ~client_name:"test" addr

(* Raw frames over a socket, for protocol-level misbehavior the
   well-mannered client library cannot produce. *)
module Raw = struct
  type t = { fd : Unix.file_descr; splitter : Frame.Splitter.t }

  let connect addr =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Orion_protocol.Addr.to_sockaddr addr);
    { fd; splitter = Frame.Splitter.create () }

  let send t reqs =
    let wire =
      Bytes.concat Bytes.empty
        (List.map (fun r -> Frame.encode (Message.encode_request r)) reqs)
    in
    let off = ref 0 in
    while !off < Bytes.length wire do
      off := !off + Unix.write t.fd wire !off (Bytes.length wire - !off)
    done

  let rec recv t =
    match Frame.Splitter.next t.splitter with
    | Some payload -> Message.decode_server payload
    | None ->
        let chunk = Bytes.create 4096 in
        (match Unix.read t.fd chunk 0 4096 with
        | 0 -> failwith "raw: server closed"
        | n -> Frame.Splitter.feed t.splitter chunk ~len:n);
        recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* Basics ----------------------------------------------------------------------- *)

let test_handshake_and_basics () =
  let (), db, stats =
    with_server (fun addr _server ->
        let c = connect addr in
        Alcotest.(check int) "first session id" 0 (Client.session_id c);
        Client.ping c;
        let root =
          match Client.eval c "(make Assembly)" with
          | Message.Obj oid -> oid
          | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
        in
        let part =
          Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
            ~attrs:[ ("Name", Value.Str "bolt") ] ()
        in
        (* Live reads need a transaction (or snapshot) since the dirty-
           read fix: lock-protected inside a tx here. *)
        ignore (Client.begin_tx c : int);
        Alcotest.(check bool) "components-of sees the part" true
          (Client.components_of c root = [ part ]);
        Client.commit c;
        Client.close c)
  in
  Alcotest.(check int) "one session accepted" 1 stats.Server.accepted;
  Alcotest.(check int) "both objects server-side" 2 (Database.count db)

let test_tx_commit_visible_and_abort_undone () =
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let db = Eval.database env in
  let (), _, _ =
    with_server ~env (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        ignore (Client.begin_tx c1 : int);
        let committed = Client.make c1 ~cls:"Part" ~attrs:[ ("Name", Value.Str "kept") ] () in
        Client.commit c1;
        (* A second session sees the committed object... *)
        Alcotest.(check bool) "visible to c2" true
          (match Client.eval c2 "(count-objects)" with
          | Message.Num 1 -> true
          | _ -> false);
        (* ...while an aborted transaction leaves no trace. *)
        ignore (Client.begin_tx c2 : int);
        ignore (Client.make c2 ~cls:"Part" ~attrs:[ ("Name", Value.Str "undone") ] () : Oid.t);
        Client.abort c2;
        Alcotest.(check bool) "committed part survives" true
          (Database.exists db committed);
        Alcotest.(check int) "abort undid the create" 1 (Database.count db);
        (* Mutations written in the DSL surface, not the typed
           requests, are transactional too: the server routes the
           evaluator through the manager while a transaction is
           open. *)
        ignore (Client.begin_tx c2 : int);
        (match Client.eval c2 "(make Part :Name \"evald\")" with
        | Message.Obj _ -> ()
        | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v);
        Client.abort c2;
        Alcotest.(check int) "abort undid the evaluated create" 1
          (Database.count db);
        Client.close c1;
        Client.close c2)
  in
  ()

let test_wrong_version_rejected () =
  let (), _, _ =
    with_server (fun addr _server ->
        let raw = Raw.connect addr in
        Raw.send raw [ Message.Hello { version = 99; client = "from the future" } ];
        (match Raw.recv raw with
        | Message.Reply (Message.Error { code = Message.Unsupported_version; _ }) -> ()
        | _ -> Alcotest.fail "expected Unsupported_version");
        Raw.close raw)
  in
  ()

let test_hello_required_first () =
  let (), _, _ =
    with_server (fun addr _server ->
        let raw = Raw.connect addr in
        Raw.send raw [ Message.Ping ];
        (match Raw.recv raw with
        | Message.Reply (Message.Error { code = Message.Bad_request; _ }) -> ()
        | _ -> Alcotest.fail "expected Bad_request before hello");
        Raw.close raw)
  in
  ()

(* Admission control & backpressure --------------------------------------------- *)

let test_admission_control () =
  let config = { Server.default_config with max_sessions = 2 } in
  let (), _, stats =
    with_server ~config (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        (match connect addr with
        | exception Client.Error (Message.Too_many_sessions, _) -> ()
        | c3 ->
            Client.close c3;
            Alcotest.fail "third session admitted past the bound");
        Client.close c1;
        (* Closing a session frees a slot (the reactor needs a beat to
           process the goodbye). *)
        let rec retry n =
          match connect addr with
          | c -> Client.close c
          | exception Client.Error (Message.Too_many_sessions, _) when n > 0 ->
              Thread.delay 0.05;
              retry (n - 1)
        in
        retry 40;
        Client.close c2)
  in
  Alcotest.(check bool) "a rejection was counted" true (stats.Server.rejected >= 1)

let test_pipelined_burst_backpressure () =
  (* 40 pipelined requests against a queue bound of 4: the reactor must
     apply backpressure without dropping or reordering any of them. *)
  let config = { Server.default_config with queue_limit = 4 } in
  let (), _, stats =
    with_server ~config (fun addr _server ->
        let raw = Raw.connect addr in
        let n = 40 in
        Raw.send raw
          (Message.Hello { version = Message.version; client = "burst" }
          :: List.init n (fun _ -> Message.Ping));
        (match Raw.recv raw with
        | Message.Reply (Message.Welcome _) -> ()
        | _ -> Alcotest.fail "expected welcome");
        for i = 1 to n do
          match Raw.recv raw with
          | Message.Reply Message.Pong -> ()
          | _ -> Alcotest.failf "reply %d is not pong" i
        done;
        Raw.close raw)
  in
  Alcotest.(check int) "all requests processed" 41 stats.Server.requests

(* Stats over the wire ----------------------------------------------------------- *)

(* One [Stats] request returns a snapshot spanning every subsystem:
   lock table, buffer pool, disk, edge cache, WAL (zeroed when the
   server runs without one) and the server's own counters, plus the
   latency histograms. *)
let test_stats_over_the_wire () =
  let (), _, _ =
    with_server (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let root =
          match Client.eval c1 "(make Assembly)" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        (* Generate traffic on every subsystem: a composite build and
           traversal, plus a contended lock that parks c2. *)
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore
          (Client.make c1 ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str "probe") ] ()
            : Oid.t);
        ignore (Client.begin_tx c2 : int);
        let waiter =
          Thread.create (fun () -> Client.lock_composite c2 ~root Message.Read) ()
        in
        Thread.delay 0.2;
        Client.commit c1;
        Thread.join waiter;
        Client.commit c2;
        ignore (Client.begin_tx c1 : int);
        ignore (Client.components_of c1 root : Oid.t list);
        Client.commit c1;
        let snap = Client.stats c1 in
        let counter name =
          match Obs.find_counter snap name with
          | Some v -> v
          | None -> Alcotest.failf "counter %s missing from snapshot" name
        in
        (* Activity where the workload produced it... *)
        Alcotest.(check bool) "lock acquisitions" true (counter "lock.acquisitions" > 0);
        Alcotest.(check bool) "a block was counted" true (counter "lock.blocks" > 0);
        Alcotest.(check bool) "requests served" true (counter "server.requests" > 0);
        Alcotest.(check bool) "a park was counted" true
          (counter "server.parks_total" > 0);
        (* ...and mere presence where it need not have (cold caches,
           no WAL attached: the cells exist, zeroed). *)
        List.iter
          (fun name -> ignore (counter name : int))
          [
            "pool.hits"; "pool.misses"; "disk.reads"; "disk.writes";
            "edge_cache.hits"; "edge_cache.misses"; "wal.appends"; "wal.syncs";
          ];
        Alcotest.(check (option int)) "sessions gauge" (Some 2)
          (Obs.find_gauge snap "server.sessions");
        Alcotest.(check (option int)) "parked gauge back to 0" (Some 0)
          (Obs.find_gauge snap "server.parked");
        (* The three load-bearing latency histograms, lock wait with a
           real observation from the park above. *)
        (match Obs.find_histogram snap "lock.wait_seconds" with
        | Some h ->
            Alcotest.(check bool) "lock wait observed" true (h.Obs.count >= 1);
            Alcotest.(check bool) "waited roughly the park time" true
              (h.Obs.max >= 0.1)
        | None -> Alcotest.fail "lock.wait_seconds missing");
        (match Obs.find_histogram snap "server.dispatch_seconds" with
        | Some h -> Alcotest.(check bool) "dispatches timed" true (h.Obs.count > 0)
        | None -> Alcotest.fail "server.dispatch_seconds missing");
        Alcotest.(check bool) "wal.append_seconds present" true
          (Obs.find_histogram snap "wal.append_seconds" <> None);
        Client.close c1;
        Client.close c2)
  in
  ()

(* Parked transactions ----------------------------------------------------------- *)

let test_park_and_wakeup () =
  let (), _, stats =
    with_server (fun addr server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let root =
          match Client.eval c1 "(make Assembly)" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore (Client.begin_tx c2 : int);
        let t0 = Unix.gettimeofday () in
        let granted_after = ref 0. in
        let waiter =
          Thread.create
            (fun () ->
              (* Parks server-side; this client thread just blocks. *)
              Client.lock_composite c2 ~root Message.Update;
              granted_after := Unix.gettimeofday () -. t0)
            ()
        in
        Thread.delay 0.3;
        (* Regression: [parked] is a gauge over live sessions, not a
           lifetime counter — it must read 1 while c2 waits... *)
        Alcotest.(check int) "gauge is 1 while parked" 1
          (Server.stats server).Server.parked;
        Client.commit c1;
        Thread.join waiter;
        Alcotest.(check bool) "granted only after the commit" true
          (!granted_after >= 0.25);
        (* ...and return to 0 once the wait is granted. *)
        Alcotest.(check int) "gauge returns to 0 after resume" 0
          (Server.stats server).Server.parked;
        Client.commit c2;
        Client.close c1;
        Client.close c2)
  in
  Alcotest.(check bool) "the wait was a park" true (stats.Server.parks_total >= 1);
  Alcotest.(check int) "no session still parked" 0 stats.Server.parked

let test_deadlock_victim_on_the_wire () =
  let (), _, stats =
    with_server (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let oid_of c form =
          match Client.eval c form with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        let a = oid_of c1 "(setq a (make Assembly))" in
        let b = oid_of c1 "(setq b (make Assembly))" in
        ignore (Client.begin_tx c1 : int);
        ignore (Client.begin_tx c2 : int);
        Client.lock_composite c1 ~root:a Message.Update;
        Client.lock_composite c2 ~root:b Message.Update;
        (* c1 parks waiting for b... *)
        let c1_result = ref `Pending in
        let waiter =
          Thread.create
            (fun () ->
              match Client.lock_composite c1 ~root:b Message.Update with
              | () -> c1_result := `Granted
              | exception Client.Error (code, _) -> c1_result := `Error code)
            ()
        in
        Thread.delay 0.2;
        (* ...and c2 closing the cycle makes itself the youngest
           transaction in it: the victim.  Its own lock call reports
           the conflict. *)
        (match Client.lock_composite c2 ~root:a Message.Update with
        | () -> Alcotest.fail "victim's lock cannot be granted"
        | exception Client.Error (Message.Conflict, _) -> ());
        Thread.join waiter;
        Alcotest.(check bool) "survivor's lock granted" true
          (!c1_result = `Granted);
        (* The push arrived alongside the error reply. *)
        Alcotest.(check bool) "victim got the deadlock push" true
          (List.exists
             (function Message.Deadlock_victim _ -> true | _ -> false)
             (Client.notices c2));
        Client.commit c1;
        (* The victim can retry immediately on the same connection. *)
        ignore (Client.begin_tx c2 : int);
        Client.lock_composite c2 ~root:a Message.Update;
        Client.commit c2;
        Client.close c1;
        Client.close c2)
  in
  Alcotest.(check int) "one victim counted" 1 stats.Server.deadlock_victims

let test_lock_timeout () =
  let config = { Server.default_config with lock_timeout = Some 0.3 } in
  let (), _, stats =
    with_server ~config (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let root =
          match Client.eval c1 "(make Assembly)" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore (Client.begin_tx c2 : int);
        let t0 = Unix.gettimeofday () in
        (match Client.lock_composite c2 ~root Message.Update with
        | () -> Alcotest.fail "lock cannot be granted while c1 holds it"
        | exception Client.Error (Message.Timeout, _) -> ());
        Alcotest.(check bool) "timed out around the configured limit" true
          (let dt = Unix.gettimeofday () -. t0 in
           dt >= 0.25 && dt < 3.);
        (* The holder is unaffected; the timed-out session can retry
           after the holder finishes. *)
        Client.commit c1;
        ignore (Client.begin_tx c2 : int);
        Client.lock_composite c2 ~root Message.Update;
        Client.commit c2;
        Client.close c1;
        Client.close c2)
  in
  Alcotest.(check int) "one timeout counted" 1 stats.Server.lock_timeouts

(* Regression: the holder deletes the contested object and commits
   while another session is parked waiting for it.  The commit's
   wake-up re-derives the waiter's lock set from the (now gone) root;
   that must surface as a Conflict reply to the waiter — aborting its
   transaction — not as an exception crashing the reactor. *)
let test_holder_deletes_contested_target () =
  let (), _, _ =
    with_server (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let root =
          match Client.eval c1 "(setq r (make Assembly))" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore (Client.begin_tx c2 : int);
        let c2_result = ref `Pending in
        let waiter =
          Thread.create
            (fun () ->
              match Client.lock_composite c2 ~root Message.Update with
              | () -> c2_result := `Granted
              | exception Client.Error (code, _) -> c2_result := `Error code)
            ()
        in
        Thread.delay 0.2;
        (match Client.eval c1 "(delete r)" with
        | Message.Unit -> ()
        | v -> Alcotest.failf "unexpected delete result %a" Message.pp_v v);
        Client.commit c1;
        Thread.join waiter;
        Alcotest.(check bool) "waiter got a conflict" true
          (!c2_result = `Error Message.Conflict);
        (* The server survived and the waiter's session is usable:
           its transaction was aborted with the conflict, so a fresh
           one can start right away. *)
        Client.ping c2;
        ignore (Client.begin_tx c2 : int);
        Client.commit c2;
        Client.close c1;
        Client.close c2)
  in
  ()

(* The 32-client workload -------------------------------------------------------- *)

let test_concurrent_workload_serializable () =
  let clients = 32 and ops = 5 in
  let (), db, stats =
    with_server (fun addr _server ->
        let c0 = connect addr in
        let root =
          match Client.eval c0 "(setq shared (make Assembly))" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        Client.close c0;
        let failures = Queue.create () in
        let failures_mu = Mutex.create () in
        let worker i () =
          try
            let c = connect addr in
            for j = 1 to ops do
              (* Conflict-heavy: every op contends for the same root's
                 X lock, so the parts append strictly one at a time. *)
              let rec attempt retries =
                ignore (Client.begin_tx c : int);
                match
                  Client.lock_composite c ~root Message.Update;
                  ignore
                    (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                       ~attrs:
                         [ ("Name", Value.Str (Printf.sprintf "p-%d-%d" i j)) ]
                       ()
                      : Oid.t);
                  Client.commit c
                with
                | () -> ()
                | exception Client.Error ((Message.Conflict | Message.Timeout), _)
                  when retries > 0 ->
                    (* The transaction is already aborted server-side. *)
                    attempt (retries - 1)
              in
              attempt 5
            done;
            Client.close c
          with e ->
            Mutex.lock failures_mu;
            Queue.push (i, Printexc.to_string e) failures;
            Mutex.unlock failures_mu
        in
        let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
        List.iter Thread.join threads;
        (match Queue.peek_opt failures with
        | Some (i, msg) -> Alcotest.failf "client %d failed: %s" i msg
        | None -> ());
        (* Serializable outcome: every committed append is present,
           none duplicated, under a still-consistent database. *)
        let c = connect addr in
        ignore (Client.begin_tx c : int);
        let parts = Client.components_of c root in
        Client.commit c;
        Alcotest.(check int) "all appends present"
          (clients * ops) (List.length parts);
        Alcotest.(check int) "no duplicate components"
          (List.length parts)
          (List.length (List.sort_uniq Oid.compare parts));
        Client.close c)
  in
  Alcotest.(check int) "every session admitted" 34 stats.Server.accepted;
  (match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

(* Crash and recovery ------------------------------------------------------------ *)

let test_kill_then_recover () =
  let dir = temp_dir () in
  let wal_path = Filename.concat dir "crash.wal" in
  let db = Database.create () in
  let env = Eval.create_env ~db () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach wal db;
  Wal.set_backing wal (Some wal_path);
  (* Checkpoint once so the log holds the catalog (schema + seed). *)
  Persist.save db;
  let committed, killed_count =
    let sock = Filename.concat dir "orion.sock" in
    let config = { Server.default_config with domains = test_domains } in
    let server = Server.create ~config ~wal env (Server.Unix_path sock) in
    let thread = Thread.create Server.run server in
    let addr = Orion_protocol.Addr.Unix_path sock in
    let c1 = connect addr in
    let c2 = connect addr in
    let make_part c name =
      ignore (Client.begin_tx c : int);
      let oid = Client.make c ~cls:"Part" ~attrs:[ ("Name", Value.Str name) ] () in
      Client.commit c;
      oid
    in
    let p1 = make_part c1 "durable-1" in
    let p2 = make_part c2 "durable-2" in
    (* The same through the evaluator: a form evaluated inside an open
       transaction routes through the manager, so its after-image must
       reach the log at commit exactly like a typed make. *)
    ignore (Client.begin_tx c1 : int);
    let p3 =
      match Client.eval c1 "(make Part :Name \"durable-3\")" with
      | Message.Obj oid -> oid
      | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
    in
    Client.commit c1;
    (* An uncommitted transaction in flight at the moment of the crash:
       its create must NOT survive recovery. *)
    ignore (Client.begin_tx c1 : int);
    ignore
      (Client.make c1 ~cls:"Part" ~attrs:[ ("Name", Value.Str "in-flight") ] ()
        : Oid.t);
    let count_before = Database.count db in
    (* kill -9: no drain, no checkpoint, no goodbye. *)
    Server.kill server;
    Thread.join thread;
    (try Client.close c1 with _ -> ());
    (try Client.close c2 with _ -> ());
    ([ p1; p2; p3 ], count_before)
  in
  ignore killed_count;
  (* Recover from the on-disk log alone, like `orion recover` would. *)
  let recovered, rstats = Recovery.replay (Wal.load_file wal_path) in
  (* The in-flight transaction never reached the log — after-images are
     appended only at commit — so the only evidence expected of it is
     its absence below. *)
  Alcotest.(check int) "all committed transactions redone" 3
    rstats.Recovery.committed_txs;
  List.iter
    (fun oid ->
      Alcotest.(check bool)
        (Format.asprintf "committed %a survived" Oid.pp oid)
        true (Database.exists recovered oid))
    committed;
  let parts cls_db =
    List.length (Database.instances_of cls_db ~subclasses:false "Part")
  in
  Alcotest.(check int) "exactly the committed parts" 3 (parts recovered);
  (match Integrity.check recovered with
  | [] -> ()
  | violations ->
      Alcotest.failf "recovered integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

(* Multi-domain shards ------------------------------------------------------------ *)

(* The 32-client conflict-heavy workload against an explicitly sharded
   reactor: serializability must be indistinguishable from the
   single-domain server (one service lock guards the transactional
   core; the shards only parallelize I/O). *)
let test_multi_domain_workload_serializable () =
  let clients = 32 and ops = 3 in
  let config = { Server.default_config with domains = 4 } in
  let (), db, stats =
    with_server ~config (fun addr _server ->
        let c0 = connect addr in
        let root =
          match Client.eval c0 "(setq shared (make Assembly))" with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        Client.close c0;
        let failures = Queue.create () in
        let failures_mu = Mutex.create () in
        let worker i () =
          try
            let c = connect addr in
            for j = 1 to ops do
              let rec attempt retries =
                ignore (Client.begin_tx c : int);
                match
                  Client.lock_composite c ~root Message.Update;
                  ignore
                    (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                       ~attrs:
                         [ ("Name", Value.Str (Printf.sprintf "m-%d-%d" i j)) ]
                       ()
                      : Oid.t);
                  Client.commit c
                with
                | () -> ()
                | exception Client.Error ((Message.Conflict | Message.Timeout), _)
                  when retries > 0 ->
                    attempt (retries - 1)
              in
              attempt 5
            done;
            Client.close c
          with e ->
            Mutex.lock failures_mu;
            Queue.push (i, Printexc.to_string e) failures;
            Mutex.unlock failures_mu
        in
        let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
        List.iter Thread.join threads;
        (match Queue.peek_opt failures with
        | Some (i, msg) -> Alcotest.failf "client %d failed: %s" i msg
        | None -> ());
        let c = connect addr in
        ignore (Client.begin_tx c : int);
        let parts = Client.components_of c root in
        Client.commit c;
        Alcotest.(check int) "all appends present" (clients * ops)
          (List.length parts);
        Alcotest.(check int) "no duplicate components" (List.length parts)
          (List.length (List.sort_uniq Oid.compare parts));
        Client.close c)
  in
  Alcotest.(check int) "every session admitted" 34 stats.Server.accepted;
  (match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

(* Two sessions that land on the same shard of a 4-shard server (sids 0
   and 4, both ≡ 0 mod 4) deadlock each other: detection and victim
   notification must work when both the cycle's sessions share one
   reactor — the cross-shard case is what the ORION_TEST_DOMAINS=4 run
   of the generic deadlock test exercises. *)
let test_same_shard_deadlock () =
  let config = { Server.default_config with domains = 4 } in
  let (), _, stats =
    with_server ~config (fun addr _server ->
        (* Five connections: sids 0..4; keep 0 and 4 (shard 0). *)
        let c0 = connect addr in
        let spacers = List.init 3 (fun _ -> connect addr) in
        let c4 = connect addr in
        let oid_of c form =
          match Client.eval c form with
          | Message.Obj oid -> oid
          | _ -> Alcotest.fail "make"
        in
        Alcotest.(check int) "sid 0" 0 (Client.session_id c0);
        Alcotest.(check int) "sid 4" 4 (Client.session_id c4);
        let a = oid_of c0 "(setq a (make Assembly))" in
        let b = oid_of c0 "(setq b (make Assembly))" in
        ignore (Client.begin_tx c0 : int);
        ignore (Client.begin_tx c4 : int);
        Client.lock_composite c0 ~root:a Message.Update;
        Client.lock_composite c4 ~root:b Message.Update;
        let c0_result = ref `Pending in
        let waiter =
          Thread.create
            (fun () ->
              match Client.lock_composite c0 ~root:b Message.Update with
              | () -> c0_result := `Granted
              | exception Client.Error (code, _) -> c0_result := `Error code)
            ()
        in
        Thread.delay 0.2;
        (match Client.lock_composite c4 ~root:a Message.Update with
        | () -> Alcotest.fail "victim's lock cannot be granted"
        | exception Client.Error (Message.Conflict, _) -> ());
        Thread.join waiter;
        Alcotest.(check bool) "survivor's lock granted" true
          (!c0_result = `Granted);
        Alcotest.(check bool) "victim got the deadlock push" true
          (List.exists
             (function Message.Deadlock_victim _ -> true | _ -> false)
             (Client.notices c4));
        Client.commit c0;
        ignore (Client.begin_tx c4 : int);
        Client.lock_composite c4 ~root:a Message.Update;
        Client.commit c4;
        Client.close c0;
        Client.close c4;
        List.iter Client.close spacers)
  in
  Alcotest.(check int) "one victim counted" 1 stats.Server.deadlock_victims

(* Group commit over the wire ----------------------------------------------------- *)

(* Two commits submitted while both transactions are open must coalesce
   into ONE batch: one log sync, one group seal.  The long window makes
   the coalescing deterministic — the committer is still holding the
   batch open when the second commit arrives; the eager-flush heuristic
   cannot fire because another transaction is open at each submit. *)
let test_group_commit_batches_on_the_wire () =
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach wal (Eval.database env);
  let config =
    {
      Server.default_config with
      domains = test_domains;
      group_commit_window = Some 0.5;
    }
  in
  let counter snap name =
    Option.value (Obs.find_counter snap name) ~default:0
  in
  let (), _, _ =
    with_server ~config ~wal ~env (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        ignore (Client.begin_tx c1 : int);
        ignore (Client.begin_tx c2 : int);
        ignore
          (Client.make c1 ~cls:"Part" ~attrs:[ ("Name", Value.Str "b1") ] ()
            : Oid.t);
        ignore
          (Client.make c2 ~cls:"Part" ~attrs:[ ("Name", Value.Str "b2") ] ()
            : Oid.t);
        let before = Client.stats c1 in
        let committers =
          [
            Thread.create (fun () -> Client.commit c1) ();
            Thread.create (fun () -> Client.commit c2) ();
          ]
        in
        List.iter Thread.join committers;
        let after = Client.stats c1 in
        Alcotest.(check int) "one sync for both commits" 1
          (counter after "wal.syncs" - counter before "wal.syncs");
        Alcotest.(check int) "one batch" 1
          (counter after "wal.group_commit.batches"
          - counter before "wal.group_commit.batches");
        Alcotest.(check int) "both commits batched" 2
          (counter after "wal.group_commit.batched_txs"
          - counter before "wal.group_commit.batched_txs");
        Client.close c1;
        Client.close c2)
  in
  ()

(* Acked-implies-durable under multi-domain load: concurrent sessions
   commit through the group committer, the server dies by kill -9, and
   replay of the surviving log must contain EVERY acknowledged commit —
   the reply is only sent after the batch sync. *)
let test_kill_recover_group_commit_multidomain () =
  let dir = temp_dir () in
  let wal_path = Filename.concat dir "gc-crash.wal" in
  let db = Database.create () in
  let env = Eval.create_env ~db () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach wal db;
  Wal.set_backing wal (Some wal_path);
  Persist.save db;
  let clients = 6 and ops = 3 in
  let acked =
    let sock = Filename.concat dir "orion.sock" in
    let config =
      {
        Server.default_config with
        domains = 4;
        group_commit_window = Some 0.002;
      }
    in
    let server = Server.create ~config ~wal env (Server.Unix_path sock) in
    let thread = Thread.create Server.run server in
    let addr = Orion_protocol.Addr.Unix_path sock in
    let acked = ref [] in
    let acked_mu = Mutex.create () in
    let worker i () =
      let c = connect addr in
      for j = 1 to ops do
        ignore (Client.begin_tx c : int);
        let oid =
          Client.make c ~cls:"Part"
            ~attrs:[ ("Name", Value.Str (Printf.sprintf "gc-%d-%d" i j)) ]
            ()
        in
        Client.commit c;
        (* The server acknowledged: from here the commit must survive
           any crash. *)
        Mutex.lock acked_mu;
        acked := oid :: !acked;
        Mutex.unlock acked_mu
      done
      (* No goodbye: the sessions are live when the server dies. *)
    in
    let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
    List.iter Thread.join threads;
    Server.kill server;
    Thread.join thread;
    !acked
  in
  Alcotest.(check int) "every commit acked" (clients * ops) (List.length acked);
  let recovered, rstats = Recovery.replay (Wal.load_file wal_path) in
  Alcotest.(check int) "every acked commit replayed" (clients * ops)
    rstats.Recovery.committed_txs;
  List.iter
    (fun oid ->
      Alcotest.(check bool)
        (Format.asprintf "acked %a durable" Oid.pp oid)
        true (Database.exists recovered oid))
    acked;
  (match Integrity.check recovered with
  | [] -> ()
  | violations ->
      Alcotest.failf "recovered integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

(* Graceful shutdown -------------------------------------------------------------- *)

let test_graceful_shutdown_notifies () =
  let (), _, _ =
    with_server (fun addr server ->
        let c = connect addr in
        Client.ping c;
        Server.stop server;
        (* The goodbye surfaces on a later interaction: as a push read
           before a reply, or implied by the drain's EOF (the push is
           flushed before the close, so Disconnected means it was
           delivered or the stream ended — either way the client
           learned). A ping racing the stop signal may still get a
           plain pong; retry until the drain is visible. *)
        let rec wait n =
          if n = 0 then false
          else
            match Client.ping c with
            | () ->
                if
                  List.exists
                    (function Message.Goodbye _ -> true | _ -> false)
                    (Client.notices c)
                then true
                else begin
                  Thread.delay 0.05;
                  wait (n - 1)
                end
            | exception Client.Disconnected _ -> true
        in
        Alcotest.(check bool) "told or disconnected" true (wait 40);
        (try Client.close c with _ -> ()))
  in
  ()

(* Live reads under the lock protocol ------------------------------------------- *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A read outside any transaction or snapshot would be a dirty read of
   the live database (no locks, no version): the server refuses it and
   says how to do it properly. *)
let test_live_read_refused_without_tx_or_snapshot () =
  let (), _, _ =
    with_server (fun addr _server ->
        let c = connect addr in
        let root =
          match Client.eval c "(make Assembly)" with
          | Message.Obj oid -> oid
          | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
        in
        (match Client.components_of c root with
        | oids ->
            Alcotest.failf "dirty read served %d components" (List.length oids)
        | exception Client.Error (Message.Bad_request, msg) ->
            Alcotest.(check bool) "refusal hints at begin-snapshot" true
              (contains_substring msg "begin-snapshot"));
        (match Client.read_attr c root "Name" with
        | _ -> Alcotest.fail "dirty read-attr served"
        | exception Client.Error (Message.Bad_request, _) -> ());
        (* The same reads are served inside a transaction (locked)... *)
        ignore (Client.begin_tx c : int);
        Alcotest.(check bool) "tx read served" true
          (Client.components_of c root = []);
        Client.commit c;
        (* ...and under a snapshot (versioned). *)
        ignore (Client.begin_snapshot c : int);
        Alcotest.(check bool) "snapshot read served" true
          (Client.components_of c root = []);
        Client.end_snapshot c;
        Client.close c)
  in
  ()

(* The regression the dirty-read fix exists for: a transactional live
   read against a composite mid-update must park until the writer
   commits, never observe the uncommitted write. *)
let test_live_read_blocks_on_uncommitted_write () =
  let (), _, _ =
    with_server (fun addr _server ->
        let c1 = connect addr in
        let c2 = connect addr in
        let root =
          match Client.eval c1 "(make Assembly)" with
          | Message.Obj oid -> oid
          | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
        in
        let part =
          Client.make c1 ~cls:"Part" ~parents:[ (root, "Parts") ]
            ~attrs:[ ("Name", Value.Str "committed") ] ()
        in
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore
          (Client.make c1 ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str "uncommitted") ] ()
            : Oid.t);
        ignore (Client.begin_tx c2 : int);
        let read_done = Atomic.make false in
        let got = ref Value.Null in
        let reader =
          Thread.create
            (fun () ->
              (* IS on class Part conflicts with the composite writer's
                 IXO: this parks until c1 commits. *)
              got := Client.read_attr c2 part "Name";
              Atomic.set read_done true)
            ()
        in
        Thread.delay 0.3;
        Alcotest.(check bool) "read parked behind the composite update" false
          (Atomic.get read_done);
        Client.commit c1;
        Thread.join reader;
        Alcotest.(check bool) "read served after the commit" true
          (!got = Value.Str "committed");
        Client.commit c2;
        let snap = Client.stats c2 in
        Alcotest.(check bool) "the wait was a park" true
          (Option.value (Obs.find_counter snap "server.parks_total") ~default:0
          >= 1);
        Client.close c1;
        Client.close c2)
  in
  ()

(* Snapshot pins of a kill-9ed client -------------------------------------------- *)

(* A client that vanishes mid-snapshot (process killed: the socket just
   closes, no end-snapshot, no bye) must not leak its version-store
   pin — the reactor's session teardown ends the snapshot, the store
   unpins and empties. *)
let test_client_kill_releases_snapshot_pins () =
  let gauge snap name = Option.value (Obs.find_gauge snap name) ~default:(-1) in
  let (), _, _ =
    with_server (fun addr _server ->
        let c = connect addr in
        let root =
          match Client.eval c "(make Assembly)" with
          | Message.Obj oid -> oid
          | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
        in
        let doomed = Raw.connect addr in
        Raw.send doomed
          [ Message.Hello { version = Message.version; client = "doomed" } ];
        (match Raw.recv doomed with
        | Message.Reply (Message.Welcome _) -> ()
        | _ -> Alcotest.fail "expected welcome");
        Raw.send doomed [ Message.Begin_snapshot ];
        (match Raw.recv doomed with
        | Message.Reply (Message.Result (Message.Num _)) -> ()
        | _ -> Alcotest.fail "expected snapshot clock");
        Alcotest.(check int) "snapshot pinned" 1
          (gauge (Client.stats c) "mvcc.open_snapshots");
        (* Commit writes the pinned snapshot watches: version chains
           accumulate behind its watermark. *)
        ignore (Client.begin_tx c : int);
        Client.lock_composite c ~root Message.Update;
        ignore
          (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str "pinned") ] ()
            : Oid.t);
        Client.commit c;
        Alcotest.(check bool) "chains held for the snapshot" true
          (gauge (Client.stats c) "mvcc.chains" > 0);
        (* kill -9 the client: raw close, mid-snapshot. *)
        Raw.close doomed;
        let rec wait n =
          if gauge (Client.stats c) "mvcc.open_snapshots" = 0 then true
          else if n = 0 then false
          else begin
            Thread.delay 0.05;
            wait (n - 1)
          end
        in
        Alcotest.(check bool) "teardown ended the snapshot" true (wait 100);
        Alcotest.(check int) "store emptied once unpinned" 0
          (gauge (Client.stats c) "mvcc.chains");
        Client.close c)
  in
  ()

(* Eager group-commit seal -------------------------------------------------------- *)

(* A committer with every other open transaction parked behind its own
   locks must seal eagerly: the parked ones cannot reach their commit
   point until this commit releases (strict 2PL), so waiting out the
   batching window would be pure latency.  The old heuristic counted
   all open transactions and kept the solo committer waiting. *)
let test_solo_committer_seals_eagerly () =
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach wal (Eval.database env);
  let window = 2.0 in
  let config =
    {
      Server.default_config with
      domains = test_domains;
      group_commit_window = Some window;
    }
  in
  let (), _, _ =
    with_server ~config ~wal ~env (fun addr _server ->
        let c1 = connect addr in
        let root =
          match Client.eval c1 "(make Assembly)" with
          | Message.Obj oid -> oid
          | v -> Alcotest.failf "unexpected eval result %a" Message.pp_v v
        in
        ignore (Client.begin_tx c1 : int);
        Client.lock_composite c1 ~root Message.Update;
        ignore
          (Client.make c1 ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str "solo") ] ()
            : Oid.t);
        (* Two more transactions, both parked on c1's composite lock:
           open but unable to commit. *)
        let parked_worker () =
          let c = connect addr in
          ignore (Client.begin_tx c : int);
          Client.lock_composite c ~root Message.Read;
          Client.abort c;
          Client.close c
        in
        let parked =
          [ Thread.create parked_worker (); Thread.create parked_worker () ]
        in
        Thread.delay 0.3;
        let t0 = Unix.gettimeofday () in
        Client.commit c1;
        let elapsed = Unix.gettimeofday () -. t0 in
        List.iter Thread.join parked;
        Alcotest.(check bool)
          (Printf.sprintf "solo commit sealed eagerly (%.3fs vs %.1fs window)"
             elapsed window)
          true
          (elapsed < window /. 2.);
        Client.close c1)
  in
  ()

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_server"
    [
      ( "sessions",
        [
          Alcotest.test_case "handshake and basics" `Quick test_handshake_and_basics;
          Alcotest.test_case "commit visible, abort undone" `Quick
            test_tx_commit_visible_and_abort_undone;
          Alcotest.test_case "wrong version rejected" `Quick
            test_wrong_version_rejected;
          Alcotest.test_case "hello required first" `Quick test_hello_required_first;
          Alcotest.test_case "graceful shutdown" `Quick
            test_graceful_shutdown_notifies;
          Alcotest.test_case "stats over the wire" `Quick test_stats_over_the_wire;
        ] );
      ( "admission",
        [
          Alcotest.test_case "session bound" `Quick test_admission_control;
          Alcotest.test_case "pipelined burst backpressure" `Quick
            test_pipelined_burst_backpressure;
        ] );
      ( "locking",
        [
          Alcotest.test_case "park and wakeup" `Quick test_park_and_wakeup;
          Alcotest.test_case "deadlock victim on the wire" `Quick
            test_deadlock_victim_on_the_wire;
          Alcotest.test_case "lock timeout" `Quick test_lock_timeout;
          Alcotest.test_case "holder deletes contested target" `Quick
            test_holder_deletes_contested_target;
        ] );
      ( "reads",
        [
          Alcotest.test_case "live read refused without tx or snapshot" `Quick
            test_live_read_refused_without_tx_or_snapshot;
          Alcotest.test_case "live read blocks on uncommitted write" `Quick
            test_live_read_blocks_on_uncommitted_write;
          Alcotest.test_case "client kill releases snapshot pins" `Quick
            test_client_kill_releases_snapshot_pins;
          Alcotest.test_case "solo committer seals eagerly" `Quick
            test_solo_committer_seals_eagerly;
        ] );
      ( "workload",
        [
          Alcotest.test_case "32 clients serializable" `Slow
            test_concurrent_workload_serializable;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "32 clients, 4 domains serializable" `Slow
            test_multi_domain_workload_serializable;
          Alcotest.test_case "same-shard deadlock" `Quick test_same_shard_deadlock;
          Alcotest.test_case "group commit batches on the wire" `Quick
            test_group_commit_batches_on_the_wire;
          Alcotest.test_case "kill -9 under group commit, 4 domains" `Quick
            test_kill_recover_group_commit_multidomain;
        ] );
      ( "recovery",
        [ Alcotest.test_case "kill -9 then recover" `Quick test_kill_then_recover ] );
    ]
