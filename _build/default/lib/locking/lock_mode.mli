(** Lock modes for granularity locking extended with composite objects
    (§7, Figures 7 and 8).

    Beyond the five [GRAY78] modes, the paper introduces ISO/IXO/SIXO
    for component classes reached through {e exclusive} composite
    references and ISOS/IXOS/SIXOS for component classes reached
    through {e shared} composite references.

    The compatibility matrices are {e derived}, not transcribed: each
    mode is given its coverage at a component class — what it may read
    or write directly (with instance locks as the finer granule), via
    exclusive-reference composite objects (root locks as the finer
    granule, and distinct roots have disjoint exclusive component
    sets), or via shared-reference composite objects (root locks
    cannot disambiguate: a shared component belongs to several roots).
    Two modes conflict when a write of one may overlap an access of
    the other with no finer granule to resolve it.  The paper's
    textual constraints and the §7 worked examples pin every entry;
    see DESIGN.md decisions D5/D6.

    [compat_refined] is ablation A3: it additionally exploits Topology
    Rule 3 (an object with an exclusive reference has no shared ones,
    so exclusive-side and shared-side coverage are provably disjoint)
    to admit exclusive-side vs shared-side write–write pairs that the
    paper's matrix conservatively rejects. *)

type t = IS | IX | S | SIX | X | ISO | IXO | SIXO | ISOS | IXOS | SIXOS

val all : t list
(** The eleven modes in the Figure-8 display order. *)

val basic : t list
(** The eight modes of Figure 7. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val of_string : string -> t option

val compat : t -> t -> bool
(** The paper's matrix (Figure 8; restricted to {!basic} it is
    Figure 7).  Symmetric. *)

val compat_refined : t -> t -> bool
(** Ablation A3; compatible whenever {!compat} is, and strictly more
    often on exclusive-vs-shared write pairs. *)

val supremum : t -> t -> t option
(** Least mode covering both (used for lock conversion), when one
    exists within the same family. *)
