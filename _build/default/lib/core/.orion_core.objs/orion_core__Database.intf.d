lib/core/database.mli: Instance Oid Orion_schema Orion_storage Rref Value
