(** Reproduction of every figure, worked example and semantic table in
    the paper.  See DESIGN.md §5 for the experiment index and
    EXPERIMENTS.md for the paper-vs-measured record. *)

val fig1_derive_copy : unit -> Report.t
(** Figure 1: deriving a new version of a composite object — an
    independent exclusive static reference rebinds to the generic, a
    dependent one becomes Nil. *)

val fig2_versioned_topology : unit -> Report.t
(** Figure 2: distinct versions of g_c may reference distinct versions
    of g_d (CV-1X/CV-2X); a second exclusive reference to the same
    version instance, or from another hierarchy, is rejected. *)

val fig3_refcounts : unit -> Report.t
(** Figure 3: reverse composite generic references and their
    ref-counts through the paper's removal walk-through. *)

val fig4_authz_composite : unit -> Report.t
(** Figure 4: a Read grant on the root implies Read on every
    component; conflicting grants are rejected. *)

val fig5_shared_authz : unit -> Report.t
(** Figure 5 + §6 worked examples: implicit authorizations combining
    on a component shared by two composite objects. *)

val fig6_matrix : unit -> Report.t
(** Figure 6: the 8×8 authorization combination matrix. *)

val fig7_matrix : unit -> Report.t
(** Figure 7: lock compatibility for granularity + exclusive composite
    locking (8 modes). *)

val fig8_matrix : unit -> Report.t
(** Figure 8: the full 11-mode matrix, including the shared-reference
    modes. *)

val fig9_protocol : unit -> Report.t
(** Figure 9 / §7 examples 1–3 executed against the lock table. *)

val garz88_anomaly : unit -> Report.t
(** The §7 demonstration that the [GARZ88] root-locking algorithm
    breaks on shared composite references. *)

val example1_vehicle : unit -> Report.t
(** §2.3 Example 1 driven through the DSL in the paper's own syntax. *)

val example2_document : unit -> Report.t
(** §2.3 Example 2 driven through the DSL. *)

val t1_deletion_semantics : unit -> Report.t
(** §2.2: the deletion-propagation table for the four composite
    reference types. *)

val t2_topology_rules : unit -> Report.t
(** §2.2: Topology Rules 1–4 as an accept/reject table. *)

val t3_evolution_taxonomy : unit -> Report.t
(** §4.2: the I1–I4 / D1–D3 change taxonomy with accept/reject
    outcomes, immediate and deferred. *)

val all : unit -> Report.t list
(** Every experiment above, in paper order. *)
