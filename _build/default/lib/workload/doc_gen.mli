(** Seeded generator of document corpora (the paper's Example-2 shape):
    documents over shared sections over shared paragraphs, with
    annotations (dependent exclusive) and figures (independent shared).

    Sharing follows the logical-part-hierarchy idea: a new document
    reuses an existing section with probability [share_section]; a new
    section reuses an existing paragraph with probability
    [share_paragraph]. *)

open Orion_core

type config = {
  documents : int;
  sections_per_doc : int;
  paragraphs_per_section : int;
  share_section : float;
  share_paragraph : float;
  annotations_per_doc : int;
  figures_per_doc : int;
  seed : int;
}

val default : config
(** 10 docs × 3 sections × 4 paragraphs, sharing 0.3/0.2, 1 annotation,
    1 figure, seed 77. *)

type corpus = {
  db : Database.t;
  classes : Scenarios.document_classes;
  docs : Oid.t list;
  total : int;
  shared_sections : int;  (** reuse events that succeeded *)
}

val generate : ?db:Database.t -> config -> corpus
(** With [?db] the Example-2 schema must either be absent (it is
    defined) or have been defined by {!Scenarios.define_document_schema}. *)
