(** The object manager: creation, attribute writes, the Make-Component
    algorithm (§2.4), and the Deletion Rule (§2.2), including the
    version-instance mechanics of §5.3.

    Design decisions D1/D2 (existence dependency on reference removal)
    and D4 (acyclicity) from DESIGN.md are implemented here. *)

val create :
  Database.t ->
  cls:string ->
  ?parents:(Oid.t * string) list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  Oid.t
(** The paper's [make] message.  [?parents] is the [:parent] keyword —
    each pair [(parent, attribute)] makes the new instance a component
    of (or merely referenced by, for weak attributes) that parent, with
    the first parent used as the clustering hint (§2.3).  [?attrs] are
    the initial attribute values; composite attributes among them
    perform bottom-up composition of already-existing objects.

    For a versionable class this creates a generic instance plus a
    first version instance and returns the {e version} instance's OID
    (its generic is reachable through {!Instance.version_info}).

    All topology checks run before any state is modified. *)

val get : Database.t -> Oid.t -> Instance.t

val read_attr : Database.t -> Oid.t -> string -> Value.t
(** [Null] when unset.  @raise Core_error.Error for generic instances
    and unknown attributes. *)

val write_attr : Database.t -> Oid.t -> string -> Value.t -> unit
(** Full reference maintenance: removed composite targets are detached
    (with the existence-dependency rule), added targets go through the
    Make-Component checks; the write is rejected atomically if any
    check fails. *)

val add_to_set : Database.t -> Oid.t -> string -> Oid.t -> unit
(** Insert one reference into a set-valued attribute. *)

val remove_from_set : Database.t -> Oid.t -> string -> Oid.t -> unit

val make_component :
  Database.t -> parent:Oid.t -> attr:string -> child:Oid.t -> unit
(** Make an {e existing} object a component of [parent] through [attr]
    (§2.4 algorithm): access the child, verify the Make-Component Rule
    against its X flags, insert the reverse reference, and add the
    child to the parent's attribute value. *)

val remove_component :
  Database.t -> parent:Oid.t -> attr:string -> child:Oid.t -> unit
(** Drop the reference; if it was a dependent reference and the child
    is left with no composite reference at all, the child is deleted
    (existence dependency, D1). *)

val delete : Database.t -> Oid.t -> unit
(** The Deletion Rule.  Dependent components are deleted recursively
    when the deleted reference was their last composite reference;
    independent components survive; remaining parents have the deleted
    OID scrubbed from their values; weak references are left dangling
    (D3).  Deleting a generic instance deletes all its versions
    (CV-4X); deleting the last version deletes the generic. *)

val value_conforms : Database.t -> Orion_schema.Attribute.t -> Value.t -> bool
(** Type conformance of a value against an attribute: primitives match
    the primitive domain; references must target live instances of the
    domain class or a subclass (generic and version instances
    included); sets require [Set] collections. *)

(** {1 Internals used by Orion_versions} *)

val create_raw :
  Database.t -> cls:string -> kind:Instance.kind -> Oid.t
(** Register an empty instance of the given kind; no checks, no
    parents.  The version manager builds generic/version pairs with
    this. *)

val attach_child :
  Database.t ->
  parent:Oid.t ->
  attr:string ->
  spec:Orion_schema.Attribute.t ->
  child:Oid.t ->
  unit
(** Reference bookkeeping only (reverse references, generic ref-counts,
    topology checks) — does {e not} touch the parent's value.  Exposed
    for the version manager's derive-copy path. *)

val detach_child :
  Database.t ->
  parent:Oid.t ->
  attr:string ->
  spec:Orion_schema.Attribute.t ->
  child:Oid.t ->
  unit
(** Inverse of {!attach_child}, applying the existence-dependency rule. *)

val detach_child_quiet :
  Database.t ->
  parent:Oid.t ->
  attr:string ->
  spec:Orion_schema.Attribute.t ->
  child:Oid.t ->
  unit
(** {!detach_child} without the existence-dependency rule: bookkeeping
    removal only (rollbacks and the I1 schema change use this). *)
