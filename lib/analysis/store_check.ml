module Store = Orion_storage.Store
module R = Orion_storage.Bytes_rw.Reader
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module Schema = Orion_schema.Schema
module Attribute = Orion_schema.Attribute
module Persist = Orion_core.Persist
module Codec = Orion_core.Codec
module Instance = Orion_core.Instance
module Integrity = Orion_core.Integrity
module Value = Orion_core.Value
module Oid = Orion_core.Oid
module Rref = Orion_core.Rref

type issue =
  | File_error of string
  | Page_checksum of { page : int; expected : int; actual : int }
  | No_catalog
  | Catalog_corrupt of string
  | Dead_directory_entry of { oid : Oid.t; rid : Store.rid }
  | Unreachable_record of { rid : Store.rid }
  | Undecodable_record of { oid : Oid.t; rid : Store.rid; reason : string }
  | Class_unknown of { oid : Oid.t; cls : string }
  | Flag_mismatch of {
      child : Oid.t;
      parent : Oid.t;
      attr : string;
      flag : [ `D | `X ];
      declared : bool;
      stored : bool;
    }
  | Object_violation of Integrity.violation
  | Wal_torn of { valid_frames : int; valid_bytes : int }
  | Wal_missing_genesis
  | Wal_unbalanced_checkpoint of string
  | Wal_open_trailing_checkpoint

let severity = function
  | Unreachable_record _ | Wal_open_trailing_checkpoint -> `Warning
  | File_error _ | Page_checksum _ | No_catalog | Catalog_corrupt _
  | Dead_directory_entry _ | Undecodable_record _ | Class_unknown _
  | Flag_mismatch _ | Object_violation _ | Wal_torn _ | Wal_missing_genesis
  | Wal_unbalanced_checkpoint _ ->
      `Error

let pp_rid ppf (rid : Store.rid) =
  Format.fprintf ppf "%d:%d:%d" rid.segment rid.page rid.slot

let pp_issue ppf = function
  | File_error msg -> Format.fprintf ppf "file-error: %s" msg
  | Page_checksum { page; expected; actual } ->
      Format.fprintf ppf
        "page-checksum: page %d checksum %08x does not match recorded %08x"
        page actual expected
  | No_catalog -> Format.fprintf ppf "no-catalog: store file has no catalog"
  | Catalog_corrupt msg -> Format.fprintf ppf "catalog-corrupt: %s" msg
  | Dead_directory_entry { oid; rid } ->
      Format.fprintf ppf
        "dead-directory-entry: %a maps to record %a, which is not live" Oid.pp
        oid pp_rid rid
  | Unreachable_record { rid } ->
      Format.fprintf ppf
        "unreachable-record: live record %a has no directory entry" pp_rid rid
  | Undecodable_record { oid; rid; reason } ->
      Format.fprintf ppf "undecodable-record: %a at %a: %s" Oid.pp oid pp_rid
        rid reason
  | Class_unknown { oid; cls } ->
      Format.fprintf ppf "class-unknown: %a is of class %s, not in the schema"
        Oid.pp oid cls
  | Flag_mismatch { child; parent; attr; flag; declared; stored } ->
      Format.fprintf ppf
        "flag-mismatch: %c flag of %a's reverse reference to %a.%s is %b, \
         schema declares %b"
        (match flag with `D -> 'D' | `X -> 'X')
        Oid.pp child Oid.pp parent attr stored declared
  | Object_violation v -> Integrity.pp_violation ppf v
  | Wal_torn { valid_frames; valid_bytes } ->
      Format.fprintf ppf
        "wal-torn: log damaged after %d intact frames (%d bytes)" valid_frames
        valid_bytes
  | Wal_missing_genesis ->
      Format.fprintf ppf "wal-missing-genesis: log does not start with Genesis"
  | Wal_unbalanced_checkpoint msg ->
      Format.fprintf ppf "wal-unbalanced-checkpoint: %s" msg
  | Wal_open_trailing_checkpoint ->
      Format.fprintf ppf
        "wal-open-checkpoint: log ends inside a checkpoint bracket (crash \
         residue; recovery will discard it)"

type report = {
  issues : issue list;
  pages : int;
  live_records : int;
  directory_entries : int;
  wal_frames : int option;
}

let failed ?(strict = false) report =
  List.exists
    (fun i -> strict || severity i = `Error)
    report.issues

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun i ->
      Format.fprintf ppf "%s: %a@,"
        (match severity i with `Error -> "error" | `Warning -> "warning")
        pp_issue i)
    r.issues;
  Format.fprintf ppf "%d pages, %d live records, %d directory entries%t@]"
    r.pages r.live_records r.directory_entries (fun ppf ->
      match r.wal_frames with
      | None -> ()
      | Some n -> Format.fprintf ppf ", %d WAL frames" n)

(* Pages -------------------------------------------------------------------- *)

let check_pages (fi : Store.file_image) =
  match fi.fi_checksums with
  | None -> [] (* v1 file: nothing recorded to verify *)
  | Some sums ->
      let issues = ref [] in
      Array.iteri
        (fun page image ->
          let actual = Store.page_checksum image in
          if actual <> sums.(page) then
            issues :=
              Page_checksum { page; expected = sums.(page); actual } :: !issues)
        fi.fi_pages;
      List.rev !issues

(* Directory vs. allocation ------------------------------------------------- *)

let live_rids (fi : Store.file_image) =
  List.concat_map (fun (_, _, rids) -> rids) fi.fi_segments

let check_directory store (cat : Persist.catalog) live =
  let live_set = Hashtbl.create 64 in
  List.iter (fun rid -> Hashtbl.replace live_set rid ()) live;
  let claimed = Hashtbl.create 64 in
  let dead =
    List.filter_map
      (fun (e : Persist.catalog_entry) ->
        Hashtbl.replace claimed e.ce_rid ();
        if
          (not (Hashtbl.mem live_set e.ce_rid))
          || Store.read store e.ce_rid = None
        then Some (Dead_directory_entry { oid = e.ce_oid; rid = e.ce_rid })
        else None)
      cat.cat_entries
  in
  let leaked =
    List.filter_map
      (fun rid ->
        if Hashtbl.mem claimed rid then None
        else Some (Unreachable_record { rid }))
      live
  in
  dead @ leaked

(* Objects ------------------------------------------------------------------ *)

(* Decode every directory entry; the returned table only holds the
   instances that decoded, so later cross-checks never trip over a
   record already reported undecodable. *)
let decode_objects store (cat : Persist.catalog) =
  let objects = Oid.Tbl.create 64 in
  let issues = ref [] in
  List.iter
    (fun (e : Persist.catalog_entry) ->
      match Store.read store e.ce_rid with
      | None -> () (* already a Dead_directory_entry *)
      | Some data -> (
          match Codec.decode data with
          | inst ->
              if cat.cat_external_rrefs then
                inst.Instance.rrefs <- e.ce_rrefs;
              Oid.Tbl.replace objects e.ce_oid inst
          | exception R.Corrupt reason ->
              issues :=
                Undecodable_record { oid = e.ce_oid; rid = e.ce_rid; reason }
                :: !issues))
    cat.cat_entries;
  (objects, List.rev !issues)

(* The D/X cross-check runs over plain instances only: version and
   generic instances route their composite bookkeeping through generic
   references (§5.3), whose invariants need the live version machinery
   to judge. *)
let plain (inst : Instance.t) = inst.kind = Instance.Plain

let check_objects schema objects =
  let issues = ref [] in
  let emit i = issues := i :: !issues in
  Oid.Tbl.iter
    (fun oid (inst : Instance.t) ->
      if not (Schema.mem schema inst.cls) then
        emit (Class_unknown { oid; cls = inst.cls })
      else if plain inst then begin
        (* Parent side: every composite reference must land on a live
           component holding a matching reverse reference with the
           declared flags. *)
        List.iter
          (fun (a : Attribute.t) ->
            let declared_x = Attribute.is_exclusive a in
            let declared_d = Attribute.is_dependent a in
            let targets =
              match Instance.attr inst a.name with
              | Some v -> Value.refs v
              | None -> []
            in
            List.iter
              (fun target ->
                match Oid.Tbl.find_opt objects target with
                | None ->
                    emit
                      (Object_violation
                         (Integrity.Dangling_composite
                            { parent = oid; attr = a.name; target }))
                | Some child when plain child -> (
                    match
                      List.find_opt
                        (fun (r : Rref.t) ->
                          r.parent = oid && r.attr = a.name)
                        child.rrefs
                    with
                    | None ->
                        emit
                          (Object_violation
                             (Integrity.Missing_rref
                                { parent = oid; attr = a.name; child = target }))
                    | Some r ->
                        if r.exclusive <> declared_x then
                          emit
                            (Flag_mismatch
                               {
                                 child = target;
                                 parent = oid;
                                 attr = a.name;
                                 flag = `X;
                                 declared = declared_x;
                                 stored = r.exclusive;
                               });
                        if r.dependent <> declared_d then
                          emit
                            (Flag_mismatch
                               {
                                 child = target;
                                 parent = oid;
                                 attr = a.name;
                                 flag = `D;
                                 declared = declared_d;
                                 stored = r.dependent;
                               }))
                | Some _ -> ())
              targets)
          (Schema.composite_attributes schema inst.cls);
        (* Child side: every reverse reference must be claimed by a
           composite attribute value of its parent. *)
        List.iter
          (fun (r : Rref.t) ->
            let orphan reason =
              emit (Object_violation (Integrity.Orphan_rref { child = oid; rref = r; reason }))
            in
            match Oid.Tbl.find_opt objects r.parent with
            | None -> orphan "parent does not exist"
            | Some parent_inst when plain parent_inst -> (
                match Schema.attribute schema parent_inst.cls r.attr with
                | Some a when Attribute.is_composite a ->
                    let holds =
                      match Instance.attr parent_inst r.attr with
                      | Some v -> List.mem oid (Value.refs v)
                      | None -> false
                    in
                    if not holds then
                      orphan "parent attribute does not reference the child"
                | Some _ -> orphan "parent attribute is not composite"
                | None -> orphan "parent class lacks the attribute")
            | Some _ -> ())
          inst.rrefs
      end)
    objects;
  List.rev !issues

(* WAL ---------------------------------------------------------------------- *)

let check_wal wal =
  let scan = Wal.scan wal in
  let issues = ref [] in
  if scan.Wal.torn_tail then
    issues :=
      Wal_torn
        {
          valid_frames = List.length scan.Wal.records;
          valid_bytes = scan.Wal.valid_bytes;
        }
      :: !issues;
  (match scan.Wal.records with
  | [] -> ()
  | Wal_record.Genesis _ :: _ -> ()
  | _ :: _ -> issues := Wal_missing_genesis :: !issues);
  let depth =
    List.fold_left
      (fun depth record ->
        match record with
        | Wal_record.Checkpoint_begin ->
            if depth > 0 then
              issues :=
                Wal_unbalanced_checkpoint
                  "Checkpoint_begin inside an open bracket"
                :: !issues;
            depth + 1
        | Wal_record.Checkpoint ->
            if depth = 0 then begin
              issues :=
                Wal_unbalanced_checkpoint "Checkpoint without Checkpoint_begin"
                :: !issues;
              0
            end
            else depth - 1
        | _ -> depth)
      0 scan.Wal.records
  in
  if depth > 0 then issues := Wal_open_trailing_checkpoint :: !issues;
  (List.rev !issues, List.length scan.Wal.records)

(* Entry points ------------------------------------------------------------- *)

let check_image ?wal (fi : Store.file_image) =
  let page_issues = check_pages fi in
  let live = live_rids fi in
  let store = Store.store_of_file_image fi in
  let structural, entries =
    match Store.read_catalog store with
    | None -> ([ No_catalog ], [])
    | Some blob -> (
        match Persist.decode_catalog blob with
        | cat ->
            let dir_issues = check_directory store cat live in
            let objects, decode_issues = decode_objects store cat in
            let schema = Schema.create () in
            let object_issues =
              match Schema.import_into schema cat.cat_schema with
              | () -> check_objects schema objects
              | exception Schema.Error e ->
                  [
                    Catalog_corrupt
                      (Format.asprintf "schema import failed: %a" Schema.pp_error
                         e);
                  ]
            in
            (dir_issues @ decode_issues @ object_issues, cat.cat_entries)
        | exception R.Corrupt msg -> ([ Catalog_corrupt msg ], []))
  in
  let wal_issues, wal_frames =
    match wal with
    | None -> ([], None)
    | Some wal ->
        let issues, frames = check_wal wal in
        (issues, Some frames)
  in
  {
    issues = page_issues @ structural @ wal_issues;
    pages = Array.length fi.fi_pages;
    live_records = List.length live;
    directory_entries = List.length entries;
    wal_frames;
  }

let empty_report issues =
  {
    issues;
    pages = 0;
    live_records = 0;
    directory_entries = 0;
    wal_frames = None;
  }

let check_file ?wal path =
  match Store.read_file_image path with
  | exception Sys_error msg -> empty_report [ File_error msg ]
  | exception Failure msg -> empty_report [ File_error msg ]
  | exception R.Corrupt msg ->
      empty_report [ File_error (path ^ ": truncated or corrupt: " ^ msg) ]
  | fi -> (
      match Option.map Wal.load_file wal with
      | wal -> check_image ?wal fi
      | exception Sys_error msg -> (
          (* The store parsed; report the unreadable WAL alongside the
             store-side findings rather than instead of them. *)
          let r = check_image fi in
          { r with issues = File_error msg :: r.issues }))

(* Repair ------------------------------------------------------------------- *)

type wal_repair =
  | Wal_intact of { frames : int; bytes : int }
  | Wal_repaired of {
      backup : string;
      valid_frames : int;
      valid_bytes : int;
      dropped_bytes : int;
    }

let repair_wal_tail path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | raw -> (
      let scan = Wal.scan (Wal.of_bytes (Bytes.of_string raw)) in
      if not scan.Wal.torn_tail then
        Ok
          (Wal_intact
             {
               frames = List.length scan.Wal.records;
               bytes = scan.Wal.valid_bytes;
             })
      else
        let backup = path ^ ".bak" in
        let write_file p s =
          let oc = open_out_bin p in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc s)
        in
        match
          (* Backup first: only once the damaged original is safe do we
             truncate it down to the longest intact frame prefix. *)
          write_file backup raw;
          write_file path (String.sub raw 0 scan.Wal.valid_bytes)
        with
        | () ->
            Ok
              (Wal_repaired
                 {
                   backup;
                   valid_frames = List.length scan.Wal.records;
                   valid_bytes = scan.Wal.valid_bytes;
                   dropped_bytes = String.length raw - scan.Wal.valid_bytes;
                 })
        | exception Sys_error msg -> Error msg)

(* Page digests -------------------------------------------------------------- *)

let page_digests path =
  match Store.read_file_image path with
  | exception Sys_error msg -> Error msg
  | exception Failure msg -> Error msg
  | exception R.Corrupt msg -> Error (path ^ ": truncated or corrupt: " ^ msg)
  | fi -> Ok (Array.map Store.page_checksum fi.Store.fi_pages)
