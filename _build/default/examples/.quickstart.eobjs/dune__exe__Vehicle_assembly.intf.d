examples/vehicle_assembly.mli:
