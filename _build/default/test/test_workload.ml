(* Tests for Orion_workload: the seeded generators must be
   deterministic, produce the advertised shapes, and keep every
   database invariant. *)

open Orion_core
module Part_gen = Orion_workload.Part_gen
module Trace_gen = Orion_workload.Trace_gen
module Scenarios = Orion_workload.Scenarios
module Doc_gen = Orion_workload.Doc_gen
module Scheduler = Orion_tx.Scheduler

let test_part_gen_physical () =
  let forest = Part_gen.generate ~roots:3 Part_gen.default in
  Alcotest.(check int) "three roots" 3 (List.length forest.Part_gen.roots);
  Alcotest.(check bool) "objects created" true (forest.Part_gen.total > 3);
  (* Physical: every component is exclusive. *)
  List.iter
    (fun root ->
      let comps = Traversal.components_of forest.Part_gen.db root in
      List.iter
        (fun c ->
          Alcotest.(check bool) "exclusive" true
            (Traversal.exclusive_component_of forest.Part_gen.db c root))
        comps)
    forest.Part_gen.roots;
  Integrity.assert_ok forest.Part_gen.db

let test_part_gen_logical_shares () =
  let config =
    { Part_gen.default with exclusive = false; share_prob = 0.5; seed = 13; depth = 4 }
  in
  let forest = Part_gen.generate ~roots:3 config in
  (* Some node should have gained more than one parent. *)
  let shared_exists =
    Database.fold forest.Part_gen.db ~init:false ~f:(fun acc inst ->
        acc
        || List.length (Traversal.parents_of forest.Part_gen.db inst.Instance.oid) > 1)
  in
  Alcotest.(check bool) "sharing happened" true shared_exists;
  Integrity.assert_ok forest.Part_gen.db

let test_part_gen_deterministic () =
  let run () =
    let forest = Part_gen.generate ~roots:2 { Part_gen.default with seed = 99 } in
    (forest.Part_gen.total, Database.count forest.Part_gen.db)
  in
  Alcotest.(check (pair int int)) "same seed, same forest" (run ()) (run ())

let test_trace_gen_deterministic () =
  let forest = Part_gen.generate ~roots:3 Part_gen.default in
  let config = Trace_gen.default in
  let s1 =
    Trace_gen.composite_scripts forest.Part_gen.db ~roots:forest.Part_gen.roots config
  in
  let s2 =
    Trace_gen.composite_scripts forest.Part_gen.db ~roots:forest.Part_gen.roots config
  in
  Alcotest.(check int) "tx count" config.Trace_gen.txs (List.length s1);
  let roots_of scripts =
    List.map
      (List.filter_map (function
        | Scheduler.Lock_composite (r, _) -> Some r
        | Scheduler.Lock_instance _ | Scheduler.Mutate _ -> None))
      scripts
  in
  Alcotest.(check bool) "same seed, same trace" true (roots_of s1 = roots_of s2)

let test_doc_gen () =
  let corpus = Doc_gen.generate { Doc_gen.default with documents = 20 } in
  Alcotest.(check int) "twenty documents" 20 (List.length corpus.Doc_gen.docs);
  Alcotest.(check bool) "sharing happened" true (corpus.Doc_gen.shared_sections > 0);
  Integrity.assert_ok corpus.Doc_gen.db;
  (* Deleting every document leaves only the independent figures. *)
  List.iter (Object_manager.delete corpus.Doc_gen.db) corpus.Doc_gen.docs;
  let images =
    Database.instances_of corpus.Doc_gen.db corpus.Doc_gen.classes.Scenarios.image
  in
  Alcotest.(check int) "only figures survive" (List.length images)
    (Database.count corpus.Doc_gen.db);
  Integrity.assert_ok corpus.Doc_gen.db

let test_doc_gen_deterministic () =
  let run () =
    let c = Doc_gen.generate Doc_gen.default in
    (c.Doc_gen.total, c.Doc_gen.shared_sections)
  in
  Alcotest.(check (pair int int)) "same seed, same corpus" (run ()) (run ())

let test_scenarios_shapes () =
  let db = Database.create () in
  let vc = Scenarios.define_vehicle_schema db in
  let v = Scenarios.build_vehicle db vc ~tires:6 ~color:"black" () in
  Alcotest.(check int) "six tires" 6 (List.length v.Scenarios.v_tires);
  Alcotest.(check int) "eight components" 8
    (List.length (Traversal.components_of db v.Scenarios.v_vehicle));
  let db2 = Database.create () in
  let dc = Scenarios.define_document_schema db2 in
  let d =
    Scenarios.build_document db2 dc ~title:"t" ~sections:3 ~paragraphs_per_section:2
  in
  Alcotest.(check int) "three sections" 3 (List.length d.Scenarios.d_sections);
  Alcotest.(check int) "3 + 6 components" 9
    (List.length (Traversal.components_of db2 d.Scenarios.d_document));
  Integrity.assert_ok db;
  Integrity.assert_ok db2

let () =
  Alcotest.run "orion_workload"
    [
      ( "generators",
        [
          Alcotest.test_case "physical forest" `Quick test_part_gen_physical;
          Alcotest.test_case "logical sharing" `Quick test_part_gen_logical_shares;
          Alcotest.test_case "determinism" `Quick test_part_gen_deterministic;
          Alcotest.test_case "trace determinism" `Quick test_trace_gen_deterministic;
          Alcotest.test_case "paper scenarios" `Quick test_scenarios_shapes;
          Alcotest.test_case "document corpus" `Quick test_doc_gen;
          Alcotest.test_case "document determinism" `Quick
            test_doc_gen_deterministic;
        ] );
    ]
