(** Checkpointing the workspace to the record store.

    ORION keeps an object buffer in front of a page buffer; our
    workspace plays the object buffer.  [checkpoint] writes every
    object into its class's segment, honouring the §2.3 clustering
    rule: an object created with [:parent ...] is placed near its
    first parent when both classes share a segment.

    [read_cold] and [walk_cold] bypass the workspace and pay page
    fetches, which is how the clustering experiment (P5) observes the
    effect of placement. *)

val checkpoint : Database.t -> unit
(** Write (or rewrite) every live object.  Parents are placed before
    children so the [~near] hint can take effect. *)

val read_cold : Database.t -> Oid.t -> Instance.t option
(** Decode the object from its page image (the object must have been
    checkpointed). *)

val walk_cold : Database.t -> Oid.t -> int
(** Cold composite traversal: read the root and every component from
    pages, following composite references in the page images; returns
    the number of objects visited.  Combine with
    {!Orion_storage.Store.drop_cache} and the I/O counters. *)

val reload : Database.t -> unit
(** Replace every in-memory object by its decoded page image
    (round-trip check; [Failure] if any object was never
    checkpointed). *)

val compact : Database.t -> int
(** Compact every segment: live records are rewritten into fresh pages
    (reclaiming the space of deleted ones) and the objects' RIDs are
    updated.  Returns the number of records moved.  Objects never
    checkpointed are unaffected. *)

val save : Database.t -> unit
(** Full save: {!checkpoint} every object, then write the catalog
    (schema export, counters, the OID→RID directory — and, for the
    external reverse-reference representation, the reverse-reference
    table) into the store's catalog area.  After [save], {!load} on the
    same store rebuilds an equivalent database. *)

(** {1 Catalog codec}

    The catalog blob parsed into a structured value — without building a
    {!Database.t}.  The offline checker ([orion fsck]) uses it to
    recover a store's schema and object directory from bytes alone. *)

type catalog_entry = {
  ce_oid : Oid.t;
  ce_rid : Orion_storage.Store.rid;
  ce_cluster_with : Oid.t option;
  ce_rrefs : Rref.t list;
      (** empty unless the database keeps reverse references externally *)
}

type catalog = {
  cat_external_rrefs : bool;
  cat_acyclic : bool;
  cat_next_oid : int;
  cat_clock : int;
  cat_cc : int;
  cat_schema : Orion_schema.Schema.exported;
  cat_entries : catalog_entry list;
}

val decode_catalog : bytes -> catalog
(** @raise Orion_storage.Bytes_rw.Reader.Corrupt on a malformed blob. *)

val load :
  ?rref_repr:Database.rref_repr ->
  ?acyclic:bool ->
  Orion_storage.Store.t ->
  Database.t
(** Reopen a database around a store previously {!save}d.  The optional
    flags must match the saving database's (they are also recorded in
    the catalog; the recorded values win).
    @raise Failure on a store without a catalog or with a corrupt one. *)
