type t =
  | Atom of string
  | Keyword of string
  | Str of string
  | Int of int
  | Float of float
  | List of t list

exception Parse_error of string

let error pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

(* Reader.  A hand-written recursive-descent reader over a string with an
   explicit cursor.  ['form] expands to [(quote form)] as in Lisp, so the
   paper's [(make-class 'Vehicle ...)] parses naturally. *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_delim = function
  | '(' | ')' | '"' | '\'' | ';' -> true
  | ch -> is_space ch

let rec skip_blanks c =
  match peek c with
  | Some ch when is_space ch ->
      advance c;
      skip_blanks c
  | Some ';' ->
      (* comment to end of line *)
      let rec to_eol () =
        match peek c with
        | Some '\n' | None -> ()
        | Some _ ->
            advance c;
            to_eol ()
      in
      to_eol ();
      skip_blanks c
  | Some _ | None -> ()

let read_string_lit c =
  let start = c.pos in
  advance c (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error start "unterminated string"
    | Some '"' ->
        advance c;
        Str (Buffer.contents buf)
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some ch -> Buffer.add_char buf ch
        | None -> error c.pos "dangling escape");
        advance c;
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ()

let classify_token tok =
  if tok = "" then error 0 "empty token"
  else if tok.[0] = ':' then Keyword (String.sub tok 1 (String.length tok - 1))
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt tok with
        | Some f when String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok
          ->
            Float f
        | _ -> Atom tok)

let read_token c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when not (is_delim ch) ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  classify_token (String.sub c.src start (c.pos - start))

let rec read_form c =
  skip_blanks c;
  match peek c with
  | None -> error c.pos "unexpected end of input"
  | Some '(' ->
      advance c;
      read_list c []
  | Some ')' -> error c.pos "unexpected ')'"
  | Some '"' -> read_string_lit c
  | Some '\'' ->
      advance c;
      let quoted = read_form c in
      List [ Atom "quote"; quoted ]
  | Some _ -> read_token c

and read_list c acc =
  skip_blanks c;
  match peek c with
  | None -> error c.pos "unterminated list"
  | Some ')' ->
      advance c;
      List (List.rev acc)
  | Some _ ->
      let form = read_form c in
      read_list c (form :: acc)

let parse s =
  let c = { src = s; pos = 0 } in
  let form = read_form c in
  skip_blanks c;
  (match peek c with
  | Some _ -> error c.pos "trailing input after form"
  | None -> ());
  form

let parse_many s =
  let c = { src = s; pos = 0 } in
  let rec go acc =
    skip_blanks c;
    match peek c with
    | None -> List.rev acc
    | Some _ -> go (read_form c :: acc)
  in
  go []

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | Keyword k -> Format.fprintf ppf ":%s" k
  | Str s -> Format.fprintf ppf "%S" s
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | List [ Atom "quote"; form ] -> Format.fprintf ppf "'%a" pp form
  | List forms ->
      (* A horizontal box: s-expressions print on one line (REPL echo). *)
      Format.fprintf ppf "@[<h>(%a)@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        forms

let to_string form = Format.asprintf "%a" pp form

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y | Keyword x, Keyword y | Str x, Str y -> String.equal x y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Atom _ | Keyword _ | Str _ | Int _ | Float _ | List _), _ -> false

let atom = function Atom a -> Some a | _ -> None

let nil = Atom "nil"

let is_nil = function Atom "nil" | List [] -> true | _ -> false

let is_true = function Atom "true" | Atom "t" -> true | _ -> false
