lib/core/persist.ml: Codec Database Format Hashtbl Instance List Oid Option Orion_schema Orion_storage Printf Queue Rref Value
