examples/parts_catalog.ml: Array Database Filename Format Integrity List Object_manager Oid Orion_core Orion_query Orion_schema Orion_storage Persist Printf Sys Value
