(** Multi-version object cache keyed by commit clock (MVCC-lite).

    The write-ahead log already produces logical after-images sealed by
    a [Commit]/[Commit_group] record carrying the database clock; this
    store keeps those after-images in memory, per object, newest first,
    so a read-only transaction can resolve every read against the state
    as of its begin clock without touching the lock table.

    {2 Visibility rule}

    A snapshot opened by {!open_snap} reads at the {e sealed clock} —
    the clock of the last published commit — not the database's raw
    clock: a transaction that has ticked the clock but whose seal has
    not reached the log (a group-commit batch in flight) is invisible,
    and will {!publish} at a strictly greater clock.  {!read} at clock
    [c] answers with the newest version at-or-below [c]:

    - [`Image]: the object existed at [c] with that after-image;
    - [`Absent]: the object did not exist at [c] (created later, or
      deleted at-or-before [c]);
    - [`Fallthrough]: no chain — the object has not been written since
      the store was created, so the live database holds the one version
      there is and the caller reads it directly (lock-free: writers
      always {!note_base} an object's committed pre-image {e before}
      mutating it in place, so a chain exists for anything dirty).

    {2 Pre-images and pinning}

    The live database mutates objects in place under strict 2PL, so the
    store must capture an object's committed state before the first
    uncommitted write lands: {!note_base} records it as the chain's base
    (clock 0 — valid for every older snapshot) and, when a transaction
    id is supplied, {e pins} the chain until {!settle} so garbage
    collection cannot drop it while the writer is dirty.

    {2 Watermark GC}

    The watermark is the oldest open snapshot's clock (the sealed clock
    when none is open).  Pruning keeps, per chain, the newest version
    at-or-below the watermark plus everything above it; a chain reduced
    to a single version that the live database also holds (not pinned,
    nothing older visible) is dropped entirely so reads fall through.
    GC runs incrementally at publish/settle time and as a sweep when a
    snapshot closes.

    All operations are thread-safe (internal mutex, a leaf in the lock
    order: callers may hold the service lock; the group-commit
    committer thread publishes without it). *)

open Orion_core

type t

type image = { inst : Instance.t; rrefs : Rref.t list }
(** A committed after-image: the instance (never mutated once handed to
    the store — callers pass a {!Instance.copy} or a freshly decoded
    record) and its reverse references as the database reported them. *)

val create : Database.t -> t
(** A store whose sealed clock starts at the database's current clock;
    everything committed so far is served by fall-through. *)

val current_clock : t -> int
(** The sealed clock: the visibility point of the last published
    commit. *)

val note_base : ?tx:int -> t -> Oid.t -> image option -> unit
(** Record the committed pre-image of an object about to be written
    (first call wins; later calls are no-ops on the chain).  [None]
    means the object does not exist yet (a creation's base).  With
    [?tx], additionally pin the chain until [settle ~tx]. *)

val settle : t -> tx:int -> unit
(** The transaction finished (committed, aborted, or failed): release
    its pins and drop chains nothing needs anymore.  Idempotent. *)

val publish : t -> clock:int -> (Oid.t * image option) list -> unit
(** A commit sealed at [clock] became durable: append each after-image
    ([None] = deletion) to its chain and advance the sealed clock.  A
    group-commit batch publishes every member at the single seal clock,
    so the batch becomes visible atomically. *)

val publish_records : t -> clock:int -> Orion_wal.Wal_record.t list -> unit
(** {!publish} from the WAL's logical records ([Obj_put]/[Obj_delete];
    anything else is ignored), decoding the after-images. *)

val read : t -> clock:int -> Oid.t -> [ `Image of image | `Absent | `Fallthrough ]

val open_snap : t -> id:int -> int
(** Register an open snapshot and return its begin clock (the sealed
    clock).  The id must be unique among open snapshots (the
    transaction manager uses its transaction ids). *)

val close_snap : t -> id:int -> unit
(** Unregister and garbage-collect.  Idempotent. *)

val open_snaps : t -> int

val chain_count : t -> int
(** Number of version chains held (the [mvcc.chains] gauge). *)

val gc : t -> unit
(** Force a full sweep (normally triggered by {!close_snap}). *)
