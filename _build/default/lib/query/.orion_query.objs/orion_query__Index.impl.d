lib/query/index.ml: Database Hashtbl Instance List Oid Orion_core Orion_schema String Value
