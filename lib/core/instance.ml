type version_info = {
  generic : Oid.t;
  version_no : int;
  derived_from : Oid.t option;
  created_at : int;
}

type generic_info = {
  mutable versions : Oid.t list;
  mutable user_default : Oid.t option;
  mutable next_version_no : int;
  mutable grefs : Rref.gref list;
}

type kind = Plain | Generic of generic_info | Version of version_info

type t = {
  oid : Oid.t;
  cls : string;
  kind : kind;
  mutable attrs : (string * Value.t) list;
  mutable rrefs : Rref.t list;
  mutable cc : int;
  mutable cluster_with : Oid.t option;
  mutable rid : Orion_storage.Store.rid option;
}

let copy_gref (g : Rref.gref) = { g with Rref.count = g.count }

let copy_kind = function
  | Plain -> Plain
  | Version vi -> Version vi (* immutable fields *)
  | Generic gi ->
      Generic
        {
          versions = gi.versions;
          user_default = gi.user_default;
          next_version_no = gi.next_version_no;
          grefs = List.map copy_gref gi.grefs;
        }

let copy t =
  {
    oid = t.oid;
    cls = t.cls;
    kind = copy_kind t.kind;
    attrs = t.attrs;
    rrefs = t.rrefs;
    cc = t.cc;
    cluster_with = t.cluster_with;
    rid = t.rid;
  }

let attr t name = List.assoc_opt name t.attrs

let set_attr t name value =
  if List.mem_assoc name t.attrs then
    t.attrs <- List.map (fun (n, v) -> if String.equal n name then (n, value) else (n, v)) t.attrs
  else t.attrs <- t.attrs @ [ (name, value) ]

let remove_attr t name =
  t.attrs <- List.filter (fun (n, _) -> not (String.equal n name)) t.attrs

let is_generic t = match t.kind with Generic _ -> true | Plain | Version _ -> false

let is_version t = match t.kind with Version _ -> true | Plain | Generic _ -> false

let generic_info t = match t.kind with Generic g -> Some g | Plain | Version _ -> None

let version_info t = match t.kind with Version v -> Some v | Plain | Generic _ -> None

let pp ppf t =
  let kind_str =
    match t.kind with
    | Plain -> ""
    | Generic _ -> " generic"
    | Version v -> Printf.sprintf " v%d" v.version_no
  in
  Format.fprintf ppf "@[<hv 2>%a:%s%s%a%a@]" Oid.pp t.oid t.cls kind_str
    (fun ppf attrs ->
      List.iter (fun (n, v) -> Format.fprintf ppf "@ %s=%a" n Value.pp v) attrs)
    t.attrs
    (fun ppf rrefs -> List.iter (fun r -> Format.fprintf ppf "@ %a" Rref.pp r) rrefs)
    t.rrefs
