(* Tests for Orion_util: the s-expression reader/printer and the table
   renderer. *)

module Sexp = Orion_util.Sexp
module Table = Orion_util.Table

let check_parse msg input expected =
  Alcotest.(check bool) msg true (Sexp.equal (Sexp.parse input) expected)

let test_atoms () =
  check_parse "symbol" "make-class" (Sexp.Atom "make-class");
  check_parse "keyword" ":composite" (Sexp.Keyword "composite");
  check_parse "int" "42" (Sexp.Int 42);
  check_parse "negative int" "-7" (Sexp.Int (-7));
  check_parse "float" "3.5" (Sexp.Float 3.5);
  check_parse "string" {|"hello world"|} (Sexp.Str "hello world");
  check_parse "nil" "nil" (Sexp.Atom "nil")

let test_lists () =
  check_parse "empty" "()" (Sexp.List []);
  check_parse "nested" "(a (b c) d)"
    (Sexp.List
       [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ]; Sexp.Atom "d" ]);
  check_parse "quote" "'Vehicle"
    (Sexp.List [ Sexp.Atom "quote"; Sexp.Atom "Vehicle" ]);
  check_parse "keywords in list" "(make-class 'Doc :composite true)"
    (Sexp.List
       [
         Sexp.Atom "make-class";
         Sexp.List [ Sexp.Atom "quote"; Sexp.Atom "Doc" ];
         Sexp.Keyword "composite";
         Sexp.Atom "true";
       ])

let test_comments_and_whitespace () =
  check_parse "comment" "(a ; comment\n b)"
    (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]);
  check_parse "escapes" {|"a\nb"|} (Sexp.Str "a\nb");
  Alcotest.(check int)
    "parse_many" 3
    (List.length (Sexp.parse_many "(a) (b) c"))

let test_errors () =
  let fails input =
    match Sexp.parse input with
    | exception Sexp.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated list" true (fails "(a b");
  Alcotest.(check bool) "unterminated string" true (fails {|"abc|});
  Alcotest.(check bool) "stray paren" true (fails ")");
  Alcotest.(check bool) "trailing garbage" true (fails "(a) b")

let test_roundtrip () =
  let forms =
    [
      "(make-class 'Vehicle :superclasses nil :attributes ((Color :domain String)))";
      "(components-of obj (A B) true nil 3)";
      "'(quoted list)";
      {|("str" 1 2.5 :kw)|};
    ]
  in
  List.iter
    (fun src ->
      let form = Sexp.parse src in
      let reparsed = Sexp.parse (Sexp.to_string form) in
      Alcotest.(check bool) ("roundtrip " ^ src) true (Sexp.equal form reparsed))
    forms

let test_nil_true () =
  Alcotest.(check bool) "nil atom" true (Sexp.is_nil (Sexp.Atom "nil"));
  Alcotest.(check bool) "empty list is nil" true (Sexp.is_nil (Sexp.List []));
  Alcotest.(check bool) "true" true (Sexp.is_true (Sexp.Atom "true"));
  Alcotest.(check bool) "t" true (Sexp.is_true (Sexp.Atom "t"));
  Alcotest.(check bool) "nil not true" false (Sexp.is_true Sexp.nil)

let test_table () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.exists (fun l ->
           String.length l > 0 && l.[0] = '|'));
  let m =
    Table.render_matrix ~row_labels:[ "r1"; "r2" ] ~col_labels:[ "c1" ]
      ~cell:(fun i j -> Printf.sprintf "%d%d" i j)
      ~corner:"x"
  in
  Alcotest.(check bool) "matrix mentions cell" true
    (String.length m > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains m "10")

(* Random s-expression printer/parser roundtrip. *)
let sexp_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> Sexp.Int n) small_signed_int;
        map (fun s -> Sexp.Str s) (string_size ~gen:printable (0 -- 12));
        map
          (fun s -> Sexp.Atom ("a" ^ s))
          (string_size ~gen:(char_range 'a' 'z') (0 -- 8));
        map
          (fun s -> Sexp.Keyword ("k" ^ s))
          (string_size ~gen:(char_range 'a' 'z') (0 -- 6));
      ]
  in
  let rec tree depth =
    if depth = 0 then atom
    else
      frequency
        [ (3, atom); (1, map (fun l -> Sexp.List l) (list_size (0 -- 4) (tree (depth - 1)))) ]
  in
  tree 4

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 (QCheck.make sexp_gen)
    (fun form -> Sexp.equal form (Sexp.parse (Sexp.to_string form)))

let () =
  Alcotest.run "orion_util"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "nil/true" `Quick test_nil_true;
          QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table ]);
    ]
