(** Static hazard analysis over the class lattice's composite-attribute
    graph ([orion analyze]).

    The analyses run on a {!Orion_schema.Schema.t} alone — no instances
    needed — and flag structures that are legal to define but hazardous
    to live with:

    - {b composite-cycle} (error): a cycle through composite attributes.
      Instance-level cycle prevention (the [acyclic] regime) will veto
      assignments at runtime, and delete-cascades over such a schema can
      chase their own tail.
    - {b cascade-radius} (warning): the transitive dependent-reference
      closure of a class spans many classes — deleting one instance may
      cascade across all of them under a single X lock on the root.
    - {b clustering-ambiguity} (warning): a class is reachable through
      exclusive composite references from two or more parent classes
      {e sharing its segment}.  §2.3 clusters an instance near its first
      parent; with several candidate parents in one segment the
      placement depends on creation order and the benefit is unstable.
    - {b lock-fanin} (warning): many distinct classes hold composite
      references into one component class, so unrelated composite roots
      contend for intention locks on its class granule.  When a live
      metrics {!snapshot} is supplied, the observed
      [lock.blocks{class=C}] cell is joined into the finding.
    - {b observed-contention} (info, snapshot only): a class shows
      blocked lock requests in the snapshot without a high static
      fan-in — contention the schema shape does not predict.
    - {b dead-composite-attribute} (warning): a composite attribute
      whose domain class no longer exists (left behind by
      [drop_class]).
    - {b shadowed-composite-attribute} (warning): a class inherits a
      composite attribute but resolves the name to a non-composite one
      (own override, or first-superclass-wins conflict), silently
      dropping IS-PART-OF semantics in that subtree. *)

type severity = Info | Warning | Error

val pp_severity : Format.formatter -> severity -> unit

type finding = {
  severity : severity;
  code : string;  (** machine-readable kind, e.g. ["composite-cycle"] *)
  cls : string;  (** the principal class of the finding *)
  path : string list;
      (** witnessing path, as ["C.attr->D"] edge steps (possibly empty) *)
  detail : string;  (** human-readable explanation *)
}

val pp_finding : Format.formatter -> finding -> unit
(** One line: severity, code, class, detail, then the witness path. *)

val finding_to_sexp : finding -> string
(** [(finding (severity warning) (code ...) (class ...) (path (...))
    (detail "..."))]. *)

val errors : finding list -> finding list
val warnings : finding list -> finding list

val analyze :
  ?snapshot:Orion_obs.Metrics.snapshot ->
  ?cascade_threshold:int ->
  ?fanin_threshold:int ->
  Orion_schema.Schema.t ->
  finding list
(** Run every analysis; findings are sorted most severe first, then by
    class name.  [cascade_threshold] (default 6) is the number of
    distinct classes a dependent cascade must span to be flagged;
    [fanin_threshold] (default 3) the number of distinct referencing
    classes.  [snapshot] joins observed per-class lock contention into
    the fan-in ranking. *)
