(* The corruption-injection matrix for Orion_analysis.Store_check:
   a clean saved database passes, and each of four seeded faults —
   page byte flip, WAL torn mid-frame, cleared reverse-reference D
   flag, orphaned directory entry — is detected and named. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Store = Orion_storage.Store
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module SC = Orion_analysis.Store_check

let temp name =
  let path = Filename.temp_file "orion_fsck" name in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* One parent holding a dependent-exclusive component and a
   dependent-shared one, saved to the store. *)
let build_db () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Child"
       ~attributes:[ A.make ~name:"Name" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Parent"
       ~attributes:
         [
           A.make ~name:"DX" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(A.composite ~dependent:true ~exclusive:true ())
             ();
           A.make ~name:"DS" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(A.composite ~dependent:true ~exclusive:false ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  let p = Object_manager.create db ~cls:"Parent" () in
  let c1 = Object_manager.create db ~cls:"Child" ~parents:[ (p, "DX") ] () in
  let c2 = Object_manager.create db ~cls:"Child" ~parents:[ (p, "DS") ] () in
  (db, p, c1, c2)

let save_to_temp db =
  Persist.save db;
  let path = temp ".odb" in
  Store.save_file (Database.store db) path;
  path

let has_issue pred report = List.exists pred report.SC.issues

let issue_names report =
  String.concat "\n"
    (List.map (Format.asprintf "%a" SC.pp_issue) report.SC.issues)

let check_named pred name report =
  if not (has_issue pred report) then
    Alcotest.failf "expected %s issue, report says:\n%s" name
      (issue_names report)

(* Clean round-trip: nothing to report, zero exit. *)
let test_clean_store_passes () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let report = SC.check_file path in
  Alcotest.(check int) "no issues" 0 (List.length report.SC.issues);
  Alcotest.(check bool) "not failed" false (SC.failed report);
  Alcotest.(check bool) "not failed strictly" false (SC.failed ~strict:true report);
  Alcotest.(check int) "directory entries" 3 report.SC.directory_entries

(* Fault 1: flip one byte of a page image, keeping the recorded
   checksum — exactly what bit rot under a valid directory looks
   like. *)
let test_page_byte_flip_detected () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let fi = Store.read_file_image path in
  let page = fi.Store.fi_pages.(0) in
  Bytes.set page 7 (Char.chr (Char.code (Bytes.get page 7) lxor 0xff));
  Store.write_file_image fi path;
  let report = SC.check_file path in
  check_named
    (function SC.Page_checksum { page = 0; _ } -> true | _ -> false)
    "page-checksum" report;
  Alcotest.(check bool) "failed" true (SC.failed report)

(* Fault 2: chop the WAL mid-frame (losing the tail of the log
   device). *)
let test_wal_torn_mid_frame () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let log = Wal.create () in
  Wal.append log (Wal_record.Genesis { page_size = 256 });
  Wal.append log Wal_record.Checkpoint_begin;
  Wal.append log Wal_record.Checkpoint;
  let wal_path = temp ".wal" in
  Wal.tear log ~bytes:3;
  Wal.save_file log wal_path;
  let report = SC.check_file ~wal:wal_path path in
  check_named
    (function SC.Wal_torn { valid_frames = 2; _ } -> true | _ -> false)
    "wal-torn" report;
  Alcotest.(check (option int)) "intact prefix counted" (Some 2)
    report.SC.wal_frames;
  Alcotest.(check bool) "failed" true (SC.failed report)

(* Fault 3: clear the D flag of a reverse reference before saving.
   The file is perfectly self-consistent — checksums match, the
   directory agrees — and ONLY the cross-check of stored flags against
   the schema's :dependent declaration can see the damage. *)
let test_cleared_d_flag_detected () =
  let db, p, c1, _ = build_db () in
  let cleared =
    List.map
      (fun (r : Rref.t) ->
        if r.parent = p && r.attr = "DX" then { r with dependent = false }
        else r)
      (Database.rrefs db c1)
  in
  Database.set_rrefs db c1 cleared;
  let path = save_to_temp db in
  let report = SC.check_file path in
  check_named
    (function
      | SC.Flag_mismatch
          { flag = `D; declared = true; stored = false; attr = "DX"; _ } ->
          true
      | _ -> false)
    "flag-mismatch(D)" report;
  Alcotest.(check bool) "failed" true (SC.failed report)

(* The X twin, via the shared attribute. *)
let test_cleared_x_flag_detected () =
  let db, p, _, c2 = build_db () in
  let flipped =
    List.map
      (fun (r : Rref.t) ->
        if r.parent = p && r.attr = "DS" then { r with exclusive = true }
        else r)
      (Database.rrefs db c2)
  in
  Database.set_rrefs db c2 flipped;
  let path = save_to_temp db in
  let report = SC.check_file path in
  check_named
    (function
      | SC.Flag_mismatch
          { flag = `X; declared = false; stored = true; attr = "DS"; _ } ->
          true
      | _ -> false)
    "flag-mismatch(X)" report

(* Fault 4: delete a record out from under the directory after the
   catalog was written — the directory then points at a dead slot. *)
let test_orphan_directory_entry_detected () =
  let db, _, c1, _ = build_db () in
  Persist.save db;
  let rid =
    match (Option.get (Database.find db c1)).Instance.rid with
    | Some rid -> rid
    | None -> Alcotest.fail "child was never checkpointed"
  in
  Store.delete (Database.store db) rid;
  let path = temp ".odb" in
  Store.save_file (Database.store db) path;
  let report = SC.check_file path in
  check_named
    (function
      | SC.Dead_directory_entry { oid; _ } -> Oid.equal oid c1 | _ -> false)
    "dead-directory-entry" report;
  Alcotest.(check bool) "failed" true (SC.failed report)

(* Checkpoint-bracket sanity: a trailing open bracket is crash residue
   (warning; --strict fails), a Checkpoint without its begin is
   corruption. *)
let test_checkpoint_brackets () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let open_log = Wal.create () in
  Wal.append open_log (Wal_record.Genesis { page_size = 256 });
  Wal.append open_log Wal_record.Checkpoint_begin;
  let wal_path = temp ".wal" in
  Wal.save_file open_log wal_path;
  let report = SC.check_file ~wal:wal_path path in
  check_named
    (function SC.Wal_open_trailing_checkpoint -> true | _ -> false)
    "open trailing bracket" report;
  Alcotest.(check bool) "warning only" false (SC.failed report);
  Alcotest.(check bool) "strict fails" true (SC.failed ~strict:true report);
  let bad_log = Wal.create () in
  Wal.append bad_log (Wal_record.Genesis { page_size = 256 });
  Wal.append bad_log Wal_record.Checkpoint;
  Wal.save_file bad_log wal_path;
  let report = SC.check_file ~wal:wal_path path in
  check_named
    (function SC.Wal_unbalanced_checkpoint _ -> true | _ -> false)
    "unbalanced bracket" report;
  Alcotest.(check bool) "failed" true (SC.failed report)

(* Truncating the store file itself must surface as a file error, not
   an exception. *)
(* `fsck --repair`: the torn tail is truncated to the intact prefix,
   the damaged original survives as .bak, and re-running is a no-op. *)
let test_repair_wal_tail () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let log = Wal.create () in
  Wal.append log (Wal_record.Genesis { page_size = 256 });
  Wal.append log Wal_record.Checkpoint_begin;
  Wal.append log Wal_record.Checkpoint;
  let wal_path = temp ".wal" in
  Wal.tear log ~bytes:3;
  Wal.save_file log wal_path;
  at_exit (fun () ->
      try Sys.remove (wal_path ^ ".bak") with Sys_error _ -> ());
  let torn_size = (Unix.stat wal_path).Unix.st_size in
  (match SC.repair_wal_tail wal_path with
  | Ok (SC.Wal_repaired { backup; valid_frames; valid_bytes; dropped_bytes }) ->
      Alcotest.(check int) "two intact frames kept" 2 valid_frames;
      Alcotest.(check int) "accounting adds up" torn_size
        (valid_bytes + dropped_bytes);
      Alcotest.(check int) "file truncated to the prefix" valid_bytes
        (Unix.stat wal_path).Unix.st_size;
      Alcotest.(check int) "backup preserves the damage" torn_size
        (Unix.stat backup).Unix.st_size
  | Ok (SC.Wal_intact _) -> Alcotest.fail "torn log reported intact"
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  (* The repaired log now checks clean (no torn-tail issue). *)
  let report = SC.check_file ~wal:wal_path path in
  Alcotest.(check bool) "no wal-torn after repair" false
    (List.exists (function SC.Wal_torn _ -> true | _ -> false) report.SC.issues);
  (* Idempotent: a second repair is a no-op. *)
  match SC.repair_wal_tail wal_path with
  | Ok (SC.Wal_intact { frames = 2; _ }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "second repair was not a clean no-op"

let test_truncated_file_reported () =
  let db, _, _, _ = build_db () in
  let path = save_to_temp db in
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len / 2);
  Unix.close fd;
  let report = SC.check_file path in
  check_named (function SC.File_error _ -> true | _ -> false) "file-error"
    report;
  Alcotest.(check bool) "failed" true (SC.failed report)

let () =
  Alcotest.run "orion_fsck"
    [
      ( "corruption matrix",
        [
          Alcotest.test_case "clean store passes" `Quick test_clean_store_passes;
          Alcotest.test_case "page byte flip" `Quick test_page_byte_flip_detected;
          Alcotest.test_case "WAL torn mid-frame" `Quick test_wal_torn_mid_frame;
          Alcotest.test_case "cleared D flag" `Quick test_cleared_d_flag_detected;
          Alcotest.test_case "cleared X flag" `Quick test_cleared_x_flag_detected;
          Alcotest.test_case "orphan directory entry" `Quick
            test_orphan_directory_entry_detected;
          Alcotest.test_case "checkpoint brackets" `Quick test_checkpoint_brackets;
          Alcotest.test_case "repair torn tail" `Quick test_repair_wal_tail;
          Alcotest.test_case "truncated file" `Quick test_truncated_file_reported;
        ] );
    ]
