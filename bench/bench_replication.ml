(* Replication benchmark: what WAL shipping costs and what it buys.

   Two questions, two scenario families:

   - apply lag vs write rate: 1, 8 and 32 writer clients commit
     disjoint transactions against a primary while one replica follows
     its stream.  We sample the replica's byte lag (primary durable LSN
     minus replica applied LSN) through the measured window and time
     how long the replica needs to drain once the writers stop — the
     failover-freshness number.
   - read throughput, primary-only vs primary+replica: the same reader
     pool runs composite traversals against the primary alone, then
     split across the primary and a read-only replica serving the same
     data — the scale-out number.

   Logs are in-memory (sync still advances the durable point, so the
   stream behaves exactly as with a backing file) to keep disk noise
   out of both numbers.  `--json PATH` writes BENCH_PR7.json-style
   output; `--quick` shrinks the matrix for the smoke alias. *)

module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Tx_service = Orion_server.Tx_service
module Tailer = Orion_replication.Tailer
module Replica = Orion_replication.Replica
module Client = Orion_client
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr
module Oid = Orion_core.Oid
module Value = Orion_core.Value
module Wal = Orion_wal.Wal
module Obs = Orion_obs.Metrics
module Database = Orion_core.Database

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let temp_dir () =
  let dir = Filename.temp_file "orion_bench_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

type primary = {
  p_server : Server.t;
  p_thread : Thread.t;
  p_wal : Wal.t;
  p_addr : Addr.t;
}

let start_primary dir =
  let db_path = Filename.concat dir "p.odb" in
  let sock = Filename.concat dir "p.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach ~snapshot_path:db_path ~truncate_on_checkpoint:false wal
    (Eval.database env);
  Wal.sync wal;
  Orion_core.Persist.save (Eval.database env);
  let server =
    Server.create ~wal
      ~repl:(Tx_service.Primary (Tailer.create wal))
      env (Addr.Unix_path sock)
  in
  let thread = Thread.create Server.run server in
  { p_server = server; p_thread = thread; p_wal = wal; p_addr = Addr.Unix_path sock }

let stop_primary p =
  Server.stop p.p_server;
  Thread.join p.p_thread

(* A following replica; [serve] additionally puts a read-only server in
   front of its database, as `orion serve --replica-of` does. *)
let start_replica dir primary_addr ~serve =
  let db_path = Filename.concat dir "r.odb" in
  let wal = Wal.create () in
  let replica = Replica.create ~primary:primary_addr ~wal ~db_path () in
  let db = Replica.bootstrap replica in
  let server =
    if not serve then None
    else begin
      let sock = Filename.concat dir "r.sock" in
      let env = Eval.create_env ~db () in
      let server =
        Server.create
          ~repl:(Tx_service.Replica_of { replica; promote_gate = None })
          env (Addr.Unix_path sock)
      in
      Replica.set_locked replica (fun f ->
          Tx_service.with_lock (Server.service server) f);
      Some (server, Thread.create Server.run server, Addr.Unix_path sock)
    end
  in
  Replica.start replica;
  (replica, server)

let stop_replica (replica, server) =
  (match server with
  | Some (server, thread, _) ->
      Server.stop server;
      Thread.join thread
  | None -> ());
  Replica.stop replica

(* Apply lag vs write rate ------------------------------------------------------ *)

type lag_result = {
  clients : int;
  ops : int;
  elapsed_s : float;
  write_throughput : float;
  lag_mean_kb : float;
  lag_max_kb : float;
  catchup_ms : float;
}

let run_lag_scenario ~clients ~duration =
  let dir = temp_dir () in
  let p = start_primary dir in
  Fun.protect
    ~finally:(fun () -> stop_primary p)
    (fun () ->
      let r = start_replica dir p.p_addr ~serve:false in
      Fun.protect
        ~finally:(fun () -> stop_replica r)
        (fun () ->
          let replica, _ = r in
          let setup = Client.connect ~client_name:"bench-setup" p.p_addr in
          let roots =
            Array.init clients (fun _ ->
                match Client.eval setup "(make Assembly)" with
                | Message.Obj oid -> oid
                | _ -> failwith "make Assembly")
          in
          Client.close setup;
          let stop = Atomic.make false in
          let op_counts = Array.make clients 0 in
          let worker i () =
            let c = Client.connect ~client_name:"bench-writer" p.p_addr in
            let root = roots.(i) in
            let j = ref 0 in
            while not (Atomic.get stop) do
              incr j;
              ignore (Client.begin_tx c : int);
              Client.lock_composite c ~root Message.Update;
              ignore
                (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                   ~attrs:[ ("Name", Value.Str (Printf.sprintf "p%d-%d" i !j)) ]
                   ()
                  : Oid.t);
              Client.commit c;
              op_counts.(i) <- op_counts.(i) + 1
            done;
            Client.close c
          in
          let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
          (* Sample the byte lag while the writers run. *)
          let t0 = Unix.gettimeofday () in
          let lags = ref [] in
          while Unix.gettimeofday () -. t0 < duration do
            Thread.delay 0.005;
            let lag =
              max 0 (Wal.durable_lsn p.p_wal - Replica.applied_lsn replica)
            in
            lags := float_of_int lag :: !lags
          done;
          Atomic.set stop true;
          List.iter Thread.join threads;
          let elapsed = Unix.gettimeofday () -. t0 in
          (* Catch-up: how long until the replica has applied everything
             the dead-quiet primary made durable. *)
          let target = Wal.durable_lsn p.p_wal in
          let c0 = Unix.gettimeofday () in
          while
            Replica.applied_lsn replica < target
            && Unix.gettimeofday () -. c0 < 30.
          do
            Thread.delay 0.001
          done;
          let catchup = Unix.gettimeofday () -. c0 in
          if Replica.applied_lsn replica < target then
            failwith "replica never caught up";
          let ops = Array.fold_left ( + ) 0 op_counts in
          let lag_samples = !lags in
          let n = max 1 (List.length lag_samples) in
          {
            clients;
            ops;
            elapsed_s = elapsed;
            write_throughput = float_of_int ops /. elapsed;
            lag_mean_kb =
              List.fold_left ( +. ) 0.0 lag_samples /. float_of_int n /. 1024.;
            lag_max_kb =
              List.fold_left Float.max 0.0 lag_samples /. 1024.;
            catchup_ms = catchup *. 1e3;
          }))

(* Read throughput -------------------------------------------------------------- *)

type read_result = {
  setup : string;
  readers : int;
  reads : int;
  read_elapsed_s : float;
  read_throughput : float;
}

let run_read_scenario ~readers ~with_replica ~duration ~seed_parts =
  let dir = temp_dir () in
  let p = start_primary dir in
  Fun.protect
    ~finally:(fun () -> stop_primary p)
    (fun () ->
      let setup = Client.connect ~client_name:"bench-setup" p.p_addr in
      let root =
        match Client.eval setup "(make Assembly)" with
        | Message.Obj oid -> oid
        | _ -> failwith "make Assembly"
      in
      for i = 1 to seed_parts do
        ignore (Client.begin_tx setup : int);
        Client.lock_composite setup ~root Message.Update;
        ignore
          (Client.make setup ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str (Printf.sprintf "seed-%d" i)) ]
             ()
            : Oid.t);
        Client.commit setup
      done;
      Client.close setup;
      let r = if with_replica then Some (start_replica dir p.p_addr ~serve:true) else None in
      Fun.protect
        ~finally:(fun () -> Option.iter stop_replica r)
        (fun () ->
          let replica_addr =
            match r with
            | Some (replica, Some (_, _, addr)) ->
                (* Readers must see the seeded data wherever they land. *)
                let t0 = Unix.gettimeofday () in
                while
                  Database.count (Replica.db replica) < seed_parts + 1
                  && Unix.gettimeofday () -. t0 < 30.
                do
                  Thread.delay 0.002
                done;
                Some addr
            | _ -> None
          in
          let stop = Atomic.make false in
          let read_counts = Array.make readers 0 in
          let worker i () =
            (* Alternate readers go to the replica when there is one. *)
            let addr =
              match replica_addr with
              | Some addr when i mod 2 = 1 -> addr
              | _ -> p.p_addr
            in
            let c = Client.connect ~client_name:"bench-reader" addr in
            while not (Atomic.get stop) do
              ignore (Client.components_of c root : Oid.t list);
              read_counts.(i) <- read_counts.(i) + 1
            done;
            Client.close c
          in
          let t0 = Unix.gettimeofday () in
          let threads = List.init readers (fun i -> Thread.create (worker i) ()) in
          Thread.delay duration;
          Atomic.set stop true;
          List.iter Thread.join threads;
          let elapsed = Unix.gettimeofday () -. t0 in
          let reads = Array.fold_left ( + ) 0 read_counts in
          {
            setup = (if with_replica then "primary-plus-replica" else "primary-only");
            readers;
            reads;
            read_elapsed_s = elapsed;
            read_throughput = float_of_int reads /. elapsed;
          }))

(* Output ----------------------------------------------------------------------- *)

let write_json ~path lag_results read_results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-replication-v1\",\n";
  Bench_meta.add buf;
  (* The registry holds the replication instruments of the last
     scenario: shipped/applied counters, lag gauges, ack RTTs. *)
  Bench_meta.add_metrics buf (Obs.snapshot ());
  Buffer.add_string buf "  \"results\": {\n";
  Buffer.add_string buf "    \"apply_lag\": {\n";
  List.iteri
    (fun i (r : lag_result) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      \"clients-%d\": { \"ops\": %d, \"elapsed_s\": %.3f, \
            \"write_throughput_ops_per_s\": %.1f, \"lag_mean_kb\": %.2f, \
            \"lag_max_kb\": %.2f, \"catchup_ms\": %.2f }%s\n"
           r.clients r.ops r.elapsed_s r.write_throughput r.lag_mean_kb
           r.lag_max_kb r.catchup_ms
           (if i = List.length lag_results - 1 then "" else ",")))
    lag_results;
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf "    \"read_throughput\": {\n";
  List.iteri
    (fun i (r : read_result) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      \"%s\": { \"readers\": %d, \"reads\": %d, \"elapsed_s\": \
            %.3f, \"read_throughput_ops_per_s\": %.1f }%s\n"
           r.setup r.readers r.reads r.read_elapsed_s r.read_throughput
           (if i = List.length read_results - 1 then "" else ",")))
    read_results;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let arg_value name =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let json_path = arg_value "--json" in
  let duration =
    match arg_value "--min-duration" with
    | Some s -> float_of_string s
    | None -> if quick then 0.3 else 1.5
  in
  let client_counts = if quick then [ 1; 8 ] else [ 1; 8; 32 ] in
  let readers = if quick then 4 else 8 in
  let seed_parts = if quick then 20 else 100 in
  print_endline
    "=== Replication bench: apply lag vs write rate, read scale-out ===";
  let lag_results =
    List.map
      (fun clients ->
        let r = run_lag_scenario ~clients ~duration in
        Printf.printf
          "apply-lag   %2d writers: %7.1f commits/s  lag mean %7.2f KiB  max \
           %7.2f KiB  catch-up %6.1f ms\n\
           %!"
          r.clients r.write_throughput r.lag_mean_kb r.lag_max_kb r.catchup_ms;
        r)
      client_counts
  in
  let read_results =
    List.map
      (fun with_replica ->
        let r = run_read_scenario ~readers ~with_replica ~duration ~seed_parts in
        Printf.printf "reads       %-20s %2d readers: %9.1f reads/s\n%!" r.setup
          r.readers r.read_throughput;
        r)
      [ false; true ]
  in
  match json_path with
  | Some path -> write_json ~path lag_results read_results
  | None -> ()
