let mod_adler = 65521

let bytes ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> Bytes.length data - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Checksum.bytes: range out of bounds";
  let a = ref 1 and b = ref 0 in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code (Bytes.unsafe_get data i)) mod mod_adler;
    b := (!b + !a) mod mod_adler
  done;
  (!b lsl 16) lor !a
