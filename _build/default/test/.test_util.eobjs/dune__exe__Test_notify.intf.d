test/test_notify.mli:
