(** The database: schema + object workspace + record store.

    Reverse composite references can be kept inline in each component
    (the paper's choice, §2.4: avoids an indirection, grows the object)
    or in an external index (the alternative §2.4 rejects) — ablation
    A1; both representations are behind {!rrefs}/{!add_rref}/… so the
    rest of the system is oblivious. *)

type rref_repr = Inline | External

type t

val create :
  ?page_size:int ->
  ?pool_capacity:int ->
  ?rref_repr:rref_repr ->
  ?acyclic:bool ->
  ?edge_cache:bool ->
  ?store:Orion_storage.Store.t ->
  unit ->
  t
(** Defaults: [Inline] reverse references, [acyclic = true] (composite
    references must form a DAG; design decision D4), [edge_cache = true]
    (memoize composite-edge derivation; disable to measure the uncached
    baseline).  [?store] reuses an existing record store (database
    reopening, {!Persist.load}); [?page_size]/[?pool_capacity] are
    ignored when it is given. *)

val schema : t -> Orion_schema.Schema.t
val store : t -> Orion_storage.Store.t
val rref_repr : t -> rref_repr
val acyclic : t -> bool

(** {1 Composite-edge cache}

    {!Traversal.edges} results memoized per OID, invalidated from the
    change-event bus ([Attr_written] drops the writer's entry, [Deleted]
    also drops every entry embedding the dead OID, [Invalidated]
    flushes) and emptied wholesale on schema mutation. *)

val edge_cache : t -> Edge_cache.t option
(** [None] when the database was created with [~edge_cache:false]. *)

type wal_stats = {
  appends : int;  (** log records written *)
  bytes : int;  (** framed bytes appended *)
  syncs : int;  (** fsync-equivalents (one per commit / checkpoint) *)
  truncations : int;  (** post-checkpoint log resets *)
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  wal : wal_stats;
}

val stats : t -> stats
(** Edge-cache counters, mirroring {!Orion_storage.Buffer_pool.stats};
    all zero when the cache is disabled.  [wal] comes from the attached
    write-ahead log ({!set_wal_stats_source}); all zero when none is
    attached. *)

val reset_stats : t -> unit

val set_wal_stats_source : t -> (unit -> wal_stats) option -> unit
(** Registered by [Orion_wal.Wal.attach]; the core stays
    log-oblivious. *)

(** {1 Checkpoint hook}

    {!Persist.save} brackets its work with these notifications so an
    attached write-ahead log can frame the checkpoint
    ([Ckpt_begin]/[Ckpt_end] records, snapshot, truncation) without the
    core depending on the log. *)

type checkpoint_phase = Ckpt_begin | Ckpt_end

val set_checkpoint_hook : t -> (checkpoint_phase -> unit) option -> unit

val notify_checkpoint : t -> checkpoint_phase -> unit
(** Called by {!Persist.save}; a no-op when no hook is registered. *)

val invalidate_edges : t -> Oid.t -> unit
(** Drop the cached edges of [oid] and of every object whose cached
    edges embed [oid].  For mutations that bypass the event bus
    ({!Orion_versions.Version_manager.set_default_version}). *)

val fresh_oid : t -> Oid.t
val tick : t -> int
(** Monotone logical clock (version timestamps). *)

val counters : t -> int * int
(** [(next_oid, clock)] — for {!Persist.save}. *)

val restore_counters : t -> next_oid:int -> clock:int -> unit
(** For {!Persist.load} only. *)

val current_cc : t -> int
val set_current_cc : t -> int -> unit
(** The schema-wide change count of §4.3.  New instances are created
    with the current CC so superseded deferred changes never apply to
    them; the evolution manager advances it. *)

val set_access_hook : t -> (Instance.t -> unit) option -> unit
(** Called by {!get} on every object access; the deferred
    schema-evolution machinery (§4.3) registers its catch-up here. *)

(** {1 Change events}

    Mutation events power the attribute indexes and the change
    notification service.  They fire on object creation/removal and on
    every attribute write that goes through the object manager;
    [Invalidated] signals a bulk state change (transaction rollback)
    after which listeners must resynchronize. *)

type event =
  | Created of Oid.t
  | Deleted of Oid.t
  | Attr_written of { oid : Oid.t; attr : string; before : Value.t; after : Value.t }
  | Invalidated

type subscription

val subscribe : t -> (event -> unit) -> subscription
val unsubscribe : t -> subscription -> unit

val emit : t -> event -> unit
(** Used by the object manager and the transaction layer; exposed so
    sibling libraries mutating values directly can stay honest. *)

val write_value : t -> Instance.t -> string -> Value.t -> unit
(** [Instance.set_attr] plus the {!Attr_written} event (no checks: the
    callers have already validated; prefer [Object_manager.write_attr]
    in application code). *)

val add : t -> Instance.t -> unit
val remove : t -> Oid.t -> unit

val find : t -> Oid.t -> Instance.t option
(** No access hook: used by internal machinery. *)

val get : t -> Oid.t -> Instance.t
(** Runs the access hook.  @raise Core_error.Error on unknown OIDs. *)

val exists : t -> Oid.t -> bool
val count : t -> int
val iter : t -> (Instance.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Instance.t -> 'a) -> 'a

val instances_of : t -> ?subclasses:bool -> string -> Oid.t list
(** OIDs of instances of the class ([?subclasses] defaults to [true]),
    sorted; includes version and generic instances of the class. *)

val class_of : t -> Oid.t -> string

(** {1 Reverse composite references} *)

val rrefs : t -> Oid.t -> Rref.t list
val set_rrefs : t -> Oid.t -> Rref.t list -> unit
val add_rref : t -> Oid.t -> Rref.t -> unit

val remove_rref : t -> Oid.t -> parent:Oid.t -> attr:string -> Rref.t option
(** Remove (one occurrence of) the reverse reference from [parent] via
    [attr]; returns it. *)

val refsets : t -> Oid.t -> Rref.refsets
