type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let nth_or_empty row i = match List.nth_opt row i with Some s -> s | None -> ""

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width j =
    List.fold_left (fun acc row -> max acc (String.length (nth_or_empty row j))) 0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun j w ->
        Buffer.add_string buf (pad (nth_or_empty row j) w);
        Buffer.add_string buf (if j = ncols - 1 then " |" else " | "))
      widths;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_row t.headers;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf

let render_matrix ~row_labels ~col_labels ~cell ~corner =
  let t = create ~headers:(corner :: col_labels) in
  List.iteri
    (fun i label -> add_row t (label :: List.mapi (fun j _ -> cell i j) col_labels))
    row_labels;
  render t
