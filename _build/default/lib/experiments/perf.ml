open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Store = Orion_storage.Store
module Buffer_pool = Orion_storage.Buffer_pool
module Evolution = Orion_evolution.Evolution
module Lock_mode = Orion_locking.Lock_mode
module Lock_table = Orion_locking.Lock_table
module Tx_manager = Orion_tx.Tx_manager
module Scheduler = Orion_tx.Scheduler
module Part_gen = Orion_workload.Part_gen
module Trace_gen = Orion_workload.Trace_gen
module Table = Orion_util.Table

let define db ?superclasses ?versionable ?segment name attrs =
  ignore
    (Schema.define (Database.schema db) ?superclasses ?versionable ?segment
       ~name ~attributes:attrs ()
      : Orion_schema.Class_def.t)

(* P5: physical clustering (A4). ---------------------------------------------- *)

let vehicle_schema db =
  (* One shared segment so the [:parent] placement rule applies. *)
  define db ~segment:"cad" "VPart"
    [ A.make ~name:"Name" ~domain:(D.Primitive D.P_string) () ];
  define db ~segment:"cad" "Veh"
    [
      A.make ~name:"Parts" ~domain:(D.Class "VPart") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
    ]

let parts_per_vehicle = 12

(* Realistic part payload: a page holds roughly a vehicle's worth of
   parts, so placement decides the page-fetch count of a traversal. *)
let part_payload i p = Printf.sprintf "part-%d-%d-%s" i p (String.make 220 'x')

let cold_misses db roots =
  Persist.checkpoint db;
  let store = Database.store db in
  Store.drop_cache store;
  Store.reset_io_stats store;
  List.iter (fun root -> ignore (Persist.walk_cold db root : int)) roots;
  let _, pool = Store.io_stats store in
  pool.Buffer_pool.misses

let p5_clustering ?(vehicles = 64) () =
  (* Clustered: parts created with [:parent], landing next to their
     vehicle. *)
  let clustered_db = Database.create ~pool_capacity:8 () in
  vehicle_schema clustered_db;
  let clustered_roots =
    List.init vehicles (fun i ->
        let v = Object_manager.create clustered_db ~cls:"Veh" () in
        for p = 1 to parts_per_vehicle do
          ignore
            (Object_manager.create clustered_db ~cls:"VPart" ~parents:[ (v, "Parts") ]
               ~attrs:[ ("Name", Value.Str (part_payload i p)) ]
               ()
              : Oid.t)
        done;
        v)
  in
  let clustered = cold_misses clustered_db clustered_roots in
  (* Scattered: the same content, but parts created round-robin across
     vehicles and attached afterwards — no placement hint. *)
  let scattered_db = Database.create ~pool_capacity:8 () in
  vehicle_schema scattered_db;
  let scattered_roots =
    List.init vehicles (fun _ -> Object_manager.create scattered_db ~cls:"Veh" ())
  in
  for p = 1 to parts_per_vehicle do
    List.iteri
      (fun i v ->
        let part =
          Object_manager.create scattered_db ~cls:"VPart"
            ~attrs:[ ("Name", Value.Str (part_payload i p)) ]
            ()
        in
        Object_manager.make_component scattered_db ~parent:v ~attr:"Parts" ~child:part)
      scattered_roots
  done;
  let scattered = cold_misses scattered_db scattered_roots in
  let table = Table.create ~headers:[ "placement"; "page misses (cold, all roots)" ] in
  Table.add_row table [ "clustered with first parent (§2.3)"; string_of_int clustered ];
  Table.add_row table [ "round-robin scattered"; string_of_int scattered ];
  Report.make ~id:"P5" ~title:"Physical clustering vs cold composite traversal (A4)"
    ~body:(Table.render table)
    ~checks:
      [
        ("clustering reduces page misses", clustered < scattered);
        ( "the reduction is substantial (>= 2x)",
          scattered >= 2 * clustered );
        ( "both traversals visit the same objects",
          Database.count clustered_db = Database.count scattered_db );
      ]
    ()

(* P6: composite-object locking vs instance-at-a-time locking (A5). ------------ *)

let p6_composite_vs_instance_locking ?(roots = 8) ?(depth = 3) ?(fanout = 3) () =
  let forest =
    Part_gen.generate ~roots { Part_gen.default with depth; fanout; seed = 11 }
  in
  let config = { Trace_gen.default with txs = 12; ops_per_tx = 3 } in
  let run scripts =
    let manager = Tx_manager.create forest.Part_gen.db in
    let result = Scheduler.run manager scripts in
    let stats = Lock_table.stats (Tx_manager.lock_table manager) in
    (result, stats)
  in
  let composite_result, composite_stats =
    run (Trace_gen.composite_scripts forest.Part_gen.db ~roots:forest.Part_gen.roots config)
  in
  let instance_result, instance_stats =
    run (Trace_gen.instance_scripts forest.Part_gen.db ~roots:forest.Part_gen.roots config)
  in
  let table =
    Table.create
      ~headers:[ "protocol"; "locks acquired"; "blocks"; "deadlocks"; "rounds" ]
  in
  let row name (result : Scheduler.result) (stats : Lock_table.stats) =
    Table.add_row table
      [
        name;
        string_of_int stats.Lock_table.acquisitions;
        string_of_int result.Scheduler.blocks;
        string_of_int result.Scheduler.deadlocks;
        string_of_int result.Scheduler.rounds;
      ]
  in
  row "composite-object locks (§7)" composite_result composite_stats;
  row "instance-at-a-time locks" instance_result instance_stats;
  Report.make ~id:"P6" ~title:"Composite-object locking vs per-instance locking (A5)"
    ~body:(Table.render table)
    ~checks:
      [
        ( "composite locking takes far fewer lock-table calls",
          composite_stats.Lock_table.acquisitions * 3
          < instance_stats.Lock_table.acquisitions );
        ( "both runs commit all transactions",
          composite_result.Scheduler.committed = config.Trace_gen.txs
          && instance_result.Scheduler.committed = config.Trace_gen.txs );
      ]
    ()

(* P7: conservative vs refined Figure-8 matrix (A3). ---------------------------- *)

let p7_matrix_ablation ?(txs = 12) () =
  (* The Figure-9 shape: class C reached exclusively from I-composites
     and shared from J-composites.  Updates of I-composites (IXO on C)
     and of J-composites (IXOS on C) conflict under the paper's matrix
     but not under the refined one. *)
  let db = Database.create () in
  define db "Cc" [];
  define db "I"
    [
      A.make ~name:"Cs" ~domain:(D.Class "Cc") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
    ];
  define db "J"
    [
      A.make ~name:"Cs" ~domain:(D.Class "Cc") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  let i_roots = List.init 4 (fun _ -> Object_manager.create db ~cls:"I" ()) in
  let j_roots = List.init 4 (fun _ -> Object_manager.create db ~cls:"J" ()) in
  List.iter
    (fun root ->
      for _ = 1 to 3 do
        ignore (Object_manager.create db ~cls:"Cc" ~parents:[ (root, "Cs") ] () : Oid.t)
      done)
    (i_roots @ j_roots);
  let scripts =
    List.init txs (fun n ->
        let root =
          if n mod 2 = 0 then List.nth i_roots (n / 2 mod 4)
          else List.nth j_roots (n / 2 mod 4)
        in
        [ Scheduler.Lock_composite (root, Orion_locking.Protocol.Update) ])
  in
  let run compat =
    let manager = Tx_manager.create ~compat db in
    Scheduler.run manager scripts
  in
  let conservative = run Lock_mode.compat in
  let refined = run Lock_mode.compat_refined in
  let table = Table.create ~headers:[ "matrix"; "blocks"; "rounds to finish" ] in
  Table.add_row table
    [
      "paper (Figure 8, conservative)";
      string_of_int conservative.Scheduler.blocks;
      string_of_int conservative.Scheduler.rounds;
    ];
  Table.add_row table
    [
      "refined (Topology-Rule-3 aware)";
      string_of_int refined.Scheduler.blocks;
      string_of_int refined.Scheduler.rounds;
    ];
  Report.make ~id:"P7" ~title:"Conservative vs refined shared-mode matrix (A3)"
    ~body:(Table.render table)
    ~checks:
      [
        ("refined matrix blocks less", refined.Scheduler.blocks < conservative.Scheduler.blocks);
        ( "both complete all transactions",
          conservative.Scheduler.committed = txs && refined.Scheduler.committed = txs );
      ]
    ()

(* A1: reverse-reference representation. ----------------------------------------- *)

let a1_rref_representation ?(n = 200) () =
  let build repr =
    let db = Database.create ~rref_repr:repr () in
    let forest =
      Part_gen.generate ~db ~roots:4
        { Part_gen.default with exclusive = false; share_prob = 0.4; seed = 5 }
    in
    let total, count =
      Database.fold db ~init:(0, 0) ~f:(fun (total, count) inst ->
          (total + Codec.encoded_size db inst, count + 1))
    in
    ignore forest;
    (float_of_int total /. float_of_int (max 1 count), count)
  in
  ignore n;
  let inline_avg, inline_count = build Database.Inline in
  let external_avg, external_count = build Database.External in
  let table = Table.create ~headers:[ "representation"; "objects"; "avg encoded bytes" ] in
  Table.add_row table
    [ "inline reverse references (§2.4)"; string_of_int inline_count; Printf.sprintf "%.1f" inline_avg ];
  Table.add_row table
    [ "external index (rejected by §2.4)"; string_of_int external_count; Printf.sprintf "%.1f" external_avg ];
  Report.make ~id:"A1" ~title:"Reverse references inline vs external index (A1)"
    ~body:(Table.render table)
    ~checks:
      [
        ("same content", inline_count = external_count);
        ("inline representation grows objects", inline_avg > external_avg);
      ]
    ()

(* P4: immediate vs deferred schema evolution. ------------------------------------- *)

let p4_evolution_cost ?(instances = 500) ?(changes = 3) () =
  let build () =
    let db = Database.create () in
    define db "C" [];
    define db "Cp"
      [
        A.make ~name:"A" ~domain:(D.Class "C") ~collection:A.Set
          ~refkind:(A.composite ~exclusive:true ~dependent:true ())
          ();
      ];
    let ev = Evolution.attach db in
    let targets =
      List.init instances (fun _ ->
          let h = Object_manager.create db ~cls:"Cp" () in
          Object_manager.create db ~cls:"C" ~parents:[ (h, "A") ] ())
    in
    (db, ev, targets)
  in
  let flip i =
    (* Alternate the dependent flag: always a state-independent change. *)
    A.composite ~exclusive:true ~dependent:(i mod 2 = 0) ()
  in
  (* Immediate: every change touches every instance of the domain class. *)
  let _, ev_imm, _ = build () in
  let imm_touched = ref 0 in
  for i = 1 to changes do
    (match
       Evolution.change_attribute_type ev_imm ~mode:Evolution.Immediate ~cls:"Cp"
         ~attr:"A" ~to_:(flip i) ()
     with
    | Ok _ -> imm_touched := !imm_touched + (instances * 2)
    (* instances of C and Cp are both in the domain-class closure scan *)
    | Error _ -> ());
    ()
  done;
  (* Deferred: changes only log; instances catch up when accessed. *)
  let db_def, ev_def, targets = build () in
  let stale () =
    Database.fold db_def ~init:0 ~f:(fun acc inst ->
        if inst.Instance.cc < Database.current_cc db_def then acc + 1 else acc)
  in
  for i = 1 to changes do
    ignore
      (Evolution.change_attribute_type ev_def ~mode:Evolution.Deferred ~cls:"Cp"
         ~attr:"A" ~to_:(flip i) ()
        : (Orion_evolution.Change.primitive list, Evolution.rejection) result)
  done;
  let stale_after_changes = stale () in
  (* Access 10% of the objects: only they catch up. *)
  let accessed = List.filteri (fun i _ -> i mod 10 = 0) targets in
  List.iter (fun oid -> ignore (Database.get db_def oid : Instance.t)) accessed;
  let stale_after_access = stale () in
  let table = Table.create ~headers:[ "strategy"; "objects touched" ] in
  Table.add_row table
    [ Printf.sprintf "immediate (%d changes)" changes; string_of_int !imm_touched ];
  Table.add_row table [ "deferred, at change time"; "0" ];
  Table.add_row table
    [
      "deferred, after accessing 10%";
      string_of_int (stale_after_changes - stale_after_access);
    ];
  Report.make ~id:"P4" ~title:"Immediate vs deferred state-independent changes (A2)"
    ~body:(Table.render table)
    ~checks:
      [
        ( "deferred leaves instances untouched at change time",
          stale_after_changes >= instances );
        ( "accessed instances caught up",
          stale_after_access = stale_after_changes - List.length accessed );
        ( "deferred database still consistent after full flush",
          (Evolution.flush_all ev_def;
           Integrity.check db_def = []) );
      ]
    ()

(* P8: lock escalation. ---------------------------------------------------- *)

let p8_lock_escalation ?(objects = 200) ?(threshold = 10) () =
  let build () =
    let db = Database.create () in
    define db "Doc2" [];
    define db "Box"
      [
        A.make ~name:"Docs" ~domain:(D.Class "Doc2") ~collection:A.Set
          ~refkind:(A.composite ~exclusive:true ~dependent:false ())
          ();
      ];
    let docs = List.init objects (fun _ -> Object_manager.create db ~cls:"Doc2" ()) in
    (db, docs)
  in
  let run escalation =
    let db, docs = build () in
    let manager =
      match escalation with
      | Some threshold -> Tx_manager.create ~escalation_threshold:threshold db
      | None -> Tx_manager.create db
    in
    let tx = Tx_manager.begin_tx manager in
    List.iter
      (fun doc ->
        match Tx_manager.lock_instance manager tx doc Orion_locking.Protocol.Update with
        | `Granted -> ()
        | `Blocked -> failwith "unexpected block")
      docs;
    let stats = Lock_table.stats (Tx_manager.lock_table manager) in
    let escalated = Tx_manager.escalated manager tx in
    ignore (Tx_manager.commit manager tx : int list);
    (stats.Lock_table.acquisitions, escalated)
  in
  let base_acqs, base_escalated = run None in
  let esc_acqs, esc_escalated = run (Some threshold) in
  let table = Table.create ~headers:[ "strategy"; "lock-table calls"; "escalated classes" ] in
  Table.add_row table
    [ "per-instance locks only"; string_of_int base_acqs; String.concat "," base_escalated ];
  Table.add_row table
    [
      Printf.sprintf "escalation at %d" threshold;
      string_of_int esc_acqs;
      String.concat "," esc_escalated;
    ];
  Report.make ~id:"P8" ~title:"Lock escalation: instance locks traded for a class lock"
    ~body:(Table.render table)
    ~checks:
      [
        ("no escalation without a threshold", base_escalated = []);
        ("escalation happened", esc_escalated = [ "Doc2" ]);
        ("escalation cuts lock-table traffic", esc_acqs * 2 < base_acqs);
      ]
    ()

let all () =
  [
    p4_evolution_cost ();
    p5_clustering ();
    p6_composite_vs_instance_locking ();
    p7_matrix_ablation ();
    p8_lock_escalation ();
    a1_rref_representation ();
  ]
