(** S-expressions for the ORION surface syntax.

    The paper writes its data-definition and message syntax in a Lisp
    dialect, e.g. [(make-class 'Vehicle :superclasses nil :attributes ...)].
    This module provides the reader and printer for that dialect: atoms,
    [:keywords], quoted forms, strings, integers, floats and lists. *)

type t =
  | Atom of string  (** a symbol, e.g. [make-class], [nil], [true] *)
  | Keyword of string  (** [:composite] is represented as [Keyword "composite"] *)
  | Str of string  (** a double-quoted string literal *)
  | Int of int
  | Float of float
  | List of t list

exception Parse_error of string
(** Raised by the reader on malformed input; the message carries a
    position and a description. *)

val parse : string -> t
(** [parse s] reads exactly one s-expression from [s]. Trailing
    whitespace is permitted; trailing forms are not.
    @raise Parse_error on malformed input. *)

val parse_many : string -> t list
(** [parse_many s] reads all s-expressions in [s]. *)

val to_string : t -> string
(** Canonical printed form, re-parseable by {!parse}. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

(** Convenience accessors used by the DSL evaluator. *)

val atom : t -> string option
val nil : t
(** The atom [nil]. *)

val is_nil : t -> bool
(** [true] for the atom [nil] and the empty list. *)

val is_true : t -> bool
(** [true] for the atoms [true] and [t]. *)
