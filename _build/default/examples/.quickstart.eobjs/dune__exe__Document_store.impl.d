examples/document_store.ml: Format List Orion_core Orion_dsl Orion_util
