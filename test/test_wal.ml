(* Unit tests for the write-ahead log: frame codec roundtrips, checksum
   corruption detection, crash-fault injection, truncation and the stats
   counters.  The crash matrix itself lives in test_recovery.ml. *)

open Orion_core
module Store = Orion_storage.Store
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module Checksum = Orion_storage.Checksum

let rid segment page slot = { Store.segment; page; slot }

let sample_records =
  [
    Wal_record.Genesis { page_size = 4096 };
    Wal_record.Page_alloc { page_no = 3 };
    Wal_record.Page_write { page_no = 3; image = Bytes.make 64 'x' };
    Wal_record.Segment_new { id = 2 };
    Wal_record.Record_put { rid = rid 1 4 9 };
    Wal_record.Record_delete { rid = rid 0 0 0 };
    Wal_record.Catalog_set { page = 17 };
    Wal_record.Obj_put
      {
        tx = 5;
        oid = Oid.of_int 42;
        cluster_with = Some (Oid.of_int 7);
        rrefs =
          [
            {
              Rref.parent = Oid.of_int 7;
              attr = "Kids";
              exclusive = true;
              dependent = false;
            };
          ];
        data = Bytes.of_string "after-image";
      };
    Wal_record.Obj_delete { tx = 5; oid = Oid.of_int 41 };
    Wal_record.Commit { tx = 5; next_oid = 43; clock = 12; cc = 2 };
    Wal_record.Checkpoint_begin;
    Wal_record.Checkpoint;
  ]

let test_record_roundtrip () =
  List.iter
    (fun record ->
      let decoded = Wal_record.decode (Wal_record.encode record) in
      Alcotest.(check string)
        (Wal_record.describe record)
        (Wal_record.describe record)
        (Wal_record.describe decoded);
      Alcotest.(check bool) "structurally equal" true (decoded = record))
    sample_records

let test_append_scan_roundtrip () =
  let wal = Wal.create () in
  List.iter (Wal.append wal) sample_records;
  let { Wal.records; torn_tail; valid_bytes } = Wal.scan wal in
  Alcotest.(check bool) "no torn tail" false torn_tail;
  Alcotest.(check int) "all bytes valid" (Wal.size wal) valid_bytes;
  Alcotest.(check bool) "records survive" true (records = sample_records)

let test_checksum_detects_corruption () =
  Alcotest.(check int) "adler of empty" 1 (Checksum.bytes Bytes.empty);
  let wal = Wal.create () in
  List.iter (Wal.append wal) sample_records;
  let image = Wal.contents wal in
  (* Flip one payload byte of the 4th frame: every frame before it must
     survive the scan, everything from it on is the torn tail. *)
  let skip_frames n =
    let pos = ref 0 in
    for _ = 1 to n do
      pos := !pos + 8 + Int32.to_int (Bytes.get_int32_le image !pos)
    done;
    !pos
  in
  let victim = skip_frames 3 + 8 in
  Bytes.set image victim (Char.chr (Char.code (Bytes.get image victim) lxor 0xff));
  let { Wal.records; torn_tail; _ } = Wal.scan (Wal.of_bytes image) in
  Alcotest.(check bool) "corruption detected" true torn_tail;
  Alcotest.(check int) "intact prefix kept" 3 (List.length records)

let test_torn_tail_scan () =
  let wal = Wal.create () in
  List.iter (Wal.append wal) sample_records;
  Wal.tear wal ~bytes:5;
  let { Wal.records; torn_tail; _ } = Wal.scan wal in
  Alcotest.(check bool) "tear detected" true torn_tail;
  Alcotest.(check int) "one frame lost" (List.length sample_records - 1)
    (List.length records)

let test_fail_after_fault () =
  let wal = Wal.create () in
  Wal.inject_fault wal (Some (`Fail_after 2));
  Wal.append wal (Wal_record.Page_alloc { page_no = 0 });
  Wal.append wal (Wal_record.Page_alloc { page_no = 1 });
  let size_before = Wal.size wal in
  Alcotest.check_raises "third append crashes" Wal.Crashed (fun () ->
      Wal.append wal (Wal_record.Page_alloc { page_no = 2 }));
  Alcotest.(check bool) "crashed flag" true (Wal.crashed wal);
  Alcotest.(check int) "failed append left no bytes" size_before (Wal.size wal);
  Alcotest.check_raises "still crashed" Wal.Crashed (fun () -> Wal.sync wal);
  Wal.revive wal;
  Wal.append wal (Wal_record.Page_alloc { page_no = 2 });
  Alcotest.(check bool) "revived" false (Wal.crashed wal)

let test_torn_after_fault () =
  let wal = Wal.create () in
  Wal.inject_fault wal (Some (`Torn_after 1));
  Wal.append wal (Wal_record.Segment_new { id = 0 });
  let size_before = Wal.size wal in
  Alcotest.check_raises "second append tears" Wal.Crashed (fun () ->
      Wal.append wal (Wal_record.Segment_new { id = 1 }));
  Alcotest.(check bool) "partial frame reached the log" true
    (Wal.size wal > size_before);
  let { Wal.records; torn_tail; valid_bytes } = Wal.scan wal in
  Alcotest.(check bool) "torn tail reported" true torn_tail;
  Alcotest.(check int) "only the sealed record survives" 1 (List.length records);
  Alcotest.(check int) "valid prefix stops before the tear" size_before
    valid_bytes

let test_truncate_and_stats () =
  let wal = Wal.create () in
  Wal.append wal (Wal_record.Genesis { page_size = 256 });
  List.iter (Wal.append wal) (List.tl sample_records);
  Wal.sync wal;
  let before = Wal.stats wal in
  Alcotest.(check int) "appends counted" (List.length sample_records)
    before.Database.appends;
  Alcotest.(check int) "bytes counted" (Wal.size wal) before.Database.bytes;
  Alcotest.(check int) "syncs counted" 1 before.Database.syncs;
  Wal.truncate wal;
  let after = Wal.stats wal in
  Alcotest.(check int) "truncation counted" 1 after.Database.truncations;
  match Wal.scan wal with
  | { Wal.records = [ Wal_record.Genesis { page_size } ]; torn_tail = false; _ }
    ->
      Alcotest.(check int) "geometry survives truncation" 256 page_size
  | _ -> Alcotest.fail "truncated log must hold exactly one genesis record"

let test_file_roundtrip () =
  let wal = Wal.create () in
  List.iter (Wal.append wal) sample_records;
  Wal.tear wal ~bytes:3;
  let path = Filename.temp_file "orion_wal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Wal.save_file wal path;
      let reloaded = Wal.load_file path in
      Alcotest.(check bool) "bytes identical" true
        (Wal.contents reloaded = Wal.contents wal);
      let { Wal.records; torn_tail; _ } = Wal.scan reloaded in
      Alcotest.(check bool) "tear survives the file" true torn_tail;
      Alcotest.(check int) "records survive the file"
        (List.length sample_records - 1)
        (List.length records))

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_wal"
    [
      ( "codec",
        [
          Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "append/scan roundtrip" `Quick
            test_append_scan_roundtrip;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_checksum_detects_corruption;
          Alcotest.test_case "torn tail scan" `Quick test_torn_tail_scan;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail-after" `Quick test_fail_after_fault;
          Alcotest.test_case "torn-after" `Quick test_torn_after_fault;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "truncate and stats" `Quick test_truncate_and_stats;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        ] );
    ]
