lib/core/topology.ml: Core_error List Rref
