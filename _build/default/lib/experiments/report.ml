type t = {
  id : string;
  title : string;
  body : string;
  checks : (string * bool) list;
}

let ok t = List.for_all snd t.checks

let make ~id ~title ?(body = "") ~checks () = { id; title; body; checks }

let pp ppf t =
  Format.fprintf ppf "=== %s: %s ===@." t.id t.title;
  if t.body <> "" then Format.fprintf ppf "%s@." t.body;
  List.iter
    (fun (name, passed) ->
      Format.fprintf ppf "  [%s] %s@." (if passed then "PASS" else "FAIL") name)
    t.checks;
  Format.fprintf ppf "  => %s@." (if ok t then "OK" else "FAILED")

let to_string t = Format.asprintf "%a" pp t
