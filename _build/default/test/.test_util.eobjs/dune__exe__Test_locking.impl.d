test/test_locking.ml: Alcotest Database List Object_manager Oid Orion_core Orion_locking Orion_schema Printf QCheck QCheck_alcotest
