test/test_authz.ml: Alcotest Database List Object_manager Oid Orion_authz Orion_core Orion_schema QCheck QCheck_alcotest
