test/test_workload.ml: Alcotest Database Instance Integrity List Object_manager Orion_core Orion_tx Orion_workload Traversal
