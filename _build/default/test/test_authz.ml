(* Tests for Orion_authz: the §6 authorization model — implication
   closure, strong/weak combination, implicit authorization through
   composite objects and classes, grant-time conflict rejection. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Auth = Orion_authz.Auth
module Authz = Orion_authz.Authz_manager

let sR = Auth.make Auth.Read
let sW = Auth.make Auth.Write
let snR = Auth.make ~sign:Auth.Negative Auth.Read
let snW = Auth.make ~sign:Auth.Negative Auth.Write
let wR = Auth.make ~strength:Auth.Weak Auth.Read
let wW = Auth.make ~strength:Auth.Weak Auth.Write
let wnR = Auth.make ~strength:Auth.Weak ~sign:Auth.Negative Auth.Read
let wnW = Auth.make ~strength:Auth.Weak ~sign:Auth.Negative Auth.Write

(* Pure algebra ------------------------------------------------------------ *)

let test_closure () =
  Alcotest.(check int) "W+ implies R+" 2 (List.length (Auth.closure sW));
  Alcotest.(check int) "R- implies W-" 2 (List.length (Auth.closure snR));
  Alcotest.(check int) "R+ implies nothing more" 1 (List.length (Auth.closure sR));
  Alcotest.(check int) "W- implies nothing more" 1 (List.length (Auth.closure snW))

let display auths = Auth.display (Auth.combine auths)

let test_combination_examples () =
  (* The four worked cases in §6. *)
  Alcotest.(check string) "sR + sW" "sW" (display [ sR; sW ]);
  Alcotest.(check string) "s¬R + s¬W" (Auth.to_string snR) (display [ snR; snW ]);
  Alcotest.(check string) "s¬R + sW conflicts" "Conflict" (display [ snR; sW ]);
  Alcotest.(check string) "sR + s¬W coexist"
    (Auth.to_string sR ^ " " ^ Auth.to_string snW)
    (display [ sR; snW ])

let test_strong_overrides_weak () =
  Alcotest.(check string) "sR overrides w¬R on R"
    (Auth.to_string sR ^ " " ^ Auth.to_string wnW)
    (display [ sR; wnR ]);
  Alcotest.(check string) "sW overrides w¬R entirely" "sW" (display [ sW; wnR ]);
  Alcotest.(check string) "weak-weak contradiction" "Conflict" (display [ wR; wnR ]);
  Alcotest.(check string) "weak pair compatible"
    (Auth.to_string wW) (display [ wR; wW ])

let test_allows () =
  let allows auths op = Auth.allows (Auth.combine auths) op in
  Alcotest.(check bool) "sW allows W" true (allows [ sW ] Auth.Write);
  Alcotest.(check bool) "sW allows R (implied)" true (allows [ sW ] Auth.Read);
  Alcotest.(check bool) "sR does not allow W" false (allows [ sR ] Auth.Write);
  Alcotest.(check bool) "s¬R blocks even with wR" false (allows [ snR; wR ] Auth.Read);
  Alcotest.(check bool) "conflict allows nothing" false (allows [ snR; sW ] Auth.Read);
  Alcotest.(check bool) "empty allows nothing" false (allows [] Auth.Read)

let test_display_canonical () =
  Alcotest.(check string) "order independent" (display [ sR; snW ])
    (display [ snW; sR ]);
  Alcotest.(check string) "empty" "-" (Auth.display (Auth.Effective []))

(* Manager ------------------------------------------------------------------- *)

let fixture () =
  let db = Database.create () in
  let schema = Database.schema db in
  let define ?superclasses name attrs =
    ignore
      (Schema.define schema ?superclasses ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Node" [];
  define ~superclasses:[ "Node" ] "Folder"
    [
      A.make ~name:"Items" ~domain:(D.Class "Node") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  (db, Authz.create db)

let must = function
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected grant conflict"

let test_grant_on_object_implies_components () =
  let db, authz = fixture () in
  let root = Object_manager.create db ~cls:"Folder" () in
  let child = Object_manager.create db ~cls:"Node" ~parents:[ (root, "Items") ] () in
  let outsider = Object_manager.create db ~cls:"Node" () in
  must (Authz.grant authz ~subject:"u" ~auth:sR ~target:(Authz.On_object root));
  Alcotest.(check bool) "root readable" true
    (Authz.check authz ~subject:"u" ~op:Auth.Read root);
  Alcotest.(check bool) "component readable" true
    (Authz.check authz ~subject:"u" ~op:Auth.Read child);
  Alcotest.(check bool) "outsider not covered" false
    (Authz.check authz ~subject:"u" ~op:Auth.Read outsider);
  Alcotest.(check bool) "different subject not covered" false
    (Authz.check authz ~subject:"v" ~op:Auth.Read child)

let test_grant_on_class_implies_instances_and_components () =
  let db, authz = fixture () in
  let root = Object_manager.create db ~cls:"Folder" () in
  let child = Object_manager.create db ~cls:"Node" ~parents:[ (root, "Items") ] () in
  must (Authz.grant authz ~subject:"u" ~auth:sR ~target:(Authz.On_class "Folder"));
  Alcotest.(check bool) "instance covered" true
    (Authz.check authz ~subject:"u" ~op:Auth.Read root);
  Alcotest.(check bool) "instance's components covered" true
    (Authz.check authz ~subject:"u" ~op:Auth.Read child);
  (* But "the authorization on Vehicle does not imply the same
     authorization on all instances of AutoBody" (§6): a free-standing
     Node instance is NOT covered by the grant on Folder. *)
  let free = Object_manager.create db ~cls:"Node" () in
  Alcotest.(check bool) "free instance of component class not covered" false
    (Authz.check authz ~subject:"u" ~op:Auth.Read free)

let test_component_added_later_is_covered () =
  let db, authz = fixture () in
  let root = Object_manager.create db ~cls:"Folder" () in
  must (Authz.grant authz ~subject:"u" ~auth:sW ~target:(Authz.On_object root));
  let late = Object_manager.create db ~cls:"Node" ~parents:[ (root, "Items") ] () in
  Alcotest.(check bool) "writable via late membership" true
    (Authz.check authz ~subject:"u" ~op:Auth.Write late)

let test_shared_component_combination () =
  let db, authz = fixture () in
  let j = Object_manager.create db ~cls:"Folder" () in
  let k = Object_manager.create db ~cls:"Folder" () in
  let o' =
    Object_manager.create db ~cls:"Node" ~parents:[ (j, "Items"); (k, "Items") ] ()
  in
  must (Authz.grant authz ~subject:"u" ~auth:sR ~target:(Authz.On_object j));
  must (Authz.grant authz ~subject:"u" ~auth:sW ~target:(Authz.On_object k));
  Alcotest.(check string) "strongest of the implied" "sW"
    (Auth.display (Authz.implied_on authz ~subject:"u" o'));
  Alcotest.(check int) "two contributing grants" 2
    (List.length (Authz.sources_for authz ~subject:"u" o'))

let test_conflicting_grant_rejected_and_rolled_back () =
  let db, authz = fixture () in
  let j = Object_manager.create db ~cls:"Folder" () in
  let k = Object_manager.create db ~cls:"Folder" () in
  ignore
    (Object_manager.create db ~cls:"Node" ~parents:[ (j, "Items"); (k, "Items") ] ()
      : Oid.t);
  must (Authz.grant authz ~subject:"u" ~auth:snR ~target:(Authz.On_object j));
  (match Authz.grant authz ~subject:"u" ~auth:sW ~target:(Authz.On_object k) with
  | Error conflicting ->
      Alcotest.(check int) "names the conflicting grant" 1 (List.length conflicting)
  | Ok () -> Alcotest.fail "expected rejection");
  Alcotest.(check int) "rejected grant not installed" 1
    (List.length (Authz.grants authz));
  (* Weak grants may contradict strong ones: overridable, accepted. *)
  must (Authz.grant authz ~subject:"u" ~auth:wW ~target:(Authz.On_object k))

let test_roles () =
  let db, authz = fixture () in
  let root = Object_manager.create db ~cls:"Folder" () in
  let child = Object_manager.create db ~cls:"Node" ~parents:[ (root, "Items") ] () in
  Authz.add_member authz ~role:"designers" ~member:"kim";
  Authz.add_member authz ~role:"staff" ~member:"designers";
  must (Authz.grant authz ~subject:"staff" ~auth:sR ~target:(Authz.On_object root));
  Alcotest.(check bool) "member reads via nested role" true
    (Authz.check authz ~subject:"kim" ~op:Auth.Read child);
  Alcotest.(check bool) "non-member denied" false
    (Authz.check authz ~subject:"lee" ~op:Auth.Read child);
  Alcotest.(check (list Alcotest.string)) "transitive roles"
    [ "designers"; "staff" ]
    (List.sort compare (Authz.roles_of authz "kim"));
  (* A strong role prohibition combines with (and can conflict against)
     the member's own grants. *)
  must (Authz.grant authz ~subject:"kim" ~auth:wW ~target:(Authz.On_object root));
  Alcotest.(check bool) "weak personal W on top of role R" true
    (Authz.check authz ~subject:"kim" ~op:Auth.Write child)

let test_revoke () =
  let db, authz = fixture () in
  let root = Object_manager.create db ~cls:"Folder" () in
  must (Authz.grant authz ~subject:"u" ~auth:sR ~target:(Authz.On_object root));
  Alcotest.(check bool) "revoked" true
    (Authz.revoke authz ~subject:"u" ~auth:sR ~target:(Authz.On_object root));
  Alcotest.(check bool) "second revoke is false" false
    (Authz.revoke authz ~subject:"u" ~auth:sR ~target:(Authz.On_object root));
  Alcotest.(check bool) "no access afterwards" false
    (Authz.check authz ~subject:"u" ~op:Auth.Read root)

(* Properties ------------------------------------------------------------------ *)

let auth_gen =
  QCheck.Gen.oneofl [ sR; sW; snR; snW; wR; wW; wnR; wnW ]

let prop_combine_commutative =
  QCheck.Test.make ~name:"combine is order-insensitive (display)" ~count:300
    QCheck.(make QCheck.Gen.(pair auth_gen auth_gen))
    (fun (a, b) -> display [ a; b ] = display [ b; a ])

let prop_combine_idempotent =
  QCheck.Test.make ~name:"combining an authorization with itself changes nothing"
    ~count:100
    QCheck.(make auth_gen)
    (fun a -> display [ a; a ] = display [ a ])

let prop_strong_conflict_symmetric =
  QCheck.Test.make ~name:"conflicts are symmetric" ~count:300
    QCheck.(make QCheck.Gen.(pair auth_gen auth_gen))
    (fun (a, b) ->
      (Auth.combine [ a; b ] = Auth.Conflict)
      = (Auth.combine [ b; a ] = Auth.Conflict))

let () =
  Alcotest.run "orion_authz"
    [
      ( "algebra",
        [
          Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "worked examples" `Quick test_combination_examples;
          Alcotest.test_case "strong vs weak" `Quick test_strong_overrides_weak;
          Alcotest.test_case "allows" `Quick test_allows;
          Alcotest.test_case "display canonical" `Quick test_display_canonical;
        ] );
      ( "implicit authorization",
        [
          Alcotest.test_case "grant on composite object" `Quick
            test_grant_on_object_implies_components;
          Alcotest.test_case "grant on composite class" `Quick
            test_grant_on_class_implies_instances_and_components;
          Alcotest.test_case "late components covered" `Quick
            test_component_added_later_is_covered;
          Alcotest.test_case "shared component combination" `Quick
            test_shared_component_combination;
          Alcotest.test_case "conflict rejection" `Quick
            test_conflicting_grant_rejected_and_rolled_back;
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "revoke" `Quick test_revoke;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_combine_commutative;
          QCheck_alcotest.to_alcotest prop_combine_idempotent;
          QCheck_alcotest.to_alcotest prop_strong_conflict_symmetric;
        ] );
    ]
