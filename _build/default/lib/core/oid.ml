type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "#%d" t
let to_string t = Format.asprintf "%a" pp t
let to_int t = t
let of_int t = t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
