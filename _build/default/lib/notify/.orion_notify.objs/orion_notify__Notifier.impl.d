lib/notify/notifier.ml: Database List Oid Orion_core Traversal
