examples/vehicle_assembly.ml: Core_error Database Format Integrity List Object_manager Orion_core Orion_storage Orion_workload Persist Printf Traversal
