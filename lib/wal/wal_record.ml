open Orion_core
module Store = Orion_storage.Store
module W = Orion_storage.Bytes_rw.Writer
module R = Orion_storage.Bytes_rw.Reader

type t =
  | Genesis of { page_size : int }
  | Page_alloc of { page_no : int }
  | Page_write of { page_no : int; image : bytes }
  | Segment_new of { id : int }
  | Record_put of { rid : Store.rid }
  | Record_delete of { rid : Store.rid }
  | Catalog_set of { page : int }
  | Obj_put of {
      tx : int;
      oid : Oid.t;
      cluster_with : Oid.t option;
      rrefs : Rref.t list;
      data : bytes;
    }
  | Obj_delete of { tx : int; oid : Oid.t }
  | Commit of { tx : int; next_oid : int; clock : int; cc : int }
  | Commit_group of { txs : int list; next_oid : int; clock : int; cc : int }
  | Checkpoint_begin
  | Checkpoint

let write_rid w (rid : Store.rid) =
  W.int w rid.Store.segment;
  W.int w rid.Store.page;
  W.int w rid.Store.slot

let read_rid r : Store.rid =
  let segment = R.int r in
  let page = R.int r in
  let slot = R.int r in
  { Store.segment; page; slot }

let write_rref w (rref : Rref.t) =
  W.int w (Oid.to_int rref.Rref.parent);
  W.string w rref.Rref.attr;
  W.bool w rref.Rref.exclusive;
  W.bool w rref.Rref.dependent

let read_rref r : Rref.t =
  let parent = Oid.of_int (R.int r) in
  let attr = R.string r in
  let exclusive = R.bool r in
  let dependent = R.bool r in
  { Rref.parent; attr; exclusive; dependent }

let encode record =
  let w = W.create () in
  (match record with
  | Genesis { page_size } ->
      W.u8 w 0;
      W.int w page_size
  | Page_alloc { page_no } ->
      W.u8 w 1;
      W.int w page_no
  | Page_write { page_no; image } ->
      W.u8 w 2;
      W.int w page_no;
      W.string w (Bytes.to_string image)
  | Segment_new { id } ->
      W.u8 w 3;
      W.int w id
  | Record_put { rid } ->
      W.u8 w 4;
      write_rid w rid
  | Record_delete { rid } ->
      W.u8 w 5;
      write_rid w rid
  | Catalog_set { page } ->
      W.u8 w 6;
      W.int w page
  | Obj_put { tx; oid; cluster_with; rrefs; data } ->
      W.u8 w 7;
      W.int w tx;
      W.int w (Oid.to_int oid);
      (match cluster_with with
      | None -> W.bool w false
      | Some p ->
          W.bool w true;
          W.int w (Oid.to_int p));
      W.int w (List.length rrefs);
      List.iter (write_rref w) rrefs;
      W.string w (Bytes.to_string data)
  | Obj_delete { tx; oid } ->
      W.u8 w 8;
      W.int w tx;
      W.int w (Oid.to_int oid)
  | Commit { tx; next_oid; clock; cc } ->
      W.u8 w 9;
      W.int w tx;
      W.int w next_oid;
      W.int w clock;
      W.int w cc
  | Commit_group { txs; next_oid; clock; cc } ->
      W.u8 w 12;
      W.int w (List.length txs);
      List.iter (W.int w) txs;
      W.int w next_oid;
      W.int w clock;
      W.int w cc
  | Checkpoint_begin -> W.u8 w 10
  | Checkpoint -> W.u8 w 11);
  W.contents w

let decode payload =
  let r = R.of_bytes payload in
  match R.u8 r with
  | 0 -> Genesis { page_size = R.int r }
  | 1 -> Page_alloc { page_no = R.int r }
  | 2 ->
      let page_no = R.int r in
      let image = Bytes.of_string (R.string r) in
      Page_write { page_no; image }
  | 3 -> Segment_new { id = R.int r }
  | 4 -> Record_put { rid = read_rid r }
  | 5 -> Record_delete { rid = read_rid r }
  | 6 -> Catalog_set { page = R.int r }
  | 7 ->
      let tx = R.int r in
      let oid = Oid.of_int (R.int r) in
      let cluster_with = if R.bool r then Some (Oid.of_int (R.int r)) else None in
      let nrrefs = R.int r in
      let rrefs = List.init nrrefs (fun _ -> read_rref r) in
      let data = Bytes.of_string (R.string r) in
      Obj_put { tx; oid; cluster_with; rrefs; data }
  | 8 ->
      let tx = R.int r in
      let oid = Oid.of_int (R.int r) in
      Obj_delete { tx; oid }
  | 9 ->
      let tx = R.int r in
      let next_oid = R.int r in
      let clock = R.int r in
      let cc = R.int r in
      Commit { tx; next_oid; clock; cc }
  | 10 -> Checkpoint_begin
  | 11 -> Checkpoint
  | 12 ->
      let n = R.int r in
      let txs = List.init n (fun _ -> R.int r) in
      let next_oid = R.int r in
      let clock = R.int r in
      let cc = R.int r in
      Commit_group { txs; next_oid; clock; cc }
  | tag -> raise (R.Corrupt (Printf.sprintf "bad wal record tag %d" tag))

let describe = function
  | Genesis { page_size } -> Printf.sprintf "genesis page_size=%d" page_size
  | Page_alloc { page_no } -> Printf.sprintf "page-alloc %d" page_no
  | Page_write { page_no; image } ->
      Printf.sprintf "page-write %d (%d bytes)" page_no (Bytes.length image)
  | Segment_new { id } -> Printf.sprintf "segment-new %d" id
  | Record_put { rid } ->
      Printf.sprintf "record-put %d/%d/%d" rid.Store.segment rid.Store.page
        rid.Store.slot
  | Record_delete { rid } ->
      Printf.sprintf "record-delete %d/%d/%d" rid.Store.segment rid.Store.page
        rid.Store.slot
  | Catalog_set { page } -> Printf.sprintf "catalog-set %d" page
  | Obj_put { tx; oid; data; _ } ->
      Printf.sprintf "obj-put tx=%d oid=%d (%d bytes)" tx (Oid.to_int oid)
        (Bytes.length data)
  | Obj_delete { tx; oid } ->
      Printf.sprintf "obj-delete tx=%d oid=%d" tx (Oid.to_int oid)
  | Commit { tx; next_oid; clock; cc } ->
      Printf.sprintf "commit tx=%d next_oid=%d clock=%d cc=%d" tx next_oid clock cc
  | Commit_group { txs; next_oid; clock; cc } ->
      Printf.sprintf "commit-group txs=[%s] next_oid=%d clock=%d cc=%d"
        (String.concat " " (List.map string_of_int txs))
        next_oid clock cc
  | Checkpoint_begin -> "checkpoint-begin"
  | Checkpoint -> "checkpoint"
