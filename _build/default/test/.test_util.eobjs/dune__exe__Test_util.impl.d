test/test_util.ml: Alcotest List Orion_util Printf QCheck QCheck_alcotest String
