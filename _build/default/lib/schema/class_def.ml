type t = {
  name : string;
  mutable superclasses : string list;
  mutable own_attributes : Attribute.t list;
  versionable : bool;
  segment : int;
}

let own_attribute t name =
  List.find_opt (fun (a : Attribute.t) -> String.equal a.name name) t.own_attributes

let pp ppf t =
  Format.fprintf ppf "@[<v 2>(class %s%s :segment %d%s%a)@]" t.name
    (match t.superclasses with
    | [] -> ""
    | supers -> " :superclasses (" ^ String.concat " " supers ^ ")")
    t.segment
    (if t.versionable then " :versionable" else "")
    (fun ppf attrs ->
      List.iter (fun a -> Format.fprintf ppf "@,%a" Attribute.pp a) attrs)
    t.own_attributes
