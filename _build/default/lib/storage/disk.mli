(** Simulated disk.

    The paper's ORION prototype ran against a page server; we are
    laptop-scale, so the "disk" is an in-memory map from page number to
    page image, instrumented with read/write counters.  All I/O-cost
    observations in the benchmarks (physical clustering, cold composite
    traversals) are expressed in these counters, which is exactly the
    quantity the paper's clustering argument is about. *)

type t

type stats = { reads : int; writes : int; allocated : int }

val create : page_size:int -> t

val page_size : t -> int

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its page number. *)

val read : t -> int -> bytes
(** Fetch a copy of the page image (counted as one physical read). *)

val write : t -> int -> bytes -> unit
(** Store a page image (counted as one physical write).
    @raise Invalid_argument if the image size differs from [page_size]. *)

val stats : t -> stats

val reset_stats : t -> unit
