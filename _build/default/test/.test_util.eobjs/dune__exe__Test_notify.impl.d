test/test_notify.ml: Alcotest Database List Object_manager Oid Orion_core Orion_notify Orion_schema Orion_tx Value
