module A = Orion_schema.Attribute
module Schema = Orion_schema.Schema

type violation =
  | Dangling_composite of { parent : Oid.t; attr : string; target : Oid.t }
  | Missing_rref of { parent : Oid.t; attr : string; child : Oid.t }
  | Orphan_rref of { child : Oid.t; rref : Rref.t; reason : string }
  | Topology_broken of Oid.t
  | Bad_type of { oid : Oid.t; attr : string }
  | Composite_cycle of Oid.t
  | Version_broken of { oid : Oid.t; reason : string }
  | Gref_mismatch of {
      generic : Oid.t;
      parent : Oid.t;
      attr : string;
      expected : int;
      actual : int;
    }

let pp_violation ppf = function
  | Dangling_composite { parent; attr; target } ->
      Format.fprintf ppf "dangling composite reference %a.%s -> %a" Oid.pp parent
        attr Oid.pp target
  | Missing_rref { parent; attr; child } ->
      Format.fprintf ppf "missing reverse reference in %a for %a.%s" Oid.pp child
        Oid.pp parent attr
  | Orphan_rref { child; rref; reason } ->
      Format.fprintf ppf "orphan reverse reference %a in %a (%s)" Rref.pp rref
        Oid.pp child reason
  | Topology_broken oid ->
      Format.fprintf ppf "topology rules violated at %a" Oid.pp oid
  | Bad_type { oid; attr } ->
      Format.fprintf ppf "ill-typed value at %a.%s" Oid.pp oid attr
  | Composite_cycle oid ->
      Format.fprintf ppf "composite cycle through %a" Oid.pp oid
  | Version_broken { oid; reason } ->
      Format.fprintf ppf "version bookkeeping broken at %a: %s" Oid.pp oid reason
  | Gref_mismatch { generic; parent; attr; expected; actual } ->
      Format.fprintf ppf
        "generic %a: ref-count for %a.%s is %d but %d references exist" Oid.pp
        generic Oid.pp parent attr actual expected

let composite_attr_values db (inst : Instance.t) =
  if Instance.is_generic inst then []
  else
    Schema.effective_attributes (Database.schema db) inst.cls
    |> List.filter_map (fun (a : A.t) ->
           match Instance.attr inst a.name with
           | Some v -> Some (a, v)
           | None -> None)

(* The generic instance a reference to [oid] is accounted at, if any. *)
let generic_of db oid =
  match Database.find db oid with
  | None -> None
  | Some inst -> (
      match inst.kind with
      | Instance.Generic _ -> Some oid
      | Instance.Version vi -> Some vi.generic
      | Instance.Plain -> None)

let check db =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Pass 1: forward references. *)
  Database.iter db (fun inst ->
      List.iter
        (fun ((a : A.t), v) ->
          (* Dangling references are reported as Dangling_composite or
             (for weak attributes, D3) tolerated; strip them before the
             type check so they do not double-report as Bad_type. *)
          let live_v =
            List.fold_left
              (fun acc target ->
                if Database.exists db target then acc else Value.remove_ref acc target)
              v (Value.refs v)
          in
          if not (Object_manager.value_conforms db a live_v) then
            report (Bad_type { oid = inst.oid; attr = a.name });
          if A.is_composite a then
            List.iter
              (fun target ->
                match Database.find db target with
                | None ->
                    report
                      (Dangling_composite
                         { parent = inst.oid; attr = a.name; target })
                | Some target_inst -> (
                    match target_inst.kind with
                    | Instance.Generic gi ->
                        let pkey =
                          match generic_of db inst.oid with
                          | Some g when not (Oid.equal g inst.oid) -> g
                          | _ -> inst.oid
                        in
                        if
                          not
                            (List.exists
                               (fun (g : Rref.gref) ->
                                 Oid.equal g.g_parent pkey
                                 && String.equal g.g_attr a.name)
                               gi.grefs)
                        then
                          report
                            (Missing_rref
                               { parent = inst.oid; attr = a.name; child = target })
                    | Instance.Plain | Instance.Version _ ->
                        if
                          not
                            (List.exists
                               (fun (r : Rref.t) ->
                                 Oid.equal r.parent inst.oid
                                 && String.equal r.attr a.name)
                               (Database.rrefs db target))
                        then
                          report
                            (Missing_rref
                               { parent = inst.oid; attr = a.name; child = target })))
              (Value.refs v))
        (composite_attr_values db inst));
  (* Pass 2: reverse references and topology. *)
  Database.iter db (fun inst ->
      let rrefs = Database.rrefs db inst.oid in
      List.iter
        (fun (r : Rref.t) ->
          match Database.find db r.parent with
          | None ->
              report (Orphan_rref { child = inst.oid; rref = r; reason = "parent gone" })
          | Some parent_inst -> (
              (match Instance.attr parent_inst r.attr with
              | Some v when Value.contains_ref v inst.oid -> ()
              | Some _ | None ->
                  report
                    (Orphan_rref
                       {
                         child = inst.oid;
                         rref = r;
                         reason = "parent value lacks the reference";
                       }));
              match Schema.attribute (Database.schema db) parent_inst.cls r.attr with
              | Some a
                when A.is_exclusive a = r.exclusive && A.is_dependent a = r.dependent
                ->
                  ()
              | Some _ ->
                  report
                    (Orphan_rref
                       { child = inst.oid; rref = r; reason = "flags disagree with schema" })
              | None ->
                  report
                    (Orphan_rref
                       { child = inst.oid; rref = r; reason = "attribute gone" })))
        rrefs;
      if not (Topology.holds (Rref.classify rrefs)) then
        report (Topology_broken inst.oid));
  (* Pass 3: version bookkeeping. *)
  Database.iter db (fun inst ->
      match inst.kind with
      | Instance.Plain -> ()
      | Instance.Version vi -> (
          match Database.find db vi.generic with
          | None ->
              report (Version_broken { oid = inst.oid; reason = "generic gone" })
          | Some g -> (
              match Instance.generic_info g with
              | Some gi when List.exists (Oid.equal inst.oid) gi.versions -> ()
              | Some _ ->
                  report
                    (Version_broken
                       { oid = inst.oid; reason = "not listed in its generic" })
              | None ->
                  report
                    (Version_broken
                       { oid = inst.oid; reason = "generic is not a generic instance" })))
      | Instance.Generic gi ->
          if gi.versions = [] then
            report (Version_broken { oid = inst.oid; reason = "no version instances" });
          List.iter
            (fun v ->
              match Database.find db v with
              | Some vinst when Instance.is_version vinst -> ()
              | Some _ | None ->
                  report
                    (Version_broken
                       { oid = inst.oid; reason = "listed version instance gone" }))
            gi.versions;
          (* CV-2X at the generic level. *)
          let exclusive_parents =
            gi.grefs
            |> List.filter (fun (g : Rref.gref) -> g.g_exclusive)
            |> List.map (fun (g : Rref.gref) -> g.g_parent)
            |> List.sort_uniq Oid.compare
          in
          if List.length exclusive_parents > 1 then
            report
              (Version_broken
                 {
                   oid = inst.oid;
                   reason = "exclusive references from several hierarchies (CV-2X)";
                 });
          (* Ref-counts: recount the composite references accounted here. *)
          let members = inst.oid :: gi.versions in
          List.iter
            (fun (g : Rref.gref) ->
              let holders =
                match Database.find db g.g_parent with
                | Some p -> (
                    match Instance.generic_info p with
                    | Some pgi -> pgi.versions
                    | None -> [ g.g_parent ])
                | None -> []
              in
              let expected =
                List.fold_left
                  (fun acc holder ->
                    match Database.find db holder with
                    | None -> acc
                    | Some hinst -> (
                        match Instance.attr hinst g.g_attr with
                        | None -> acc
                        | Some v ->
                            acc
                            + List.length
                                (List.filter
                                   (fun target ->
                                     List.exists (Oid.equal target) members)
                                   (Value.refs v))))
                  0 holders
              in
              if expected <> g.count then
                report
                  (Gref_mismatch
                     {
                       generic = inst.oid;
                       parent = g.g_parent;
                       attr = g.g_attr;
                       expected;
                       actual = g.count;
                     }))
            gi.grefs);
  (* Pass 4: acyclicity. *)
  if Database.acyclic db then begin
    let color = Oid.Tbl.create 64 in
    (* 1 = in progress, 2 = done *)
    let rec visit oid =
      match Oid.Tbl.find_opt color oid with
      | Some 1 ->
          report (Composite_cycle oid);
          Oid.Tbl.replace color oid 2
      | Some _ -> ()
      | None -> (
          match Database.find db oid with
          | None -> ()
          | Some inst ->
              Oid.Tbl.replace color oid 1;
              (match inst.kind with
              | Instance.Generic gi -> List.iter visit gi.versions
              | Instance.Plain | Instance.Version _ ->
                  List.iter
                    (fun ((a : A.t), v) ->
                      if A.is_composite a then List.iter visit (Value.refs v))
                    (composite_attr_values db inst));
              Oid.Tbl.replace color oid 2)
    in
    Database.iter db (fun inst -> visit inst.oid)
  end;
  List.rev !violations

let dangling_weak_refs db =
  let acc = ref [] in
  Database.iter db (fun inst ->
      List.iter
        (fun ((a : A.t), v) ->
          if not (A.is_composite a) then
            List.iter
              (fun target ->
                if not (Database.exists db target) then
                  acc := (inst.oid, a.name, target) :: !acc)
              (Value.refs v))
        (composite_attr_values db inst));
  List.rev !acc

let scrub_dangling_weak db =
  let removed = ref 0 in
  Database.iter db (fun inst ->
      List.iter
        (fun ((a : A.t), v) ->
          if not (A.is_composite a) then begin
            let dead =
              List.filter (fun target -> not (Database.exists db target)) (Value.refs v)
            in
            if dead <> [] then begin
              removed := !removed + List.length dead;
              let scrubbed = List.fold_left Value.remove_ref v dead in
              Database.write_value db inst a.name scrubbed
            end
          end)
        (composite_attr_values db inst));
  !removed

let assert_ok db =
  match check db with
  | [] -> ()
  | violations ->
      let msg =
        Format.asprintf "@[<v>integrity violations:@,%a@]"
          (Format.pp_print_list pp_violation)
          violations
      in
      failwith msg
