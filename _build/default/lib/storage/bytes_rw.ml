module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let contents t = Buffer.to_bytes t

  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let uvarint t v =
    let rec go v =
      if v land lnot 0x7f = 0 then u8 t v
      else begin
        u8 t ((v land 0x7f) lor 0x80);
        go (v lsr 7)
      end
    in
    go v

  (* Zig-zag: OCaml ints are 63-bit, so [v asr 62] is the sign mask. *)
  let int t v = uvarint t ((v lsl 1) lxor (v asr 62))

  let float t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let string t s =
    uvarint t (String.length s);
    Buffer.add_string t s

  let bool t b = u8 t (if b then 1 else 0)
end

module Reader = struct
  type t = { src : bytes; mutable pos : int }

  exception Corrupt of string

  let of_bytes src = { src; pos = 0 }

  let at_end t = t.pos >= Bytes.length t.src

  let u8 t =
    if at_end t then raise (Corrupt "unexpected end of record");
    let v = Char.code (Bytes.get t.src t.pos) in
    t.pos <- t.pos + 1;
    v

  let uvarint t =
    let rec go shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let encoded = uvarint t in
    (encoded lsr 1) lxor (-(encoded land 1))

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let len = uvarint t in
    if t.pos + len > Bytes.length t.src then raise (Corrupt "string overruns record");
    let s = Bytes.sub_string t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t = u8 t <> 0
end
