type frame = { page : Page.t; mutable dirty : bool; mutable last_use : int }

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let write_back t page_no frame =
  if frame.dirty then begin
    Disk.write t.disk page_no (Page.image frame.page);
    frame.dirty <- false
  end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun page_no frame acc ->
        match acc with
        | Some (_, best) when best.last_use <= frame.last_use -> acc
        | _ -> Some (page_no, frame))
      t.frames None
  in
  match victim with
  | None -> ()
  | Some (page_no, frame) ->
      write_back t page_no frame;
      Hashtbl.remove t.frames page_no;
      t.evictions <- t.evictions + 1

let get t page_no =
  match Hashtbl.find_opt t.frames page_no with
  | Some frame ->
      t.hits <- t.hits + 1;
      frame.last_use <- tick t;
      frame.page
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.frames >= t.capacity then evict_lru t;
      let page = Page.wrap (Disk.read t.disk page_no) in
      let frame = { page; dirty = false; last_use = tick t } in
      Hashtbl.replace t.frames page_no frame;
      page

let mark_dirty t page_no =
  match Hashtbl.find_opt t.frames page_no with
  | Some frame -> frame.dirty <- true
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let flush t = Hashtbl.iter (fun page_no frame -> write_back t page_no frame) t.frames

let drop_all t =
  flush t;
  Hashtbl.reset t.frames

let stats (t : t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
