(* End-to-end tests of WAL shipping: a primary server streams its log
   to an in-process replica, which applies it live, refuses writes over
   the wire, and is promoted to a writable primary after the original
   is killed — the kill-9 -> promote -> writes-land failover drill.

   Like test_server, servers run in threads over Unix-domain sockets in
   a temp directory; the clients here stand in for separate processes. *)

open Orion_core
module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Tx_service = Orion_server.Tx_service
module Tailer = Orion_replication.Tailer
module Replica = Orion_replication.Replica
module Client = Orion_client
module Message = Orion_protocol.Message
module Wal = Orion_wal.Wal
module Store_check = Orion_analysis.Store_check
module Obs = Orion_obs.Metrics

let temp_dir () =
  let dir = Filename.temp_file "orion_repl_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let connect addr = Client.connect ~client_name:"test" addr

(* Spin until [probe ()] or give up: replication is asynchronous by
   design (ship on the primary's tick, apply on the replica's thread),
   so assertions about the replica's state must wait for the stream. *)
let eventually ?(timeout = 10.) probe =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if probe () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

type primary = {
  p_server : Server.t;
  p_thread : Thread.t;
  p_wal : Wal.t;
  p_env : Eval.env;
  p_addr : Orion_protocol.Addr.t;
  p_db_path : string;
}

(* A primary exactly as `orion serve DB --repl` builds one: log attached
   with offsets preserved across checkpoints, one sealed checkpoint on
   disk (replicas bootstrap from it), a tailer on the log. *)
let start_primary dir =
  let db_path = Filename.concat dir "p.odb" in
  let sock = Filename.concat dir "p.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach ~snapshot_path:db_path ~truncate_on_checkpoint:false wal
    (Eval.database env);
  Wal.set_backing wal (Some (db_path ^ ".wal"));
  Wal.sync wal;
  Orion_core.Persist.save (Eval.database env);
  let server =
    Server.create ~wal
      ~repl:(Tx_service.Primary (Tailer.create wal))
      env (Server.Unix_path sock)
  in
  let thread = Thread.create Server.run server in
  {
    p_server = server;
    p_thread = thread;
    p_wal = wal;
    p_env = env;
    p_addr = Orion_protocol.Addr.Unix_path sock;
    p_db_path = db_path;
  }

type replica_node = {
  r_server : Server.t;
  r_thread : Thread.t;
  r_replica : Replica.t;
  r_db : Database.t;
  r_addr : Orion_protocol.Addr.t;
  r_db_path : string;
}

(* A replica exactly as `orion serve DB --replica-of ADDR` builds one:
   bootstrap synchronously, serve through a Replica_of server, apply
   under the service lock. *)
let start_replica dir primary_addr =
  let db_path = Filename.concat dir "r.odb" in
  let sock = Filename.concat dir "r.sock" in
  let wal = Wal.create () in
  Wal.set_backing wal (Some (db_path ^ ".wal"));
  let replica = Replica.create ~primary:primary_addr ~wal ~db_path () in
  let db = Replica.bootstrap replica in
  let env = Eval.create_env ~db () in
  let server =
    Server.create
      ~repl:(Tx_service.Replica_of { replica; promote_gate = None })
      env (Server.Unix_path sock)
  in
  Replica.set_locked replica (fun f ->
      Tx_service.with_lock (Server.service server) f);
  Replica.set_mvcc replica
    (Orion_tx.Tx_manager.version_store
       (Server.service server).Tx_service.manager);
  Replica.start replica;
  let thread = Thread.create Server.run server in
  {
    r_server = server;
    r_thread = thread;
    r_replica = replica;
    r_db = db;
    r_addr = Orion_protocol.Addr.Unix_path sock;
    r_db_path = db_path;
  }

let commit_part client name =
  ignore (Client.begin_tx client : int);
  ignore (Client.eval client (Printf.sprintf "(make Part :Name %S)" name));
  Client.commit client

(* Catch-up --------------------------------------------------------------------- *)

let test_catch_up () =
  let dir = temp_dir () in
  let p = start_primary dir in
  Fun.protect
    ~finally:(fun () ->
      Server.stop p.p_server;
      Thread.join p.p_thread)
    (fun () ->
      let r = start_replica dir p.p_addr in
      (* The replica bootstraps to the primary's checkpoint... *)
      Alcotest.(check int) "bootstrap sees the schema's classes" 0
        (Database.count r.r_db);
      (* ...then follows committed writes without further checkpoints. *)
      let c = connect p.p_addr in
      commit_part c "alpha";
      commit_part c "beta";
      commit_part c "gamma";
      Alcotest.(check bool) "replica applies shipped commits" true
        (eventually (fun () -> Database.count r.r_db = 3));
      Alcotest.(check bool) "replica log mirrors the primary's bytes" true
        (eventually (fun () ->
             let pc = Wal.contents p.p_wal in
             let rc = Wal.contents (Replica.wal r.r_replica) in
             Bytes.length rc <= Bytes.length pc
             && Bytes.sub pc 0 (Bytes.length rc) = rc));
      Client.close c;
      (* Graceful replica shutdown: mirror image + log both fsck-clean. *)
      Server.stop r.r_server;
      Thread.join r.r_thread;
      Replica.stop r.r_replica;
      Replica.save r.r_replica;
      let report =
        Store_check.check_file ~wal:(r.r_db_path ^ ".wal") r.r_db_path
      in
      Alcotest.(check bool) "replica store+log fsck-clean" false
        (Store_check.failed ~strict:false report))

(* Read-only serving ------------------------------------------------------------ *)

let test_replica_refuses_writes () =
  let dir = temp_dir () in
  let p = start_primary dir in
  Fun.protect
    ~finally:(fun () ->
      Server.stop p.p_server;
      Thread.join p.p_thread)
    (fun () ->
      let r = start_replica dir p.p_addr in
      Fun.protect
        ~finally:(fun () ->
          Server.stop r.r_server;
          Thread.join r.r_thread;
          Replica.stop r.r_replica)
        (fun () ->
          let c = connect r.r_addr in
          let refused f =
            match f () with
            | exception Client.Error (Message.Read_only, _) -> true
            | _ -> false
          in
          Alcotest.(check bool) "begin refused" true
            (refused (fun () -> ignore (Client.begin_tx c : int)));
          Alcotest.(check bool) "make refused" true
            (refused (fun () ->
                 ignore (Client.make c ~cls:"Part" () : Oid.t)));
          (* Reads keep working on the same session. *)
          ignore (Client.eval c "(count-objects)" : Message.v);
          Client.close c))

(* Failover --------------------------------------------------------------------- *)

let test_promote_after_kill () =
  let dir = temp_dir () in
  let p = start_primary dir in
  let r = start_replica dir p.p_addr in
  Fun.protect
    ~finally:(fun () ->
      Server.stop r.r_server;
      Thread.join r.r_thread;
      Replica.stop r.r_replica)
    (fun () ->
      let c = connect p.p_addr in
      commit_part c "pre-crash-1";
      commit_part c "pre-crash-2";
      (* Every acknowledged commit must reach the replica before the
         crash for the zero-loss assertion below to be meaningful. *)
      Alcotest.(check bool) "replica caught up" true
        (eventually (fun () -> Database.count r.r_db = 2));
      (* kill -9 the primary: no goodbye, no checkpoint, no flush. *)
      Server.kill p.p_server;
      Thread.join p.p_thread;
      (try Client.close c with _ -> ());
      Alcotest.(check bool) "still a replica" true
        (Server.role r.r_server = `Replica);
      (* Promote over the wire, exactly like `orion promote ADDR`. *)
      let rc = connect r.r_addr in
      Client.promote rc;
      Alcotest.(check bool) "now a primary" true
        (Server.role r.r_server = `Primary);
      (* Zero sealed commits lost, and the node now accepts writes. *)
      Alcotest.(check int) "no sealed commits lost" 2
        (Database.count r.r_db);
      commit_part rc "post-failover";
      Alcotest.(check int) "writes land after promotion" 3
        (Database.count r.r_db);
      (* Promoting twice is refused with a typed replication error. *)
      Alcotest.(check bool) "second promote refused" true
        (match Client.promote rc with
        | exception Client.Error (Message.Repl_error, _) -> true
        | _ -> false);
      Client.close rc)

(* Tailer edges ----------------------------------------------------------------- *)

let test_subscribe_bounds () =
  let wal = Wal.create () in
  let tailer = Tailer.create wal in
  Alcotest.(check bool) "negative lsn refused" true
    (match Tailer.subscribe tailer ~from_lsn:(-1) with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "lsn past durable refused" true
    (match Tailer.subscribe tailer ~from_lsn:(Wal.durable_lsn wal + 1) with
    | Error _ -> true
    | Ok _ -> false);
  match Tailer.subscribe tailer ~from_lsn:0 with
  | Error e -> Alcotest.failf "subscribe from 0: %s" e
  | Ok (id, lsn) ->
      Alcotest.(check int) "durable lsn echoed" (Wal.durable_lsn wal) lsn;
      Alcotest.(check int) "one replica" 1 (Tailer.replica_count tailer);
      Tailer.unsubscribe tailer id;
      Alcotest.(check int) "unsubscribed" 0 (Tailer.replica_count tailer)

(* A reconnecting replica must reclaim its freed subscription slot so
   its labeled lag gauges re-register (the metrics registry replaces on
   name collision) instead of leaving a stuck-at-0 cell behind and
   minting a fresh label per reconnect. *)
let test_tailer_gauge_reset_on_reconnect () =
  let db = Database.create () in
  let wal = Wal.create () in
  Wal.attach wal db;
  Persist.save db;
  Wal.sync wal;
  let durable = Wal.durable_lsn wal in
  Alcotest.(check bool) "log non-empty" true (durable > 0);
  let tailer = Tailer.create wal in
  let sub () =
    match Tailer.subscribe tailer ~from_lsn:0 with
    | Ok (id, _) -> id
    | Error e -> Alcotest.failf "subscribe: %s" e
  in
  let gauge () =
    Option.value ~default:(-1)
      (Obs.find_gauge (Obs.snapshot ())
         (Obs.labeled "repl.lag_bytes" ("replica", "0")))
  in
  let id0 = sub () in
  Alcotest.(check int) "first subscription takes slot 0" 0 id0;
  Alcotest.(check int) "live subscription lags the whole log" durable
    (gauge ());
  Tailer.unsubscribe tailer id0;
  Alcotest.(check int) "dead subscription's gauge reads 0" 0 (gauge ());
  let id1 = sub () in
  Alcotest.(check int) "reconnect reclaims the freed slot" 0 id1;
  Alcotest.(check int) "lag gauge re-registered for the live subscription"
    durable (gauge ())

let test_standalone_refuses_subscribe () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let env = Eval.create_env () in
  let server = Server.create env (Server.Unix_path sock) in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread)
    (fun () ->
      let c = connect (Orion_protocol.Addr.Unix_path sock) in
      Alcotest.(check bool) "subscribe refused off a standalone" true
        (match Client.repl_subscribe c ~from_lsn:0 with
        | exception Client.Error (Message.Repl_error, _) -> true
        | _ -> false);
      Alcotest.(check bool) "promote refused off a standalone" true
        (match Client.promote c with
        | exception Client.Error (Message.Repl_error, _) -> true
        | _ -> false);
      Client.close c)

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_replication"
    [
      ( "shipping",
        [
          Alcotest.test_case "bootstrap and catch up" `Quick test_catch_up;
          Alcotest.test_case "read-only replica" `Quick
            test_replica_refuses_writes;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill-9, promote, write" `Quick
            test_promote_after_kill;
        ] );
      ( "edges",
        [
          Alcotest.test_case "subscribe bounds" `Quick test_subscribe_bounds;
          Alcotest.test_case "gauge reset on reconnect" `Quick
            test_tailer_gauge_reset_on_reconnect;
          Alcotest.test_case "standalone refuses" `Quick
            test_standalone_refuses_subscribe;
        ] );
    ]
