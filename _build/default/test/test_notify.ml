(* Tests for Orion_notify: flag-based change notification on composite
   objects (after CHOU88). *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Notifier = Orion_notify.Notifier

let oid = Alcotest.testable Oid.pp Oid.equal

let fixture () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leaf" [ A.make ~name:"Text" ~domain:(D.Primitive D.P_string) () ];
  define "Doc"
    [
      A.make ~name:"Title" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Leaves" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  db

let test_component_write_raises_flag () =
  let db = fixture () in
  let n = Notifier.create db in
  let doc = Object_manager.create db ~cls:"Doc" () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~parents:[ (doc, "Leaves") ] () in
  let w = Notifier.watch n doc in
  Notifier.clear n w;
  Alcotest.(check bool) "quiet initially" false (Notifier.changed n w);
  Object_manager.write_attr db leaf "Text" (Value.Str "edited");
  Alcotest.(check bool) "flag raised" true (Notifier.changed n w);
  (match Notifier.changes n w with
  | [ { Notifier.member; attr = Some "Text" } ] ->
      Alcotest.(check oid) "names the component" leaf member
  | other -> Alcotest.failf "unexpected changes (%d)" (List.length other));
  Notifier.clear n w;
  Alcotest.(check bool) "cleared" false (Notifier.changed n w)

let test_attach_detach_notify () =
  let db = fixture () in
  let n = Notifier.create db in
  let doc = Object_manager.create db ~cls:"Doc" () in
  let w = Notifier.watch n doc in
  let leaf = Object_manager.create db ~cls:"Leaf" ~parents:[ (doc, "Leaves") ] () in
  Alcotest.(check bool) "attachment notifies (parent write)" true
    (Notifier.changed n w);
  Notifier.clear n w;
  Object_manager.remove_component db ~parent:doc ~attr:"Leaves" ~child:leaf;
  Alcotest.(check bool) "detachment notifies" true (Notifier.changed n w)

let test_shared_component_notifies_both () =
  let db = fixture () in
  let n = Notifier.create db in
  let d1 = Object_manager.create db ~cls:"Doc" () in
  let d2 = Object_manager.create db ~cls:"Doc" () in
  let leaf =
    Object_manager.create db ~cls:"Leaf"
      ~parents:[ (d1, "Leaves"); (d2, "Leaves") ]
      ()
  in
  let w1 = Notifier.watch n d1 and w2 = Notifier.watch n d2 in
  Notifier.clear n w1;
  Notifier.clear n w2;
  Object_manager.write_attr db leaf "Text" (Value.Str "v2");
  Alcotest.(check (list oid)) "both watched roots dirty" [ d1; d2 ]
    (Notifier.dirty_roots n)

let test_unrelated_changes_ignored () =
  let db = fixture () in
  let n = Notifier.create db in
  let d1 = Object_manager.create db ~cls:"Doc" () in
  let d2 = Object_manager.create db ~cls:"Doc" () in
  let foreign = Object_manager.create db ~cls:"Leaf" ~parents:[ (d2, "Leaves") ] () in
  let w = Notifier.watch n d1 in
  Notifier.clear n w;
  Object_manager.write_attr db foreign "Text" (Value.Str "x");
  Object_manager.write_attr db d2 "Title" (Value.Str "y");
  Alcotest.(check bool) "unaffected watch stays quiet" false (Notifier.changed n w)

let test_root_deletion_reported () =
  let db = fixture () in
  let n = Notifier.create db in
  let doc = Object_manager.create db ~cls:"Doc" () in
  let w = Notifier.watch n doc in
  Notifier.clear n w;
  Object_manager.delete db doc;
  (match Notifier.changes n w with
  | [ { Notifier.member; attr = None } ] -> Alcotest.(check oid) "root" doc member
  | other -> Alcotest.failf "unexpected changes (%d)" (List.length other));
  Notifier.unwatch n w;
  Alcotest.(check (list oid)) "unwatched" [] (Notifier.dirty_roots n)

let test_rollback_marks_all () =
  let db = fixture () in
  let n = Notifier.create db in
  let doc = Object_manager.create db ~cls:"Doc" () in
  let w = Notifier.watch n doc in
  Notifier.clear n w;
  let manager = Orion_tx.Tx_manager.create db in
  let tx = Orion_tx.Tx_manager.begin_tx manager in
  Orion_tx.Tx_manager.write_attr manager tx doc "Title" (Value.Str "tmp");
  Notifier.clear n w;
  ignore (Orion_tx.Tx_manager.abort manager tx : int list);
  Alcotest.(check bool) "rollback marks the watch" true (Notifier.changed n w)

let test_detach_notifier () =
  let db = fixture () in
  let n = Notifier.create db in
  let doc = Object_manager.create db ~cls:"Doc" () in
  let w = Notifier.watch n doc in
  Notifier.clear n w;
  Notifier.detach n;
  Object_manager.write_attr db doc "Title" (Value.Str "silent");
  Alcotest.(check bool) "quiet after detach" false (Notifier.changed n w)

let () =
  Alcotest.run "orion_notify"
    [
      ( "notification",
        [
          Alcotest.test_case "component writes" `Quick test_component_write_raises_flag;
          Alcotest.test_case "attach/detach" `Quick test_attach_detach_notify;
          Alcotest.test_case "shared components" `Quick
            test_shared_component_notifies_both;
          Alcotest.test_case "unrelated ignored" `Quick test_unrelated_changes_ignored;
          Alcotest.test_case "root deletion" `Quick test_root_deletion_reported;
          Alcotest.test_case "rollback" `Quick test_rollback_marks_all;
          Alcotest.test_case "detach" `Quick test_detach_notifier;
        ] );
    ]
