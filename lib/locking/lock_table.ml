open Orion_core

type granule = G_class of string | G_instance of Oid.t

let pp_granule ppf = function
  | G_class c -> Format.fprintf ppf "class %s" c
  | G_instance oid -> Format.fprintf ppf "instance %a" Oid.pp oid

type tx_id = int

type entry = {
  mutable granted : (tx_id * Lock_mode.t) list;
  mutable queue : (tx_id * Lock_mode.t) list;  (* FIFO, head first *)
}

type t = {
  compat : Lock_mode.t -> Lock_mode.t -> bool;
  entries : (granule, entry) Hashtbl.t;
  mutable acquisitions : int;
  mutable blocks : int;
  mutable wakeups : int;
}

type stats = { acquisitions : int; blocks : int; wakeups : int }

let create ?(compat = Lock_mode.compat) () =
  { compat; entries = Hashtbl.create 64; acquisitions = 0; blocks = 0; wakeups = 0 }

let entry t granule =
  match Hashtbl.find_opt t.entries granule with
  | Some e -> e
  | None ->
      let e = { granted = []; queue = [] } in
      Hashtbl.replace t.entries granule e;
      e

let compatible_with_others t entry ~tx mode =
  List.for_all
    (fun (holder, held) -> holder = tx || t.compat mode held)
    entry.granted

let covered entry ~tx mode =
  List.exists
    (fun (holder, held) ->
      holder = tx
      && (held = mode
         || match Lock_mode.supremum held mode with
            | Some sup -> sup = held
            | None -> false))
    entry.granted

let holds t ~tx granule mode = covered (entry t granule) ~tx mode

let acquire t ~tx granule mode =
  let e = entry t granule in
  if List.exists (fun (waiter, m) -> waiter = tx && m = mode) e.queue then
    (* Re-polling a still-queued request does not queue it twice. *)
    `Blocked
  else begin
  t.acquisitions <- t.acquisitions + 1;
  if covered e ~tx mode then `Granted
  else if
    (* FIFO fairness: a request must also wait behind queued requests of
       other transactions unless it is already a holder upgrading. *)
    compatible_with_others t e ~tx mode
    && (e.queue = [] || List.mem_assoc tx e.granted)
  then begin
    e.granted <- e.granted @ [ (tx, mode) ];
    `Granted
  end
  else begin
    t.blocks <- t.blocks + 1;
    e.queue <- e.queue @ [ (tx, mode) ];
    `Blocked
  end
  end

let try_acquire t ~tx granule mode =
  let e = entry t granule in
  if covered e ~tx mode then true
  else if
    compatible_with_others t e ~tx mode
    && (e.queue = [] || List.mem_assoc tx e.granted)
  then begin
    t.acquisitions <- t.acquisitions + 1;
    e.granted <- e.granted @ [ (tx, mode) ];
    true
  end
  else false

let holders t granule = (entry t granule).granted

let locks_of t ~tx =
  Hashtbl.fold
    (fun granule e acc ->
      List.fold_left
        (fun acc (holder, mode) -> if holder = tx then (granule, mode) :: acc else acc)
        acc e.granted)
    t.entries []

let waiting t =
  Hashtbl.fold
    (fun granule e acc ->
      List.fold_left (fun acc (tx, mode) -> (tx, granule, mode) :: acc) acc e.queue)
    t.entries []

(* Promote queued requests that have become compatible, FIFO. *)
let promote t e =
  let woken = ref [] in
  let rec go queue =
    match queue with
    | [] -> []
    | (tx, mode) :: rest ->
        if compatible_with_others t e ~tx mode then begin
          e.granted <- e.granted @ [ (tx, mode) ];
          t.wakeups <- t.wakeups + 1;
          woken := tx :: !woken;
          go rest
        end
        else (tx, mode) :: rest
        (* strict FIFO: stop at the first request that must keep waiting *)
  in
  e.queue <- go e.queue;
  !woken

let release_all t ~tx =
  let woken = ref [] in
  Hashtbl.iter
    (fun _ e ->
      e.granted <- List.filter (fun (holder, _) -> holder <> tx) e.granted;
      e.queue <- List.filter (fun (waiter, _) -> waiter <> tx) e.queue)
    t.entries;
  Hashtbl.iter (fun _ e -> woken := promote t e @ !woken) t.entries;
  (* Fully unblocked = no queued request left anywhere. *)
  let still_queued = List.map (fun (tx, _, _) -> tx) (waiting t) in
  List.sort_uniq Int.compare
    (List.filter (fun tx -> not (List.mem tx still_queued)) !woken)

let blocked_on t ~tx =
  Hashtbl.fold
    (fun _ e acc ->
      if List.exists (fun (waiter, _) -> waiter = tx) e.queue then begin
        (* Waits-for edges: holders whose mode is incompatible, plus —
           because grants are FIFO — every distinct transaction queued
           ahead of this one. *)
        let rec ahead acc = function
          | [] -> acc
          | (waiter, _) :: _ when waiter = tx -> acc
          | (waiter, _) :: rest -> ahead (waiter :: acc) rest
        in
        let acc = ahead acc e.queue in
        List.fold_left
          (fun acc (waiter, mode) ->
            if waiter = tx then
              List.fold_left
                (fun acc (holder, held) ->
                  if holder <> tx && not (t.compat mode held) then holder :: acc
                  else acc)
                acc e.granted
            else acc)
          acc e.queue
      end
      else acc)
    t.entries []
  |> List.filter (fun other -> other <> tx)
  |> List.sort_uniq Int.compare

let find_deadlock t =
  let txs =
    List.sort_uniq Int.compare (List.map (fun (tx, _, _) -> tx) (waiting t))
  in
  (* Transactions fully explored without finding a cycle.  The set is
     shared across the whole search, not threaded per branch: a node
     from which no cycle is reachable stays cycle-free however it is
     reached again, so each node is expanded once and the search is
     linear in the waits-for graph.  (Per-branch visited sets made this
     exponential on the dense graphs a convoy of waiters produces —
     waiter i blocked on the holder and every waiter ahead of it.) *)
  let cleared = Hashtbl.create 16 in
  let rec dfs path tx =
    if List.mem tx path then
      (* Cycle: the suffix of the path from the first occurrence. *)
      let rec suffix = function
        | [] -> []
        | x :: rest -> if x = tx then x :: rest else suffix rest
      in
      Some (suffix (List.rev path))
    else if Hashtbl.mem cleared tx then None
    else
      let result =
        List.fold_left
          (fun acc next ->
            match acc with Some _ -> acc | None -> dfs (tx :: path) next)
          None (blocked_on t ~tx)
      in
      (match result with None -> Hashtbl.replace cleared tx () | Some _ -> ());
      result
  in
  List.fold_left
    (fun acc tx -> match acc with Some _ -> acc | None -> dfs [] tx)
    None txs

let stats (t : t) =
  { acquisitions = t.acquisitions; blocks = t.blocks; wakeups = t.wakeups }

let reset_stats (t : t) =
  t.acquisitions <- 0;
  t.blocks <- 0;
  t.wakeups <- 0
