(* Model-based testing: an independent, deliberately naive
   reimplementation of the §2 composite-object semantics (plain lists,
   fixpoint deletion, no reverse references) is driven with the same
   random operation sequences as the real engine; after every operation
   the observable state — live objects, parent and child relations,
   exclusive/shared classification — must agree exactly.

   The model shares no code with the engine: it recomputes everything
   from a flat edge list, so a bookkeeping bug in reverse references,
   gref counts or cascade ordering shows up as a divergence. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema

(* ----------------------------------------------------------------- *)
(* The reference model.                                              *)
(* ----------------------------------------------------------------- *)

module Model = struct
  type refkind = { exclusive : bool; dependent : bool }

  type t = {
    mutable live : int list;
    mutable edges : (int * string * refkind * int) list;
        (* parent, attr, kind, child — weak edges excluded: the model
           tracks composite structure only *)
  }

  let create () = { live = []; edges = [] }

  let add t oid = t.live <- oid :: t.live

  let exists t oid = List.mem oid t.live

  let in_edges t child = List.filter (fun (_, _, _, c) -> c = child) t.edges

  let out_edges t parent = List.filter (fun (p, _, _, _) -> p = parent) t.edges

  (* The Make-Component Rule, recomputed from the edge list. *)
  let can_link t ~kind ~child =
    let incoming = in_edges t child in
    if kind.exclusive then incoming = []
    else not (List.exists (fun (_, _, k, _) -> k.exclusive) incoming)

  (* Acyclicity (decision D4): would parent be reachable from child? *)
  let reaches t ~from ~target =
    let rec go visited oid =
      if oid = target then true
      else if List.mem oid visited then false
      else
        List.exists
          (fun (_, _, _, c) -> go (oid :: visited) c)
          (out_edges t oid)
    in
    go [] from

  let link t ~parent ~attr ~kind ~child =
    if
      exists t parent && exists t child
      && List.exists
           (fun (p, a, _, c) -> p = parent && a = attr && c = child)
           t.edges
    then true (* idempotent, like the engine's make_component no-op *)
    else if
      exists t parent && exists t child
      && can_link t ~kind ~child
      && (not (reaches t ~from:child ~target:parent))
      && parent <> child
    then begin
      t.edges <- (parent, attr, kind, child) :: t.edges;
      true
    end
    else false

  (* Existence rule (D1): after removing a dependent edge, the child
     dies when no composite edge remains. *)
  let rec unlink t ~parent ~attr ~child =
    let removed =
      List.filter
        (fun (p, a, _, c) -> p = parent && a = attr && c = child)
        t.edges
    in
    match removed with
    | [] -> false
    | (_, _, kind, _) :: _ ->
        t.edges <-
          List.filter
            (fun (p, a, _, c) -> not (p = parent && a = attr && c = child))
            t.edges;
        if kind.dependent && in_edges t child = [] then delete t child;
        true

  (* The Deletion Rule as a naive fixpoint: kill the object, then
     repeatedly kill any object whose dependent support is gone and
     whose remaining supporters are all dead or dying. *)
  and delete t victim =
    if exists t victim then begin
      let dying = ref [ victim ] in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun oid ->
            if (not (List.mem oid !dying)) && exists t oid then begin
              let incoming = in_edges t oid in
              let live_in =
                List.filter (fun (p, _, _, _) -> not (List.mem p !dying)) incoming
              in
              let had_dependent_from_dying =
                List.exists
                  (fun (p, _, k, _) -> k.dependent && List.mem p !dying)
                  incoming
              in
              if had_dependent_from_dying && live_in = [] then begin
                dying := oid :: !dying;
                changed := true
              end
            end)
          t.live
      done;
      t.live <- List.filter (fun oid -> not (List.mem oid !dying)) t.live;
      t.edges <-
        List.filter
          (fun (p, _, _, c) ->
            (not (List.mem p !dying)) && not (List.mem c !dying))
          t.edges
    end

  let parents t child =
    in_edges t child |> List.map (fun (p, _, _, _) -> p) |> List.sort_uniq compare

  let children t parent =
    out_edges t parent |> List.map (fun (_, _, _, c) -> c) |> List.sort_uniq compare

  let components t root =
    let rec go acc oid =
      List.fold_left
        (fun acc c -> if List.mem c acc then acc else go (c :: acc) c)
        acc (children t oid)
    in
    List.sort compare (go [] root)
end

(* ----------------------------------------------------------------- *)
(* Driving both implementations.                                     *)
(* ----------------------------------------------------------------- *)

let attrs_table =
  [
    ("DX", { Model.exclusive = true; dependent = true });
    ("IX", { Model.exclusive = true; dependent = false });
    ("DS", { Model.exclusive = false; dependent = true });
    ("IS", { Model.exclusive = false; dependent = false });
  ]

let fixture () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Node" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  Schema.add_attribute schema ~cls:"Node"
    (A.make ~name:"DX" ~domain:(D.Class "Node") ~collection:A.Set
       ~refkind:(A.composite ~exclusive:true ~dependent:true ()) ());
  Schema.add_attribute schema ~cls:"Node"
    (A.make ~name:"IX" ~domain:(D.Class "Node") ~collection:A.Set
       ~refkind:(A.composite ~exclusive:true ~dependent:false ()) ());
  Schema.add_attribute schema ~cls:"Node"
    (A.make ~name:"DS" ~domain:(D.Class "Node") ~collection:A.Set
       ~refkind:(A.composite ~exclusive:false ~dependent:true ()) ());
  Schema.add_attribute schema ~cls:"Node"
    (A.make ~name:"IS" ~domain:(D.Class "Node") ~collection:A.Set
       ~refkind:(A.composite ~exclusive:false ~dependent:false ()) ());
  db

type op = Create | Link of int * int * int | Unlink of int * int * int | Delete of int

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (3, return Create);
      ( 5,
        map3 (fun a b c -> Link (a, b, c)) (int_bound 30) (int_bound 30)
          (int_bound 3) );
      ( 2,
        map3 (fun a b c -> Unlink (a, b, c)) (int_bound 30) (int_bound 30)
          (int_bound 3) );
      (2, map (fun a -> Delete a) (int_bound 30));
    ]

(* Observable equivalence between the engine and the model. *)
let agree db (model : Model.t) =
  let engine_live =
    Database.fold db ~init:[] ~f:(fun acc i -> Oid.to_int i.Instance.oid :: acc)
    |> List.sort compare
  in
  let model_live = List.sort compare model.Model.live in
  engine_live = model_live
  && List.for_all
       (fun oid_int ->
         let oid = Oid.of_int oid_int in
         let engine_parents =
           Traversal.parents_of db oid |> List.map Oid.to_int |> List.sort compare
         in
         let engine_children =
           Traversal.children_of db oid |> List.map Oid.to_int |> List.sort compare
         in
         let engine_components =
           Traversal.components_of db oid |> List.map Oid.to_int |> List.sort compare
         in
         engine_parents = Model.parents model oid_int
         && engine_children = Model.children model oid_int
         && engine_components = Model.components model oid_int)
       model_live
  && Integrity.check db = []

let run_ops ops =
  let db = fixture () in
  let model = Model.create () in
  let created = ref [] in
  let pick idx =
    match !created with
    | [] -> None
    | l -> Some (List.nth l (idx mod List.length l))
  in
  let ok = ref true in
  List.iter
    (fun op ->
      created := List.filter (fun oid -> Model.exists model oid) !created;
      (match op with
      | Create ->
          let oid = Object_manager.create db ~cls:"Node" () in
          Model.add model (Oid.to_int oid);
          created := Oid.to_int oid :: !created
      | Link (pi, ci, ai) -> (
          match (pick pi, pick ci) with
          | Some p, Some c ->
              let attr, kind = List.nth attrs_table (ai mod 4) in
              let engine_ok =
                match
                  Object_manager.make_component db ~parent:(Oid.of_int p) ~attr
                    ~child:(Oid.of_int c)
                with
                | () -> true
                | exception Core_error.Error _ -> false
              in
              let model_ok = Model.link model ~parent:p ~attr ~kind ~child:c in
              if engine_ok <> model_ok then ok := false
          | _ -> ())
      | Unlink (pi, ci, ai) -> (
          match (pick pi, pick ci) with
          | Some p, Some c ->
              let attr, _ = List.nth attrs_table (ai mod 4) in
              let engine_ok =
                match
                  Object_manager.remove_component db ~parent:(Oid.of_int p) ~attr
                    ~child:(Oid.of_int c)
                with
                | () -> true
                | exception Core_error.Error _ -> false
              in
              let model_ok = Model.unlink model ~parent:p ~attr ~child:c in
              if engine_ok <> model_ok then ok := false
          | _ -> ())
      | Delete di -> (
          match pick di with
          | Some victim ->
              Object_manager.delete db (Oid.of_int victim);
              Model.delete model victim
          | None -> ()));
      if not (agree db model) then ok := false)
    ops;
  !ok

let prop_model_equivalence =
  QCheck.Test.make ~name:"engine agrees with the naive reference model" ~count:60
    QCheck.(make QCheck.Gen.(list_size (int_bound 60) op_gen))
    run_ops

(* A couple of directed scenarios that historically differ between
   implementations (same-parent multi-edges, dependent+independent from
   one dying parent, diamond cascades). *)
let test_directed_scenarios () =
  let scenarios =
    [
      (* p -DX-> c; delete p. *)
      [ Create; Create; Link (1, 0, 0); Delete 1 ];
      (* p -DS-> c; q -DS-> c; delete p then q. *)
      [ Create; Create; Create; Link (2, 0, 2); Link (1, 0, 2); Delete 2; Delete 1 ];
      (* p -DS-> c and p -IS-> c (same parent both flavours); delete p. *)
      [ Create; Create; Link (1, 0, 2); Link (1, 0, 3); Delete 1 ];
      (* chain p -DX-> m -DS-> c plus q -IS-> c; delete p. *)
      [
        Create; Create; Create; Create;
        Link (3, 2, 0); Link (2, 1, 2); Link (0, 1, 3); Delete 3;
      ];
      (* unlink the last dependent edge: existence rule. *)
      [ Create; Create; Link (1, 0, 2); Unlink (1, 0, 2) ];
    ]
  in
  List.iteri
    (fun i ops ->
      Alcotest.(check bool) (Printf.sprintf "scenario %d" i) true (run_ops ops))
    scenarios

let () =
  Alcotest.run "orion_model"
    [
      ( "reference model",
        [
          Alcotest.test_case "directed scenarios" `Quick test_directed_scenarios;
          QCheck_alcotest.to_alcotest prop_model_equivalence;
        ] );
    ]
