lib/core/value.ml: Format Hashtbl List Oid String
