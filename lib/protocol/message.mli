(** The request/response vocabulary of the ORION wire protocol.

    One frame carries one message.  Client frames are {!request}s;
    server frames are {!server_msg}s — either the {!reply} to the
    oldest outstanding request (requests are answered in order) or an
    unsolicited {!push} (deadlock-victim notification, shutdown
    notice).

    Version negotiation happens in-band: the first request on a
    connection must be [Hello], and the server answers [Welcome] with
    the negotiated version or [Error (Unsupported_version, _)].

    Payload encoding uses {!Orion_storage.Bytes_rw} (zig-zag varints,
    length-prefixed strings) and {!Orion_core.Codec}'s tagged value
    encoding, the same primitives as the object store and the
    write-ahead log. *)

open Orion_core

val version : int
(** Current protocol version (1). *)

type access = Read | Update

type request =
  | Hello of { version : int; client : string }
  | Eval of string  (** one or more DSL forms, evaluated in order *)
  | Begin
  | Commit
  | Abort
  | Lock_composite of { root : Oid.t; access : access }
  | Lock_instance of { oid : Oid.t; access : access }
  | Make of {
      cls : string;
      parents : (Oid.t * string) list;
      attrs : (string * Value.t) list;
    }
  | Components_of of Oid.t
  | Ping
  | Stats  (** one {!Orion_obs.Metrics.snapshot} of the server process *)
  | Bye

(** Result values, mirroring the REPL's: an object, a list of objects,
    or a primitive. *)
type v =
  | Unit
  | Bool of bool
  | Num of int
  | Str of string
  | Obj of Oid.t
  | Objs of Oid.t list

type err_code =
  | Unsupported_version
  | Bad_request  (** malformed or out-of-place (e.g. [Commit] without [Begin]) *)
  | Parse_error
  | Eval_error
  | Conflict  (** the transaction was aborted as a deadlock victim *)
  | Timeout  (** a lock wait exceeded the server's lock timeout *)
  | Too_many_sessions
  | Queue_full
  | Shutting_down

type reply =
  | Welcome of { version : int; session : int }
  | Result of v
  | Granted
  | Pong
  | Stats_reply of Orion_obs.Metrics.snapshot
  | Error of { code : err_code; msg : string }

type push =
  | Deadlock_victim of { tx : int; msg : string }
  | Goodbye of { msg : string }  (** server is shutting down *)

type server_msg = Reply of reply | Push of push

val err_code_to_string : err_code -> string
val pp_request : Format.formatter -> request -> unit
val pp_v : Format.formatter -> v -> unit

(** {1 Codec}

    Decoders raise {!Orion_storage.Bytes_rw.Reader.Corrupt} on
    malformed payloads. *)

val encode_request : request -> bytes
val decode_request : bytes -> request
val encode_server : server_msg -> bytes
val decode_server : bytes -> server_msg
