examples/parts_catalog.mli:
