open Orion_core
module Schema = Orion_schema.Schema

type t = {
  db : Database.t;
  cls : string;
  attr : string;
  buckets : (Value.t, Oid.Set.t ref) Hashtbl.t;
  postings : Value.t list Oid.Tbl.t;  (* reverse map for removal *)
  subscription : Database.subscription option ref;
}

let cls t = t.cls

let attr t = t.attr

let leaf_values v =
  let rec go v acc =
    match v with
    | Value.VSet vs -> List.fold_left (fun acc v -> go v acc) acc vs
    | Value.Null -> acc
    | other -> other :: acc
  in
  go v []

let covered t oid =
  match Database.find t.db oid with
  | None -> false
  | Some inst ->
      (not (Instance.is_generic inst))
      && Schema.mem (Database.schema t.db) t.cls
      && Schema.is_subclass_of (Database.schema t.db) ~sub:inst.Instance.cls
           ~super:t.cls

let bucket t v =
  match Hashtbl.find_opt t.buckets v with
  | Some b -> b
  | None ->
      let b = ref Oid.Set.empty in
      Hashtbl.replace t.buckets v b;
      b

let unpost t oid =
  match Oid.Tbl.find_opt t.postings oid with
  | None -> ()
  | Some values ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt t.buckets v with
          | Some b ->
              b := Oid.Set.remove oid !b;
              if Oid.Set.is_empty !b then Hashtbl.remove t.buckets v
          | None -> ())
        values;
      Oid.Tbl.remove t.postings oid

let post t oid value =
  let leaves = leaf_values value in
  List.iter (fun v -> (bucket t v) := Oid.Set.add oid !(bucket t v)) leaves;
  Oid.Tbl.replace t.postings oid leaves

let index_object t (inst : Instance.t) =
  if covered t inst.oid then
    match Instance.attr inst t.attr with
    | Some v -> post t inst.oid v
    | None -> ()

let rebuild t =
  Hashtbl.reset t.buckets;
  Oid.Tbl.reset t.postings;
  Database.iter t.db (fun inst -> index_object t inst)

let on_event t = function
  | Database.Created oid -> (
      match Database.find t.db oid with
      | Some inst -> index_object t inst
      | None -> ())
  | Database.Deleted oid -> unpost t oid
  | Database.Attr_written { oid; attr; after; _ } ->
      if String.equal attr t.attr && covered t oid then begin
        unpost t oid;
        post t oid after
      end
  | Database.Invalidated -> rebuild t

let create db ~cls ~attr =
  let t =
    {
      db;
      cls;
      attr;
      buckets = Hashtbl.create 256;
      postings = Oid.Tbl.create 256;
      subscription = ref None;
    }
  in
  rebuild t;
  t.subscription := Some (Database.subscribe db (on_event t));
  t

let lookup t v =
  match Hashtbl.find_opt t.buckets v with
  | Some b -> Oid.Set.elements !b
  | None -> []

let entry_count t =
  Hashtbl.fold (fun _ b acc -> acc + Oid.Set.cardinal !b) t.buckets 0

let drop t =
  match !(t.subscription) with
  | Some s ->
      Database.unsubscribe t.db s;
      t.subscription := None
  | None -> ()
