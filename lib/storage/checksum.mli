(** Adler-32 checksum (RFC 1950) over byte ranges.

    Guards every log entry, wire frame and stored page image: a torn or
    bit-rotted record fails verification and replay (or the offline
    checker) stops cleanly at the last intact prefix.
    Adler-32 is weaker than CRC-32 against short burst errors but
    needs no table and is plenty for the crash model here (truncated
    or zero-filled tails, not adversarial corruption). *)

val bytes : ?pos:int -> ?len:int -> bytes -> int
(** Checksum of [len] bytes of [data] starting at [pos] (defaults:
    the whole buffer).  Result fits 32 bits, non-negative. *)
