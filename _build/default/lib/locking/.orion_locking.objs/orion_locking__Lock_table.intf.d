lib/locking/lock_table.mli: Format Lock_mode Oid Orion_core
