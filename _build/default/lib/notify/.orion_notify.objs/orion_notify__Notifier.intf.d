lib/notify/notifier.mli: Database Oid Orion_core
