(** A round-robin interleaving scheduler for lock-protocol simulations
    (benchmarks P6/P7).

    Each script is a sequence of steps run inside one transaction;
    blocked transactions retry their pending step on later rounds;
    deadlocks abort the youngest participant, whose script restarts
    from the beginning as a fresh transaction. *)

open Orion_core

type step =
  | Lock_composite of Oid.t * Orion_locking.Protocol.access
  | Lock_instance of Oid.t * Orion_locking.Protocol.access
  | Mutate of (Database.t -> unit)
      (** runs when reached (locks must have been scripted before it) *)

type script = step list

type result = {
  committed : int;
  aborted : int;
  rounds : int;  (** scheduler rounds until completion *)
  blocks : int;  (** lock-table block events *)
  deadlocks : int;
}

val run : ?max_rounds:int -> Tx_manager.t -> script list -> result
(** @raise Failure when [max_rounds] (default 100000) rounds pass
    without completing, which would indicate a scheduling bug. *)
