lib/schema/domain.mli: Format
