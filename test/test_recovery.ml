(* The crash matrix: scripted crashes at every interesting point of the
   commit/checkpoint protocol, each followed by Recovery.replay, with
   the recovered database checked for integrity and structural equality
   against the last committed state.

   The workload is deterministic (OIDs are allocation-ordered), so the
   expected state is produced by replaying the same script up to the
   last committed transaction on a fresh database — never by trusting
   the crashed one. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Store = Orion_storage.Store
module Disk = Orion_storage.Disk
module Wal = Orion_wal.Wal
module Recovery = Orion_wal.Recovery
module Tx = Orion_tx.Tx_manager

(* Structural equality of the committed state.  [rid] is deliberately
   excluded: it is physical placement, and a recovered object keeps no
   slot until the next checkpoint assigns one. *)
let instance_equal (a : Instance.t) (b : Instance.t) =
  let attrs (i : Instance.t) =
    List.sort (fun (x, _) (y, _) -> String.compare x y) i.attrs
  in
  String.equal a.cls b.cls && a.kind = b.kind && a.cc = b.cc
  && a.cluster_with = b.cluster_with
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       (attrs a) (attrs b)

let check_db_equal expected recovered =
  Alcotest.(check int) "object count" (Database.count expected)
    (Database.count recovered);
  Database.iter expected (fun inst ->
      match Database.find recovered inst.Instance.oid with
      | None -> Alcotest.failf "lost %a" Oid.pp inst.Instance.oid
      | Some got ->
          if not (instance_equal inst got) then
            Alcotest.failf "state of %a diverged:@.%a@.vs@.%a" Oid.pp
              inst.Instance.oid Instance.pp inst Instance.pp got;
          let rr (db : Database.t) oid =
            List.sort compare (Database.rrefs db oid)
          in
          if rr expected inst.Instance.oid <> rr recovered inst.Instance.oid
          then
            Alcotest.failf "reverse references of %a diverged" Oid.pp
              inst.Instance.oid);
  let e_oid, e_clock = Database.counters expected in
  let r_oid, r_clock = Database.counters recovered in
  Alcotest.(check int) "next_oid" e_oid r_oid;
  Alcotest.(check int) "clock" e_clock r_clock;
  Alcotest.(check int) "change count" (Database.current_cc expected)
    (Database.current_cc recovered)

let check_integrity db =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations

(* Scripted world ----------------------------------------------------------- *)

type world = {
  db : Database.t;
  wal : Wal.t;
  manager : Tx.t;
  mutable roots : Oid.t list;  (** committed family roots, oldest first *)
}

let define_schema db =
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leaf" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ];
  define "Node"
    [
      A.make ~name:"Kids" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ]

(* Seed objects, checkpoint once (recovery needs a catalog), then hand
   out a transaction manager wired to the log. *)
let boot ?snapshot_path () =
  let db = Database.create () in
  define_schema db;
  let wal = Wal.create () in
  Wal.attach ?snapshot_path wal db;
  let root = Object_manager.create db ~cls:"Node" () in
  ignore
    (Object_manager.create db ~cls:"Leaf" ~parents:[ (root, "Kids") ]
       ~attrs:[ ("Tag", Value.Int 0) ] ()
      : Oid.t);
  Persist.save db;
  let manager = Tx.create ~wal db in
  { db; wal; manager; roots = [ root ] }

(* Committed transaction scripts, all deterministic. *)

let tx_create w tag =
  let tx = Tx.begin_tx w.manager in
  let node = Tx.create_object w.manager tx ~cls:"Node" () in
  for i = 1 to 2 do
    ignore
      (Tx.create_object w.manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ]
         ~attrs:[ ("Tag", Value.Int (tag + i)) ] ()
        : Oid.t)
  done;
  ignore (Tx.commit w.manager tx : int list);
  w.roots <- w.roots @ [ node ]

let tx_mutate w tag =
  let tx = Tx.begin_tx w.manager in
  let node = List.hd (List.rev w.roots) in
  ignore
    (Tx.create_object w.manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ]
       ~attrs:[ ("Tag", Value.Int tag) ] ()
      : Oid.t);
  ignore (Tx.commit w.manager tx : int list)

let tx_delete_oldest w =
  let tx = Tx.begin_tx w.manager in
  Tx.delete_object w.manager tx (List.hd w.roots);
  ignore (Tx.commit w.manager tx : int list);
  w.roots <- List.tl w.roots

(* Run the numbered steps of the shared script. *)
let run w steps =
  List.iter
    (fun step ->
      match step with
      | `Create tag -> tx_create w tag
      | `Mutate tag -> tx_mutate w tag
      | `Delete -> tx_delete_oldest w
      | `Checkpoint -> Persist.save w.db)
    steps

(* The crashed log survives the crash; the in-memory database does not.
   Recovery always starts from the surviving bytes alone. *)
let recover ?snapshot w =
  let survivor = Wal.of_bytes (Wal.contents w.wal) in
  let db, stats = Recovery.replay ?snapshot survivor in
  check_integrity db;
  (db, stats)

let expected steps =
  let w = boot () in
  run w steps;
  w.db

(* The matrix ---------------------------------------------------------------- *)

(* Crash with committed transactions in the log and no checkpoint since:
   durability is entirely the log's (log-only store rebuild). *)
let test_crash_after_commit_record () =
  let w = boot () in
  run w [ `Create 10; `Mutate 99; `Delete ];
  let db, stats = recover w in
  check_db_equal (expected [ `Create 10; `Mutate 99; `Delete ]) db;
  Alcotest.(check int) "three commits replayed" 3 stats.Recovery.committed_txs;
  Alcotest.(check bool) "clean tail" false stats.Recovery.torn_tail

(* Crash before the commit record reaches the log: the transaction never
   happened, even though the crashed process had applied its mutations. *)
let test_crash_before_commit_record () =
  List.iter
    (fun appends_before_crash ->
      let w = boot () in
      run w [ `Create 10 ];
      Wal.inject_fault w.wal (Some (`Fail_after appends_before_crash));
      let tx = Tx.begin_tx w.manager in
      ignore
        (Tx.create_object w.manager tx ~cls:"Leaf"
           ~parents:[ (List.hd w.roots, "Kids") ]
           ~attrs:[ ("Tag", Value.Int 77) ] ()
          : Oid.t);
      (try
         ignore (Tx.commit w.manager tx : int list);
         Alcotest.fail "commit must crash"
       with Wal.Crashed -> ());
      let db, stats = recover w in
      check_db_equal (expected [ `Create 10 ]) db;
      Alcotest.(check int) "only the sealed commit" 1
        stats.Recovery.committed_txs;
      Alcotest.(check bool) "after-images discarded" true
        (stats.Recovery.objects_discarded > 0 || appends_before_crash = 0))
    [ 0; 2 ]

(* Crash in the middle of a checkpoint: the log holds an unterminated
   Checkpoint_begin bracket whose store writes must not be redone. *)
let test_crash_mid_checkpoint () =
  let w = boot () in
  run w [ `Create 10; `Mutate 99 ];
  Disk.inject_fault (Store.disk (Database.store w.db)) (Some (`Fail_after 1));
  (try
     Persist.save w.db;
     Alcotest.fail "checkpoint must crash"
   with Disk.Crashed -> ());
  let db, stats = recover w in
  check_db_equal (expected [ `Create 10; `Mutate 99 ]) db;
  Alcotest.(check bool) "unterminated bracket dropped" true
    stats.Recovery.dropped_checkpoint

(* Same crash, but the page dies torn: a prefix of the image reaches the
   platter.  The log saw the full write first (write-ahead), so recovery
   is unaffected. *)
let test_crash_mid_checkpoint_torn_page () =
  let w = boot () in
  run w [ `Create 10 ];
  Disk.inject_fault (Store.disk (Database.store w.db)) (Some (`Torn_after 0));
  (try
     Persist.save w.db;
     Alcotest.fail "checkpoint must crash"
   with Disk.Crashed -> ());
  let db, _ = recover w in
  check_db_equal (expected [ `Create 10 ]) db

(* The log device loses its tail: the last commit's frame is damaged, so
   that transaction is rolled forward no further than its predecessor. *)
let test_torn_log_tail () =
  let w = boot () in
  run w [ `Create 10; `Mutate 99 ];
  Wal.tear w.wal ~bytes:10;
  let db, stats = recover w in
  check_db_equal (expected [ `Create 10 ]) db;
  Alcotest.(check bool) "tear detected" true stats.Recovery.torn_tail;
  Alcotest.(check int) "last commit lost" 1 stats.Recovery.committed_txs

(* A checkpoint between commits moves the base forward: recovery starts
   from the rebuilt checkpoint state and replays only the tail. *)
let test_checkpoint_then_commits () =
  let script = [ `Create 10; `Checkpoint; `Mutate 99; `Delete ] in
  let w = boot () in
  run w script;
  let db, stats = recover w in
  check_db_equal (expected script) db;
  Alcotest.(check int) "only post-checkpoint commits replayed" 2
    stats.Recovery.committed_txs

(* Snapshot mode: the checkpoint saves the store to a file and truncates
   the log; recovery = snapshot + the short post-checkpoint tail. *)
let test_snapshot_and_truncation () =
  let path = Filename.temp_file "orion_snap" ".store" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let w = boot ~snapshot_path:path () in
      run w [ `Create 10; `Checkpoint; `Mutate 99 ];
      let stats = Database.stats w.db in
      Alcotest.(check int) "two truncations (boot + checkpoint)" 2
        stats.Database.wal.Database.truncations;
      Alcotest.(check bool) "log stayed short" true (Wal.size w.wal < 4096);
      let db, rstats =
        recover ~snapshot:(Store.load_file path) w
      in
      check_db_equal (expected [ `Create 10; `Checkpoint; `Mutate 99 ]) db;
      Alcotest.(check int) "only the tail replayed" 1
        rstats.Recovery.committed_txs;
      Alcotest.(check int) "no physical rebuild" 0 rstats.Recovery.pages_replayed)

(* Nothing after the last checkpoint: recovery is exactly the snapshot. *)
let test_snapshot_idle_crash () =
  let path = Filename.temp_file "orion_snap" ".store" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let w = boot ~snapshot_path:path () in
      run w [ `Create 10; `Checkpoint ];
      let db, rstats = recover ~snapshot:(Store.load_file path) w in
      check_db_equal (expected [ `Create 10 ]) db;
      Alcotest.(check int) "nothing to replay" 0 rstats.Recovery.committed_txs)

(* Replay is deterministic: recovering the recovered log's state again
   (after re-attaching and checkpointing) yields the same database. *)
let test_recover_checkpoint_recover () =
  let w = boot () in
  run w [ `Create 10; `Mutate 99 ];
  let db1, _ = recover w in
  (* Bring the recovered database back into full service: fresh log,
     checkpoint, more work, crash again. *)
  let wal2 = Wal.create () in
  Wal.attach wal2 db1;
  Persist.save db1;
  let manager2 = Tx.create ~wal:wal2 db1 in
  let w2 = { db = db1; wal = wal2; manager = manager2; roots = w.roots } in
  tx_mutate w2 123;
  let db2, _ = recover w2 in
  check_integrity db2;
  Alcotest.(check int) "second generation recovered" (Database.count db1)
    (Database.count db2)

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_recovery"
    [
      ( "crash matrix",
        [
          Alcotest.test_case "crash after commit record" `Quick
            test_crash_after_commit_record;
          Alcotest.test_case "crash before commit record" `Quick
            test_crash_before_commit_record;
          Alcotest.test_case "crash mid-checkpoint" `Quick
            test_crash_mid_checkpoint;
          Alcotest.test_case "crash mid-checkpoint, torn page" `Quick
            test_crash_mid_checkpoint_torn_page;
          Alcotest.test_case "torn log tail" `Quick test_torn_log_tail;
          Alcotest.test_case "checkpoint then commits" `Quick
            test_checkpoint_then_commits;
        ] );
      ( "snapshot mode",
        [
          Alcotest.test_case "snapshot + truncation" `Quick
            test_snapshot_and_truncation;
          Alcotest.test_case "idle crash" `Quick test_snapshot_idle_crash;
          Alcotest.test_case "recover, checkpoint, recover" `Quick
            test_recover_checkpoint_recover;
        ] );
    ]
