open Orion_core

type change = { member : Oid.t; attr : string option }

type watch = { id : int; w_root : Oid.t; mutable log : change list (* newest first *) }

type t = {
  db : Database.t;
  mutable watches : watch list;
  mutable next_watch : int;
  subscription : Database.subscription option ref;
}

let root w = w.w_root

let record w change =
  if not (List.mem change w.log) then w.log <- change :: w.log

(* The watches whose composite object currently contains [member]: the
   member itself, or one of its composite ancestors, is the watched
   root.  Ancestors are found through the reverse references, so shared
   components notify every containing composite object. *)
let covering t member =
  match Database.find t.db member with
  | None -> List.filter (fun w -> Oid.equal w.w_root member) t.watches
  | Some _ ->
      let up = member :: Traversal.ancestors_of t.db member in
      (* A watch on a version instance also covers members reached from
         it; approximate by also matching the generic's versions. *)
      List.filter (fun w -> List.exists (Oid.equal w.w_root) up) t.watches

let on_event t = function
  | Database.Attr_written { oid; attr; _ } ->
      List.iter (fun w -> record w { member = oid; attr = Some attr }) (covering t oid)
  | Database.Deleted oid ->
      (* Former parents are gone from the reverse references by now;
         component deletion is visible through the scrub writes on the
         surviving parents.  Only a watched root's own deletion must be
         reported here. *)
      List.iter
        (fun w ->
          if Oid.equal w.w_root oid then record w { member = oid; attr = None })
        t.watches
  | Database.Created _ -> ()
  | Database.Invalidated ->
      List.iter
        (fun w -> record w { member = w.w_root; attr = None })
        t.watches

let create db =
  let t = { db; watches = []; next_watch = 0; subscription = ref None } in
  t.subscription := Some (Database.subscribe db (on_event t));
  t

let detach t =
  match !(t.subscription) with
  | Some s ->
      Database.unsubscribe t.db s;
      t.subscription := None
  | None -> ()

let watch t oid =
  let w = { id = t.next_watch; w_root = oid; log = [] } in
  t.next_watch <- t.next_watch + 1;
  t.watches <- w :: t.watches;
  w

let unwatch t w = t.watches <- List.filter (fun x -> x.id <> w.id) t.watches

let changed _t w = w.log <> []

let changes _t w = List.rev w.log

let clear _t w = w.log <- []

let dirty_roots t =
  t.watches
  |> List.filter_map (fun w -> if w.log <> [] then Some w.w_root else None)
  |> List.sort_uniq Oid.compare
