lib/workload/scenarios.ml: Database List Object_manager Oid Orion_core Orion_schema Printf Value
