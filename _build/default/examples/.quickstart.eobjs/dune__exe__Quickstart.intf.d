examples/quickstart.mli:
