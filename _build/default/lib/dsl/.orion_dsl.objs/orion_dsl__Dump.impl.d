lib/dsl/dump.ml: Buffer Database Eval Hashtbl Instance Int List Oid Option Orion_core Orion_schema Printf String Value
