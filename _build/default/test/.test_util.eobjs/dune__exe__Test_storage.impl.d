test/test_storage.ml: Alcotest Bytes Char Filename Gen List Option Orion_storage QCheck QCheck_alcotest String Sys
