lib/locking/lock_table.ml: Format Hashtbl Int List Lock_mode Oid Orion_core
