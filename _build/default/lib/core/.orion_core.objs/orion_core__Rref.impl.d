lib/core/rref.ml: Format List Oid String
