examples/quickstart.ml: Core_error Database Format Integrity Object_manager Oid Orion_core Orion_schema Traversal Value
