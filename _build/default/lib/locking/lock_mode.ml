type t = IS | IX | S | SIX | X | ISO | IXO | SIXO | ISOS | IXOS | SIXOS

let all = [ IS; IX; S; SIX; X; ISO; IXO; SIXO; ISOS; IXOS; SIXOS ]

let basic = [ IS; IX; S; SIX; X; ISO; IXO; SIXO ]

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | X -> "X"
  | ISO -> "ISO"
  | IXO -> "IXO"
  | SIXO -> "SIXO"
  | ISOS -> "ISOS"
  | IXOS -> "IXOS"
  | SIXOS -> "SIXOS"

let pp ppf m = Format.pp_print_string ppf (to_string m)

let of_string s = List.find_opt (fun m -> String.equal (to_string m) s) all

(* Coverage of a mode at a component class, by access family:
   - [d]: direct access to instances (finer granule: instance locks);
   - [x]: through exclusive-reference composite objects (finer granule:
     root locks; distinct roots have disjoint exclusive component sets);
   - [s]: through shared-reference composite objects (root locks exist
     but a shared component belongs to several roots, so they cannot
     disambiguate "some" coverage). *)
type cov = No | Some_ | All

type facets = { dr : cov; dw : cov; xr : cov; xw : cov; sr : cov; sw : cov }

let none = { dr = No; dw = No; xr = No; xw = No; sr = No; sw = No }

let facets = function
  | IS -> { none with dr = Some_ }
  | IX -> { none with dr = Some_; dw = Some_ }
  | S -> { none with dr = All }
  | SIX -> { none with dr = All; dw = Some_ }
  | X -> { none with dr = All; dw = All }
  | ISO -> { none with xr = Some_ }
  | IXO -> { none with xr = Some_; xw = Some_ }
  | SIXO -> { none with xr = All; xw = Some_ }
  | ISOS -> { none with sr = Some_ }
  | IXOS -> { none with sr = Some_; sw = Some_ }
  | SIXOS -> { none with sr = All; sw = Some_ }

(* A write coverage [w] against an access coverage [a]: safe only when
   both are "some" and a shared finer granule resolves the overlap. *)
let write_clash ~finer w a =
  w <> No && a <> No && not (finer && w = Some_ && a = Some_)

let family_clash ~finer (r1, w1) (r2, w2) =
  write_clash ~finer w1 r2 || write_clash ~finer w1 w2 || write_clash ~finer w2 r1

let compat_gen ~conservative_xs m1 m2 =
  let f1 = facets m1 and f2 = facets m2 in
  let d1 = (f1.dr, f1.dw) and d2 = (f2.dr, f2.dw) in
  let x1 = (f1.xr, f1.xw) and x2 = (f2.xr, f2.xw) in
  let s1 = (f1.sr, f1.sw) and s2 = (f2.sr, f2.sw) in
  let clash =
    family_clash ~finer:true d1 d2
    || family_clash ~finer:true x1 x2
    || family_clash ~finer:false s1 s2
    (* Direct access shares no granule with composite-object locking:
       ISO conflicts with IX; IXO and SIXO conflict with IS and IX
       (the paper's stated constraints). *)
    || family_clash ~finer:false d1 x2
    || family_clash ~finer:false x1 d2
    || family_clash ~finer:false d1 s2
    || family_clash ~finer:false s1 d2
    (* Exclusive-side vs shared-side composite coverage: disjoint by
       Topology Rule 3, but the paper keeps write-write conservative
       (Figure 9: example 3 is incompatible with example 1).  The
       refined matrix (ablation A3) drops this clause. *)
    || (conservative_xs && (snd x1 <> No && snd s2 <> No || snd s1 <> No && snd x2 <> No))
  in
  not clash

let compat = compat_gen ~conservative_xs:true

let compat_refined = compat_gen ~conservative_xs:false

let cov_le a b =
  match (a, b) with
  | No, _ -> true
  | Some_, (Some_ | All) -> true
  | All, All -> true
  | (Some_ | All), _ -> false

let cov_max a b = if cov_le a b then b else a

let supremum m1 m2 =
  let f1 = facets m1 and f2 = facets m2 in
  let want =
    {
      dr = cov_max f1.dr f2.dr;
      dw = cov_max f1.dw f2.dw;
      xr = cov_max f1.xr f2.xr;
      xw = cov_max f1.xw f2.xw;
      sr = cov_max f1.sr f2.sr;
      sw = cov_max f1.sw f2.sw;
    }
  in
  List.find_opt (fun m -> facets m = want) all
