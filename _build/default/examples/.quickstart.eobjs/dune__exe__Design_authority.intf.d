examples/design_authority.mli:
