(** The schema catalog: classes, the class lattice, attribute
    inheritance, and the class-level predicates of §3.2.

    The lattice supports multiple inheritance; name conflicts among
    inherited attributes resolve in superclass order (first superclass
    wins), and an own attribute overrides any inherited one — the
    [BANE87a] ORION rule. *)

type t

type error =
  | Unknown_class of string
  | Duplicate_class of string
  | Unknown_attribute of { cls : string; attr : string }
  | Duplicate_attribute of { cls : string; attr : string }
  | Lattice_cycle of string list
  | Invalid_attribute of { cls : string; attr : string; reason : string }
  | Not_a_superclass of { cls : string; super : string }
  | Ddl_rejected of string
      (** the installed {!set_ddl_gate} vetoed the mutation (the schema
          is rolled back to its pre-mutation state) *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

val create : unit -> t

val define :
  t ->
  ?superclasses:string list ->
  ?versionable:bool ->
  ?segment:string ->
  name:string ->
  attributes:Attribute.t list ->
  unit ->
  Class_def.t
(** Define a class.  Superclasses must already exist; attribute domains
    may reference classes defined later.  [?segment] names a clustering
    segment — classes naming the same segment share pages (§2.3);
    default: a fresh segment per class.
    @raise Error on duplicate class / attribute, unknown superclass or
    composite attribute with a primitive domain. *)

val find : t -> string -> Class_def.t option
val find_exn : t -> string -> Class_def.t
val mem : t -> string -> bool
val classes : t -> Class_def.t list
val segment_of_class : t -> string -> int
val segment_count : t -> int

val version : t -> int
(** Monotone counter bumped by every schema mutation (used by caches
    and by the deferred-evolution machinery). *)

(** {1 Lattice} *)

val superclasses : t -> string -> string list
val all_superclasses : t -> string -> string list
(** Transitive, without [cls] itself, in DFS order. *)

val subclasses : t -> string -> string list
val all_subclasses : t -> string -> string list
val is_subclass_of : t -> sub:string -> super:string -> bool
(** Reflexive. *)

(** {1 Attributes} *)

val effective_attributes : t -> string -> Attribute.t list
(** Own attributes plus inherited ones after conflict resolution.
    Inherited attributes carry [source = Some defining_class].
    Memoized per class until the next schema mutation ({!version} acts
    as the memo generation); callers must not mutate the list. *)

val composite_attributes : t -> string -> Attribute.t list
(** The composite subset of {!effective_attributes}, memoized the same
    way — the hot path of every composite-object traversal. *)

val attribute : t -> string -> string -> Attribute.t option
val attribute_exn : t -> string -> string -> Attribute.t

val referencing_attributes : t -> string -> (Class_def.t * Attribute.t) list
(** All [(c', a)] such that attribute [a] of class [c'] has domain
    [cls] (exactly; no subclass expansion). *)

(** {1 Predicates (§3.2)} *)

val compositep : t -> string -> ?attr:string -> unit -> bool
(** With [?attr]: does that (effective) attribute carry a composite
    reference.  Without: does the class have at least one. *)

val exclusive_compositep : t -> string -> ?attr:string -> unit -> bool
val shared_compositep : t -> string -> ?attr:string -> unit -> bool
val dependent_compositep : t -> string -> ?attr:string -> unit -> bool

(** {1 Composite class hierarchy (§2.1, §7)} *)

type component_class = {
  component : string;
  via : [ `Exclusive | `Shared ];
      (** the nature of (some) composite reference path reaching it *)
}

val composite_class_hierarchy : t -> string -> component_class list
(** Component classes reachable from [root] through composite
    attributes, transitively, each tagged by the reference nature by
    which it is reached; a class reachable both ways appears twice.
    Domain classes are expanded with their subclasses (an attribute of
    domain C may hold instances of any subclass of C). *)

(** {1 Export / import (database save and load)} *)

type exported = {
  x_classes :
    (string * string list * bool * int * Attribute.t list) list;
      (** name, superclasses, versionable, segment, own attributes —
          in definition-compatible order (superclasses first) *)
  x_segments : (string * int) list;
  x_next_segment : int;
}

val export : t -> exported

val import_into : t -> exported -> unit
(** Populate an empty schema from an export.
    @raise Error if the schema already defines one of the classes. *)

val reimport : t -> exported -> unit
(** Replace the whole catalog in place with an export — the live-schema
    variant of {!import_into} for consumers that cannot swap the [t]
    out from under themselves (a replica refreshing its serving schema
    after the primary checkpoints a DDL change).  Bypasses the DDL gate:
    the imported state was validated when first defined. *)

(** {1 DDL gate} *)

val set_ddl_gate : t -> (t -> unit) option -> unit
(** Install (or clear) a vet run after every successful mutation —
    {!define} and each evolution operator below — while the schema
    still holds the new state.  If the gate raises, the mutation is
    rolled back exactly and the exception propagates; raise
    [Error (Ddl_rejected reason)] for a policy veto.  {!import_into}
    and {!reimport} bypass the gate (replayed state was already
    vetted).  Wired by the CLI's [--ddl-gate] knob to
    [Orion_analysis.Schema_analysis]. *)

(** {1 Mutators (used by Orion_evolution)} *)

val add_attribute : t -> cls:string -> Attribute.t -> unit
val drop_attribute : t -> cls:string -> attr:string -> Attribute.t
(** Returns the dropped attribute.  Fails on inherited (non-own)
    attributes: drop them in the defining class. *)

val replace_attribute : t -> cls:string -> Attribute.t -> unit
(** Replace the own attribute of the same name. *)

val add_superclass : t -> cls:string -> super:string -> unit
val drop_superclass : t -> cls:string -> super:string -> unit
val drop_class : t -> string -> Class_def.t
(** Removes the class; its subclasses become immediate subclasses of
    its superclasses (§4.1 item 4).  Returns the dropped definition. *)
