lib/storage/bytes_rw.ml: Buffer Bytes Char Int64 String
