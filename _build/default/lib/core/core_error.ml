type topology_reason =
  | Child_has_composite_parent
  | Child_has_exclusive_parent
  | Generic_exclusive_other_hierarchy
  | Would_create_cycle of Oid.t list

type t =
  | Unknown_object of Oid.t
  | Not_an_instance_holder of Oid.t
  | Unknown_attribute of { cls : string; attr : string }
  | Not_composite_attribute of { cls : string; attr : string }
  | Type_error of { cls : string; attr : string; value : string; expected : string }
  | Topology_violation of { child : Oid.t; parent : Oid.t; attr : string; reason : topology_reason }
  | Not_a_component of { child : Oid.t; parent : Oid.t; attr : string }
  | Not_versionable of Oid.t
  | Version_error of { oid : Oid.t; reason : string }

exception Error of t

let raise_error e = raise (Error e)

let pp_reason ppf = function
  | Child_has_composite_parent ->
      Format.pp_print_string ppf
        "target of an exclusive reference already has a composite reference to it"
  | Child_has_exclusive_parent ->
      Format.pp_print_string ppf
        "target of a shared reference already has an exclusive reference to it"
  | Generic_exclusive_other_hierarchy ->
      Format.pp_print_string ppf
        "generic instance already referenced exclusively from a different \
         version-derivation hierarchy"
  | Would_create_cycle path ->
      Format.fprintf ppf "would create a composite cycle through %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
           Oid.pp)
        path

let pp ppf = function
  | Unknown_object oid -> Format.fprintf ppf "unknown object %a" Oid.pp oid
  | Not_an_instance_holder oid ->
      Format.fprintf ppf "%a is a generic instance and holds no attribute values"
        Oid.pp oid
  | Unknown_attribute { cls; attr } ->
      Format.fprintf ppf "class %s has no attribute %s" cls attr
  | Not_composite_attribute { cls; attr } ->
      Format.fprintf ppf "%s.%s is not a composite attribute" cls attr
  | Type_error { cls; attr; value; expected } ->
      Format.fprintf ppf "%s.%s: value %s does not conform to %s" cls attr value
        expected
  | Topology_violation { child; parent; attr; reason } ->
      Format.fprintf ppf "cannot make %a a component of %a.%s: %a" Oid.pp child
        Oid.pp parent attr pp_reason reason
  | Not_a_component { child; parent; attr } ->
      Format.fprintf ppf "%a is not a component of %a via %s" Oid.pp child Oid.pp
        parent attr
  | Not_versionable oid -> Format.fprintf ppf "%a is not versionable" Oid.pp oid
  | Version_error { oid; reason } ->
      Format.fprintf ppf "version error on %a: %s" Oid.pp oid reason

let to_string t = Format.asprintf "%a" pp t
