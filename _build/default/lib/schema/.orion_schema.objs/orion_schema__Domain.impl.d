lib/schema/domain.ml: Format String
