lib/schema/schema.mli: Attribute Class_def Format
