lib/core/rref.mli: Format Oid
