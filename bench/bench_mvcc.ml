(* MVCC benchmark (PR 8): what lock-free snapshot reads buy under write
   contention.

   One conflict-heavy scenario, two reader disciplines.  Every writer
   commits parts into the SAME assembly root (all of them contend on
   one composite Update lock — the worst case strict 2PL has), while a
   reader pool runs components-of over that root either:

   - `2pl`: begin, composite Read lock, traverse, commit — readers
     queue behind the writers' Update locks and vice versa;
   - `snapshot`: begin-snapshot, traverse, end-snapshot — readers skip
     the lock table entirely and answer at their begin clock.

   The matrix splits 32 clients across writers/readers several ways and
   reports both sides' throughput plus the lock-table block count the
   window produced — the number the snapshot column should hold near
   zero.  `--json PATH` writes BENCH_PR8.json-style output; `--quick`
   shrinks the matrix for the smoke alias. *)

module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Client = Orion_client
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr
module Oid = Orion_core.Oid
module Value = Orion_core.Value
module Wal = Orion_wal.Wal
module Obs = Orion_obs.Metrics

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let temp_dir () =
  let dir = Filename.temp_file "orion_bench_mvcc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

type server = { server : Server.t; thread : Thread.t; addr : Addr.t }

let start_server dir =
  let sock = Filename.concat dir "orion.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach wal (Eval.database env);
  Orion_core.Persist.save (Eval.database env);
  let server = Server.create ~wal env (Server.Unix_path sock) in
  let thread = Thread.create Server.run server in
  { server; thread; addr = Addr.Unix_path sock }

let stop_server s =
  Server.stop s.server;
  Thread.join s.thread

let counter name =
  Option.value (Obs.find_counter (Obs.snapshot ()) name) ~default:0

type result = {
  mode : string;
  writers : int;
  readers : int;
  writes : int;
  reads : int;
  elapsed_s : float;
  write_throughput : float;
  read_throughput : float;
  lock_blocks : int;
  reader_lock_blocks : int;
}

(* One measured window: [writers] clients hammer one shared root with
   conflicting commits while [readers] clients traverse it under the
   given discipline. *)
let run_scenario ~mode ~writers ~readers ~duration =
  let dir = temp_dir () in
  let s = start_server dir in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      let setup = Client.connect ~client_name:"bench-setup" s.addr in
      let root =
        match Client.eval setup "(make Assembly)" with
        | Message.Obj oid -> oid
        | _ -> failwith "make Assembly"
      in
      (* Seed a few parts so the first traversals walk something. *)
      for i = 1 to 10 do
        ignore (Client.begin_tx setup : int);
        Client.lock_composite setup ~root Message.Update;
        ignore
          (Client.make setup ~cls:"Part" ~parents:[ (root, "Parts") ]
             ~attrs:[ ("Name", Value.Str (Printf.sprintf "seed-%d" i)) ]
             ()
            : Oid.t);
        Client.commit setup
      done;
      Client.close setup;
      let stop = Atomic.make false in
      let write_counts = Array.make (max 1 writers) 0 in
      let read_counts = Array.make (max 1 readers) 0 in
      (* A conflict abort (deadlock victim, lock timeout) leaves the
         transaction already aborted server-side: just retry. *)
      let guarded f = try f () with Client.Error _ -> () in
      let writer i () =
        let c = Client.connect ~client_name:"bench-writer" s.addr in
        let j = ref 0 in
        while not (Atomic.get stop) do
          incr j;
          guarded (fun () ->
              ignore (Client.begin_tx c : int);
              Client.lock_composite c ~root Message.Update;
              ignore
                (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                   ~attrs:[ ("Name", Value.Str (Printf.sprintf "p%d-%d" i !j)) ]
                   ()
                  : Oid.t);
              Client.commit c;
              write_counts.(i) <- write_counts.(i) + 1)
        done;
        Client.close c
      in
      let reader_blocks0 = ref 0 in
      let reader i () =
        let c = Client.connect ~client_name:"bench-reader" s.addr in
        while not (Atomic.get stop) do
          guarded (fun () ->
              (match mode with
              | "snapshot" ->
                  ignore (Client.begin_snapshot c : int);
                  ignore (Client.components_of c root : Oid.t list);
                  Client.end_snapshot c
              | _ ->
                  ignore (Client.begin_tx c : int);
                  Client.lock_composite c ~root Message.Read;
                  ignore (Client.components_of c root : Oid.t list);
                  Client.commit c);
              read_counts.(i) <- read_counts.(i) + 1)
        done;
        Client.close c
      in
      let blocks0 = counter "lock.blocks" in
      let t0 = Unix.gettimeofday () in
      let wthreads = List.init writers (fun i -> Thread.create (writer i) ()) in
      (* Writer-only warm-up so the reader window starts contended,
         then measure reader blocks separately from writer blocks. *)
      Thread.delay (duration /. 10.);
      reader_blocks0 := counter "lock.blocks";
      let rthreads = List.init readers (fun i -> Thread.create (reader i) ()) in
      Thread.delay duration;
      Atomic.set stop true;
      List.iter Thread.join wthreads;
      List.iter Thread.join rthreads;
      let elapsed = Unix.gettimeofday () -. t0 in
      let writes = Array.fold_left ( + ) 0 write_counts in
      let reads = Array.fold_left ( + ) 0 read_counts in
      {
        mode;
        writers;
        readers;
        writes;
        reads;
        elapsed_s = elapsed;
        write_throughput = float_of_int writes /. elapsed;
        read_throughput = float_of_int reads /. elapsed;
        lock_blocks = counter "lock.blocks" - blocks0;
        (* Blocks accrued once readers joined; with snapshot readers the
           writers still block each other, so this is an upper bound on
           reader-induced blocking — near the writer-only rate means the
           readers added none. *)
        reader_lock_blocks = counter "lock.blocks" - !reader_blocks0;
      })

(* Output ----------------------------------------------------------------------- *)

let write_json ~path results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-mvcc-v1\",\n";
  Bench_meta.add buf;
  (* The registry holds the last scenario's instruments: mvcc.published
     / mvcc.reads / mvcc.fallthroughs, the lock-table counters the
     comparison turns on, and the server's request histograms. *)
  Bench_meta.add_metrics buf (Obs.snapshot ());
  Buffer.add_string buf "  \"results\": {\n";
  Buffer.add_string buf "    \"conflict_heavy\": {\n";
  List.iteri
    (fun i (r : result) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      \"%s-w%d-r%d\": { \"writers\": %d, \"readers\": %d, \
            \"writes\": %d, \"reads\": %d, \"elapsed_s\": %.3f, \
            \"write_throughput_ops_per_s\": %.1f, \
            \"read_throughput_ops_per_s\": %.1f, \"lock_blocks\": %d, \
            \"lock_blocks_with_readers\": %d }%s\n"
           r.mode r.writers r.readers r.writers r.readers r.writes r.reads
           r.elapsed_s r.write_throughput r.read_throughput r.lock_blocks
           r.reader_lock_blocks
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let arg_value name =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let json_path = arg_value "--json" in
  let duration =
    match arg_value "--min-duration" with
    | Some s -> float_of_string s
    | None -> if quick then 0.3 else 1.5
  in
  (* 32 clients split writer-heavy to reader-heavy; conflict on one
     root throughout. *)
  let splits = if quick then [ (2, 4) ] else [ (8, 24); (16, 16); (24, 8) ] in
  print_endline
    "=== MVCC bench: snapshot vs 2PL readers under conflict-heavy writes ===";
  let results =
    List.concat_map
      (fun (writers, readers) ->
        List.map
          (fun mode ->
            let r = run_scenario ~mode ~writers ~readers ~duration in
            Printf.printf
              "%-8s %2dw/%2dr: %8.1f writes/s  %9.1f reads/s  blocks %6d \
               (with readers %6d)\n\
               %!"
              r.mode r.writers r.readers r.write_throughput r.read_throughput
              r.lock_blocks r.reader_lock_blocks;
            r)
          [ "2pl"; "snapshot" ])
      splits
  in
  match json_path with
  | Some path -> write_json ~path results
  | None -> ()
