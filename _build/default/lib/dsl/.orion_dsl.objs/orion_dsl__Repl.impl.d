lib/dsl/repl.ml: Eval Format List Orion_core Orion_schema Orion_util String
