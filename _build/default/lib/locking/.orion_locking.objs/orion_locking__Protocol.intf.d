lib/locking/protocol.mli: Database Lock_mode Lock_table Oid Orion_core
