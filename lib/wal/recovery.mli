(** Crash recovery: redo the log onto the last durable base.

    The base is either a snapshot store (the file a checkpoint saved —
    pass it as [?snapshot]) or, when the log reaches back to the store's
    birth (no truncation ever ran), nothing at all: the physical half of
    the log rebuilds the store from scratch.

    Replay proceeds in two passes, split at the last {e sealed}
    [Checkpoint] record of the longest intact log prefix:

    + {e physical} (records up to the split): page allocations, page
      images and store-directory ops rebuild the store exactly as the
      last checkpoint flushed it.  Physical records after the split — a
      crashed checkpoint's half-applied writes, mid-transaction record
      deletions, buffer-pool evictions — were never sealed by a catalog
      and are not redone.  Skipped when a snapshot is given: the
      snapshot already holds that state.
    + {e logical} (records after the split): the catalog is loaded
      ({!Orion_core.Persist.load}) and every {e committed} transaction's
      after-images are applied in log order.  Records of transactions
      with no [Commit] in the surviving log are discarded — redo-only
      semantics: an unacknowledged commit never happened.

    Checkpoints run at transaction-quiescent points and absorb every
    earlier mutation, so the split loses nothing; and the logical pass
    is idempotent, so a log that overlaps the snapshot (crash after the
    snapshot reached disk, before truncation) converges to the same
    state.  Between checkpoints, durable mutations must flow through
    logged commits — non-transactional mutations become durable only at
    the next checkpoint. *)

open Orion_core
module Store = Orion_storage.Store

type stats = {
  scanned : int;  (** intact records decoded from the log *)
  valid_bytes : int;
  torn_tail : bool;  (** the log ended in a damaged frame *)
  dropped_checkpoint : bool;  (** an unterminated checkpoint bracket was discarded *)
  pages_replayed : int;
  directory_ops_replayed : int;
  committed_txs : int;
  objects_applied : int;  (** after-images and tombstones applied *)
  objects_discarded : int;  (** records of uncommitted transactions *)
}

val pp_stats : Format.formatter -> stats -> unit

val rebuild_store : Wal.t -> Store.t
(** Physical pass only: a store reconstructed purely from the log.
    @raise Failure when the log lacks its [Genesis] record (it does not
    reach back to the store's birth — recover from a snapshot instead). *)

val replay : ?snapshot:Store.t -> Wal.t -> Database.t * stats
(** Full recovery to the last committed state.  The result passes
    {!Orion_core.Integrity.check} whenever the crashed database did.
    @raise Failure when no base is recoverable (no snapshot and no
    [Genesis], or a base store without a catalog — i.e. nothing was
    ever checkpointed). *)
