(** The attribute-type change taxonomy of §4.2.

    A change from one reference kind to another decomposes into the
    paper's primitive changes; a change is {e state-dependent} exactly
    when its decomposition contains D1, D2 or D3 (those require
    verification of the X flags in the reverse references before they
    can be accepted), and {e state-independent} otherwise. *)

type primitive =
  | I1  (** composite → non-composite *)
  | I2  (** exclusive composite → shared composite *)
  | I3  (** dependent composite → independent composite *)
  | I4  (** independent composite → dependent composite *)
  | D1  (** non-composite → exclusive composite *)
  | D2  (** non-composite → shared composite *)
  | D3  (** shared composite → exclusive composite *)

val pp_primitive : Format.formatter -> primitive -> unit

val classify :
  from_:Orion_schema.Attribute.reference_kind ->
  to_:Orion_schema.Attribute.reference_kind ->
  primitive list
(** Empty list when the kinds are equal. *)

val state_dependent : primitive list -> bool
