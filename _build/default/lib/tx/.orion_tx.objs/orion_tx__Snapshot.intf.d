lib/tx/snapshot.mli: Database Oid Orion_core
