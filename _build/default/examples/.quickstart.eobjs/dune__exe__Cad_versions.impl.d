examples/cad_versions.ml: Database Format Integrity List Object_manager Oid Orion_core Orion_schema Orion_versions Traversal Value
