(** The composite-object operations of §3: determining components,
    children, parents and ancestors, plus the instance-level
    predicates.

    Dynamic binding (a reference whose target is a generic instance)
    resolves to the target's {e default version} during downward
    traversal (§5.1), so [components_of] reports version instances, not
    generic instances.  Going upward, a version instance answers from
    its reverse references and a generic instance answers from its
    reverse composite generic references (the paper's Figure 3.b note:
    [parents-of] on generic [b1] yields [a1]).

    Exclusive/shared classification (decision D11): a component is an
    {e exclusive component} when every composite path reaching it uses
    exclusive references only; otherwise it is a {e shared component}. *)

type filter = [ `All | `Exclusive | `Shared ]

val default_version : Database.t -> Oid.t -> Oid.t option
(** Default version of a generic instance: the user-specified one, else
    the system default — the latest-created version instance (§5.1). *)

val resolve : Database.t -> Oid.t -> Oid.t
(** Resolve dynamic binding: a generic instance maps to its default
    version; anything else maps to itself. *)

type reach = { mutable dist : int; mutable tainted : bool }
(** Per-node result of {!reachability_via}: shortest composite distance
    from the root, and whether some reaching path contains a shared
    reference (a component is exclusive iff never tainted, D11). *)

val reachability_via :
  edges:(Oid.t -> (bool * Oid.t) list) -> Oid.t -> reach Oid.Tbl.t * Oid.t list
(** The downward BFS over an arbitrary edge function (each edge is
    [(exclusive, child)] with dynamic binding already resolved); returns
    the per-node info and the reachable objects in BFS order, root
    excluded.  The live database's edge function is implicit in
    {!components_of}; snapshot reads (lib/mvcc) supply one resolved
    against a version store at a fixed commit clock. *)

val ancestors_via :
  parent_edges:(Oid.t -> (Oid.t * bool) list) ->
  filter:filter ->
  Oid.t ->
  Oid.t list
(** The upward BFS over an arbitrary parent-edge function (each edge is
    [(parent, exclusive)]), without class filtering. *)

val components_of :
  Database.t ->
  ?classes:string list ->
  ?level:int ->
  ?filter:filter ->
  Oid.t ->
  Oid.t list
(** All objects directly or indirectly referenced through composite
    references.  [?level] limits to components whose shortest path has
    at most that many composite references; [?classes] keeps instances
    of the listed classes (or their subclasses); [?filter] keeps
    exclusive or shared components only.  Results in BFS order. *)

val children_of : Database.t -> Oid.t -> Oid.t list
(** Level-1 components. *)

val parents_of :
  Database.t -> ?classes:string list -> ?filter:filter -> Oid.t -> Oid.t list

val ancestors_of :
  Database.t -> ?classes:string list -> ?filter:filter -> Oid.t -> Oid.t list
(** With [?filter], ancestors reachable through chains of matching
    reverse references. *)

val component_of : Database.t -> Oid.t -> Oid.t -> bool
(** [component_of db o1 o2]: is [o1] a direct or indirect component of
    [o2]. *)

val child_of : Database.t -> Oid.t -> Oid.t -> bool

val exclusive_component_of : Database.t -> Oid.t -> Oid.t -> bool
val shared_component_of : Database.t -> Oid.t -> Oid.t -> bool
(** Per §3.2 these partition components: each returns [false] when the
    first object is not a component of the second at all. *)
