(** The select engine: associative access over a class extension.

    [select] evaluates a predicate against the instances of a class
    (subclasses included, generic instances excluded).  When an
    attribute index exists for the class and the predicate contains an
    indexable equality conjunct ({!Expr.indexable}), the candidates
    come from the index instead of a scan; the full predicate is always
    re-checked, so indexes are purely an access path. *)

open Orion_core

type t

val create : Database.t -> t

val database : t -> Database.t

val add_index : t -> cls:string -> attr:string -> Index.t
(** Idempotent per (cls, attr): returns the existing index if any. *)

val drop_index : t -> cls:string -> attr:string -> bool

val indexes : t -> (string * string) list

type plan = Index_lookup of { cls : string; attr : string } | Scan

val pp_plan : Format.formatter -> plan -> unit

val explain : t -> cls:string -> Expr.t -> plan

val select : t -> cls:string -> ?subclasses:bool -> Expr.t -> Oid.t list
(** Sorted by OID. *)

val count : t -> cls:string -> ?subclasses:bool -> Expr.t -> int
