open Orion_core
module Schema = Orion_schema.Schema

type t = { db : Database.t; mutable indexes : Index.t list }

let create db = { db; indexes = [] }

let database t = t.db

let find_index t ~cls ~attr =
  List.find_opt
    (fun idx -> String.equal (Index.cls idx) cls && String.equal (Index.attr idx) attr)
    t.indexes

let add_index t ~cls ~attr =
  match find_index t ~cls ~attr with
  | Some idx -> idx
  | None ->
      let idx = Index.create t.db ~cls ~attr in
      t.indexes <- idx :: t.indexes;
      idx

let drop_index t ~cls ~attr =
  match find_index t ~cls ~attr with
  | None -> false
  | Some idx ->
      Index.drop idx;
      t.indexes <-
        List.filter
          (fun i ->
            not (String.equal (Index.cls i) cls && String.equal (Index.attr i) attr))
          t.indexes;
      true

let indexes t = List.map (fun idx -> (Index.cls idx, Index.attr idx)) t.indexes

type plan = Index_lookup of { cls : string; attr : string } | Scan

let pp_plan ppf = function
  | Index_lookup { cls; attr } -> Format.fprintf ppf "index %s.%s" cls attr
  | Scan -> Format.pp_print_string ppf "scan"

(* An index on the queried class itself (not a superclass: its coverage
   could miss sibling instances... an index on a SUPERCLASS covers the
   subclass extension too, so it is usable; an index on a subclass is
   not). *)
let usable_index t ~cls ~attr =
  List.find_opt
    (fun idx ->
      String.equal (Index.attr idx) attr
      && Schema.mem (Database.schema t.db) (Index.cls idx)
      && Schema.is_subclass_of (Database.schema t.db) ~sub:cls ~super:(Index.cls idx))
    t.indexes

let plan_for t ~cls expr =
  match Expr.indexable expr with
  | Some (attr, _) -> (
      match usable_index t ~cls ~attr with
      | Some idx -> Index_lookup { cls = Index.cls idx; attr }
      | None -> Scan)
  | None -> Scan

let explain t ~cls expr = plan_for t ~cls expr

let member_of_class t ~cls ~subclasses oid =
  match Database.find t.db oid with
  | None -> false
  | Some inst ->
      (not (Instance.is_generic inst))
      &&
      if subclasses then
        Schema.is_subclass_of (Database.schema t.db) ~sub:inst.Instance.cls ~super:cls
      else String.equal inst.Instance.cls cls

let select t ~cls ?(subclasses = true) expr =
  let candidates =
    match Expr.indexable expr with
    | Some (attr, v) -> (
        match usable_index t ~cls ~attr with
        | Some idx -> Index.lookup idx v
        | None -> Database.instances_of t.db ~subclasses cls)
    | None -> Database.instances_of t.db ~subclasses cls
  in
  candidates
  |> List.filter (fun oid ->
         member_of_class t ~cls ~subclasses oid && Expr.eval t.db oid expr)
  |> List.sort_uniq Oid.compare

let count t ~cls ?subclasses expr = List.length (select t ~cls ?subclasses expr)
