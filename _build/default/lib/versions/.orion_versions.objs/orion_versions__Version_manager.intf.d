lib/versions/version_manager.mli: Database Format Oid Orion_core
