(* Tests for Orion_locking: mode compatibility (Figures 7/8), the lock
   table (FIFO queues, conversion, deadlock detection), the composite
   protocols and the GARZ88 root-locking algorithm. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module LM = Orion_locking.Lock_mode
module LT = Orion_locking.Lock_table
module Protocol = Orion_locking.Protocol

(* Modes -------------------------------------------------------------------- *)

let test_textual_constraints () =
  let open LM in
  (* Every constraint stated in §7's prose. *)
  Alcotest.(check bool) "IS || IX" true (compat IS IX);
  Alcotest.(check bool) "ISO conflicts IX" false (compat ISO IX);
  Alcotest.(check bool) "IXO conflicts IS" false (compat IXO IS);
  Alcotest.(check bool) "IXO conflicts IX" false (compat IXO IX);
  Alcotest.(check bool) "SIXO conflicts IS" false (compat SIXO IS);
  Alcotest.(check bool) "SIXO conflicts IX" false (compat SIXO IX);
  (* "several readers and writers on a component class of exclusive
     references" *)
  Alcotest.(check bool) "ISO || ISO" true (compat ISO ISO);
  Alcotest.(check bool) "ISO || IXO" true (compat ISO IXO);
  Alcotest.(check bool) "IXO || IXO" true (compat IXO IXO);
  (* "several readers and one writer on a component class of shared
     references" *)
  Alcotest.(check bool) "ISOS || ISOS" true (compat ISOS ISOS);
  Alcotest.(check bool) "ISOS conflicts IXOS" false (compat ISOS IXOS);
  Alcotest.(check bool) "IXOS conflicts IXOS" false (compat IXOS IXOS);
  (* Figure-9 example consequences. *)
  Alcotest.(check bool) "IXO || ISOS (examples 1,2)" true (compat IXO ISOS);
  Alcotest.(check bool) "IXO conflicts IXOS (example 3 vs 1)" false (compat IXO IXOS)

let test_matrix_symmetric_and_x_exclusive () =
  let open LM in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "sym %s/%s" (to_string a) (to_string b))
            (compat a b) (compat b a))
        all;
      Alcotest.(check bool)
        (Printf.sprintf "X conflicts %s" (to_string a))
        false (compat X a))
    all

let test_refined_superset () =
  let open LM in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if compat a b then
            Alcotest.(check bool)
              (Printf.sprintf "refined admits %s/%s" (to_string a) (to_string b))
              true (compat_refined a b))
        all)
    all;
  Alcotest.(check bool) "refined admits IXO || IXOS" true (compat_refined IXO IXOS);
  Alcotest.(check bool) "refined still blocks IXOS || IXOS" false
    (compat_refined IXOS IXOS)

let mode_t = Alcotest.testable LM.pp ( = )

let test_supremum () =
  let open LM in
  Alcotest.(check (option mode_t)) "IS v IX" (Some IX) (supremum IS IX);
  Alcotest.(check (option mode_t)) "S v IX" (Some SIX) (supremum S IX);
  Alcotest.(check (option mode_t)) "S v X" (Some X) (supremum S X);
  Alcotest.(check (option mode_t)) "ISO v IXO" (Some IXO) (supremum ISO IXO);
  Alcotest.(check (option mode_t)) "cross-family none" None (supremum IS ISO)

let test_of_string () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (LM.to_string m) true
        (LM.of_string (LM.to_string m) = Some m))
    LM.all;
  Alcotest.(check bool) "junk" true (LM.of_string "Z" = None)

(* Lock table ------------------------------------------------------------------ *)

let g1 = LT.G_class "C"
let gi oid = LT.G_instance (Oid.of_int oid)

let test_grant_and_conflict () =
  let t = LT.create () in
  Alcotest.(check bool) "t1 S granted" true (LT.acquire t ~tx:1 g1 LM.S = `Granted);
  Alcotest.(check bool) "t2 IS granted" true (LT.acquire t ~tx:2 g1 LM.IS = `Granted);
  Alcotest.(check bool) "t3 IX blocked" true (LT.acquire t ~tx:3 g1 LM.IX = `Blocked);
  Alcotest.(check int) "two holders" 2 (List.length (LT.holders t g1));
  Alcotest.(check int) "one waiter" 1 (List.length (LT.waiting t))

let test_fifo_wakeup () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.X);
  Alcotest.(check bool) "t2 queued" true (LT.acquire t ~tx:2 g1 LM.S = `Blocked);
  Alcotest.(check bool) "t3 queued" true (LT.acquire t ~tx:3 g1 LM.S = `Blocked);
  let woken = LT.release_all t ~tx:1 in
  Alcotest.(check (list Alcotest.int)) "both readers wake" [ 2; 3 ] woken;
  Alcotest.(check int) "both granted" 2 (List.length (LT.holders t g1))

let test_fifo_no_overtaking () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.S);
  ignore (LT.acquire t ~tx:2 g1 LM.X) (* blocked *);
  (* A new reader must NOT jump the queued writer. *)
  Alcotest.(check bool) "reader waits behind writer" true
    (LT.acquire t ~tx:3 g1 LM.S = `Blocked);
  let woken = LT.release_all t ~tx:1 in
  Alcotest.(check (list Alcotest.int)) "writer first" [ 2 ] woken

let test_reacquire_held_is_granted () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.IX);
  Alcotest.(check bool) "same mode again" true (LT.acquire t ~tx:1 g1 LM.IX = `Granted);
  Alcotest.(check bool) "covered mode (IX covers IS)" true
    (LT.acquire t ~tx:1 g1 LM.IS = `Granted);
  Alcotest.(check bool) "holds" true (LT.holds t ~tx:1 g1 LM.IS)

let test_self_upgrade () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.IS);
  (* Upgrading against only one's own locks succeeds. *)
  Alcotest.(check bool) "upgrade to X" true (LT.acquire t ~tx:1 g1 LM.X = `Granted)

let test_deadlock_detection () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 (gi 1) LM.X);
  ignore (LT.acquire t ~tx:2 (gi 2) LM.X);
  Alcotest.(check bool) "t1 waits for t2" true (LT.acquire t ~tx:1 (gi 2) LM.X = `Blocked);
  Alcotest.(check bool) "no deadlock yet" true (LT.find_deadlock t = None);
  Alcotest.(check bool) "t2 waits for t1" true (LT.acquire t ~tx:2 (gi 1) LM.X = `Blocked);
  (match LT.find_deadlock t with
  | Some cycle ->
      Alcotest.(check bool) "cycle has both" true
        (List.mem 1 cycle && List.mem 2 cycle)
  | None -> Alcotest.fail "deadlock not found");
  (* Breaking it by releasing one transaction clears the cycle. *)
  ignore (LT.release_all t ~tx:2 : int list);
  Alcotest.(check bool) "cleared" true (LT.find_deadlock t = None)

let test_release_drops_queue_entries () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.X);
  ignore (LT.acquire t ~tx:2 g1 LM.X) (* queued *);
  ignore (LT.release_all t ~tx:2 : int list);
  Alcotest.(check int) "queue empty" 0 (List.length (LT.waiting t))

(* Lock-table regressions ------------------------------------------------------ *)

(* A blocked transaction re-polling with a different mode must not grow
   the queue: the single queued entry is replaced with the supremum of
   the old and new requests. *)
let test_requeue_dedup () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.X);
  Alcotest.(check bool) "t2 S blocked" true (LT.acquire t ~tx:2 g1 LM.S = `Blocked);
  Alcotest.(check bool) "t2 X re-poll blocked" true
    (LT.acquire t ~tx:2 g1 LM.X = `Blocked);
  let t2_waits = List.filter (fun (tx, _, _) -> tx = 2) (LT.waiting t) in
  Alcotest.(check int) "one queue entry for t2" 1 (List.length t2_waits);
  (match t2_waits with
  | [ (_, _, m) ] -> Alcotest.check mode_t "queued mode is the supremum" LM.X m
  | _ -> Alcotest.fail "expected a single queued entry");
  (* Re-polling with a weaker mode must not downgrade the queued entry. *)
  Alcotest.(check bool) "t2 IS re-poll blocked" true
    (LT.acquire t ~tx:2 g1 LM.IS = `Blocked);
  (match List.filter (fun (tx, _, _) -> tx = 2) (LT.waiting t) with
  | [ (_, _, m) ] -> Alcotest.check mode_t "still the supremum" LM.X m
  | l -> Alcotest.failf "expected one queued entry, got %d" (List.length l));
  (* Once t1 releases, the deduplicated request is granted at X. *)
  Alcotest.(check (list Alcotest.int)) "t2 wakes" [ 2 ] (LT.release_all t ~tx:1);
  Alcotest.(check bool) "granted at X" true (LT.holds t ~tx:2 g1 LM.X)

(* A holder upgrading must end up with ONE granted entry at the
   supremum, not a stack of (tx, mode) entries. *)
let test_upgrade_coalesces () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.IX);
  Alcotest.(check bool) "upgrade to S granted" true
    (LT.acquire t ~tx:1 g1 LM.S = `Granted);
  (match LT.holders t g1 with
  | [ (1, m) ] -> Alcotest.check mode_t "single entry at SIX" LM.SIX m
  | l -> Alcotest.failf "expected one holder entry, got %d" (List.length l));
  Alcotest.(check bool) "covers SIX" true (LT.holds t ~tx:1 g1 LM.SIX);
  Alcotest.(check bool) "a covered re-request is granted" true
    (LT.acquire t ~tx:1 g1 LM.IX = `Granted)

(* [try_acquire] on the already-covered path counts as an acquisition,
   and a failed probe leaves the counters untouched. *)
let test_try_acquire_counts () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 g1 LM.IX);
  Alcotest.(check int) "one acquisition" 1 (LT.stats t).LT.acquisitions;
  Alcotest.(check bool) "covered probe succeeds" true (LT.try_acquire t ~tx:1 g1 LM.IS);
  Alcotest.(check int) "covered probe counted" 2 (LT.stats t).LT.acquisitions;
  Alcotest.(check bool) "conflicting probe fails" false
    (LT.try_acquire t ~tx:2 g1 LM.X);
  Alcotest.(check int) "failed probe not counted" 2 (LT.stats t).LT.acquisitions;
  Alcotest.(check int) "failed probe leaves no block" 0 (LT.stats t).LT.blocks

(* Deadlock detection across a convoy whose members have re-polled:
   the duplicate requests must neither hide the cycle nor corrupt the
   waits-for edges. *)
let test_deadlock_with_repolled_convoy () =
  let t = LT.create () in
  ignore (LT.acquire t ~tx:1 (gi 1) LM.X);
  ignore (LT.acquire t ~tx:2 (gi 2) LM.X);
  Alcotest.(check bool) "t2 queues on g1" true (LT.acquire t ~tx:2 (gi 1) LM.S = `Blocked);
  (* Convoy member behind t2, re-polling as a server reactor would. *)
  Alcotest.(check bool) "t3 queues behind t2" true
    (LT.acquire t ~tx:3 (gi 1) LM.S = `Blocked);
  ignore (LT.acquire t ~tx:2 (gi 1) LM.X);
  ignore (LT.acquire t ~tx:3 (gi 1) LM.S);
  ignore (LT.acquire t ~tx:2 (gi 1) LM.X);
  Alcotest.(check bool) "no cycle yet" true (LT.find_deadlock t = None);
  Alcotest.(check bool) "t1 queues on g2" true (LT.acquire t ~tx:1 (gi 2) LM.X = `Blocked);
  (match LT.find_deadlock t with
  | Some cycle ->
      Alcotest.(check bool) "cycle is t1/t2" true
        (List.mem 1 cycle && List.mem 2 cycle && not (List.mem 3 cycle))
  | None -> Alcotest.fail "deadlock hidden by re-polled duplicates");
  (* Victim release clears the cycle and wakes the convoy in order. *)
  ignore (LT.release_all t ~tx:2 : int list);
  Alcotest.(check bool) "cleared" true (LT.find_deadlock t = None)

(* Property: under random acquire/re-poll/upgrade/release interleavings
   over the single-family modes (where suprema always exist), the table
   keeps its structural invariants: at most one queued entry and one
   granted entry per (tx, granule), grants of distinct transactions
   pairwise compatible, and the coalesced held mode still covering
   every mode the transaction was ever granted. *)
let prop_lock_table_interleavings =
  let single = [ LM.IS; LM.IX; LM.S; LM.SIX; LM.X ] in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          ( 4,
            map
              (fun ((tx, g), m) -> `Acquire (tx, g, m))
              (pair (pair (int_range 1 4) (int_range 0 2)) (oneofl single)) );
          (1, map (fun tx -> `Release tx) (int_range 1 4));
        ])
  in
  QCheck.Test.make ~name:"lock-table interleaving invariants" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      let t = LT.create () in
      let granule = function 0 -> g1 | n -> gi n in
      (* Modes each tx has been granted per granule, to check coverage. *)
      let history : (int * int, LM.t) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      let check () =
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (tx, g, _) ->
            if Hashtbl.mem seen (tx, g) then ok := false;
            Hashtbl.replace seen (tx, g) ())
          (LT.waiting t);
        List.iter
          (fun g ->
            let hs = LT.holders t (granule g) in
            let txs = List.map fst hs in
            if List.length txs <> List.length (List.sort_uniq compare txs) then
              ok := false;
            List.iteri
              (fun i (tx_a, m_a) ->
                List.iteri
                  (fun j (tx_b, m_b) ->
                    if i < j && tx_a <> tx_b && not (LM.compat m_a m_b) then
                      ok := false)
                  hs)
              hs;
            List.iter
              (fun (tx, _) ->
                List.iter
                  (fun m -> if not (LT.holds t ~tx (granule g) m) then ok := false)
                  (Hashtbl.find_all history (tx, g)))
              hs)
          [ 0; 1; 2 ]
      in
      List.iter
        (fun op ->
          (match op with
          | `Acquire (tx, g, m) -> (
              match LT.acquire t ~tx (granule g) m with
              | `Granted -> Hashtbl.add history (tx, g) m
              | `Blocked -> ())
          | `Release tx ->
              List.iter
                (fun g ->
                  while Hashtbl.mem history (tx, g) do
                    Hashtbl.remove history (tx, g)
                  done)
                [ 0; 1; 2 ];
              ignore (LT.release_all t ~tx : int list));
          check ())
        ops;
      !ok)

(* Protocols --------------------------------------------------------------------- *)

let protocol_fixture () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "W" [];
  define "C"
    [
      A.make ~name:"Ws" ~domain:(D.Class "W") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
    ];
  define "Root"
    [
      A.make ~name:"Cs" ~domain:(D.Class "C") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  let root = Object_manager.create db ~cls:"Root" () in
  let c = Object_manager.create db ~cls:"C" ~parents:[ (root, "Cs") ] () in
  let w = Object_manager.create db ~cls:"W" ~parents:[ (c, "Ws") ] () in
  (db, root, c, w)

let has set granule mode = List.mem (granule, mode) set

let test_composite_lock_set () =
  let db, root, _, _ = protocol_fixture () in
  let set = Protocol.composite_object_locks db ~root Protocol.Read_ in
  Alcotest.(check bool) "root class IS" true (has set (LT.G_class "Root") LM.IS);
  Alcotest.(check bool) "root instance S" true (has set (LT.G_instance root) LM.S);
  Alcotest.(check bool) "shared component class ISOS" true
    (has set (LT.G_class "C") LM.ISOS);
  Alcotest.(check bool) "exclusive component class ISO" true
    (has set (LT.G_class "W") LM.ISO);
  let set_u = Protocol.composite_object_locks db ~root Protocol.Update in
  Alcotest.(check bool) "update: IX/X/IXOS/IXO" true
    (has set_u (LT.G_class "Root") LM.IX
    && has set_u (LT.G_instance root) LM.X
    && has set_u (LT.G_class "C") LM.IXOS
    && has set_u (LT.G_class "W") LM.IXO)

let test_instance_lock_set () =
  let db, _, c, _ = protocol_fixture () in
  let set = Protocol.instance_locks db c Protocol.Update in
  Alcotest.(check int) "two locks" 2 (List.length set);
  Alcotest.(check bool) "class IX + instance X" true
    (has set (LT.G_class "C") LM.IX && has set (LT.G_instance c) LM.X)

let test_roots_of () =
  let db, root, c, w = protocol_fixture () in
  Alcotest.(check (list (Alcotest.testable Oid.pp Oid.equal))) "roots of w" [ root ]
    (Protocol.roots_of db w);
  Alcotest.(check (list (Alcotest.testable Oid.pp Oid.equal))) "roots of c" [ root ]
    (Protocol.roots_of db c);
  Alcotest.(check (list (Alcotest.testable Oid.pp Oid.equal)))
    "a root is its own root" [ root ] (Protocol.roots_of db root)

let test_hierarchy_scan_locks () =
  let db, root, _, _ = protocol_fixture () in
  let scan = Protocol.hierarchy_scan_locks db ~root_cls:"Root" Protocol.Scan_read in
  Alcotest.(check bool) "scan read: S everywhere" true
    (has scan (LT.G_class "Root") LM.S
    && has scan (LT.G_class "C") LM.S
    && has scan (LT.G_class "W") LM.S);
  let six = Protocol.hierarchy_scan_locks db ~root_cls:"Root" Protocol.Scan_update_some in
  Alcotest.(check bool) "scan update: SIX/SIXOS/SIXO" true
    (has six (LT.G_class "Root") LM.SIX
    && has six (LT.G_class "C") LM.SIXOS
    && has six (LT.G_class "W") LM.SIXO);
  (* A full read scan conflicts with any composite update of the same
     hierarchy (S vs IX at the root class)... *)
  let update = Protocol.composite_object_locks db ~root Protocol.Update in
  Alcotest.(check bool) "scan vs update" false
    (Protocol.compatible_lock_sets scan update ());
  (* ...but coexists with a composite read. *)
  let read = Protocol.composite_object_locks db ~root Protocol.Read_ in
  Alcotest.(check bool) "scan vs read" true
    (Protocol.compatible_lock_sets scan read ());
  (* The SIX scan updates SOME shared components; on a shared component
     class the matrix admits several readers or one writer, so even a
     composite reader of the same hierarchy is excluded (SIXOS vs ISOS)
     — exclusive-only hierarchies would admit it (SIXO || ISO). *)
  Alcotest.(check bool) "six scan vs composite read" false
    (Protocol.compatible_lock_sets six read ());
  let direct_w = Protocol.instance_locks db root Protocol.Update in
  Alcotest.(check bool) "six scan vs direct writer" false
    (Protocol.compatible_lock_sets six direct_w ())

let test_implicit_coverage () =
  let db, root, c, w = protocol_fixture () in
  let locks = Protocol.root_locking_locks db w Protocol.Read_ in
  let coverage = Protocol.implicit_coverage db locks in
  let covered oid = List.exists (fun (o, _) -> Oid.equal o oid) coverage in
  Alcotest.(check bool) "covers the whole composite" true
    (covered root && covered c && covered w)

(* Property: the derived matrices agree with brute-force checks of the
   coverage semantics' monotonicity: if a mode's facets are pointwise
   below another's, it must be compatible with at least everything the
   stronger one is. *)
let prop_matrix_monotone =
  QCheck.Test.make ~name:"weaker modes are more compatible" ~count:200
    QCheck.(make QCheck.Gen.(triple (oneofl LM.all) (oneofl LM.all) (oneofl LM.all)))
    (fun (a, b, other) ->
      match LM.supremum a b with
      | Some sup when sup = b ->
          (* a <= b: whatever is compatible with b is compatible with a. *)
          (not (LM.compat other b)) || LM.compat other a
      | _ -> true)

(* Property: the printed name is a faithful key — [of_string] inverts
   [to_string] for every mode, and unknown names are rejected. *)
let prop_mode_string_roundtrip =
  QCheck.Test.make ~name:"of_string inverts to_string" ~count:100
    QCheck.(make QCheck.Gen.(oneofl LM.all))
    (fun m -> LM.of_string (LM.to_string m) = Some m)

(* Property: the A3 ablation is a true refinement — it admits every
   pair the paper's matrix does, and (witnessed separately below)
   strictly more. *)
let prop_refined_admits_superset =
  QCheck.Test.make ~name:"compat_refined admits a superset of compat" ~count:200
    QCheck.(make QCheck.Gen.(pair (oneofl LM.all) (oneofl LM.all)))
    (fun (a, b) -> (not (LM.compat a b)) || LM.compat_refined a b)

let test_refined_strictly_refines () =
  (* Strictness: at least one pair is admitted only by the refinement,
     so the ablation is not vacuous. *)
  let strict =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if LM.compat_refined a b && not (LM.compat a b) then Some (a, b)
            else None)
          LM.all)
      LM.all
  in
  Alcotest.(check bool) "some pair admitted only by refined" true (strict <> [])

(* Per-class block labels: a block on a class granule labels directly;
   a block on an instance granule goes through the classifier; an
   unclassifiable oid reaches only the unlabeled total. *)
let test_per_class_block_labels () =
  let module Obs = Orion_obs.Metrics in
  let t = LT.create () in
  LT.set_classifier t (fun oid ->
      if Oid.to_int oid = 1 then Some "Widget" else None);
  ignore (LT.acquire t ~tx:1 (LT.G_class "Gadget") LM.X);
  Alcotest.(check bool) "class granule blocks" true
    (LT.acquire t ~tx:2 (LT.G_class "Gadget") LM.X = `Blocked);
  ignore (LT.acquire t ~tx:1 (LT.G_instance (Oid.of_int 1)) LM.X);
  Alcotest.(check bool) "classified instance blocks" true
    (LT.acquire t ~tx:2 (LT.G_instance (Oid.of_int 1)) LM.X = `Blocked);
  ignore (LT.acquire t ~tx:1 (LT.G_instance (Oid.of_int 2)) LM.X);
  Alcotest.(check bool) "unclassified instance blocks" true
    (LT.acquire t ~tx:2 (LT.G_instance (Oid.of_int 2)) LM.X = `Blocked);
  let snap = Obs.snapshot () in
  Alcotest.(check (option int)) "class-granule label" (Some 1)
    (Obs.find_counter snap (Obs.labeled "lock.blocks" ("class", "Gadget")));
  Alcotest.(check (option int)) "classifier label" (Some 1)
    (Obs.find_counter snap (Obs.labeled "lock.blocks" ("class", "Widget")));
  Alcotest.(check (option int)) "no label for unclassifiable oid" None
    (Obs.find_counter snap (Obs.labeled "lock.blocks" ("class", "?")));
  Alcotest.(check int) "unlabeled total counts all three" 3 (LT.stats t).LT.blocks

(* Partitioned lock space --------------------------------------------------------- *)

module LP = Orion_locking.Lock_partitions

let merged_searches () =
  let module Obs = Orion_obs.Metrics in
  Option.value
    (Obs.find_counter (Obs.snapshot ()) "txsvc.merged_searches")
    ~default:0

(* Key instance granules by raw oid so tests place granules in
   partitions deliberately. *)
let by_oid = function
  | LT.G_class _ -> 0
  | LT.G_instance oid -> Oid.to_int oid

let test_partition_determinism () =
  let p = LP.create ~n:4 () in
  LP.set_keyer p by_oid;
  Alcotest.(check int) "n reported" 4 (LP.n_partitions p);
  for i = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "oid %d keys stably" i)
      (i mod 4)
      (LP.partition_id p (LT.G_instance (Oid.of_int i)))
  done;
  (* Mutual exclusion holds across the facade exactly as on one table:
     the same granule always lands on the same slice. *)
  let g = LT.G_instance (Oid.of_int 5) in
  Alcotest.(check bool) "granted" true (LP.acquire p ~tx:1 g LM.X = `Granted);
  Alcotest.(check bool) "conflicts across facade" true
    (LP.acquire p ~tx:2 g LM.X = `Blocked);
  ignore (LP.release_all p ~tx:1 : int list);
  ignore (LP.release_all p ~tx:2 : int list)

(* A cycle whose edges are split across partitions is invisible to any
   single slice: only the merged search can see it — and it must. *)
let test_cross_partition_cycle_found () =
  let p = LP.create ~n:4 () in
  LP.set_keyer p by_oid;
  let oid i = LT.G_instance (Oid.of_int i) in
  Alcotest.(check bool) "t1 holds oid1" true (LP.acquire p ~tx:1 (oid 1) LM.X = `Granted);
  Alcotest.(check bool) "t2 holds oid2" true (LP.acquire p ~tx:2 (oid 2) LM.X = `Granted);
  Alcotest.(check bool) "no check due yet" false (LP.deadlock_check_due p);
  Alcotest.(check bool) "t1 blocks on oid2" true (LP.acquire p ~tx:1 (oid 2) LM.X = `Blocked);
  Alcotest.(check bool) "edge dirtied a partition" true (LP.deadlock_check_due p);
  Alcotest.(check (option (list int))) "half a cycle is no cycle" None
    (LP.find_deadlock p);
  Alcotest.(check bool) "clean search reset the generations" false
    (LP.deadlock_check_due p);
  let merged0 = merged_searches () in
  Alcotest.(check bool) "t2 blocks on oid1" true (LP.acquire p ~tx:2 (oid 1) LM.X = `Blocked);
  (match LP.find_deadlock p with
  | Some cycle ->
      Alcotest.(check bool) "cycle holds both txs" true
        (List.mem 1 cycle && List.mem 2 cycle)
  | None -> Alcotest.fail "cross-partition cycle missed");
  Alcotest.(check bool) "the merged search ran" true (merged_searches () > merged0)

(* The incremental detector's whole point: workloads confined to one
   partition are searched locally and never pay the merged
   (all-mutexes) pass. *)
let test_single_partition_no_merged_search () =
  let p = LP.create ~n:4 () in
  LP.set_keyer p (fun _ -> 0);
  let oid i = LT.G_instance (Oid.of_int i) in
  let merged0 = merged_searches () in
  Alcotest.(check bool) "t1 holds" true (LP.acquire p ~tx:1 (oid 1) LM.X = `Granted);
  Alcotest.(check bool) "t2 holds" true (LP.acquire p ~tx:2 (oid 2) LM.X = `Granted);
  Alcotest.(check bool) "t1 blocks" true (LP.acquire p ~tx:1 (oid 2) LM.X = `Blocked);
  Alcotest.(check bool) "t2 blocks" true (LP.acquire p ~tx:2 (oid 1) LM.X = `Blocked);
  (match LP.find_deadlock p with
  | Some cycle -> Alcotest.(check int) "local cycle found" 2 (List.length cycle)
  | None -> Alcotest.fail "single-partition cycle missed");
  Alcotest.(check int) "merged search never ran" merged0 (merged_searches ());
  (* Break it the way the server does and re-verify quiescence. *)
  ignore (LP.release_all p ~tx:2 : int list);
  Alcotest.(check (option (list int))) "clean after abort" None (LP.find_deadlock p);
  Alcotest.(check int) "still no merged search" merged0 (merged_searches ())

(* Stress the merged deadlock search under real parallelism: 4 domains
   hammer a 4-partition lock space over a deliberately tiny granule
   pool, taking pairs in opposite orders so cross-partition cycles —
   and therefore the merged (all-mutexes, ascending) search — actually
   happen.  Meanwhile a private lockdep engine watches every partition
   mutex acquisition: the merged search's multi-hold must be clean
   (inside its declared region, ascending), and mutual exclusion is
   re-checked with an owner-cell CAS on every direct grant. *)
let test_merged_search_stress_4x4 () =
  let module Lockdep = Orion_analysis.Lockdep in
  let module Omutex = Orion_util.Omutex in
  let eng = Lockdep.create_engine () in
  Omutex.set_tracer (Some (Lockdep.tracer_of eng));
  Fun.protect
    ~finally:(fun () ->
      match Lockdep.installed () with
      | Some global -> Omutex.set_tracer (Some (Lockdep.tracer_of global))
      | None -> Omutex.set_tracer None)
  @@ fun () ->
  let p = LP.create ~n:4 () in
  LP.set_keyer p by_oid;
  let n_oids = 8 in
  let owner = Array.init n_oids (fun _ -> Atomic.make 0) in
  let double_holds = Atomic.make 0 in
  let cycles_broken = Atomic.make 0 in
  let merged0 = merged_searches () in
  let rounds = 400 in
  let worker d =
    for r = 1 to rounds do
      let tx = (d * rounds) + r in
      (* Opposite orders by domain parity: even domains walk the oid
         ring up, odd domains walk it down — classic ABBA, split
         across partitions because consecutive oids key to different
         slices. *)
      let a = (d + r) mod n_oids in
      let b = (a + 1) mod n_oids in
      let g1, g2 = if d land 1 = 0 then (a, b) else (b, a) in
      let grant i tx =
        (* A direct grant means exclusive ownership: the previous
           owner cell must be empty.  (Promotions of queued waiters
           never race this: a blocked tx here is aborted at once, and
           release_all drops its queue entries with it.) *)
        if not (Atomic.compare_and_set owner.(i) 0 tx) then
          Atomic.incr double_holds
      in
      let ungrant i tx = ignore (Atomic.compare_and_set owner.(i) tx 0 : bool) in
      (match LP.acquire p ~tx (LT.G_instance (Oid.of_int g1)) LM.X with
      | `Blocked -> ignore (LP.release_all p ~tx : int list)
      | `Granted -> (
          grant g1 tx;
          (match LP.acquire p ~tx (LT.G_instance (Oid.of_int g2)) LM.X with
          | `Granted -> grant g2 tx; ungrant g2 tx
          | `Blocked ->
              (* Both halves of an ABBA park right here in two
                 different domains: dwell a little so the windows
                 overlap and find_deadlock sees waiters in 2+
                 partitions — the merged search's trigger. *)
              let found = ref false in
              let tries = ref 0 in
              while (not !found) && !tries < 10 do
                incr tries;
                (match LP.find_deadlock p with
                | Some _ ->
                    Atomic.incr cycles_broken;
                    found := true
                | None -> ());
                Thread.yield ()
              done);
          ungrant g1 tx;
          ignore (LP.release_all p ~tx : int list)))
    done
  in
  let domains = Array.init 4 (fun d -> Domain.spawn (fun () -> worker d)) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "mutual exclusion held" 0 (Atomic.get double_holds);
  (* The random phase usually produces a cross-partition standoff, but
     "usually" is flaky; stage a guaranteed one.  Two domains each
     take their own granule (different partitions), rendezvous, then
     take each other's: both are parked before either scans, so the
     scan sees waiters in two partitions and must run the merged
     search — the only one that can find this cycle. *)
  let barrier = Atomic.make 0 in
  let merged1 = merged_searches () in
  let standoff me other =
    let tx = 100_000 + me in
    (match LP.acquire p ~tx (LT.G_instance (Oid.of_int me)) LM.X with
    | `Granted -> ()
    | `Blocked -> Alcotest.fail "standoff granule unexpectedly held");
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    (match LP.acquire p ~tx (LT.G_instance (Oid.of_int other)) LM.X with
    | `Granted -> Alcotest.fail "ABBA second grant should block"
    | `Blocked ->
        while merged_searches () = merged1 do
          (match LP.find_deadlock p with
          | Some _ -> Atomic.incr cycles_broken
          | None -> ());
          Thread.yield ()
        done);
    ignore (LP.release_all p ~tx : int list)
  in
  let d0 = Domain.spawn (fun () -> standoff 0 1) in
  let d1 = Domain.spawn (fun () -> standoff 1 0) in
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check bool) "the merged search ran under contention" true
    (merged_searches () > merged0);
  Alcotest.(check bool) "a cross-partition cycle was found and broken" true
    (Atomic.get cycles_broken > 0);
  let errors =
    List.filter
      (fun f -> f.Orion_analysis.Schema_analysis.severity
                = Orion_analysis.Schema_analysis.Error)
      (Lockdep.engine_findings eng)
  in
  (match errors with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "lockdep flagged the merged search: %s"
        f.Orion_analysis.Schema_analysis.detail);
  (* Positive control: the same watcher, fed the inverse discipline on
     two partition mutexes — descending outside any region — must
     produce a merged-search-protocol error with both sites, or the
     clean run above proves nothing. *)
  let eng2 = Lockdep.create_engine () in
  Omutex.set_tracer (Some (Lockdep.tracer_of eng2));
  let m0 = Omutex.create ~inst:0 Omutex.lock_partition in
  let m1 = Omutex.create ~inst:1 Omutex.lock_partition in
  Omutex.lock m1;
  Omutex.lock m0;
  Omutex.unlock m0;
  Omutex.unlock m1;
  match
    List.find_opt
      (fun f ->
        String.equal f.Orion_analysis.Schema_analysis.code
          "merged-search-protocol")
      (Lockdep.engine_findings eng2)
  with
  | None -> Alcotest.fail "seeded inversion went unflagged"
  | Some f ->
      Alcotest.(check bool) "witness names this file" true
        (let d = f.Orion_analysis.Schema_analysis.detail in
         let needle = "test_locking.ml" in
         let nh = String.length d and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub d i nn = needle || go (i + 1))
         in
         go 0)

(* Property: a constructed wait-for cycle of length k spanning several
   partitions is always found by the facade, agrees with a one-table
   oracle running the same script, and aborting the youngest member
   (the server's victim policy) clears it — on both. *)
let prop_cross_partition_cycles_found =
  QCheck.Test.make ~name:"cross-partition cycles found, youngest victim clears"
    ~count:100
    QCheck.(make QCheck.Gen.(pair (int_range 2 6) (int_range 0 3)))
    (fun (k, noise) ->
      let p = LP.create ~n:4 () in
      LP.set_keyer p by_oid;
      let oracle = LT.create () in
      let oid i = LT.G_instance (Oid.of_int i) in
      let acquire tx g m =
        let a = LP.acquire p ~tx g m in
        let b = LT.acquire oracle ~tx g m in
        if a <> b then failwith "facade and oracle disagree on a grant";
        a
      in
      (* k transactions each hold their own oid; consecutive oids over
         n=4 always span >= 2 partitions. *)
      for i = 1 to k do
        ignore (acquire i (oid i) LM.X)
      done;
      (* Holder-only bystanders: traffic that must not confuse the
         search or the victim policy. *)
      for j = 1 to noise do
        ignore (acquire (100 + j) (oid (100 + j)) LM.X)
      done;
      (* The cycle: i waits for i+1, k waits for 1. *)
      for i = 1 to k do
        ignore (acquire i (oid ((i mod k) + 1)) LM.X)
      done;
      let sorted = List.sort_uniq Int.compare in
      let facade_cycle = LP.find_deadlock p in
      let oracle_cycle = LT.find_deadlock oracle in
      (match (facade_cycle, oracle_cycle) with
      | Some f, Some o ->
          if sorted f <> List.init k (fun i -> i + 1) then
            failwith "facade cycle is not the constructed one";
          if sorted f <> sorted o then
            failwith "facade and oracle found different cycles"
      | _ -> failwith "a constructed cycle went unfound");
      (* Youngest-victim abort, exactly like the server's breaker. *)
      let victim = List.fold_left max min_int (Option.get facade_cycle) in
      if victim <> k then failwith "youngest victim is not the max tx id";
      ignore (LP.release_all p ~tx:victim : int list);
      ignore (LT.release_all oracle ~tx:victim : int list);
      LP.find_deadlock p = None && LT.find_deadlock oracle = None)

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_locking"
    [
      ( "modes",
        [
          Alcotest.test_case "textual constraints" `Quick test_textual_constraints;
          Alcotest.test_case "symmetry and X" `Quick
            test_matrix_symmetric_and_x_exclusive;
          Alcotest.test_case "refined superset" `Quick test_refined_superset;
          Alcotest.test_case "supremum" `Quick test_supremum;
          Alcotest.test_case "of_string" `Quick test_of_string;
        ] );
      ( "lock table",
        [
          Alcotest.test_case "grant/conflict" `Quick test_grant_and_conflict;
          Alcotest.test_case "FIFO wakeup" `Quick test_fifo_wakeup;
          Alcotest.test_case "no overtaking" `Quick test_fifo_no_overtaking;
          Alcotest.test_case "reacquire held" `Quick test_reacquire_held_is_granted;
          Alcotest.test_case "self upgrade" `Quick test_self_upgrade;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "release clears queue" `Quick
            test_release_drops_queue_entries;
          Alcotest.test_case "per-class block labels" `Quick
            test_per_class_block_labels;
        ] );
      ( "lock table regressions",
        [
          Alcotest.test_case "re-poll dedups queue" `Quick test_requeue_dedup;
          Alcotest.test_case "upgrade coalesces grant" `Quick test_upgrade_coalesces;
          Alcotest.test_case "try_acquire accounting" `Quick test_try_acquire_counts;
          Alcotest.test_case "deadlock under re-polled convoy" `Quick
            test_deadlock_with_repolled_convoy;
          QCheck_alcotest.to_alcotest prop_lock_table_interleavings;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "composite lock set" `Quick test_composite_lock_set;
          Alcotest.test_case "instance lock set" `Quick test_instance_lock_set;
          Alcotest.test_case "roots_of" `Quick test_roots_of;
          Alcotest.test_case "hierarchy scans" `Quick test_hierarchy_scan_locks;
          Alcotest.test_case "implicit coverage" `Quick test_implicit_coverage;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "keying is deterministic" `Quick
            test_partition_determinism;
          Alcotest.test_case "cross-partition cycle found" `Quick
            test_cross_partition_cycle_found;
          Alcotest.test_case "single partition never merges" `Quick
            test_single_partition_no_merged_search;
          Alcotest.test_case "merged search stress 4x4 under lockdep" `Quick
            test_merged_search_stress_4x4;
          QCheck_alcotest.to_alcotest prop_cross_partition_cycles_found;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matrix_monotone;
          QCheck_alcotest.to_alcotest prop_mode_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_refined_admits_superset;
          Alcotest.test_case "refined strictly refines" `Quick
            test_refined_strictly_refines;
        ] );
    ]
