lib/workload/doc_gen.mli: Database Oid Orion_core Scenarios
