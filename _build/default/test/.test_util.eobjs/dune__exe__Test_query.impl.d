test/test_query.ml: Alcotest Core_error Database Gen List Object_manager Oid Option Orion_core Orion_dsl Orion_query Orion_schema Orion_tx QCheck QCheck_alcotest String Value
