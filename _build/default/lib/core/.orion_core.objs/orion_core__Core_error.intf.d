lib/core/core_error.mli: Format Oid
