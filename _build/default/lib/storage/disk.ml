type t = {
  page_size : int;
  pages : (int, bytes) Hashtbl.t;
  mutable next_page : int;
  mutable reads : int;
  mutable writes : int;
}

type stats = { reads : int; writes : int; allocated : int }

let create ~page_size =
  if page_size < 64 then invalid_arg "Disk.create: page_size too small";
  { page_size; pages = Hashtbl.create 256; next_page = 0; reads = 0; writes = 0 }

let page_size t = t.page_size

let alloc t =
  let page_no = t.next_page in
  t.next_page <- t.next_page + 1;
  Hashtbl.replace t.pages page_no (Bytes.make t.page_size '\000');
  page_no

let read t page_no =
  match Hashtbl.find_opt t.pages page_no with
  | None -> invalid_arg (Printf.sprintf "Disk.read: unallocated page %d" page_no)
  | Some image ->
      t.reads <- t.reads + 1;
      Bytes.copy image

let write t page_no image =
  if Bytes.length image <> t.page_size then
    invalid_arg "Disk.write: image size mismatch";
  if not (Hashtbl.mem t.pages page_no) then
    invalid_arg (Printf.sprintf "Disk.write: unallocated page %d" page_no);
  t.writes <- t.writes + 1;
  Hashtbl.replace t.pages page_no (Bytes.copy image)

let stats (t : t) = { reads = t.reads; writes = t.writes; allocated = t.next_page }

let reset_stats (t : t) =
  t.reads <- 0;
  t.writes <- 0
