(* Provenance block shared by every BENCH_*.json writer: when the
   numbers were taken, from which commit, under which compiler.  Keeps
   benchmark files comparable across PRs without consulting git log. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let utc_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let read_line_of path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> match input_line ic with line -> Some line | exception End_of_file -> None)

(* Resolve HEAD by hand (no git subprocess): walk up to the enclosing
   .git, then dereference one level of "ref: ..." indirection. *)
let git_rev () =
  let rec find_git dir =
    if Sys.file_exists (Filename.concat dir ".git") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else find_git parent
  in
  match find_git (Sys.getcwd ()) with
  | None -> "unknown"
  | Some root -> (
      let git = Filename.concat root ".git" in
      match read_line_of (Filename.concat git "HEAD") with
      | None -> "unknown"
      | Some head ->
          let prefix = "ref: " in
          if String.length head > String.length prefix
             && String.sub head 0 (String.length prefix) = prefix
          then
            let ref_path =
              String.sub head (String.length prefix)
                (String.length head - String.length prefix)
            in
            Option.value ~default:"unknown"
              (read_line_of (Filename.concat git ref_path))
          else head)

(* Append a "meta" JSON member (with trailing comma) to [buf], indented
   to sit directly inside the top-level object. *)
let add buf =
  Buffer.add_string buf
    (Printf.sprintf
       "  \"meta\": { \"date\": \"%s\", \"git_rev\": \"%s\", \"ocaml\": \
        \"%s\" },\n"
       (escape (utc_date ()))
       (escape (git_rev ()))
       (escape Sys.ocaml_version))

(* Append a "metrics" JSON member (with trailing comma): the same
   observability snapshot the server ships over the wire, so bench
   files carry the counter/latency context their numbers were taken
   under (lock blocks, pool hit rate, WAL fsyncs, ...). *)
let add_metrics buf (snapshot : Orion_obs.Metrics.snapshot) =
  let module Obs = Orion_obs.Metrics in
  Buffer.add_string buf "  \"metrics\": {\n";
  Buffer.add_string buf "    \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s \"%s\": %d" (if i = 0 then "" else ",") (escape name) v))
    snapshot.Obs.counters;
  Buffer.add_string buf " },\n";
  Buffer.add_string buf "    \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s \"%s\": %d" (if i = 0 then "" else ",") (escape name) v))
    snapshot.Obs.gauges;
  Buffer.add_string buf " },\n";
  Buffer.add_string buf "    \"histograms\": {\n";
  let n = List.length snapshot.Obs.histograms in
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      \"%s\": { \"count\": %d, \"sum_s\": %.6f, \"max_s\": %.6f, \
            \"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": %.6f }%s\n"
           (escape name) h.Obs.count h.Obs.sum h.Obs.max h.Obs.p50 h.Obs.p95
           h.Obs.p99
           (if i = n - 1 then "" else ",")))
    snapshot.Obs.histograms;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  },\n"
