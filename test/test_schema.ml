(* Tests for Orion_schema: class lattice, attribute inheritance,
   predicates and the composite class hierarchy. *)

module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema

let str_attr name = A.make ~name ~domain:(D.Primitive D.P_string) ()

let define schema ?superclasses ?versionable ?segment ~name attrs =
  ignore
    (Schema.define schema ?superclasses ?versionable ?segment ~name
       ~attributes:attrs ()
      : Orion_schema.Class_def.t)

let fails f =
  match f () with exception Schema.Error _ -> true | _ -> false

let test_define_and_find () =
  let s = Schema.create () in
  define s ~name:"Part" [ str_attr "Name" ];
  Alcotest.(check bool) "found" true (Schema.mem s "Part");
  Alcotest.(check bool) "not found" false (Schema.mem s "Nope");
  Alcotest.(check bool) "duplicate rejected" true
    (fails (fun () -> define s ~name:"Part" []));
  Alcotest.(check bool) "unknown superclass rejected" true
    (fails (fun () -> define s ~superclasses:[ "Ghost" ] ~name:"X" []))

let test_composite_requires_class_domain () =
  let s = Schema.create () in
  Alcotest.(check bool) "rejected" true
    (fails (fun () ->
         define s ~name:"Bad"
           [
             A.make ~name:"C" ~domain:(D.Primitive D.P_integer)
               ~refkind:(A.composite ()) ();
           ]))

let test_inheritance () =
  let s = Schema.create () in
  define s ~name:"Base" [ str_attr "Name"; str_attr "Tag" ];
  define s ~name:"Mid" ~superclasses:[ "Base" ] [ str_attr "Extra" ];
  define s ~name:"Leaf" ~superclasses:[ "Mid" ] [ str_attr "Name" ];
  let effective = Schema.effective_attributes s "Leaf" in
  let names = List.map (fun (a : A.t) -> a.name) effective in
  Alcotest.(check (list string)) "resolution order" [ "Name"; "Extra"; "Tag" ] names;
  (* The own Name overrides the inherited one. *)
  let name_attr = Option.get (Schema.attribute s "Leaf" "Name") in
  Alcotest.(check bool) "own attr has no source" true (name_attr.source = None);
  let tag_attr = Option.get (Schema.attribute s "Leaf" "Tag") in
  Alcotest.(check (option string)) "inherited source" (Some "Base") tag_attr.source

let test_multiple_inheritance_conflict () =
  let s = Schema.create () in
  define s ~name:"L"
    [ A.make ~name:"V" ~domain:(D.Primitive D.P_integer) () ];
  define s ~name:"R" [ str_attr "V" ];
  define s ~name:"Both" ~superclasses:[ "L"; "R" ] [];
  (* First superclass wins. *)
  let v = Option.get (Schema.attribute s "Both" "V") in
  Alcotest.(check bool) "left precedence" true
    (D.equal v.domain (D.Primitive D.P_integer))

let test_lattice_queries () =
  let s = Schema.create () in
  define s ~name:"A" [];
  define s ~name:"B" ~superclasses:[ "A" ] [];
  define s ~name:"C" ~superclasses:[ "B" ] [];
  define s ~name:"D" ~superclasses:[ "A" ] [];
  Alcotest.(check (list string)) "supers of C" [ "B"; "A" ] (Schema.all_superclasses s "C");
  Alcotest.(check (list string))
    "subs of A" [ "B"; "C"; "D" ]
    (List.sort compare (Schema.all_subclasses s "A"));
  Alcotest.(check bool) "C <= A" true (Schema.is_subclass_of s ~sub:"C" ~super:"A");
  Alcotest.(check bool) "A not <= C" false (Schema.is_subclass_of s ~sub:"A" ~super:"C");
  Alcotest.(check bool) "reflexive" true (Schema.is_subclass_of s ~sub:"A" ~super:"A")

let test_cycle_rejected () =
  let s = Schema.create () in
  define s ~name:"A" [];
  define s ~name:"B" ~superclasses:[ "A" ] [];
  Alcotest.(check bool) "cycle rejected" true
    (fails (fun () -> Schema.add_superclass s ~cls:"A" ~super:"B"))

let test_predicates () =
  let s = Schema.create () in
  define s ~name:"Leafy" [];
  define s ~name:"Holder"
    [
      str_attr "Plain";
      A.make ~name:"Excl" ~domain:(D.Class "Leafy") ~refkind:(A.composite ()) ();
      A.make ~name:"Shared" ~domain:(D.Class "Leafy")
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  Alcotest.(check bool) "compositep class" true (Schema.compositep s "Holder" ());
  Alcotest.(check bool) "compositep attr" true
    (Schema.compositep s "Holder" ~attr:"Excl" ());
  Alcotest.(check bool) "weak attr not composite" false
    (Schema.compositep s "Holder" ~attr:"Plain" ());
  Alcotest.(check bool) "exclusive" true
    (Schema.exclusive_compositep s "Holder" ~attr:"Excl" ());
  Alcotest.(check bool) "shared" true
    (Schema.shared_compositep s "Holder" ~attr:"Shared" ());
  Alcotest.(check bool) "dependent default true" true
    (Schema.dependent_compositep s "Holder" ~attr:"Excl" ());
  Alcotest.(check bool) "independent" false
    (Schema.dependent_compositep s "Holder" ~attr:"Shared" ())

let test_composite_class_hierarchy () =
  let s = Schema.create () in
  define s ~name:"W" [];
  define s ~name:"C" [];
  define s ~name:"CSub" ~superclasses:[ "C" ] [];
  define s ~name:"Mid"
    [ A.make ~name:"w" ~domain:(D.Class "W") ~refkind:(A.composite ()) () ];
  define s ~name:"Root"
    [
      A.make ~name:"c" ~domain:(D.Class "C")
        ~refkind:(A.composite ~exclusive:false ())
        ();
      A.make ~name:"m" ~domain:(D.Class "Mid") ~refkind:(A.composite ()) ();
    ];
  let hierarchy = Schema.composite_class_hierarchy s "Root" in
  let find cls via =
    List.exists
      (fun (c : Schema.component_class) -> c.component = cls && c.via = via)
      hierarchy
  in
  Alcotest.(check bool) "C shared" true (find "C" `Shared);
  Alcotest.(check bool) "CSub shared (subclass expansion)" true (find "CSub" `Shared);
  Alcotest.(check bool) "Mid exclusive" true (find "Mid" `Exclusive);
  Alcotest.(check bool) "W exclusive transitively" true (find "W" `Exclusive);
  Alcotest.(check bool) "W not shared" false (find "W" `Shared)

let test_segments () =
  let s = Schema.create () in
  define s ~name:"P1" ~segment:"cad" [];
  define s ~name:"P2" ~segment:"cad" [];
  define s ~name:"Q" [];
  Alcotest.(check int)
    "shared segment" (Schema.segment_of_class s "P1")
    (Schema.segment_of_class s "P2");
  Alcotest.(check bool) "own segment distinct" true
    (Schema.segment_of_class s "Q" <> Schema.segment_of_class s "P1")

let test_mutators () =
  let s = Schema.create () in
  define s ~name:"T" [ str_attr "A" ];
  Schema.add_attribute s ~cls:"T" (str_attr "B");
  Alcotest.(check bool) "added" true (Schema.attribute s "T" "B" <> None);
  let dropped = Schema.drop_attribute s ~cls:"T" ~attr:"A" in
  Alcotest.(check string) "dropped name" "A" dropped.A.name;
  Alcotest.(check bool) "gone" true (Schema.attribute s "T" "A" = None);
  Schema.replace_attribute s ~cls:"T"
    (A.make ~name:"B" ~domain:(D.Primitive D.P_integer) ());
  let b = Option.get (Schema.attribute s "T" "B") in
  Alcotest.(check bool) "replaced domain" true
    (D.equal b.domain (D.Primitive D.P_integer))

let test_drop_class_relinks () =
  let s = Schema.create () in
  define s ~name:"Top" [ str_attr "T" ];
  define s ~name:"Mid" ~superclasses:[ "Top" ] [];
  define s ~name:"Bottom" ~superclasses:[ "Mid" ] [];
  ignore (Schema.drop_class s "Mid" : Orion_schema.Class_def.t);
  Alcotest.(check (list string))
    "relinked" [ "Top" ]
    (Schema.superclasses s "Bottom");
  Alcotest.(check bool) "still inherits T" true
    (Schema.attribute s "Bottom" "T" <> None)

let test_referencing_attributes () =
  let s = Schema.create () in
  define s ~name:"Target" [];
  define s ~name:"Src1"
    [ A.make ~name:"r" ~domain:(D.Class "Target") ~refkind:(A.composite ()) () ];
  define s ~name:"Src2" [ A.make ~name:"w" ~domain:(D.Class "Target") () ];
  let refs = Schema.referencing_attributes s "Target" in
  let names =
    List.map (fun ((c : Orion_schema.Class_def.t), (a : A.t)) -> (c.name, a.name)) refs
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "both sources"
    [ ("Src1", "r"); ("Src2", "w") ]
    names

let test_export_import () =
  let s = Schema.create () in
  define s ~name:"Base" ~segment:"shared" [ str_attr "N" ];
  define s ~name:"Child" ~superclasses:[ "Base" ] ~segment:"shared"
    [
      A.make ~name:"Parts" ~domain:(D.Class "Base") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:true ())
        ();
    ];
  define s ~versionable:true ~name:"Vc" [];
  let fresh = Schema.create () in
  Schema.import_into fresh (Schema.export s);
  Alcotest.(check int) "same class count" (List.length (Schema.classes s))
    (List.length (Schema.classes fresh));
  Alcotest.(check bool) "lattice preserved" true
    (Schema.is_subclass_of fresh ~sub:"Child" ~super:"Base");
  Alcotest.(check bool) "versionable preserved" true
    (Schema.find_exn fresh "Vc").Orion_schema.Class_def.versionable;
  Alcotest.(check int) "segments preserved" (Schema.segment_of_class s "Child")
    (Schema.segment_of_class fresh "Child");
  let attr = Option.get (Schema.attribute fresh "Child" "Parts") in
  Alcotest.(check bool) "refkind preserved" true
    (A.is_shared attr && A.is_dependent attr);
  (* Importing into a non-empty schema with a clash fails. *)
  Alcotest.(check bool) "clash rejected" true
    (fails (fun () -> Schema.import_into fresh (Schema.export s)))

let test_any_domain () =
  let s = Schema.create () in
  define s ~name:"Flexible"
    [ A.make ~name:"Anything" ~domain:D.Any () ];
  Alcotest.(check bool) "weak any attr fine" true
    (Schema.attribute s "Flexible" "Anything" <> None);
  (* A composite attribute cannot have domain [any]. *)
  Alcotest.(check bool) "composite any rejected" true
    (fails (fun () ->
         define s ~name:"Bad"
           [ A.make ~name:"C" ~domain:D.Any ~refkind:(A.composite ()) () ]))

let test_effective_attrs_diamond () =
  (* Diamond inheritance: the attribute is inherited once. *)
  let s = Schema.create () in
  define s ~name:"Top" [ str_attr "T" ];
  define s ~name:"L" ~superclasses:[ "Top" ] [];
  define s ~name:"R" ~superclasses:[ "Top" ] [];
  define s ~name:"Bottom" ~superclasses:[ "L"; "R" ] [];
  let names =
    List.map (fun (a : A.t) -> a.name) (Schema.effective_attributes s "Bottom")
  in
  Alcotest.(check (list string)) "single copy" [ "T" ] names;
  Alcotest.(check (list string)) "supers deduplicated" [ "L"; "Top"; "R" ]
    (Schema.all_superclasses s "Bottom")

let test_composite_hierarchy_cycle_guard () =
  (* A self-referential composite class must not loop the hierarchy
     computation. *)
  let s = Schema.create () in
  define s ~name:"Node" [];
  Schema.add_attribute s ~cls:"Node"
    (A.make ~name:"Subs" ~domain:(D.Class "Node") ~collection:A.Set
       ~refkind:(A.composite ()) ());
  let hierarchy = Schema.composite_class_hierarchy s "Node" in
  Alcotest.(check int) "one entry" 1 (List.length hierarchy)

(* DDL gate --------------------------------------------------------------------- *)

let comp_attr name cls =
  A.make ~name ~domain:(D.Class cls) ~refkind:(A.composite ()) ()

let test_ddl_gate_veto_rolls_back () =
  let s = Schema.create () in
  define s ~name:"Kept" [ str_attr "Name" ];
  let before = Schema.version s in
  Schema.set_ddl_gate s
    (Some (fun _ -> raise (Schema.Error (Schema.Ddl_rejected "vetoed"))));
  Alcotest.(check bool) "define vetoed" true
    (match define s ~name:"Doomed" [] with
    | exception Schema.Error (Schema.Ddl_rejected _) -> true
    | _ -> false);
  Alcotest.(check bool) "class rolled back" false (Schema.mem s "Doomed");
  Alcotest.(check bool) "pre-gate class untouched" true (Schema.mem s "Kept");
  Alcotest.(check int) "version restored" before (Schema.version s);
  Alcotest.(check bool) "evolution op vetoed and rolled back" true
    (match Schema.add_attribute s ~cls:"Kept" (str_attr "Extra") with
    | exception Schema.Error (Schema.Ddl_rejected _) ->
        Schema.attribute s "Kept" "Extra" = None
    | _ -> false);
  (* Clearing the gate reopens DDL. *)
  Schema.set_ddl_gate s None;
  define s ~name:"Doomed" [];
  Alcotest.(check bool) "gate cleared" true (Schema.mem s "Doomed")

let test_ddl_gate_sees_post_state () =
  let s = Schema.create () in
  let seen = ref [] in
  Schema.set_ddl_gate s
    (Some
       (fun schema ->
         seen :=
           List.map
             (fun (c : Orion_schema.Class_def.t) -> c.name)
             (Schema.classes schema)));
  define s ~name:"Probe" [];
  Alcotest.(check bool) "gate ran on the mutated schema" true
    (List.mem "Probe" !seen)

let test_ddl_gate_analyzer_strict () =
  (* The CLI's strict mode: Schema_analysis errors veto the mutation.
     A composite cycle A -> B -> A is the analyzer's one error-severity
     hazard; the closing edge must be rejected and rolled back. *)
  let module SA = Orion_analysis.Schema_analysis in
  let s = Schema.create () in
  Schema.set_ddl_gate s
    (Some
       (fun schema ->
         match SA.errors (SA.analyze schema) with
         | [] -> ()
         | f :: _ ->
             raise (Schema.Error (Schema.Ddl_rejected f.SA.detail))));
  define s ~name:"A" [];
  define s ~name:"B" [ comp_attr "back" "A" ];
  Alcotest.(check bool) "cycle-closing attribute rejected" true
    (match Schema.add_attribute s ~cls:"A" (comp_attr "fwd" "B") with
    | exception Schema.Error (Schema.Ddl_rejected _) -> true
    | _ -> false);
  Alcotest.(check bool) "edge rolled back" true
    (Schema.attribute s "A" "fwd" = None)

let test_reimport_bypasses_gate () =
  let donor = Schema.create () in
  define donor ~name:"Fresh" [ str_attr "Name" ];
  let exported = Schema.export donor in
  let s = Schema.create () in
  define s ~name:"Stale" [];
  Schema.set_ddl_gate s
    (Some (fun _ -> raise (Schema.Error (Schema.Ddl_rejected "sealed"))));
  (* reimport replaces the live schema wholesale (the replica's
     checkpoint resync) without consulting the gate... *)
  Schema.reimport s exported;
  Alcotest.(check bool) "old classes gone" false (Schema.mem s "Stale");
  Alcotest.(check bool) "imported classes live" true (Schema.mem s "Fresh");
  (* ...and the gate survives the replacement. *)
  Alcotest.(check bool) "gate still armed" true
    (fails (fun () -> define s ~name:"Blocked" []))

let () =
  Alcotest.run "orion_schema"
    [
      ( "classes",
        [
          Alcotest.test_case "define/find" `Quick test_define_and_find;
          Alcotest.test_case "composite domain check" `Quick
            test_composite_requires_class_domain;
          Alcotest.test_case "segments" `Quick test_segments;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "inheritance" `Quick test_inheritance;
          Alcotest.test_case "multiple inheritance" `Quick
            test_multiple_inheritance_conflict;
          Alcotest.test_case "queries" `Quick test_lattice_queries;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "drop class relinks" `Quick test_drop_class_relinks;
        ] );
      ( "composite",
        [
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "class hierarchy" `Quick test_composite_class_hierarchy;
          Alcotest.test_case "referencing attributes" `Quick
            test_referencing_attributes;
        ] );
      ("mutators", [ Alcotest.test_case "add/drop/replace" `Quick test_mutators ]);
      ( "export/import",
        [
          Alcotest.test_case "roundtrip" `Quick test_export_import;
          Alcotest.test_case "any domain" `Quick test_any_domain;
          Alcotest.test_case "diamond inheritance" `Quick
            test_effective_attrs_diamond;
          Alcotest.test_case "self-referential hierarchy" `Quick
            test_composite_hierarchy_cycle_guard;
        ] );
      ( "ddl gate",
        [
          Alcotest.test_case "veto rolls back" `Quick
            test_ddl_gate_veto_rolls_back;
          Alcotest.test_case "sees post state" `Quick
            test_ddl_gate_sees_post_state;
          Alcotest.test_case "strict analyzer gate" `Quick
            test_ddl_gate_analyzer_strict;
          Alcotest.test_case "reimport bypasses" `Quick
            test_reimport_bypasses_gate;
        ] );
    ]
