(** Errors of the object layer.

    Topology violations correspond one-to-one to the conditions of the
    Make-Component Rule and Topology Rules 1–3 of §2.2. *)

type topology_reason =
  | Child_has_composite_parent
      (** Make-Component 1: the target of a new {e exclusive} reference
          must not already have any composite reference to it *)
  | Child_has_exclusive_parent
      (** Make-Component 2: the target of a new {e shared} reference
          must not already have an exclusive reference to it *)
  | Generic_exclusive_other_hierarchy
      (** CV-2X: a generic instance may have several exclusive
          composite references only from the same version-derivation
          hierarchy *)
  | Would_create_cycle of Oid.t list

type t =
  | Unknown_object of Oid.t
  | Not_an_instance_holder of Oid.t
      (** attribute access on a generic instance *)
  | Unknown_attribute of { cls : string; attr : string }
  | Not_composite_attribute of { cls : string; attr : string }
  | Type_error of { cls : string; attr : string; value : string; expected : string }
  | Topology_violation of { child : Oid.t; parent : Oid.t; attr : string; reason : topology_reason }
  | Not_a_component of { child : Oid.t; parent : Oid.t; attr : string }
  | Not_versionable of Oid.t
  | Version_error of { oid : Oid.t; reason : string }

exception Error of t

val raise_error : t -> 'a
val pp : Format.formatter -> t -> unit
val to_string : t -> string
