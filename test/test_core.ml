(* Tests for Orion_core: the extended composite-object model of §2–§3.
   The scenario tests mirror the paper's Examples 1 and 2; the table
   tests T1/T2 exercise the Deletion Rule and the Topology Rules case
   by case; qcheck properties check the integrity invariants under
   random operation sequences. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Scenarios = Orion_workload.Scenarios

let oid = Alcotest.testable Oid.pp Oid.equal

let check_integrity db =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations

let raises_topology f =
  match f () with
  | exception Core_error.Error (Core_error.Topology_violation _) -> true
  | _ -> false

(* A reusable fixture: one parent class with an attribute per reference
   type, one child class.  [refkinds] names: DX, IX, DS, IS, WK. *)
let ref_fixture () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Child"
       ~attributes:[ A.make ~name:"Name" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Loner" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  let comp ~dependent ~exclusive = A.composite ~dependent ~exclusive () in
  (* Parent is a subclass of Child so parents can nest under parents
     (the reference attributes' domain is Child). *)
  ignore
    (Schema.define schema ~name:"Parent" ~superclasses:[ "Child" ]
       ~attributes:
         [
           A.make ~name:"DX" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(comp ~dependent:true ~exclusive:true) ();
           A.make ~name:"IX" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(comp ~dependent:false ~exclusive:true) ();
           A.make ~name:"DS" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(comp ~dependent:true ~exclusive:false) ();
           A.make ~name:"IS" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(comp ~dependent:false ~exclusive:false) ();
           A.make ~name:"WK" ~domain:(D.Class "Child") ~collection:A.Set ();
         ]
       ()
      : Orion_schema.Class_def.t);
  db

let new_parent db = Object_manager.create db ~cls:"Parent" ()
let new_child db = Object_manager.create db ~cls:"Child" ()

(* T1: the deletion semantics of §2.2, rule by rule. ---------------------- *)

let test_deletion_rule_dx () =
  let db = ref_fixture () in
  let p = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p ~attr:"DX" ~child:c;
  Object_manager.delete db p;
  Alcotest.(check bool) "dependent exclusive component deleted" false
    (Database.exists db c);
  check_integrity db

let test_deletion_rule_ix () =
  let db = ref_fixture () in
  let p = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p ~attr:"IX" ~child:c;
  Object_manager.delete db p;
  Alcotest.(check bool) "independent exclusive component survives" true
    (Database.exists db c);
  Alcotest.(check (list oid)) "no parents left" [] (Traversal.parents_of db c);
  check_integrity db

let test_deletion_rule_ds () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"DS" ~child:c;
  Object_manager.make_component db ~parent:p2 ~attr:"DS" ~child:c;
  Object_manager.delete db p1;
  Alcotest.(check bool) "survives while DS(O) non-empty" true (Database.exists db c);
  Object_manager.delete db p2;
  Alcotest.(check bool) "deleted with the last dependent shared parent" false
    (Database.exists db c);
  check_integrity db

let test_deletion_rule_is () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"IS" ~child:c;
  Object_manager.make_component db ~parent:p2 ~attr:"IS" ~child:c;
  Object_manager.delete db p1;
  Object_manager.delete db p2;
  Alcotest.(check bool) "independent shared component survives" true
    (Database.exists db c);
  check_integrity db

let test_deletion_rule_ds_with_is () =
  (* Decision D2: DS(O) = {O'} but IS(O) non-empty — O survives. *)
  let db = ref_fixture () in
  let pd = new_parent db and pi = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:pd ~attr:"DS" ~child:c;
  Object_manager.make_component db ~parent:pi ~attr:"IS" ~child:c;
  Object_manager.delete db pd;
  Alcotest.(check bool) "sustained by independent shared parent" true
    (Database.exists db c);
  Alcotest.(check (list oid)) "one parent left" [ pi ] (Traversal.parents_of db c);
  check_integrity db

let test_deletion_rule_recursive () =
  (* Rule 3 of the Deletion Rule: transitive dependent chains die. *)
  let db = ref_fixture () in
  let p = new_parent db in
  let mid = Object_manager.create db ~cls:"Parent" ~parents:[ (p, "DX") ] () in
  let leaf = Object_manager.create db ~cls:"Child" ~parents:[ (mid, "DS") ] () in
  let free = Object_manager.create db ~cls:"Child" ~parents:[ (mid, "IX") ] () in
  Object_manager.delete db p;
  Alcotest.(check bool) "mid deleted" false (Database.exists db mid);
  Alcotest.(check bool) "leaf deleted transitively" false (Database.exists db leaf);
  Alcotest.(check bool) "independent leaf survives" true (Database.exists db free);
  check_integrity db

let test_deletion_weak_dangles () =
  let db = ref_fixture () in
  let p = new_parent db and c = new_child db in
  Object_manager.add_to_set db p "WK" c;
  Object_manager.delete db c;
  Alcotest.(check bool) "holder survives" true (Database.exists db p);
  let dangling = Integrity.dangling_weak_refs db in
  Alcotest.(check int) "one dangling weak reference" 1 (List.length dangling);
  check_integrity db

(* T2: the Topology Rules, adversarially. --------------------------------- *)

let test_topology_two_exclusive () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"DX" ~child:c;
  Alcotest.(check bool) "second exclusive rejected (rule 1)" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:p2 ~attr:"DX" ~child:c));
  Alcotest.(check bool) "IX after DX rejected (rule 2)" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:p2 ~attr:"IX" ~child:c));
  check_integrity db

let test_topology_exclusive_vs_shared () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"IX" ~child:c;
  Alcotest.(check bool) "shared after exclusive rejected (rule 3)" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:p2 ~attr:"DS" ~child:c));
  check_integrity db

let test_topology_shared_vs_exclusive () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"IS" ~child:c;
  Alcotest.(check bool) "exclusive after shared rejected (rule 3)" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:p2 ~attr:"DX" ~child:c));
  (* More shared references remain fine. *)
  Object_manager.make_component db ~parent:p2 ~attr:"DS" ~child:c;
  check_integrity db

let test_topology_weak_unrestricted () =
  (* Rule 4: any number of weak references, even alongside composite
     ones. *)
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p1 ~attr:"DX" ~child:c;
  Object_manager.add_to_set db p1 "WK" c;
  Object_manager.add_to_set db p2 "WK" c;
  Alcotest.(check int) "one composite parent" 1
    (List.length (Traversal.parents_of db c));
  check_integrity db

let test_cycle_rejected () =
  let db = ref_fixture () in
  let a = new_parent db and b = new_parent db in
  Object_manager.make_component db ~parent:a ~attr:"IS" ~child:b;
  Alcotest.(check bool) "direct cycle rejected" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:b ~attr:"IS" ~child:a));
  Alcotest.(check bool) "self cycle rejected" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:a ~attr:"IS" ~child:a));
  check_integrity db

(* Example 1: the Vehicle physical part hierarchy. ------------------------- *)

let test_vehicle_scenario () =
  let db = Database.create () in
  let classes = Scenarios.define_vehicle_schema db in
  let v1 = Scenarios.build_vehicle db classes ~color:"red" () in
  let v2 = Scenarios.build_vehicle db classes ~color:"blue" () in
  (* A part may be used by only one vehicle at a time. *)
  Alcotest.(check bool) "part not shareable across vehicles" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:v2.v_vehicle ~attr:"Body"
           ~child:v1.v_body));
  (* Dismantle vehicle 1: parts survive (independent references) ... *)
  Object_manager.delete db v1.v_vehicle;
  Alcotest.(check bool) "body survives dismantling" true
    (Database.exists db v1.v_body);
  (* ... and can now be re-used for another vehicle. *)
  Object_manager.make_component db ~parent:v2.v_vehicle ~attr:"Tires"
    ~child:(List.hd v1.v_tires);
  Alcotest.(check int) "vehicle 2 has 5 tires" 5
    (List.length
       (Traversal.components_of db ~classes:[ classes.auto_tires ] v2.v_vehicle));
  check_integrity db

let test_vehicle_components_of () =
  let db = Database.create () in
  let classes = Scenarios.define_vehicle_schema db in
  let v = Scenarios.build_vehicle db classes ~tires:4 ~color:"red" () in
  let comps = Traversal.components_of db v.v_vehicle in
  Alcotest.(check int) "1 body + 1 drivetrain + 4 tires" 6 (List.length comps);
  Alcotest.(check bool) "body is a component" true
    (Traversal.component_of db v.v_body v.v_vehicle);
  Alcotest.(check bool) "body is a child" true
    (Traversal.child_of db v.v_body v.v_vehicle);
  Alcotest.(check bool) "exclusive component" true
    (Traversal.exclusive_component_of db v.v_body v.v_vehicle);
  Alcotest.(check bool) "not a shared component" false
    (Traversal.shared_component_of db v.v_body v.v_vehicle);
  Alcotest.(check (list oid)) "parents of body" [ v.v_vehicle ]
    (Traversal.parents_of db v.v_body);
  check_integrity db

(* Example 2: the Document logical part hierarchy. -------------------------- *)

let document_fixture () =
  let db = Database.create () in
  let classes = Scenarios.define_document_schema db in
  (db, classes)

let test_document_sharing () =
  let db, classes = document_fixture () in
  let d1 =
    Scenarios.build_document db classes ~title:"one" ~sections:2
      ~paragraphs_per_section:3
  in
  let d2 =
    Scenarios.build_document db classes ~title:"two" ~sections:1
      ~paragraphs_per_section:2
  in
  (* An identical chapter may be part of two different books (§1). *)
  let shared_section = List.hd d1.d_sections in
  Object_manager.make_component db ~parent:d2.d_document ~attr:"Sections"
    ~child:shared_section;
  Alcotest.(check bool) "shared component of d2" true
    (Traversal.shared_component_of db shared_section d2.d_document);
  (* Deleting document one keeps the shared section alive... *)
  Object_manager.delete db d1.d_document;
  Alcotest.(check bool) "shared section survives" true
    (Database.exists db shared_section);
  (* ...but the unshared section of document one is gone. *)
  Alcotest.(check bool) "unshared section deleted" false
    (Database.exists db (List.nth d1.d_sections 1));
  (* Deleting document two now removes the section and its paragraphs. *)
  Object_manager.delete db d2.d_document;
  Alcotest.(check bool) "section gone with last document" false
    (Database.exists db shared_section);
  List.iter
    (fun paragraph ->
      Alcotest.(check bool) "paragraph gone" false (Database.exists db paragraph))
    (List.hd d1.d_paragraphs);
  check_integrity db

let test_document_annotations_exclusive () =
  let db, classes = document_fixture () in
  let d1 =
    Scenarios.build_document db classes ~title:"one" ~sections:1
      ~paragraphs_per_section:1
  in
  let d2 =
    Scenarios.build_document db classes ~title:"two" ~sections:1
      ~paragraphs_per_section:1
  in
  let annotation =
    Object_manager.create db ~cls:classes.paragraph
      ~parents:[ (d1.d_document, "Annotations") ]
      ~attrs:[ ("Text", Value.Str "margin note") ]
      ()
  in
  (* Annotations are not shared among documents. *)
  Alcotest.(check bool) "annotation not shareable" true
    (raises_topology (fun () ->
         Object_manager.make_component db ~parent:d2.d_document
           ~attr:"Annotations" ~child:annotation));
  Object_manager.delete db d1.d_document;
  Alcotest.(check bool) "annotation dies with its document" false
    (Database.exists db annotation);
  check_integrity db

let test_document_figures_independent () =
  let db, classes = document_fixture () in
  let d =
    Scenarios.build_document db classes ~title:"illustrated" ~sections:1
      ~paragraphs_per_section:1
  in
  let image =
    Object_manager.create db ~cls:classes.image
      ~parents:[ (d.d_document, "Figures") ]
      ~attrs:[ ("File", Value.Str "fig1.png") ]
      ()
  in
  Object_manager.delete db d.d_document;
  (* The existence of images does not depend on the documents containing
     them. *)
  Alcotest.(check bool) "image survives" true (Database.exists db image);
  check_integrity db

let test_document_remove_component_existence () =
  (* Decision D1: removing the last dependent reference deletes the
     component ("a section exists if it belongs to at least one
     document"). *)
  let db, classes = document_fixture () in
  let d =
    Scenarios.build_document db classes ~title:"doc" ~sections:1
      ~paragraphs_per_section:2
  in
  let section = List.hd d.d_sections in
  Object_manager.remove_component db ~parent:d.d_document ~attr:"Sections"
    ~child:section;
  Alcotest.(check bool) "section deleted on last removal" false
    (Database.exists db section);
  Alcotest.(check bool) "document remains" true (Database.exists db d.d_document);
  check_integrity db

(* Bottom-up creation with multiple parents (§2.3 make). ------------------- *)

let test_make_with_multiple_parents () =
  let db, classes = document_fixture () in
  let d1 =
    Scenarios.build_document db classes ~title:"a" ~sections:0
      ~paragraphs_per_section:0
  in
  let d2 =
    Scenarios.build_document db classes ~title:"b" ~sections:0
      ~paragraphs_per_section:0
  in
  (* Simultaneously a part of two documents: must be shared attributes. *)
  let section =
    Object_manager.create db ~cls:classes.section
      ~parents:[ (d1.d_document, "Sections"); (d2.d_document, "Sections") ]
      ()
  in
  Alcotest.(check int) "two parents" 2
    (List.length (Traversal.parents_of db section));
  (* Clustering hint is the first parent. *)
  let inst = Database.get db section in
  Alcotest.(check (option oid)) "clustered with first parent"
    (Some d1.d_document) inst.Instance.cluster_with;
  check_integrity db

let test_make_multiple_exclusive_parents_rejected () =
  let db = ref_fixture () in
  let p1 = new_parent db and p2 = new_parent db in
  (match
     Object_manager.create db ~cls:"Child"
       ~parents:[ (p1, "DX"); (p2, "DX") ]
       ()
   with
  | exception Core_error.Error (Core_error.Topology_violation _) -> ()
  | _ -> Alcotest.fail "expected topology violation");
  (* The failed make must leave no residue. *)
  Alcotest.(check int) "no objects created" 2 (Database.count db);
  Alcotest.(check (list oid)) "p1 value clean" []
    (Value.refs (Object_manager.read_attr db p1 "DX"));
  check_integrity db

(* Traversal filters. -------------------------------------------------------- *)

let test_components_levels_and_classes () =
  let db = ref_fixture () in
  let root = new_parent db in
  let mid = Object_manager.create db ~cls:"Parent" ~parents:[ (root, "DX") ] () in
  let leaf = Object_manager.create db ~cls:"Child" ~parents:[ (mid, "DX") ] () in
  Alcotest.(check (list oid)) "level 1" [ mid ]
    (Traversal.components_of db ~level:1 root);
  Alcotest.(check (list oid)) "level 2" [ mid; leaf ]
    (Traversal.components_of db ~level:2 root);
  Alcotest.(check (list oid)) "class filter with subclasses" [ mid; leaf ]
    (Traversal.components_of db ~classes:[ "Child" ] root);
  Alcotest.(check (list oid)) "narrow class filter" [ mid ]
    (Traversal.components_of db ~classes:[ "Parent" ] root);
  Alcotest.(check (list oid)) "ancestors of leaf" [ mid; root ]
    (Traversal.ancestors_of db leaf);
  check_integrity db

let test_exclusive_shared_partition () =
  let db = ref_fixture () in
  let root = new_parent db in
  let excl = Object_manager.create db ~cls:"Child" ~parents:[ (root, "DX") ] () in
  let shared = Object_manager.create db ~cls:"Child" ~parents:[ (root, "DS") ] () in
  Alcotest.(check (list oid)) "exclusive filter" [ excl ]
    (Traversal.components_of db ~filter:`Exclusive root);
  Alcotest.(check (list oid)) "shared filter" [ shared ]
    (Traversal.components_of db ~filter:`Shared root);
  (* An exclusive subtree below a shared link is tainted shared (D11). *)
  let sub = Object_manager.create db ~cls:"Parent" ~parents:[ (root, "DS") ] () in
  let below = Object_manager.create db ~cls:"Child" ~parents:[ (sub, "DX") ] () in
  Alcotest.(check bool) "below shared link is shared" true
    (Traversal.shared_component_of db below root);
  check_integrity db

let test_single_attr_replacement () =
  (* make_component on an occupied Single attribute replaces the child
     (write semantics): the old independent child is detached, the old
     dependent child is deleted. *)
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Part" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Holder"
       ~attributes:
         [
           A.make ~name:"IndepSlot" ~domain:(D.Class "Part")
             ~refkind:(A.composite ~exclusive:true ~dependent:false ())
             ();
           A.make ~name:"DepSlot" ~domain:(D.Class "Part")
             ~refkind:(A.composite ~exclusive:true ~dependent:true ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  let h = Object_manager.create db ~cls:"Holder" () in
  let p1 = Object_manager.create db ~cls:"Part" () in
  let p2 = Object_manager.create db ~cls:"Part" () in
  Object_manager.make_component db ~parent:h ~attr:"IndepSlot" ~child:p1;
  Object_manager.make_component db ~parent:h ~attr:"IndepSlot" ~child:p2;
  Alcotest.(check bool) "p1 detached but alive" true
    (Database.exists db p1 && Traversal.parents_of db p1 = []);
  Alcotest.(check bool) "p2 installed" true (Traversal.child_of db p2 h);
  let d1 = Object_manager.create db ~cls:"Part" () in
  let d2 = Object_manager.create db ~cls:"Part" () in
  Object_manager.make_component db ~parent:h ~attr:"DepSlot" ~child:d1;
  Object_manager.make_component db ~parent:h ~attr:"DepSlot" ~child:d2;
  Alcotest.(check bool) "old dependent child deleted on replacement" false
    (Database.exists db d1);
  check_integrity db

let test_parents_filters () =
  let db = ref_fixture () in
  let c = new_child db in
  let pe = new_parent db and ps = new_parent db in
  Object_manager.make_component db ~parent:ps ~attr:"DS" ~child:c;
  Object_manager.make_component db ~parent:pe ~attr:"IS" ~child:c;
  Alcotest.(check int) "all parents" 2 (List.length (Traversal.parents_of db c));
  Alcotest.(check (list oid)) "shared filter keeps both" [ ps; pe ]
    (Traversal.parents_of db ~filter:`Shared c);
  Alcotest.(check (list oid)) "exclusive filter drops both" []
    (Traversal.parents_of db ~filter:`Exclusive c);
  Alcotest.(check (list oid)) "class filter" [ ps; pe ]
    (Traversal.parents_of db ~classes:[ "Parent" ] c);
  Alcotest.(check (list oid)) "class filter misses" []
    (Traversal.parents_of db ~classes:[ "Loner" ] c);
  check_integrity db

let test_generic_has_no_attrs () =
  let db = Database.create () in
  ignore
    (Schema.define (Database.schema db) ~versionable:true ~name:"V"
       ~attributes:[ A.make ~name:"X" ~domain:(D.Primitive D.P_integer) () ]
       ()
      : Orion_schema.Class_def.t);
  let v = Object_manager.create db ~cls:"V" () in
  let g =
    match Instance.version_info (Database.get db v) with
    | Some vi -> vi.Instance.generic
    | None -> Alcotest.fail "expected a version instance"
  in
  (match Object_manager.write_attr db g "X" (Value.Int 1) with
  | exception Core_error.Error (Core_error.Not_an_instance_holder _) -> ()
  | _ -> Alcotest.fail "expected Not_an_instance_holder");
  check_integrity db

(* Attribute writes. --------------------------------------------------------- *)

let test_write_attr_diff_semantics () =
  let db = ref_fixture () in
  let p = new_parent db in
  let c1 = new_child db and c2 = new_child db in
  Object_manager.write_attr db p "IX" (Value.VSet [ Value.Ref c1 ]);
  Object_manager.write_attr db p "IX" (Value.VSet [ Value.Ref c1; Value.Ref c2 ]);
  Alcotest.(check int) "two components" 2
    (List.length (Traversal.children_of db p));
  (* Replacing the set detaches c1 (independent: survives). *)
  Object_manager.write_attr db p "IX" (Value.VSet [ Value.Ref c2 ]);
  Alcotest.(check bool) "c1 detached but alive" true (Database.exists db c1);
  Alcotest.(check (list oid)) "c1 has no parents" [] (Traversal.parents_of db c1);
  check_integrity db

let test_write_attr_dependent_replacement_deletes () =
  let db = ref_fixture () in
  let p = new_parent db in
  let c1 = new_child db in
  Object_manager.write_attr db p "DX" (Value.VSet [ Value.Ref c1 ]);
  Object_manager.write_attr db p "DX" (Value.VSet []);
  Alcotest.(check bool) "dependent exclusive child deleted on removal" false
    (Database.exists db c1);
  check_integrity db

let test_type_errors () =
  let db = ref_fixture () in
  let p = new_parent db in
  let expect_type_error f =
    match f () with
    | exception Core_error.Error (Core_error.Type_error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "int into set-of Child" true
    (expect_type_error (fun () ->
         Object_manager.write_attr db p "DX" (Value.Int 3)));
  let loner = Object_manager.create db ~cls:"Loner" () in
  Alcotest.(check bool) "wrong class" true
    (expect_type_error (fun () ->
         Object_manager.write_attr db p "DX" (Value.VSet [ Value.Ref loner ])));
  Alcotest.(check bool) "unknown attribute" true
    (match Object_manager.write_attr db p "Nope" Value.Null with
    | exception Core_error.Error (Core_error.Unknown_attribute _) -> true
    | _ -> false);
  check_integrity db

(* Persistence. --------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let db = ref_fixture () in
  let p = new_parent db in
  let c =
    Object_manager.create db ~cls:"Child"
      ~parents:[ (p, "DS") ]
      ~attrs:[ ("Name", Value.Str "child") ]
      ()
  in
  let inst = Database.get db c in
  let decoded = Codec.decode (Codec.encode db inst) in
  Alcotest.(check oid) "oid" inst.Instance.oid decoded.Instance.oid;
  Alcotest.(check string) "class" inst.Instance.cls decoded.Instance.cls;
  Alcotest.(check bool) "attrs preserved" true
    (Value.equal
       (Option.get (Instance.attr decoded "Name"))
       (Value.Str "child"));
  Alcotest.(check int) "rrefs preserved" 1 (List.length decoded.Instance.rrefs)

let test_checkpoint_reload () =
  let db = Database.create () in
  let classes = Scenarios.define_vehicle_schema db in
  let v = Scenarios.build_vehicle db classes ~color:"green" () in
  Persist.checkpoint db;
  Persist.reload db;
  Alcotest.(check int) "components intact after reload" 6
    (List.length (Traversal.components_of db v.v_vehicle));
  Alcotest.(check bool) "color intact" true
    (Value.equal
       (Object_manager.read_attr db v.v_vehicle "Color")
       (Value.Str "green"));
  check_integrity db

let test_save_load_roundtrip () =
  let db = Database.create () in
  let classes = Scenarios.define_document_schema db in
  let d1 =
    Scenarios.build_document db classes ~title:"persisted" ~sections:2
      ~paragraphs_per_section:2
  in
  let d2 =
    Scenarios.build_document db classes ~title:"other" ~sections:1
      ~paragraphs_per_section:1
  in
  Object_manager.make_component db ~parent:d2.Scenarios.d_document ~attr:"Sections"
    ~child:(List.hd d1.Scenarios.d_sections);
  Persist.save db;
  let reopened = Persist.load (Database.store db) in
  Alcotest.(check int) "same object count" (Database.count db)
    (Database.count reopened);
  Alcotest.(check bool) "schema restored" true
    (Schema.mem (Database.schema reopened) classes.Scenarios.document);
  Alcotest.(check bool) "title restored" true
    (Value.equal
       (Object_manager.read_attr reopened d1.Scenarios.d_document "Title")
       (Value.Str "persisted"));
  Alcotest.(check int) "shared section keeps two parents" 2
    (List.length (Traversal.parents_of reopened (List.hd d1.Scenarios.d_sections)));
  (* New OIDs continue beyond the saved counter. *)
  let fresh =
    Object_manager.create reopened ~cls:classes.Scenarios.paragraph ()
  in
  Alcotest.(check bool) "fresh oid is new" false
    (Database.exists db fresh && Oid.to_int fresh < Database.count db);
  (match Integrity.check reopened with
  | [] -> ()
  | violations ->
      Alcotest.failf "reopened integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations);
  (* Deletion semantics still work after reopening. *)
  Object_manager.delete reopened d2.Scenarios.d_document;
  Object_manager.delete reopened d1.Scenarios.d_document;
  check_integrity reopened

let test_save_load_external_repr () =
  let db = Database.create ~rref_repr:Database.External () in
  let classes = Scenarios.define_vehicle_schema db in
  let v = Scenarios.build_vehicle db classes ~color:"silver" () in
  Persist.save db;
  let reopened = Persist.load (Database.store db) in
  Alcotest.(check bool) "external repr restored" true
    (Database.rref_repr reopened = Database.External);
  Alcotest.(check (list oid)) "reverse references restored" [ v.Scenarios.v_vehicle ]
    (Traversal.parents_of reopened v.Scenarios.v_body);
  check_integrity reopened

let test_load_without_catalog_fails () =
  let store = Orion_storage.Store.create () in
  match Persist.load store with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_compaction () =
  let db = Database.create ~page_size:512 () in
  let classes = Scenarios.define_vehicle_schema db in
  let fleet =
    List.init 12 (fun i ->
        Scenarios.build_vehicle db classes ~color:(Printf.sprintf "c%d" i) ())
  in
  Persist.checkpoint db;
  (* Delete most of the fleet: pages now hold mostly dead slots. *)
  List.iteri
    (fun i v -> if i > 1 then Object_manager.delete db v.Scenarios.v_vehicle)
    fleet;
  let moved = Persist.compact db in
  Alcotest.(check bool) "some records moved" true (moved > 0);
  (* Survivors still read back from their (new) RIDs. *)
  let survivor = List.hd fleet in
  (match Persist.read_cold db survivor.Scenarios.v_vehicle with
  | Some image ->
      Alcotest.(check string) "class intact" classes.Scenarios.vehicle
        image.Instance.cls
  | None -> Alcotest.fail "survivor unreadable after compaction");
  Persist.checkpoint db;
  Persist.reload db;
  Alcotest.(check int) "components intact" 6
    (List.length (Traversal.components_of db survivor.Scenarios.v_vehicle));
  check_integrity db

let test_scrub_dangling_weak () =
  let db = ref_fixture () in
  let p = new_parent db in
  let c1 = new_child db and c2 = new_child db in
  Object_manager.add_to_set db p "WK" c1;
  Object_manager.add_to_set db p "WK" c2;
  Object_manager.delete db c1;
  Alcotest.(check int) "one dangling" 1 (List.length (Integrity.dangling_weak_refs db));
  Alcotest.(check int) "one scrubbed" 1 (Integrity.scrub_dangling_weak db);
  Alcotest.(check int) "none left" 0 (List.length (Integrity.dangling_weak_refs db));
  Alcotest.(check (list oid)) "live reference kept" [ c2 ]
    (Value.refs (Object_manager.read_attr db p "WK"));
  Alcotest.(check int) "idempotent" 0 (Integrity.scrub_dangling_weak db);
  check_integrity db

(* The scalar counterpart: a single-valued weak reference to a dead
   target is nulled out (not just removed from a set). *)
let test_scrub_dangling_weak_scalar () =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Target" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Holder"
       ~attributes:[ A.make ~name:"Ref" ~domain:(D.Class "Target") () ]
       ()
      : Orion_schema.Class_def.t);
  let t1 = Object_manager.create db ~cls:"Target" () in
  let t2 = Object_manager.create db ~cls:"Target" () in
  let h1 = Object_manager.create db ~cls:"Holder" () in
  let h2 = Object_manager.create db ~cls:"Holder" () in
  Object_manager.write_attr db h1 "Ref" (Value.Ref t1);
  Object_manager.write_attr db h2 "Ref" (Value.Ref t2);
  Object_manager.delete db t1;
  Alcotest.(check int) "one dangling" 1
    (List.length (Integrity.dangling_weak_refs db));
  Alcotest.(check int) "one scrubbed" 1 (Integrity.scrub_dangling_weak db);
  Alcotest.(check int) "none left" 0
    (List.length (Integrity.dangling_weak_refs db));
  Alcotest.(check bool) "scrubbed holder reads Null" true
    (Object_manager.read_attr db h1 "Ref" = Value.Null);
  Alcotest.(check bool) "live holder untouched" true
    (Object_manager.read_attr db h2 "Ref" = Value.Ref t2);
  check_integrity db

let test_cold_walk () =
  let db = Database.create () in
  let classes = Scenarios.define_vehicle_schema db in
  let v = Scenarios.build_vehicle db classes ~tires:4 ~color:"grey" () in
  Persist.checkpoint db;
  Orion_storage.Store.drop_cache (Database.store db);
  let visited = Persist.walk_cold db v.v_vehicle in
  Alcotest.(check int) "visits vehicle + 6 parts" 7 visited

(* External reverse-reference representation (ablation A1). ------------------- *)

let test_external_rref_repr () =
  let db = Database.create ~rref_repr:Database.External () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Child" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Parent"
       ~attributes:
         [
           A.make ~name:"Kids" ~domain:(D.Class "Child") ~collection:A.Set
             ~refkind:(A.composite ()) ();
         ]
       ()
      : Orion_schema.Class_def.t);
  let p = Object_manager.create db ~cls:"Parent" () in
  let c = Object_manager.create db ~cls:"Child" ~parents:[ (p, "Kids") ] () in
  Alcotest.(check (list oid)) "parents via external index" [ p ]
    (Traversal.parents_of db c);
  Alcotest.(check int) "instance record itself holds none" 0
    (List.length (Database.get db c).Instance.rrefs);
  Object_manager.delete db p;
  Alcotest.(check bool) "cascade works" false (Database.exists db c);
  check_integrity db

let test_duplicate_set_members_normalized () =
  let db = ref_fixture () in
  let p = new_parent db and c = new_child db in
  Object_manager.write_attr db p "IS" (Value.VSet [ Value.Ref c; Value.Ref c ]);
  (match Object_manager.read_attr db p "IS" with
  | Value.VSet [ Value.Ref stored ] -> Alcotest.(check oid) "deduped" c stored
  | v -> Alcotest.failf "expected singleton set, got %s" (Value.to_string v));
  Alcotest.(check int) "single reverse reference" 1
    (List.length (Database.rrefs db c));
  check_integrity db

let test_same_child_two_attributes () =
  (* One parent may reference the same child through two different
     shared attributes; each contributes its own reverse reference. *)
  let db = ref_fixture () in
  let p = new_parent db and c = new_child db in
  Object_manager.make_component db ~parent:p ~attr:"IS" ~child:c;
  Object_manager.make_component db ~parent:p ~attr:"DS" ~child:c;
  Alcotest.(check int) "two reverse references" 2
    (List.length (Database.rrefs db c));
  Alcotest.(check (list oid)) "one distinct parent" [ p ]
    (Traversal.parents_of db c);
  (* Deleting the parent removes both; the DS reference makes the child
     existence-dependent. *)
  Object_manager.delete db p;
  Alcotest.(check bool) "child deleted (dependent ref present)" false
    (Database.exists db c);
  check_integrity db

let test_level_is_shortest_path () =
  (* §2.2: "0 is a level n component of 0' if the SHORTEST path between
     0 and 0' has n composite references."  Reach leaf both directly
     (level 1) and through mid (level 2): level-1 filter must keep it. *)
  let db = ref_fixture () in
  let root = new_parent db in
  let mid = Object_manager.create db ~cls:"Parent" ~parents:[ (root, "DS") ] () in
  let leaf = Object_manager.create db ~cls:"Child" ~parents:[ (root, "IS") ] () in
  Object_manager.make_component db ~parent:mid ~attr:"DS" ~child:leaf;
  Alcotest.(check bool) "leaf at level 1" true
    (List.exists (Oid.equal leaf) (Traversal.components_of db ~level:1 root));
  check_integrity db

let codec_roundtrip_property =
  QCheck.Test.make ~name:"codec roundtrip on random objects" ~count:80
    QCheck.(make Gen.(list_size (int_bound 30) (pair (int_bound 4) small_nat)))
    (fun ops ->
      (* Build a database with random structure, then every object must
         decode back identically. *)
      let db = ref_fixture () in
      let objects = ref [] in
      let pick idx =
        match !objects with
        | [] -> None
        | l -> Some (List.nth l (idx mod List.length l))
      in
      List.iter
        (fun (op, x) ->
          objects := List.filter (Database.exists db) !objects;
          try
            match op with
            | 0 | 1 ->
                objects :=
                  Object_manager.create db
                    ~cls:(if op = 0 then "Parent" else "Child")
                    ~attrs:[ ("Name", Value.Str (string_of_int x)) ]
                    ()
                  :: !objects
            | 2 -> (
                match (pick x, pick (x + 1)) with
                | Some parent, Some child
                  when String.equal (Database.class_of db parent) "Parent" ->
                    Object_manager.make_component db ~parent ~attr:"IS" ~child
                | _ -> ())
            | _ -> (
                match pick x with
                | Some victim -> Object_manager.delete db victim
                | None -> ())
          with Core_error.Error _ -> ())
        ops;
      Database.fold db ~init:true ~f:(fun acc inst ->
          acc
          &&
          let decoded = Codec.decode (Codec.encode db inst) in
          Oid.equal decoded.Instance.oid inst.Instance.oid
          && String.equal decoded.Instance.cls inst.Instance.cls
          && List.length decoded.Instance.attrs = List.length inst.Instance.attrs
          && List.for_all2
               (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
               decoded.Instance.attrs inst.Instance.attrs
          && decoded.Instance.rrefs = inst.Instance.rrefs))

(* qcheck: random operation sequences preserve every invariant. ------------- *)

let random_ops_property =
  QCheck.Test.make ~name:"random operations preserve integrity" ~count:60
    QCheck.(make Gen.(list_size (int_bound 120) (pair (int_bound 5) (pair small_nat small_nat))))
    (fun ops ->
      let db = ref_fixture () in
      let objects = ref [] in
      let pick idx =
        match !objects with
        | [] -> None
        | l -> Some (List.nth l (idx mod List.length l))
      in
      let attr_of i =
        match i mod 5 with
        | 0 -> "DX"
        | 1 -> "IX"
        | 2 -> "DS"
        | 3 -> "IS"
        | _ -> "WK"
      in
      List.iter
        (fun (op, (x, y)) ->
          let refresh () =
            objects := List.filter (Database.exists db) !objects
          in
          refresh ();
          (try
             match op with
             | 0 ->
                 let cls = if x mod 2 = 0 then "Parent" else "Child" in
                 objects := Object_manager.create db ~cls () :: !objects
             | 1 -> (
                 match (pick x, pick y) with
                 | Some parent, Some child
                   when String.equal (Database.class_of db parent) "Parent" ->
                     Object_manager.make_component db ~parent
                       ~attr:(attr_of (x + y)) ~child
                 | _ -> ())
             | 2 -> (
                 match pick x with
                 | Some victim -> Object_manager.delete db victim
                 | None -> ())
             | 3 -> (
                 match (pick x, pick y) with
                 | Some parent, Some child
                   when String.equal (Database.class_of db parent) "Parent" ->
                     let attr = attr_of (x + y) in
                     let v = Object_manager.read_attr db parent attr in
                     if Value.contains_ref v child then
                       Object_manager.remove_component db ~parent ~attr ~child
                 | _ -> ())
             | 4 -> (
                 match (pick x, pick y) with
                 | Some parent, Some child
                   when String.equal (Database.class_of db parent) "Parent" ->
                     Object_manager.add_to_set db parent "WK" child
                 | _ -> ())
             | _ -> ()
           with Core_error.Error _ -> ())
          (* rejected operations are fine; corruption is not *))
        ops;
      Integrity.check db = [])

let () =
  Alcotest.run "orion_core"
    [
      ( "deletion-rule (T1)",
        [
          Alcotest.test_case "dependent exclusive" `Quick test_deletion_rule_dx;
          Alcotest.test_case "independent exclusive" `Quick test_deletion_rule_ix;
          Alcotest.test_case "dependent shared" `Quick test_deletion_rule_ds;
          Alcotest.test_case "independent shared" `Quick test_deletion_rule_is;
          Alcotest.test_case "DS sustained by IS (D2)" `Quick
            test_deletion_rule_ds_with_is;
          Alcotest.test_case "recursive" `Quick test_deletion_rule_recursive;
          Alcotest.test_case "weak dangles (D3)" `Quick test_deletion_weak_dangles;
        ] );
      ( "topology-rules (T2)",
        [
          Alcotest.test_case "two exclusive" `Quick test_topology_two_exclusive;
          Alcotest.test_case "exclusive then shared" `Quick
            test_topology_exclusive_vs_shared;
          Alcotest.test_case "shared then exclusive" `Quick
            test_topology_shared_vs_exclusive;
          Alcotest.test_case "weak unrestricted" `Quick
            test_topology_weak_unrestricted;
          Alcotest.test_case "cycles rejected (D4)" `Quick test_cycle_rejected;
        ] );
      ( "vehicle (E1)",
        [
          Alcotest.test_case "reuse after dismantle" `Quick test_vehicle_scenario;
          Alcotest.test_case "components-of" `Quick test_vehicle_components_of;
        ] );
      ( "document (E2)",
        [
          Alcotest.test_case "shared sections" `Quick test_document_sharing;
          Alcotest.test_case "annotations exclusive" `Quick
            test_document_annotations_exclusive;
          Alcotest.test_case "figures independent" `Quick
            test_document_figures_independent;
          Alcotest.test_case "existence dependency (D1)" `Quick
            test_document_remove_component_existence;
        ] );
      ( "make (§2.3)",
        [
          Alcotest.test_case "multiple parents" `Quick
            test_make_with_multiple_parents;
          Alcotest.test_case "exclusive multi-parent rejected" `Quick
            test_make_multiple_exclusive_parents_rejected;
        ] );
      ( "traversal (§3)",
        [
          Alcotest.test_case "levels and classes" `Quick
            test_components_levels_and_classes;
          Alcotest.test_case "exclusive/shared partition" `Quick
            test_exclusive_shared_partition;
          Alcotest.test_case "parents filters" `Quick test_parents_filters;
          Alcotest.test_case "single-slot replacement" `Quick
            test_single_attr_replacement;
          Alcotest.test_case "generic holds no attributes" `Quick
            test_generic_has_no_attrs;
        ] );
      ( "writes",
        [
          Alcotest.test_case "set diff semantics" `Quick
            test_write_attr_diff_semantics;
          Alcotest.test_case "duplicate set members" `Quick
            test_duplicate_set_members_normalized;
          Alcotest.test_case "same child, two attributes" `Quick
            test_same_child_two_attributes;
          Alcotest.test_case "level is shortest path" `Quick
            test_level_is_shortest_path;
          Alcotest.test_case "dependent replacement" `Quick
            test_write_attr_dependent_replacement_deletes;
          Alcotest.test_case "type errors" `Quick test_type_errors;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "checkpoint/reload" `Quick test_checkpoint_reload;
          Alcotest.test_case "cold walk" `Quick test_cold_walk;
          Alcotest.test_case "save/load" `Quick test_save_load_roundtrip;
          Alcotest.test_case "save/load external rrefs" `Quick
            test_save_load_external_repr;
          Alcotest.test_case "load without catalog" `Quick
            test_load_without_catalog_fails;
          Alcotest.test_case "compaction" `Quick test_compaction;
          Alcotest.test_case "weak-ref scavenger" `Quick test_scrub_dangling_weak;
          Alcotest.test_case "weak-ref scavenger (scalar)" `Quick
            test_scrub_dangling_weak_scalar;
        ] );
      ( "representations",
        [ Alcotest.test_case "external rrefs (A1)" `Quick test_external_rref_repr ]
      );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest random_ops_property;
          QCheck_alcotest.to_alcotest codec_roundtrip_property;
        ] );
    ]
