lib/storage/bytes_rw.mli:
