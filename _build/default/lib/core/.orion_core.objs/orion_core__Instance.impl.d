lib/core/instance.ml: Format List Oid Orion_storage Printf Rref String Value
