(** The wire framing: length-prefixed, checksummed byte frames.

    A frame is [[len:u32le][adler32:u32le][payload]] — the same layout
    as the write-ahead log ({!Orion_wal.Wal}), so a corrupted or
    truncated stream is detected the same way: a length bound and an
    Adler-32 over the payload.  What the payload means is
    {!Message}'s business; framing is content-oblivious.

    Unlike the log (parsed at rest), the wire arrives in arbitrary
    chunks, so decoding is incremental: a {!Splitter} accumulates
    bytes as [read(2)] delivers them and yields complete payloads. *)

exception Corrupt of string
(** An impossible length or a checksum mismatch.  The connection is
    unrecoverable: framing has lost sync. *)

val header_size : int
(** Bytes of [len] + [checksum] preceding each payload (8). *)

val max_payload : int
(** Upper bound on a payload (16 MiB); larger lengths are {!Corrupt}
    — they can only come from garbage or a hostile peer. *)

val encode : bytes -> bytes
(** Frame one payload.  @raise Corrupt when it exceeds {!max_payload}. *)

(** Incremental decoder over a byte stream. *)
module Splitter : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> len:int -> unit
  (** Append the first [len] bytes of the chunk to the stream. *)

  val next : t -> bytes option
  (** The next complete payload, if one is fully buffered.
      @raise Corrupt on a bad length or checksum. *)

  val buffered : t -> int
  (** Bytes accumulated but not yet returned by {!next}. *)
end
