module Sexp = Orion_util.Sexp

let balanced src =
  let depth = ref 0 and in_string = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !escaped then escaped := false
      else
        match ch with
        | '\\' when !in_string -> escaped := true
        | '"' -> in_string := not !in_string
        | '(' when not !in_string -> incr depth
        | ')' when not !in_string -> decr depth
        | _ -> ())
    src;
  (not !in_string) && !depth <= 0

let run ?env ic oc =
  let env = match env with Some env -> env | None -> Eval.create_env () in
  let fmt = Format.formatter_of_out_channel oc in
  let rec session () =
    Format.fprintf fmt "orion> %!";
    match read_form "" with
    | None -> Format.fprintf fmt "@."
    | Some "" -> session ()
    | Some src -> (
        match Sexp.parse src with
        | exception Sexp.Parse_error msg ->
            Format.fprintf fmt "parse error: %s@." msg;
            session ()
        | Sexp.List [ Sexp.Atom "quit" ] | Sexp.List [ Sexp.Atom "exit" ] ->
            Format.fprintf fmt "bye@."
        | form -> (
            (match Eval.eval env form with
            | v -> Format.fprintf fmt "%a@." (Eval.pp_v env) v
            | exception Eval.Eval_error msg -> Format.fprintf fmt "error: %s@." msg
            | exception Orion_core.Core_error.Error e ->
                Format.fprintf fmt "error: %a@." Orion_core.Core_error.pp e
            | exception Orion_schema.Schema.Error e ->
                Format.fprintf fmt "schema error: %a@." Orion_schema.Schema.pp_error e);
            session ()))
  and read_form acc =
    match input_line ic with
    | exception End_of_file -> if String.trim acc = "" then None else Some acc
    | line ->
        let acc = if acc = "" then line else acc ^ "\n" ^ line in
        if balanced acc then Some acc
        else begin
          Format.fprintf fmt "  ...> %!";
          read_form acc
        end
  in
  session ()

let run_script env src =
  List.map (fun form -> (form, Eval.eval env form)) (Sexp.parse_many src)
