lib/storage/store.ml: Buffer Buffer_pool Bytes Bytes_rw Disk Fun Hashtbl Int Int32 List Option Page Printf
