(** Class definitions.

    Fields are mutable because schema evolution (§4) changes live
    classes; all mutation must go through {!Schema} (and
    [Orion_evolution]) so that indexes, caches and instance-level
    semantics stay consistent. *)

type t = {
  name : string;
  mutable superclasses : string list;
  mutable own_attributes : Attribute.t list;
  versionable : bool;
      (** §5.1: instances of a versionable class are versionable objects *)
  segment : int;  (** physical clustering segment (shared across classes) *)
}

val own_attribute : t -> string -> Attribute.t option

val pp : Format.formatter -> t -> unit
