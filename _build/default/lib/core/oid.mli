(** Object identifiers (the paper's UIDs).

    "We say that an object O' has a reference to another object O if O'
    contains the object identifier (UID) of O" (§2.1).  OIDs are dense
    integers allocated by the {!Database}; they are never reused, so a
    dangling weak reference is detectable. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_int : t -> int
val of_int : int -> t
(** For the serializer and tests only. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
