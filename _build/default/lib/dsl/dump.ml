open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Class_def = Orion_schema.Class_def

let buf_add = Buffer.add_string

(* Schema ---------------------------------------------------------------------- *)

let domain_to_syntax = function
  | D.Primitive D.P_string -> "String"
  | D.Primitive D.P_integer -> "Integer"
  | D.Primitive D.P_float -> "Float"
  | D.Primitive D.P_boolean -> "Boolean"
  | D.Any -> "any"
  | D.Class c -> c

let attribute_to_syntax (a : A.t) =
  let domain =
    match a.collection with
    | A.Single -> domain_to_syntax a.domain
    | A.Set -> Printf.sprintf "(set-of %s)" (domain_to_syntax a.domain)
  in
  let flags =
    match a.refkind with
    | A.Weak -> ""
    | A.Composite { exclusive; dependent } ->
        Printf.sprintf " :composite true :exclusive %s :dependent %s"
          (if exclusive then "true" else "nil")
          (if dependent then "true" else "nil")
  in
  Printf.sprintf "(%s :domain %s%s)" a.name domain flags

let dump_schema db =
  let schema = Database.schema db in
  let buf = Buffer.create 1024 in
  buf_add buf ";; schema\n";
  (* Superclasses before subclasses. *)
  let emitted = Hashtbl.create 16 in
  let rec emit (cls : Class_def.t) =
    if not (Hashtbl.mem emitted cls.name) then begin
      Hashtbl.replace emitted cls.name ();
      List.iter (fun super -> emit (Schema.find_exn schema super)) cls.superclasses;
      buf_add buf (Printf.sprintf "(make-class '%s" cls.name);
      (match cls.superclasses with
      | [] -> ()
      | supers ->
          buf_add buf (Printf.sprintf " :superclasses (%s)" (String.concat " " supers)));
      if cls.versionable then buf_add buf " :versionable true";
      (match cls.own_attributes with
      | [] -> buf_add buf " :attributes ()"
      | attrs ->
          buf_add buf " :attributes (";
          List.iter (fun a -> buf_add buf ("\n  " ^ attribute_to_syntax a)) attrs;
          buf_add buf ")");
      buf_add buf ")\n"
    end
  in
  List.iter emit (Schema.classes schema);
  Buffer.contents buf

(* Objects ----------------------------------------------------------------------- *)

let name_of oid = Printf.sprintf "o%d" (Oid.to_int oid)

let rec value_to_syntax db v =
  match v with
  | Value.Null -> Some "nil"
  | Value.Int n -> Some (string_of_int n)
  | Value.Float f -> Some (Printf.sprintf "%h" f)
  | Value.Str s -> Some (Printf.sprintf "%S" s)
  | Value.Bool b -> Some (if b then "true" else "false")
  | Value.Ref oid ->
      (* Dangling weak residue is dropped from the dump. *)
      if Database.exists db oid then Some (name_of oid) else None
  | Value.VSet vs ->
      let elems = List.filter_map (value_to_syntax db) vs in
      Some (Printf.sprintf "(%s)" (String.concat " " elems))

let is_reference_attr (a : A.t) = D.class_name a.domain <> None || a.domain = D.Any

let dump_objects db =
  let schema = Database.schema db in
  let buf = Buffer.create 4096 in
  buf_add buf ";; objects (phase 1: creation, phase 2: references)\n";
  (* Phase 1: create every attribute-holding object bare (primitive
     attributes inline), versionable families in derivation order. *)
  let primitive_inits (inst : Instance.t) =
    List.filter_map
      (fun (name, v) ->
        match Schema.attribute schema inst.cls name with
        | Some a when not (is_reference_attr a) ->
            Option.map (fun s -> Printf.sprintf " :%s %s" name s) (value_to_syntax db v)
        | Some _ | None -> None)
      inst.attrs
  in
  let holders =
    Database.fold db ~init:[] ~f:(fun acc inst ->
        if Instance.is_generic inst then acc else inst :: acc)
    |> List.sort (fun (a : Instance.t) b -> Oid.compare a.oid b.oid)
  in
  let emitted = Oid.Tbl.create 64 in
  let emit_plain (inst : Instance.t) =
    buf_add buf
      (Printf.sprintf "(setq %s (make %s%s))\n" (name_of inst.oid) inst.cls
         (String.concat "" (primitive_inits inst)))
  in
  let emit_family (generic : Instance.t) (gi : Instance.generic_info) =
    (* Versions in version-number order; each derived from its recorded
       parent when alive, else from the previously emitted version.
       (Version numbers are re-assigned sequentially on restore.) *)
    let versions =
      List.filter_map
        (fun v ->
          match Database.find db v with
          | Some vinst -> (
              match Instance.version_info vinst with
              | Some vi -> Some (vinst, vi)
              | None -> None)
          | None -> None)
        gi.versions
      |> List.sort (fun (_, (a : Instance.version_info)) (_, b) ->
             Int.compare a.version_no b.version_no)
    in
    let last = ref None in
    List.iter
      (fun ((vinst : Instance.t), (vi : Instance.version_info)) ->
        (match !last with
        | None ->
            buf_add buf
              (Printf.sprintf "(setq %s (make %s%s))\n" (name_of vinst.oid) vinst.cls
                 (String.concat "" (primitive_inits vinst)))
        | Some previous ->
            let source =
              match vi.derived_from with
              | Some parent when Database.exists db parent -> name_of parent
              | Some _ | None -> name_of previous
            in
            buf_add buf
              (Printf.sprintf "(setq %s (derive-version %s))\n" (name_of vinst.oid)
                 source));
        last := Some vinst.oid;
        Oid.Tbl.replace emitted vinst.oid ())
      versions;
    (* Bind the generic and restore the user default, if any. *)
    (match versions with
    | (first, _) :: _ ->
        buf_add buf
          (Printf.sprintf "(setq %s (generic-of %s))\n" (name_of generic.oid)
             (name_of first.oid))
    | [] -> ());
    match gi.user_default with
    | Some d when Database.exists db d ->
        buf_add buf
          (Printf.sprintf "(set-default-version %s %s)\n" (name_of generic.oid)
             (name_of d))
    | Some _ | None -> ()
  in
  Database.iter db (fun inst ->
      match Instance.generic_info inst with
      | Some gi -> emit_family inst gi
      | None -> ());
  List.iter
    (fun (inst : Instance.t) ->
      if not (Oid.Tbl.mem emitted inst.oid) then emit_plain inst)
    holders;
  (* Phase 2: reference attributes (weak and composite) and the
     primitive attributes of derived versions (their bare copies). *)
  buf_add buf ";; phase 2\n";
  List.iter
    (fun (inst : Instance.t) ->
      let is_derived_version =
        match Instance.version_info inst with
        | Some vi -> vi.derived_from <> None
        | None -> false
      in
      if is_derived_version then
        (* derive-version copied the source's values; overwrite every
           effective attribute with the real state (including Null). *)
        List.iter
          (fun (a : A.t) ->
            let v = Option.value (Instance.attr inst a.name) ~default:Value.Null in
            match value_to_syntax db v with
            | Some syntax ->
                buf_add buf
                  (Printf.sprintf "(set-attr %s %s %s)\n" (name_of inst.oid) a.name
                     syntax)
            | None -> ())
          (Schema.effective_attributes schema inst.cls)
      else
        List.iter
          (fun (name, v) ->
            match Schema.attribute schema inst.cls name with
            | Some a when is_reference_attr a -> (
                match value_to_syntax db v with
                | Some "nil" | None -> ()
                | Some syntax ->
                    buf_add buf
                      (Printf.sprintf "(set-attr %s %s %s)\n" (name_of inst.oid)
                         name syntax))
            | Some _ | None -> ())
          inst.attrs)
    holders;
  Buffer.contents buf

let dump db = dump_schema db ^ "\n" ^ dump_objects db

let restore src =
  let env = Eval.create_env () in
  ignore (Eval.eval_program env src : Eval.v list);
  env
