(** Reverse composite references (§2.4).

    "A reverse composite reference actually consists of a couple of
    flags in addition to the object identifier of a parent.  One flag
    (D) indicates whether the object is a dependent component of the
    parent; the other flag (X) indicates whether the object is an
    exclusive component of the parent."

    We additionally record the parent attribute through which the
    reference was made, which makes scrubbing the parent's value on
    deletion O(1) instead of a scan (§2.4 lists simplified "deletion
    and migration" as the reason reverse references are kept in the
    component at all).

    {!gref} is the {e reverse composite generic reference} of §5.3: it
    lives in a generic instance, names the parent (the parent's generic
    instance when the parent is versionable) and carries the ref-count
    of composite references contributed by the parent's version
    instances. *)

type t = {
  parent : Oid.t;
  attr : string;
  exclusive : bool;  (** the X flag *)
  dependent : bool;  (** the D flag *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type gref = {
  g_parent : Oid.t;
  g_attr : string;
  g_exclusive : bool;
  g_dependent : bool;
  mutable count : int;  (** the ref-count of §5.3 *)
}

val pp_gref : Format.formatter -> gref -> unit

(** Classification of a reverse-reference list into the paper's four
    sets (Definition 1, §2.2). *)
type refsets = {
  ix : t list;  (** independent exclusive *)
  dx : t list;  (** dependent exclusive *)
  is_ : t list;  (** independent shared *)
  ds : t list;  (** dependent shared *)
}

val classify : t list -> refsets
