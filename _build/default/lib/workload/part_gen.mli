(** Seeded generator of part hierarchies (the CAD-style workloads the
    paper's introduction motivates).

    A {e physical} hierarchy uses exclusive composite references; a
    {e logical} one uses shared references and reuses existing nodes
    with probability [share_prob] (bounded so Topology Rule 3 is never
    violated: only nodes already reached through shared references are
    candidates for sharing). *)

open Orion_core

type config = {
  depth : int;  (** levels below each root *)
  fanout : int;  (** children per node (±1 jitter) *)
  exclusive : bool;  (** physical (exclusive) vs logical (shared) *)
  dependent : bool;
  share_prob : float;  (** logical hierarchies only *)
  seed : int;
}

val default : config
(** depth 3, fanout 3, exclusive, dependent, share 0.2, seed 42. *)

type forest = {
  db : Database.t;
  roots : Oid.t list;
  node_class : string;
  total : int;  (** objects created *)
}

val generate : ?db:Database.t -> roots:int -> config -> forest
(** With [?db], the node class must not already exist unless it was
    created by a previous [generate] on the same database with the
    same reference nature. *)
