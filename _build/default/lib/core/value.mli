(** Attribute values.

    A value is a primitive, a reference (the UID of another object), or
    a set of values (the paper's [set-of] domains).  Whether a
    reference is weak or composite is a property of the *attribute*
    (see {!Orion_schema.Attribute}), not of the value. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Ref of Oid.t
  | VSet of t list  (** order-insensitive; deduplicated on write *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val refs : t -> Oid.t list
(** All references contained in the value (a [Ref] yields one; a [VSet]
    yields its member references), in order, deduplicated. *)

val contains_ref : t -> Oid.t -> bool

val add_ref : t -> Oid.t -> t
(** On [Null] or [VSet]: set insertion (idempotent).  On anything else:
    [Invalid_argument]. *)

val remove_ref : t -> Oid.t -> t
(** Remove a reference: [Ref o] becomes [Null]; a [VSet] loses the
    member.  Values without the reference are returned unchanged. *)

val normalize : t -> t
(** Deduplicate set members (sets are sets); applied by every write
    path so stored values never hold a reference twice. *)
