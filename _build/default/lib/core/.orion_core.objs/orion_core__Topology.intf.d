lib/core/topology.mli: Core_error Rref
