(** Lock-free reads at a fixed commit clock.

    A view over a {!Version_store} and its live database: every lookup
    resolves against the version chain at the view's begin clock,
    falling through to the database for objects never written since the
    store was created (safe — anything dirty or newer has a chain).
    Traversals reuse {!Orion_core.Traversal.reachability_via} and
    {!Orion_core.Traversal.ancestors_via} with edges computed from the
    versioned images, so [components-of]/[ancestors-of] see one
    commit-clock-consistent state even while writers commit.

    Schema is read live: DDL is non-transactional (checkpointed at
    quiescence) and not versioned here. *)

open Orion_core

type t

val make : store:Version_store.t -> db:Database.t -> id:int -> clock:int -> t
(** Built by the transaction manager's [begin_snapshot] after
    registering [id] with {!Version_store.open_snap}. *)

val id : t -> int
val clock : t -> int

val find : t -> Oid.t -> Instance.t option
(** The instance as of the view's clock.  Do not mutate the result —
    it may be the store's shared after-image. *)

val exists : t -> Oid.t -> bool

val attr : t -> Oid.t -> string -> Value.t option
(** @raise Orion_core.Core_error.Error [Unknown_object] when the object
    did not exist at the view's clock. *)

val components_of : t -> Oid.t -> Oid.t list
(** As {!Orion_core.Traversal.components_of} (BFS order, dynamic
    binding resolved against the view), at the view's clock.
    @raise Orion_core.Core_error.Error [Unknown_object] on a missing
    root. *)

val ancestors_of : t -> Oid.t -> Oid.t list
(** As {!Orion_core.Traversal.ancestors_of}, at the view's clock.
    @raise Orion_core.Core_error.Error [Unknown_object] on a missing
    root. *)
