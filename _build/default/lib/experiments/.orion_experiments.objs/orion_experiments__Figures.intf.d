lib/experiments/figures.mli: Report
