(** The ORION surface syntax, executable.

    The evaluator implements the message syntax the paper uses
    verbatim — [(make-class 'Vehicle :superclasses nil :attributes …)],
    [(make Vehicle :parent ((v1 Tires)) :Color "red")],
    [(components-of v1 (AutoTires) true nil 2)], the §3.2 predicates —
    plus commands for the version, authorization and schema-evolution
    subsystems, so every worked example in the paper can be typed at
    the REPL exactly as printed.

    Evaluate [(help)] for the command list. *)

open Orion_core

type env

val create_env : ?db:Database.t -> unit -> env

val database : env -> Database.t
val evolution : env -> Orion_evolution.Evolution.t
val authz : env -> Orion_authz.Authz_manager.t
val query : env -> Orion_query.Engine.t
val notifier : env -> Orion_notify.Notifier.t

type v =
  | Obj of Oid.t
  | Objs of Oid.t list
  | Bool of bool
  | Num of int
  | Str of string
  | Unit

val pp_v : env -> Format.formatter -> v -> unit
(** Objects print as [#n:Class]; bound names are shown when known. *)

exception Eval_error of string

val eval : env -> Orion_util.Sexp.t -> v
val eval_string : env -> string -> v
val eval_program : env -> string -> v list
(** All forms in the string, in order. *)

val bind : env -> string -> Oid.t -> unit
val lookup : env -> string -> Oid.t option

(** {1 Pluggable mutations} *)

type mutator = {
  m_create :
    cls:string ->
    parents:(Oid.t * string) list ->
    attrs:(string * Value.t) list ->
    Oid.t;
  m_write_attr : Oid.t -> string -> Value.t -> unit;
  m_make_component : parent:Oid.t -> attr:string -> child:Oid.t -> unit;
  m_remove_component : parent:Oid.t -> attr:string -> child:Oid.t -> unit;
  m_delete : Oid.t -> unit;
}
(** The five object mutations the evaluator performs ([make],
    [set-attr], [add-component], [remove-component], [delete]). *)

val set_mutator : env -> mutator option -> unit
(** Route the evaluator's object mutations through [m] instead of
    straight at the database.  The network server installs a
    transaction-routed mutator while a session holds an open
    transaction, so evaluated forms get undo-on-abort and WAL
    after-images like the typed wire requests; [None] (the default)
    restores direct mutation.  Schema, evolution, version and
    authorization commands are unaffected — they are non-transactional
    everywhere, durable at the next checkpoint. *)

val mutator : env -> mutator option
(** The currently installed mutator — capture it before a scoped
    {!set_mutator} so restoring it preserves an ambient one (a replica
    server's writes-refusing mutator, say) instead of clobbering it
    back to [None]. *)
