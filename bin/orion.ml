(* The orion CLI: REPL, experiment runner, demo and script runner. *)

open Cmdliner
module Eval = Orion_dsl.Eval
module Repl = Orion_dsl.Repl
module Figures = Orion_experiments.Figures
module Perf = Orion_experiments.Perf
module Report = Orion_experiments.Report

module Wal = Orion_wal.Wal
module Recovery = Orion_wal.Recovery
module Schema_analysis = Orion_analysis.Schema_analysis
module Store_check = Orion_analysis.Store_check
module Server = Orion_server.Server
module Tx_service = Orion_server.Tx_service
module Tailer = Orion_replication.Tailer
module Replica = Orion_replication.Replica
module Client = Orion_client
module Message = Orion_protocol.Message
module Schema = Orion_schema.Schema

let db_file =
  Arg.(
    value & opt (some string) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:
          "Persistent database file: loaded if it exists, saved on normal exit.")

let wal_flag =
  Arg.(
    value & flag
    & info [ "wal" ]
        ~doc:
          "Write-ahead-log the session to FILE.wal next to the $(b,--db) file: \
           every checkpoint snapshots the database file and truncates the log, \
           and a crashed session can be repaired with $(b,orion recover).")

let wal_path_of db_path = db_path ^ ".wal"

(* Like {!open_env} but also hands back the attached log, which the
   server threads through to {!Orion_tx.Tx_manager} for commit
   logging. *)
let open_env_log ?(wal = false) db_file =
  let env =
    match db_file with
    | Some path when Sys.file_exists path ->
        let store = Orion_storage.Store.load_file path in
        let db = Orion_core.Persist.load store in
        Eval.create_env ~db ()
    | Some _ | None -> Eval.create_env ()
  in
  let log =
    match (wal, db_file) with
    | true, Some path ->
        let wal_path = wal_path_of path in
        if Sys.file_exists wal_path then begin
          (* A clean shutdown removes the log, so a leftover one is the
             evidence of a crash — refuse to clobber it. *)
          Format.eprintf
            "error: %s exists (crashed session?): run `orion recover %s` to \
             keep its committed transactions, or delete it to discard them@."
            wal_path path;
          exit 1
        end;
        let log = Wal.create () in
        Wal.attach ~snapshot_path:path log (Eval.database env);
        Wal.set_backing log (Some wal_path);
        Wal.sync log;
        (* Initial checkpoint: recovery needs a snapshot file or a
           sealed checkpoint bracket in the log, and a brand-new
           database otherwise has neither until the first clean
           shutdown — a crash before then would be unrecoverable. *)
        Orion_core.Persist.save (Eval.database env);
        Some log
    | true, None ->
        Format.eprintf "warning: --wal without --db has no effect@.";
        None
    | false, _ -> None
  in
  (env, log)

let open_env ?wal db_file = fst (open_env_log ?wal db_file)

let close_env ?(wal = false) env db_file =
  match db_file with
  | None -> ()
  | Some path ->
      let db = Eval.database env in
      (* With a log attached this is a full checkpoint: snapshot the
         store to [path] and truncate the log; without one, plain
         save. *)
      Orion_core.Persist.save db;
      Orion_storage.Store.save_file (Orion_core.Database.store db) path;
      let wal_path = wal_path_of path in
      if wal && Sys.file_exists wal_path then Sys.remove wal_path;
      Format.eprintf "database saved to %s@." path

let repl_cmd =
  let run db_file wal =
    let env = open_env ~wal db_file in
    Repl.run ~env stdin stdout;
    close_env ~wal env db_file
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive session in the paper's Lisp syntax")
    Term.(const run $ db_file $ wal_flag)

let experiments_cmd =
  let only =
    Arg.(
      value & opt (some string) None
      & info [ "only" ] ~docv:"ID" ~doc:"Run only the experiment with this id (e.g. F7)")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and titles")
  in
  let run list_only only =
    let reports = Figures.all () @ Perf.all () in
    if list_only then begin
      List.iter (fun r -> Printf.printf "%-4s %s\n" r.Report.id r.Report.title) reports;
      exit 0
    end;
    let selected =
      match only with
      | None -> reports
      | Some id ->
          List.filter
            (fun r -> String.lowercase_ascii r.Report.id = String.lowercase_ascii id)
            reports
    in
    if selected = [] then begin
      prerr_endline "no such experiment";
      exit 2
    end;
    List.iter (fun r -> print_string (Report.to_string r)) selected;
    if not (List.for_all Report.ok selected) then exit 1
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce the paper's figures, tables and counted experiments")
    Term.(const run $ list_only $ only)

let demo_script =
  {|
;; The paper's Example 2, live.
(make-class 'Paragraph :attributes ((Text :domain String)))
(make-class 'Image :attributes ((File :domain String)))
(make-class 'Section :attributes (
  (Content :domain (set-of Paragraph) :composite true :exclusive nil :dependent true)))
(make-class 'Document :attributes (
  (Title :domain String)
  (Sections :domain (set-of Section) :composite true :exclusive nil :dependent true)
  (Figures  :domain (set-of Image)   :composite true :exclusive nil :dependent nil)
  (Annotations :domain (set-of Paragraph) :composite true :exclusive true :dependent true)))
(setq book1 (make Document :Title "Composite Objects Revisited"))
(setq book2 (make Document :Title "Object-Oriented Databases"))
(setq chapter (make Section :parent ((book1 Sections) (book2 Sections))))
(setq para (make Paragraph :parent ((chapter Content)) :Text "An identical chapter may be part of two books."))
(components-of book1)
(parents-of chapter)
(shared-component-of chapter book1)
(delete book1)
(describe chapter)
(delete book2)
(count-objects)
(integrity-check)
|}

let demo_cmd =
  let run () =
    let env = Eval.create_env () in
    List.iter
      (fun form ->
        Format.printf "@[<h>orion> %s@]@." (Orion_util.Sexp.to_string form);
        Format.printf "%a@." (Eval.pp_v env) (Eval.eval env form))
      (Orion_util.Sexp.parse_many demo_script)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the Example-2 walkthrough and print each step")
    Term.(const run $ const ())

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file")
  in
  let run db_file wal file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let env = open_env ~wal db_file in
    (try
       List.iter
         (fun (_, result) -> Format.printf "%a@." (Eval.pp_v env) result)
         (Repl.run_script env src)
     with
    | Eval.Eval_error msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
    | Orion_core.Core_error.Error e ->
        Format.eprintf "error: %a@." Orion_core.Core_error.pp e;
        exit 1);
    (match Orion_core.Integrity.check (Eval.database env) with
    | [] -> ()
    | violations ->
        Format.eprintf "integrity violations:@.%a@."
          (Format.pp_print_list Orion_core.Integrity.pp_violation)
          violations;
        exit 1);
    close_env ~wal env db_file
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Evaluate an ORION program file and verify database integrity")
    Term.(const run $ db_file $ wal_flag $ file)

let dump_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Program file")
  in
  let run file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let env = Eval.create_env () in
    ignore (Repl.run_script env src : (Orion_util.Sexp.t * Eval.v) list);
    print_string (Orion_dsl.Dump.dump (Eval.database env))
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Evaluate an ORION program and print the resulting database as a \
          re-loadable program")
    Term.(const run $ file)

let recover_cmd =
  let db_pos =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DB"
          ~doc:
            "Database file to repair.  Used as the recovery snapshot when it \
             exists; otherwise the store is rebuilt from the log alone.")
  in
  let wal_file =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:"Write-ahead log to replay (default: $(i,DB).wal).")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Report what recovery would restore without writing anything.")
  in
  let run db_path wal_file dry_run =
    let wal_path = Option.value wal_file ~default:(wal_path_of db_path) in
    if not (Sys.file_exists wal_path) then begin
      Format.eprintf "error: no log at %s@." wal_path;
      exit 2
    end;
    let wal = Wal.load_file wal_path in
    let snapshot =
      if Sys.file_exists db_path then
        Some (Orion_storage.Store.load_file db_path)
      else None
    in
    let db, stats =
      try Recovery.replay ?snapshot wal
      with Failure msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
    in
    Format.printf "%a@." Recovery.pp_stats stats;
    Format.printf "recovered %d objects from %s%s@."
      (Orion_core.Database.count db)
      wal_path
      (match snapshot with
      | Some _ -> Printf.sprintf " over snapshot %s" db_path
      | None -> " (log-only rebuild)");
    (match Orion_core.Integrity.check db with
    | [] -> Format.printf "integrity: consistent@."
    | violations ->
        Format.printf "integrity violations:@.%a@."
          (Format.pp_print_list Orion_core.Integrity.pp_violation)
          violations;
        exit 1);
    if not dry_run then begin
      (* Make the recovered state durable, then retire the log: its
         transactions now live in the checkpointed database file. *)
      Orion_core.Persist.save db;
      Orion_storage.Store.save_file (Orion_core.Database.store db) db_path;
      Sys.remove wal_path;
      Format.printf "database saved to %s; log retired@." db_path
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Replay a write-ahead log after a crash, restoring the database to \
          its last committed state")
    Term.(const run $ db_pos $ wal_file $ dry_run)

(* Heuristic shared by stats/analyze/check: .odb files are stores;
   anything else is a program evaluated into a fresh environment. *)
let load_env_from file =
  if Filename.check_suffix file ".odb" then open_env (Some file)
  else begin
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let env = Eval.create_env () in
    ignore (Repl.run_script env src : (Orion_util.Sexp.t * Eval.v) list);
    env
  end

let connect_client ~client_name addr_string =
  let addr =
    try Orion_protocol.Addr.parse addr_string
    with Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      exit 2
  in
  try Client.connect ~client_name addr with
  | Client.Error (code, msg) ->
      Format.eprintf "error [%s]: %s@." (Message.err_code_to_string code) msg;
      exit 1
  | Unix.Unix_error (e, _, _) ->
      Format.eprintf "error: cannot connect to %s: %s@." addr_string
        (Unix.error_message e);
      exit 1

let stats_cmd =
  let file =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Database file or ORION program")
  in
  let connect =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Fetch a live metrics snapshot from a running server at $(docv) \
             ($(i,host:port), $(i,:port), a bare port, or a socket path) \
             instead of summarizing a file.")
  in
  let watch =
    Arg.(
      value & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--connect): keep sampling every $(docv) seconds and \
             print per-second rates of the changed counters and histograms \
             (Ctrl-C to stop).  Sampling is entirely client-side — the \
             server just answers plain Stats requests.")
  in
  let run_connect addr_string watch =
    let client = connect_client ~client_name:"orion-stats" addr_string in
    match watch with
    | None ->
        let snapshot = Client.stats client in
        Client.close client;
        Format.printf "%a@." Orion_obs.Metrics.pp_snapshot snapshot
    | Some interval ->
        let interval = Float.max 0.05 interval in
        let finally () = try Client.close client with _ -> () in
        Fun.protect ~finally (fun () ->
            try
              let before = ref (Client.stats client) in
              let before_at = ref (Unix.gettimeofday ()) in
              while true do
                Unix.sleepf interval;
                let after = Client.stats client in
                let now = Unix.gettimeofday () in
                let r =
                  Orion_obs.Metrics.rates ~before:!before ~after
                    ~dt:(now -. !before_at)
                in
                Format.printf "-- %.1fs@.%a@." r.Orion_obs.Metrics.dt
                  Orion_obs.Metrics.pp_rates r;
                before := after;
                before_at := now
              done
            with
            | Client.Error (code, msg) ->
                Format.eprintf "error [%s]: %s@."
                  (Message.err_code_to_string code)
                  msg;
                exit 1
            | Client.Disconnected msg ->
                Format.eprintf "disconnected: %s@." msg;
                exit 1
            (* Reader went away (e.g. piped into head): stop sampling. *)
            | Sys_error _ -> ());
        (* The sampling loop only falls through when stdout died, and
           its channel buffer can never drain — skip the at-exit
           flushes (which would re-raise) and leave directly. *)
        Unix._exit 0
  in
  let run_file file =
    let env = load_env_from file in
    let db = Eval.database env in
    let schema = Orion_core.Database.schema db in
    let table =
      Orion_util.Table.create
        ~headers:[ "class"; "instances"; "composite attrs"; "segment" ]
    in
    List.iter
      (fun (c : Orion_schema.Class_def.t) ->
        let instances =
          Orion_core.Database.instances_of db ~subclasses:false c.name
        in
        let composite_attrs =
          List.filter Orion_schema.Attribute.is_composite
            (Orion_schema.Schema.effective_attributes schema c.name)
        in
        Orion_util.Table.add_row table
          [
            c.name;
            string_of_int (List.length instances);
            string_of_int (List.length composite_attrs);
            string_of_int c.segment;
          ])
      (Orion_schema.Schema.classes schema);
    print_string (Orion_util.Table.render table);
    let rref_total =
      Orion_core.Database.fold db ~init:0 ~f:(fun acc inst ->
          acc + List.length (Orion_core.Database.rrefs db inst.Orion_core.Instance.oid))
    in
    Printf.printf "objects: %d, composite references: %d, dangling weak refs: %d\n"
      (Orion_core.Database.count db)
      rref_total
      (List.length (Orion_core.Integrity.dangling_weak_refs db));
    match Orion_core.Integrity.check db with
    | [] -> print_endline "integrity: consistent"
    | violations ->
        Format.printf "integrity violations:@.%a@."
          (Format.pp_print_list Orion_core.Integrity.pp_violation)
          violations;
        exit 1
  in
  let run connect file watch =
    match (connect, file) with
    | Some addr, None -> run_connect addr watch
    | None, Some file ->
        if watch <> None then begin
          Format.eprintf "error: --watch needs --connect@.";
          exit 2
        end;
        run_file file
    | Some _, Some _ ->
        Format.eprintf "error: --connect and FILE are exclusive@.";
        exit 2
    | None, None ->
        Format.eprintf "error: need a FILE or --connect ADDR@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a database file (.odb), the result of a program, or — \
          with $(b,--connect) — the live metrics of a running server, \
          optionally sampled as rates with $(b,--watch)")
    Term.(const run $ connect $ file $ watch)

let analyze_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Database file (.odb) or ORION program")
  in
  let connect =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Fetch a live metrics snapshot from a running server and join \
             observed per-class lock contention ($(i,lock.blocks{class=C})) \
             into the fan-in hazard ranking.")
  in
  let sexp =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Print findings as s-expressions (machine readable).")
  in
  let cascades =
    Arg.(
      value & opt int 6
      & info [ "cascades" ] ~docv:"N"
          ~doc:
            "Flag classes whose dependent delete-cascade closure spans at \
             least $(docv) classes.")
  in
  let fanin =
    Arg.(
      value & opt int 3
      & info [ "fanin" ] ~docv:"N"
          ~doc:
            "Flag classes referenced by composite attributes of at least \
             $(docv) distinct classes.")
  in
  let run file connect sexp cascades fanin =
    let env = load_env_from file in
    let schema = Orion_core.Database.schema (Eval.database env) in
    let snapshot =
      Option.map
        (fun addr ->
          let client = connect_client ~client_name:"orion-analyze" addr in
          let s = Client.stats client in
          Client.close client;
          s)
        connect
    in
    let findings =
      Schema_analysis.analyze ?snapshot ~cascade_threshold:cascades
        ~fanin_threshold:fanin schema
    in
    List.iter
      (fun f ->
        if sexp then print_endline (Schema_analysis.finding_to_sexp f)
        else Format.printf "%a@." Schema_analysis.pp_finding f)
      findings;
    (* Exit contract shared with fsck and lockdep-check: 2 on any
       error, 1 on warnings only, 0 clean.  Info findings (snapshot
       cross-checks) inform but do not fail. *)
    exit (Orion_analysis.Lockdep.exit_code findings)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static hazard analysis of a schema: composite cycles, \
          delete-cascade blast radius, clustering ambiguity, lock-granule \
          fan-in, dead and shadowed composite attributes.  Silent (exit 0) \
          on a clean schema; exits 2 on error findings, 1 on warnings.")
    Term.(const run $ file $ connect $ sexp $ cascades $ fanin)

let fsck_cmd =
  let db_pos =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"DB" ~doc:"Database file to verify (never modified).")
  in
  let wal_file =
    Arg.(
      value & opt (some file) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead log to verify alongside the store (default: \
             $(i,DB).wal when it exists).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail on warnings too (leaked records, an open trailing \
             checkpoint bracket), not just on corruption.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Before checking, truncate a torn WAL tail down to its longest \
             intact frame prefix (the damaged original is saved to \
             $(i,WAL).bak first).  The store file is still never modified; \
             an intact log is left byte-identical.")
  in
  let pages =
    Arg.(
      value & flag
      & info [ "pages" ]
          ~doc:
            "Also print the adler32 of every page image, computed from the \
             bytes on disk.  Two stores whose page digests agree hold \
             byte-identical page arrays — this is how the replication smoke \
             test compares a replica's checkpointed mirror against its \
             primary, ignoring the unreplicated allocator trailer.")
  in
  let run db_path wal_file strict repair pages =
    let wal =
      match wal_file with
      | Some _ -> wal_file
      | None ->
          let candidate = wal_path_of db_path in
          if Sys.file_exists candidate then Some candidate else None
    in
    (if repair then
       match wal with
       | None -> Format.printf "repair: no write-ahead log to repair@."
       | Some wal_path -> (
           match Store_check.repair_wal_tail wal_path with
           | Error msg ->
               Format.eprintf "error: repair failed: %s@." msg;
               exit 1
           | Ok (Store_check.Wal_intact { frames; bytes }) ->
               Format.printf "repair: %s intact (%d frames, %d bytes) — \
                              nothing to do@."
                 wal_path frames bytes
           | Ok
               (Store_check.Wal_repaired
                 { backup; valid_frames; valid_bytes; dropped_bytes }) ->
               Format.printf
                 "repair: dropped %d torn byte(s) from %s, keeping %d intact \
                  frames (%d bytes); original saved to %s@."
                 dropped_bytes wal_path valid_frames valid_bytes backup));
    (if pages then
       match Store_check.page_digests db_path with
       | Error msg ->
           Format.eprintf "error: %s@." msg;
           exit 1
       | Ok digests ->
           Array.iteri
             (fun i sum -> Format.printf "page %d adler32 %08x@." i sum)
             digests);
    let report = Store_check.check_file ?wal db_path in
    Format.printf "%a@." Store_check.pp_report report;
    (* Same 0/1/2 contract as analyze: 2 on corruption (error issues),
       1 on warnings (leaked records, open bracket) — promoted to 2
       under --strict, which also keeps its historical meaning for
       [failed]-style consumers. *)
    let errors, warnings =
      List.fold_left
        (fun (e, w) issue ->
          match Store_check.severity issue with
          | `Error -> (e + 1, w)
          | `Warning -> (e, w + 1))
        (0, 0) report.Store_check.issues
    in
    if errors > 0 || (strict && warnings > 0) then exit 2
    else if warnings > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Offline integrity check of a database file (and its write-ahead \
          log): page checksums, directory-vs-allocation agreement, WAL frame \
          chain and checkpoint brackets, and per-object reverse-reference \
          flags against the schema.  Read-only (the store always, the log \
          unless $(b,--repair)); exits 2 on corruption, 1 on warnings \
          (2 under $(b,--strict)), 0 clean.")
    Term.(const run $ db_pos $ wal_file $ strict $ repair $ pages)

let check_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Database file (.odb) or ORION program")
  in
  let scrub =
    Arg.(
      value & flag
      & info [ "scrub" ]
          ~doc:
            "Also report how many dangling weak references an offline scrub \
             would remove (a dry run — the file is not modified; the paper \
             treats such residue as legal, D3).")
  in
  let run file scrub =
    let env = load_env_from file in
    let db = Eval.database env in
    if scrub then
      Printf.printf "scrub would remove %d dangling weak reference(s)\n"
        (List.length (Orion_core.Integrity.dangling_weak_refs db));
    match Orion_core.Integrity.check db with
    | [] -> print_endline "integrity: consistent"
    | violations ->
        Format.printf "integrity violations:@.%a@."
          (Format.pp_print_list Orion_core.Integrity.pp_violation)
          violations;
        exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the live integrity checker over a database file or the result \
          of a program; $(b,--scrub) reports the dangling-weak-reference \
          residue an offline scavenger would collect.")
    Term.(const run $ file $ scrub)

(* --ddl-gate: vet every schema mutation with the static hazard analyzer
   (the `orion analyze` suite) at DDL time, while the schema holds the
   proposed state.  [strict] rolls the mutation back when the analyzer
   reports an error-severity finding; [warn] only narrates. *)
let ddl_gate_of_mode = function
  | `Off -> None
  | (`Warn | `Strict) as mode ->
      Some
        (fun schema ->
          let findings = Schema_analysis.analyze schema in
          let errors = Schema_analysis.errors findings in
          List.iter
            (fun f ->
              if mode = `Warn || f.Schema_analysis.severity <> Schema_analysis.Error
              then Format.eprintf "ddl-gate: %a@." Schema_analysis.pp_finding f)
            findings;
          if mode = `Strict && errors <> [] then
            raise
              (Schema.Error
                 (Schema.Ddl_rejected
                    (String.concat "; "
                       (List.map
                          (fun f ->
                            f.Schema_analysis.code ^ " on "
                            ^ f.Schema_analysis.cls ^ ": "
                            ^ f.Schema_analysis.detail)
                          errors)))))

let serve_cmd =
  let db_pos =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"DB"
          ~doc:
            "Database file served: loaded if it exists, saved (checkpointed) \
             on graceful shutdown.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on TCP 127.0.0.1:$(docv) (0 picks a free port).")
  in
  let max_sessions =
    Arg.(
      value & opt int Server.default_config.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Admission bound: refuse connections beyond $(docv) sessions.")
  in
  let lock_timeout =
    Arg.(
      value & opt float 30.
      & info [ "lock-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Abort a transaction parked on a lock longer than this \
             (0 disables the timeout).")
  in
  let metrics_interval =
    Arg.(
      value & opt float 0.
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:
            "Print a one-line metrics digest to stderr every $(docv) seconds \
             (0, the default, disables it).")
  in
  let slow_op_ms =
    Arg.(
      value & opt float 0.
      & info [ "slow-op-ms" ] ~docv:"MS"
          ~doc:
            "Log requests slower than $(docv) milliseconds to stderr, with a \
             per-phase breakdown (0, the default, disables it).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the reactor across $(docv) domains (OS threads with \
             parallel socket I/O and frame decoding); 1, the default, is \
             the classic single-threaded reactor.")
  in
  let lock_partitions =
    Arg.(
      value & opt int 0
      & info [ "lock-partitions" ] ~docv:"N"
          ~doc:
            "Partition the lock table into $(docv) slices keyed by composite \
             root (class granules by storage segment, instance granules by \
             oid hash), each behind its own mutex with its own \
             $(i,txsvc.partition{p=K}.*) instruments; deadlock search runs \
             incrementally per partition, merging only for cross-partition \
             waits.  0, the default, matches $(b,--domains); 1 is the \
             pre-partitioning single table.")
  in
  let group_commit_window =
    Arg.(
      value & opt int 0
      & info [ "group-commit-window" ] ~docv:"US"
          ~doc:
            "Group-commit batching window in microseconds: commits arriving \
             within the window coalesce into one log append and one fsync \
             (0, the default, syncs every commit inline).  Requires \
             $(b,--wal).")
  in
  let repl_flag =
    Arg.(
      value & flag
      & info [ "repl" ]
          ~doc:
            "Act as a replication primary: retain the write-ahead log across \
             checkpoints (byte offsets stay valid as stream LSNs) and serve \
             $(b,repl-subscribe) streams to replicas.  Requires $(b,--db) and \
             implies $(b,--wal); the log file survives a graceful shutdown so \
             replicas can resume, and a crashed primary is replayed from it \
             on the next $(b,--repl) start.")
  in
  let replica_of =
    Arg.(
      value & opt (some string) None
      & info [ "replica-of" ] ~docv:"ADDR"
          ~doc:
            "Serve as a read-only replica of the primary at $(docv) \
             ($(i,host:port), $(i,:port), a bare port, or a socket path): \
             mirror its write-ahead log into $(i,DB).wal, apply it \
             continuously, answer reads, refuse writes with $(b,read-only) — \
             and stand by for $(b,orion promote).")
  in
  let ddl_gate =
    Arg.(
      value
      & opt (enum [ ("off", `Off); ("warn", `Warn); ("strict", `Strict) ]) `Off
      & info [ "ddl-gate" ] ~docv:"MODE"
          ~doc:
            "Vet every schema mutation with the static hazard analyzer (the \
             $(b,orion analyze) suite) at DDL time.  $(b,warn) prints the \
             findings to stderr; $(b,strict) additionally rolls the mutation \
             back and rejects it when an error-severity hazard (a composite \
             cycle) appears; $(b,off), the default, does nothing.  On a \
             replica the gate takes effect at promotion.")
  in
  let lockdep =
    Arg.(
      value & flag
      & info [ "lockdep" ]
          ~doc:
            "Enable the runtime lock-discipline checker: every internal \
             engine mutex acquisition feeds a per-thread held-set and a \
             may-precede graph over lock classes (see DESIGN.md \xc2\xa717), and \
             an ordering violation is reported with a two-site witness the \
             first time it is observed — the run does not have to deadlock.  \
             Findings go to stderr at exit and force a non-zero exit code; \
             live counts appear as $(i,lockdep.classes), $(i,lockdep.edges) \
             and $(i,lockdep.violations).  Equivalent to $(b,ORION_LOCKDEP=1).")
  in
  let lockdep_trace =
    Arg.(
      value & opt (some string) None
      & info [ "lockdep-trace" ] ~docv:"FILE"
          ~doc:
            "With the checker enabled, also append a replayable lock-event \
             trace to $(docv) — $(b,orion lockdep-check) $(docv) re-runs the \
             detectors offline.  Implies $(b,--lockdep).")
  in
  let run db_file wal socket port max_sessions lock_timeout metrics_interval
      slow_op_ms domains lock_partitions group_commit_window repl replica_of
      ddl_gate lockdep lockdep_trace =
    if lockdep || Option.is_some lockdep_trace then
      Orion_analysis.Lockdep.install ?trace:lockdep_trace ();
    let addr =
      match (socket, port) with
      | Some path, None -> Server.Unix_path path
      | None, Some port -> Server.Tcp ("127.0.0.1", port)
      | None, None -> Server.Tcp ("127.0.0.1", 6746)
      | Some _, Some _ ->
          Format.eprintf "error: --socket and --port are exclusive@.";
          exit 2
    in
    let config =
      {
        Server.default_config with
        max_sessions;
        lock_timeout = (if lock_timeout <= 0. then None else Some lock_timeout);
        metrics_interval =
          (if metrics_interval <= 0. then None else Some metrics_interval);
        domains = (if domains < 1 then 1 else domains);
        lock_partitions = (if lock_partitions < 0 then 0 else lock_partitions);
        group_commit_window =
          (if group_commit_window <= 0 then None
           else Some (float_of_int group_commit_window /. 1_000_000.));
      }
    in
    if slow_op_ms > 0. then
      Orion_obs.Metrics.Span.set_slow_threshold (Some (slow_op_ms /. 1000.));
    let install_signals server =
      let stop _ = Server.stop server in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
    in
    let print_stats server =
      let st = Server.stats server in
      Format.printf
        "served %d sessions (%d refused), %d requests, %d lock waits, %d \
         deadlock victims, %d lock timeouts@."
        st.accepted st.rejected st.requests st.parks_total st.deadlock_victims
        st.lock_timeouts
    in
    match replica_of with
    | Some primary_string ->
        if repl then begin
          Format.eprintf "error: --repl and --replica-of are exclusive@.";
          exit 2
        end;
        if wal then begin
          Format.eprintf
            "error: --replica-of manages its own log (drop --wal)@.";
          exit 2
        end;
        if group_commit_window > 0 then begin
          Format.eprintf
            "error: --group-commit-window is a primary-side option@.";
          exit 2
        end;
        let primary =
          try Orion_protocol.Addr.parse primary_string
          with Invalid_argument msg ->
            Format.eprintf "error: %s@." msg;
            exit 2
        in
        let db_path =
          match db_file with
          | Some p -> p
          | None ->
              Format.eprintf
                "error: --replica-of requires --db (the mirrored store and \
                 log live there)@.";
              exit 2
        in
        let wal_path = wal_path_of db_path in
        let log =
          if Sys.file_exists wal_path then Wal.load_file wal_path
          else Wal.create ()
        in
        Wal.set_backing log (Some wal_path);
        let replica = Replica.create ~primary ~wal:log ~db_path () in
        Format.printf "replica: syncing from %s...@." primary_string;
        let db =
          try Replica.bootstrap replica
          with Replica.Fatal msg ->
            Format.eprintf "error: %s@." msg;
            exit 1
        in
        Format.printf "replica: caught up through checkpoint %d (lsn %d)@."
          (Replica.checkpoints replica)
          (Replica.applied_lsn replica);
        let env = Eval.create_env ~db () in
        (* Belt and braces under the wire-level Read_only guard: evaluated
           forms and schema commands that slip past it are refused here. *)
        let read_only () =
          raise
            (Eval.Eval_error
               "read-only replica: write on the primary, or promote this node")
        in
        Eval.set_mutator env
          (Some
             {
               Eval.m_create = (fun ~cls:_ ~parents:_ ~attrs:_ -> read_only ());
               m_write_attr = (fun _ _ _ -> read_only ());
               m_make_component =
                 (fun ~parent:_ ~attr:_ ~child:_ -> read_only ());
               m_remove_component =
                 (fun ~parent:_ ~attr:_ ~child:_ -> read_only ());
               m_delete = (fun _ -> read_only ());
             });
        Schema.set_ddl_gate
          (Orion_core.Database.schema db)
          (Some
             (fun _ ->
               raise
                 (Schema.Error
                    (Schema.Ddl_rejected
                       "read-only replica: run DDL on the primary, or promote \
                        this node"))));
        let server =
          Server.create ~config
            ~repl:
              (Tx_service.Replica_of
                 { replica; promote_gate = ddl_gate_of_mode ddl_gate })
            env addr
        in
        Replica.set_locked replica (fun f ->
            Tx_service.with_lock (Server.service server) f);
        (* Snapshot reads on this replica resolve against the service's
           version store; the applier feeds it at each sealed commit's
           clock. *)
        Replica.set_mvcc replica
          (Orion_tx.Tx_manager.version_store
             (Server.service server).Tx_service.manager);
        Replica.start replica;
        install_signals server;
        Format.printf "orion replica of %s listening on %a@." primary_string
          Server.pp_addr (Server.address server);
        Server.run server;
        (match Server.role server with
        | `Primary ->
            (* Promoted while serving: shut down like a primary — full
               checkpoint of the serving database, log retained for the
               replicas that will now subscribe here. *)
            Replica.stop replica;
            close_env ~wal:false env (Some db_path)
        | `Replica | `Standalone ->
            Replica.stop replica;
            (match Replica.failed replica with
            | Some msg -> Format.eprintf "replica: stream had failed: %s@." msg
            | None -> ());
            Replica.save replica;
            Format.printf "replica state saved to %s@." db_path);
        print_stats server
    | None ->
        let env, log =
          if repl then begin
            match db_file with
            | None ->
                Format.eprintf "error: --repl requires --db@.";
                exit 2
            | Some path ->
                let wal_path = wal_path_of path in
                let env =
                  if Sys.file_exists wal_path then begin
                    (* A primary's log survives clean shutdowns (replicas
                       resume from its LSNs), so a leftover one is normal —
                       and replaying it over the snapshot also folds in any
                       commits a crash stranded past the last checkpoint. *)
                    let log = Wal.load_file wal_path in
                    let snapshot =
                      if Sys.file_exists path then
                        Some (Orion_storage.Store.load_file path)
                      else None
                    in
                    match Recovery.replay ?snapshot log with
                    | db, stats ->
                        Format.eprintf "repl: resumed log %s (%a)@." wal_path
                          Recovery.pp_stats stats;
                        Eval.create_env ~db ()
                    | exception Failure msg ->
                        Format.eprintf
                          "error: %s@.run `orion fsck --repair %s` to \
                           truncate a torn tail@."
                          msg path;
                        exit 1
                  end
                  else if Sys.file_exists path then
                    let store = Orion_storage.Store.load_file path in
                    Eval.create_env ~db:(Orion_core.Persist.load store) ()
                  else Eval.create_env ()
                in
                let log =
                  if Sys.file_exists wal_path then Wal.load_file wal_path
                  else Wal.create ()
                in
                Wal.attach ~snapshot_path:path ~truncate_on_checkpoint:false
                  log (Eval.database env);
                Wal.set_backing log (Some wal_path);
                Wal.sync log;
                (* Checkpoint at every start: recovery and late-joining
                   replicas both want a recent sealed bracket. *)
                Orion_core.Persist.save (Eval.database env);
                (env, Some log)
          end
          else open_env_log ~wal db_file
        in
        if group_commit_window > 0 && Option.is_none log then begin
          Format.eprintf "error: --group-commit-window requires --wal@.";
          exit 2
        end;
        Schema.set_ddl_gate
          (Orion_core.Database.schema (Eval.database env))
          (ddl_gate_of_mode ddl_gate);
        let repl_role =
          match (repl, log) with
          | true, Some log -> Some (Tx_service.Primary (Tailer.create log))
          | _ -> None
        in
        let server = Server.create ~config ?wal:log ?repl:repl_role env addr in
        install_signals server;
        Format.printf "orion %s listening on %a@."
          (if repl then "primary" else "server")
          Server.pp_addr (Server.address server);
        Server.run server;
        (* Graceful exit: checkpoint, and retire the log — unless this is
           a replication primary, whose log must keep its LSNs for the
           replicas.  A SIGKILL never reaches this line — that is what
           `orion recover` (or a --repl restart) is for. *)
        close_env ~wal:(wal && not repl) env db_file;
        print_stats server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database to many clients over TCP or a Unix-domain socket, \
          optionally as a replication primary ($(b,--repl)) or read-only \
          replica ($(b,--replica-of))")
    Term.(
      const run $ db_pos $ wal_flag $ socket $ port $ max_sessions
      $ lock_timeout $ metrics_interval $ slow_op_ms $ domains
      $ lock_partitions $ group_commit_window $ repl_flag $ replica_of
      $ ddl_gate $ lockdep $ lockdep_trace)

let promote_cmd =
  let addr =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Replica address: $(i,host:port), $(i,:port), a bare port, or a \
             socket path.")
  in
  let run addr_string =
    let client = connect_client ~client_name:"orion-promote" addr_string in
    (match Client.promote client with
    | () -> Format.printf "promoted: %s now accepts writes@." addr_string
    | exception Client.Error (code, msg) ->
        Format.eprintf "error [%s]: %s@."
          (Message.err_code_to_string code)
          msg;
        (try Client.close client with _ -> ());
        exit 1
    | exception Client.Disconnected msg ->
        Format.eprintf "disconnected: %s@." msg;
        exit 1);
    Client.close client
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a running read-only replica to a writable primary \
          (failover): its applier seals, the mirrored log attaches for \
          commit logging, and the node starts streaming to replicas of its \
          own.  The old primary must not take further writes.")
    Term.(const run $ addr)

let shell_cmd =
  let connect =
    Arg.(
      required & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Server address: $(i,host:port), $(i,:port), a bare port, or a \
             socket path.")
  in
  let snapshot_flag =
    Arg.(
      value & flag
      & info [ "snapshot" ]
          ~doc:
            "Open a lock-free read-only snapshot on connect.  Reads \
             ($(b,components-of), $(b,ancestors-of), $(b,attr)) answer as of \
             the snapshot's begin clock — concurrent writers are invisible \
             and no locks are taken.  Works against a read-only replica too \
             (snapshot at its applied clock).")
  in
  let run addr_string snapshot =
    let addr =
      try Orion_protocol.Addr.parse addr_string
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    in
    let client =
      try Client.connect ~client_name:"orion-shell" addr with
      | Client.Error (code, msg) ->
          Format.eprintf "error [%s]: %s@." (Message.err_code_to_string code) msg;
          exit 1
      | Unix.Unix_error (e, _, _) ->
          Format.eprintf "error: cannot connect to %s: %s@." addr_string
            (Unix.error_message e);
          exit 1
    in
    Format.printf "connected to %s (session %d); (quit) to leave@." addr_string
      (Client.session_id client);
    if snapshot then
      Format.printf "snapshot open at clock %d@." (Client.begin_snapshot client);
    let fmt = Format.std_formatter in
    let print_notices () =
      List.iter
        (fun push ->
          match push with
          | Message.Deadlock_victim { msg; _ } -> Format.fprintf fmt "! %s@." msg
          | Message.Goodbye { msg } -> Format.fprintf fmt "! server: %s@." msg
          (* Replication stream pushes never reach a plain session. *)
          | Message.Repl_frames _ | Message.Repl_heartbeat _ -> ())
        (Client.notices client)
    in
    (* Words of a one-level form: "(attr 12 name)" -> ["attr";"12";"name"].
       These route through the typed requests (not Eval) so they stay
       snapshot-scoped when the session has a snapshot open. *)
    let form_words trimmed =
      let n = String.length trimmed in
      if n >= 2 && trimmed.[0] = '(' && trimmed.[n - 1] = ')' then
        String.split_on_char ' ' (String.sub trimmed 1 (n - 2))
        |> List.filter (fun w -> w <> "")
      else []
    in
    (* One line regardless of length — scripts grep this. *)
    let print_oids oids =
      Format.fprintf fmt "(%s)@."
        (String.concat " " (List.map Orion_core.Oid.to_string oids))
    in
    let rec session () =
      Format.fprintf fmt "orion> %!";
      match read_form "" with
      | None -> Format.fprintf fmt "@."
      | Some "" -> session ()
      | Some src -> (
          match String.trim src with
          | "(quit)" | "(exit)" -> Format.fprintf fmt "bye@."
          | trimmed -> (
              (match
                 match trimmed with
                 | "(begin)" ->
                     Format.fprintf fmt "transaction %d@." (Client.begin_tx client)
                 | "(commit)" ->
                     Client.commit client;
                     Format.fprintf fmt "committed@."
                 | "(abort)" ->
                     Client.abort client;
                     Format.fprintf fmt "aborted@."
                 | "(ping)" ->
                     Client.ping client;
                     Format.fprintf fmt "pong@."
                 | "(snapshot)" ->
                     Format.fprintf fmt "snapshot open at clock %d@."
                       (Client.begin_snapshot client)
                 | "(end-snapshot)" ->
                     Client.end_snapshot client;
                     Format.fprintf fmt "snapshot closed@."
                 | _ -> (
                     match form_words trimmed with
                     | [ "components-of"; oid ] ->
                         print_oids
                           (Client.components_of client
                              (Orion_core.Oid.of_int (int_of_string oid)))
                     | [ "ancestors-of"; oid ] ->
                         print_oids
                           (Client.ancestors_of client
                              (Orion_core.Oid.of_int (int_of_string oid)))
                     | [ "attr"; oid; name ] ->
                         Format.fprintf fmt "%a@." Orion_core.Value.pp
                           (Client.read_attr client
                              (Orion_core.Oid.of_int (int_of_string oid))
                              name)
                     | _ ->
                         Format.fprintf fmt "%a@." Message.pp_v
                           (Client.eval client src))
               with
              | () -> print_notices ()
              | exception Client.Error (code, msg) ->
                  print_notices ();
                  Format.fprintf fmt "error [%s]: %s@."
                    (Message.err_code_to_string code)
                    msg
              | exception Failure msg ->
                  (* e.g. a non-numeric oid in a typed read form *)
                  Format.fprintf fmt "error: %s@." msg);
              session ()))
    and read_form acc =
      match input_line stdin with
      | exception End_of_file -> if String.trim acc = "" then None else Some acc
      | line ->
          let acc = if acc = "" then line else acc ^ "\n" ^ line in
          if Repl.balanced acc then Some acc
          else begin
            Format.fprintf fmt "  ...> %!";
            read_form acc
          end
    in
    (try session ()
     with Client.Disconnected msg -> Format.fprintf fmt "disconnected: %s@." msg);
    Client.close client
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:
         "Interactive session against a running server, plus (begin), \
          (commit), (abort) for transactions and (snapshot), \
          (end-snapshot), (components-of N), (ancestors-of N), (attr N a) \
          for lock-free snapshot reads")
    Term.(const run $ connect $ snapshot_flag)

let lockdep_check_cmd =
  let trace =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Lock-event trace recorded by $(b,orion serve --lockdep-trace) \
             $(docv) (or $(b,ORION_LOCKDEP_TRACE)).")
  in
  let hierarchy =
    Arg.(
      value & flag
      & info [ "hierarchy" ]
          ~doc:
            "Print the declared lock hierarchy as a markdown table (the \
             exact text DESIGN.md \xc2\xa717 embeds) and exit.")
  in
  let sexp =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Print findings as s-expressions (machine readable).")
  in
  let run trace hierarchy sexp =
    if hierarchy then
      print_string (Orion_util.Omutex.hierarchy_markdown ())
    else
      match trace with
      | None ->
          Format.eprintf "error: a TRACE file is required (or --hierarchy)@.";
          exit 2
      | Some path ->
          let findings =
            try Orion_analysis.Lockdep.check_trace path
            with Failure msg ->
              Format.eprintf "error: %s@." msg;
              exit 2
          in
          List.iter
            (fun f ->
              if sexp then print_endline (Schema_analysis.finding_to_sexp f)
              else Format.printf "%a@." Schema_analysis.pp_finding f)
            findings;
          exit (Orion_analysis.Lockdep.exit_code findings)
  in
  Cmd.v
    (Cmd.info "lockdep-check"
       ~doc:
         "Replay a recorded lock-event trace through the lock-discipline \
          checker offline: rank inversions, lock-order inversions with \
          two-site witnesses, recursive locks, merged-search protocol \
          breaches, no-block classes held across blocking operations.  \
          Same exit contract as $(b,orion analyze): 2 on errors, 1 on \
          warnings, 0 clean.")
    Term.(const run $ trace $ hierarchy $ sexp)

let () =
  (* ORION_LOCKDEP=1 / ORION_LOCKDEP_TRACE work for every subcommand,
     not just serve's --lockdep flag. *)
  Orion_analysis.Lockdep.install_from_env ();
  let doc = "Composite objects a la ORION (Kim, Bertino & Garza, SIGMOD 1989)" in
  let info = Cmd.info "orion" ~version:"1.9.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            repl_cmd;
            experiments_cmd;
            demo_cmd;
            run_cmd;
            dump_cmd;
            stats_cmd;
            analyze_cmd;
            fsck_cmd;
            check_cmd;
            recover_cmd;
            serve_cmd;
            promote_cmd;
            shell_cmd;
            lockdep_check_cmd;
          ]))
