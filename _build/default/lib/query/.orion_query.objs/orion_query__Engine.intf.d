lib/query/engine.mli: Database Expr Format Index Oid Orion_core
