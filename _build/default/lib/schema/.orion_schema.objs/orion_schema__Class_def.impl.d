lib/schema/class_def.ml: Attribute Format List String
