lib/core/traversal.ml: Database Instance List Oid Option Orion_schema Queue Rref Value
