open Orion_core
module Lock_table = Orion_locking.Lock_table

type step =
  | Lock_composite of Oid.t * Orion_locking.Protocol.access
  | Lock_instance of Oid.t * Orion_locking.Protocol.access
  | Mutate of (Database.t -> unit)

type script = step list

type result = {
  committed : int;
  aborted : int;
  rounds : int;
  blocks : int;
  deadlocks : int;
}

type runner = {
  script : script;
  mutable cursor : step list;
  mutable tx : Tx_manager.tx option;
  mutable done_ : bool;
}

let run ?(max_rounds = 100_000) manager scripts =
  let runners =
    List.map (fun script -> { script; cursor = script; tx = None; done_ = false }) scripts
  in
  let committed = ref 0 and aborted = ref 0 and deadlocks = ref 0 in
  let rounds = ref 0 in
  Lock_table.reset_stats (Tx_manager.lock_table manager);
  let tx_of runner =
    match runner.tx with
    | Some tx -> tx
    | None ->
        let tx = Tx_manager.begin_tx manager in
        runner.tx <- Some tx;
        tx
  in
  let step runner =
    let tx = tx_of runner in
    match Tx_manager.state tx with
    | Tx_manager.Blocked -> (
        (* Retry the pending lock step. *)
        match runner.cursor with
        | (Lock_composite (root, access)) :: rest -> (
            match Tx_manager.lock_composite manager tx ~root access with
            | `Granted -> runner.cursor <- rest
            | `Blocked -> ())
        | (Lock_instance (oid, access)) :: rest -> (
            match Tx_manager.lock_instance manager tx oid access with
            | `Granted -> runner.cursor <- rest
            | `Blocked -> ())
        | (Mutate _) :: _ | [] -> ())
    (* The scheduler drives direct commits only; [Committing] never
       appears here (no group-commit submission in scripted runs). *)
    | Tx_manager.Committing | Tx_manager.Committed | Tx_manager.Aborted -> ()
    | Tx_manager.Active -> (
        match runner.cursor with
        | [] ->
            ignore (Tx_manager.commit manager tx : int list);
            incr committed;
            runner.done_ <- true
        | (Lock_composite (root, access)) :: rest -> (
            match Tx_manager.lock_composite manager tx ~root access with
            | `Granted -> runner.cursor <- rest
            | `Blocked -> ())
        | (Lock_instance (oid, access)) :: rest -> (
            match Tx_manager.lock_instance manager tx oid access with
            | `Granted -> runner.cursor <- rest
            | `Blocked -> ())
        | (Mutate f) :: rest ->
            f (Tx_manager.database manager);
            runner.cursor <- rest)
  in
  let resolve_deadlocks () =
    match Tx_manager.find_deadlock manager with
    | None -> ()
    | Some cycle ->
        incr deadlocks;
        (* Abort the youngest transaction in the cycle; its script
           restarts from scratch. *)
        let victim_id = List.fold_left max min_int cycle in
        List.iter
          (fun runner ->
            match runner.tx with
            | Some tx when Tx_manager.tx_id tx = victim_id ->
                ignore (Tx_manager.abort manager tx : int list);
                incr aborted;
                runner.tx <- None;
                runner.cursor <- runner.script
            | Some _ | None -> ())
          runners
  in
  let all_done () = List.for_all (fun r -> r.done_) runners in
  while (not (all_done ())) && !rounds < max_rounds do
    incr rounds;
    List.iter (fun r -> if not r.done_ then step r) runners;
    resolve_deadlocks ()
  done;
  if not (all_done ()) then failwith "Scheduler.run: no progress";
  let stats = Lock_table.stats (Tx_manager.lock_table manager) in
  {
    committed = !committed;
    aborted = !aborted;
    rounds = !rounds;
    blocks = stats.Lock_table.blocks;
    deadlocks = !deadlocks;
  }
