(** Attribute domains.

    "The values of an attribute of a class C' are instances of a class
    C; the class C is the domain of the attribute" (§2.1).  Primitive
    classes (integer, string, …) have no attributes; any other domain
    names a user-defined class, resolved by name against the schema so
    classes may reference classes defined later (bottom-up or mutually
    recursive schemas). *)

type primitive = P_integer | P_float | P_string | P_boolean

type t =
  | Primitive of primitive
  | Class of string  (** by class name; resolved against {!Schema.t} *)
  | Any  (** unconstrained, for untyped attributes *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val class_name : t -> string option
(** [Some c] when the domain is the user-defined class [c]. *)
