lib/schema/class_def.mli: Attribute Format
