type error =
  | Unknown_class of string
  | Duplicate_class of string
  | Unknown_attribute of { cls : string; attr : string }
  | Duplicate_attribute of { cls : string; attr : string }
  | Lattice_cycle of string list
  | Invalid_attribute of { cls : string; attr : string; reason : string }
  | Not_a_superclass of { cls : string; super : string }
  | Ddl_rejected of string

exception Error of error

let pp_error ppf = function
  | Unknown_class c -> Format.fprintf ppf "unknown class %s" c
  | Duplicate_class c -> Format.fprintf ppf "class %s already defined" c
  | Unknown_attribute { cls; attr } ->
      Format.fprintf ppf "class %s has no attribute %s" cls attr
  | Duplicate_attribute { cls; attr } ->
      Format.fprintf ppf "class %s: duplicate attribute %s" cls attr
  | Lattice_cycle path ->
      Format.fprintf ppf "class lattice cycle: %s" (String.concat " -> " path)
  | Invalid_attribute { cls; attr; reason } ->
      Format.fprintf ppf "class %s, attribute %s: %s" cls attr reason
  | Not_a_superclass { cls; super } ->
      Format.fprintf ppf "%s is not a superclass of %s" super cls
  | Ddl_rejected reason -> Format.fprintf ppf "DDL rejected: %s" reason

let error e = raise (Error e)

type t = {
  by_name : (string, Class_def.t) Hashtbl.t;
  segments : (string, int) Hashtbl.t;  (* segment name -> id *)
  mutable next_segment : int;
  mutable version : int;
  (* Per-class derivation memos, valid while [memo_version = version];
     every mutator bumps [version], so the next lookup resets them. *)
  mutable memo_version : int;
  memo_effective : (string, Attribute.t list) Hashtbl.t;
  memo_composite : (string, Attribute.t list) Hashtbl.t;
  memo_supers : (string, string list) Hashtbl.t;
  mutable ddl_gate : ddl_gate option;
      (* ran after every mutator, over the post-mutation schema; when
         it raises, the mutation is rolled back before the exception
         propagates *)
}

and ddl_gate = t -> unit

let create () =
  {
    by_name = Hashtbl.create 32;
    segments = Hashtbl.create 32;
    next_segment = 0;
    version = 0;
    memo_version = 0;
    memo_effective = Hashtbl.create 32;
    memo_composite = Hashtbl.create 32;
    memo_supers = Hashtbl.create 32;
    ddl_gate = None;
  }

let set_ddl_gate t gate = t.ddl_gate <- gate

let bump t = t.version <- t.version + 1

let version t = t.version

let memo_table t table =
  if t.memo_version <> t.version then begin
    Hashtbl.reset t.memo_effective;
    Hashtbl.reset t.memo_composite;
    Hashtbl.reset t.memo_supers;
    t.memo_version <- t.version
  end;
  table t

let memoize t table key compute =
  let table = memo_table t table in
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = compute () in
      Hashtbl.replace table key v;
      v

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some c -> c | None -> error (Unknown_class name)

let mem t name = Hashtbl.mem t.by_name name

let classes t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.by_name []
  |> List.sort (fun (a : Class_def.t) b -> String.compare a.name b.name)

let segment_for t name =
  match Hashtbl.find_opt t.segments name with
  | Some id -> id
  | None ->
      let id = t.next_segment in
      t.next_segment <- id + 1;
      Hashtbl.replace t.segments name id;
      id

let segment_of_class t name = (find_exn t name).segment

let segment_count t = t.next_segment

let validate_attribute cls (a : Attribute.t) =
  match (a.refkind, a.domain) with
  | Attribute.Composite _, (Domain.Primitive _ | Domain.Any) ->
      error
        (Invalid_attribute
           {
             cls;
             attr = a.name;
             reason = "a composite attribute requires a class domain";
           })
  | (Attribute.Composite _ | Attribute.Weak), _ -> ()

let check_duplicate_attrs cls attrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a : Attribute.t) ->
      if Hashtbl.mem seen a.name then
        error (Duplicate_attribute { cls; attr = a.name });
      Hashtbl.replace seen a.name ())
    attrs

(* DDL-gate plumbing: snapshot the raw mutable state before a gated
   mutation so a gate veto rolls the mutation back exactly (class
   records are copied — their [superclasses]/[own_attributes] fields
   are mutable and mutated in place by the evolution operators). *)
let raw_snapshot t =
  ( Hashtbl.fold
      (fun name (c : Class_def.t) acc ->
        (name, { c with Class_def.superclasses = c.superclasses }) :: acc)
      t.by_name [],
    Hashtbl.fold (fun name id acc -> (name, id) :: acc) t.segments [],
    t.next_segment,
    t.version )

let raw_restore t (classes, segments, next_segment, version) =
  Hashtbl.reset t.by_name;
  List.iter (fun (name, c) -> Hashtbl.replace t.by_name name c) classes;
  Hashtbl.reset t.segments;
  List.iter (fun (name, id) -> Hashtbl.replace t.segments name id) segments;
  t.next_segment <- next_segment;
  (* The version too: a vetoed mutation must be invisible, and version
     watchers (the server checkpoints on schema change) must not fire. *)
  t.version <- version

let gated t mutate =
  match t.ddl_gate with
  | None -> mutate ()
  | Some gate ->
      let saved = raw_snapshot t in
      let result = mutate () in
      (match gate t with
      | () -> result
      | exception e ->
          raw_restore t saved;
          raise e)

let define t ?(superclasses = []) ?(versionable = false) ?segment ~name
    ~attributes () =
  gated t @@ fun () ->
  if mem t name then error (Duplicate_class name);
  List.iter (fun super -> ignore (find_exn t super : Class_def.t)) superclasses;
  check_duplicate_attrs name attributes;
  List.iter (validate_attribute name) attributes;
  let segment_name = Option.value segment ~default:name in
  let cls : Class_def.t =
    {
      name;
      superclasses;
      own_attributes = attributes;
      versionable;
      segment = segment_for t segment_name;
    }
  in
  Hashtbl.replace t.by_name name cls;
  bump t;
  cls

(* Lattice -------------------------------------------------------------- *)

let superclasses t name = (find_exn t name).superclasses

let all_superclasses t name =
  memoize t
    (fun t -> t.memo_supers)
    name
    (fun () ->
      let seen = Hashtbl.create 8 in
      let acc = ref [] in
      let rec go cls =
        List.iter
          (fun super ->
            if not (Hashtbl.mem seen super) then begin
              Hashtbl.replace seen super ();
              acc := super :: !acc;
              go super
            end)
          (superclasses t cls)
      in
      go name;
      List.rev !acc)

let subclasses t name =
  ignore (find_exn t name : Class_def.t);
  classes t
  |> List.filter_map (fun (c : Class_def.t) ->
         if List.exists (String.equal name) c.superclasses then Some c.name
         else None)

let all_subclasses t name =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go cls =
    List.iter
      (fun sub ->
        if not (Hashtbl.mem seen sub) then begin
          Hashtbl.replace seen sub ();
          acc := sub :: !acc;
          go sub
        end)
      (subclasses t cls)
  in
  go name;
  List.rev !acc

let is_subclass_of t ~sub ~super =
  String.equal sub super || List.exists (String.equal super) (all_superclasses t sub)

(* Attributes ------------------------------------------------------------ *)

let effective_attributes t name =
  memoize t
    (fun t -> t.memo_effective)
    name
    (fun () ->
      let cls = find_exn t name in
      let seen = Hashtbl.create 8 in
      let acc = ref [] in
      let add (a : Attribute.t) =
        if not (Hashtbl.mem seen a.name) then begin
          Hashtbl.replace seen a.name ();
          acc := a :: !acc
        end
      in
      List.iter add cls.own_attributes;
      (* Superclass order resolves conflicts: first superclass wins. *)
      let rec inherit_from super_name =
        let super = find_exn t super_name in
        List.iter
          (fun (a : Attribute.t) ->
            add { a with source = Some (Option.value a.source ~default:super_name) })
          super.own_attributes;
        List.iter inherit_from super.superclasses
      in
      List.iter inherit_from cls.superclasses;
      List.rev !acc)

let composite_attributes t name =
  memoize t
    (fun t -> t.memo_composite)
    name
    (fun () -> List.filter Attribute.is_composite (effective_attributes t name))

let attribute t cls attr =
  List.find_opt
    (fun (a : Attribute.t) -> String.equal a.name attr)
    (effective_attributes t cls)

let attribute_exn t cls attr =
  match attribute t cls attr with
  | Some a -> a
  | None -> error (Unknown_attribute { cls; attr })

let referencing_attributes t cls =
  ignore (find_exn t cls : Class_def.t);
  classes t
  |> List.concat_map (fun (c : Class_def.t) ->
         effective_attributes t c.name
         |> List.filter_map (fun (a : Attribute.t) ->
                match a.source with
                | Some _ -> None (* count each attribute once, at its definer *)
                | None ->
                    if Domain.equal a.domain (Domain.Class cls) then Some (c, a)
                    else None))

(* Predicates ------------------------------------------------------------ *)

let predicate t cls ?attr ~test () =
  match attr with
  | Some attr -> test (attribute_exn t cls attr)
  | None -> List.exists test (effective_attributes t cls)

let compositep t cls ?attr () = predicate t cls ?attr ~test:Attribute.is_composite ()

let exclusive_compositep t cls ?attr () =
  predicate t cls ?attr ~test:Attribute.is_exclusive ()

let shared_compositep t cls ?attr () = predicate t cls ?attr ~test:Attribute.is_shared ()

let dependent_compositep t cls ?attr () =
  predicate t cls ?attr ~test:Attribute.is_dependent ()

(* Composite class hierarchy ---------------------------------------------- *)

type component_class = { component : string; via : [ `Exclusive | `Shared ] }

let composite_class_hierarchy t root =
  ignore (find_exn t root : Class_def.t);
  let seen = Hashtbl.create 16 in (* (class, via) pairs *)
  let acc = ref [] in
  let rec visit cls_name =
    List.iter
      (fun (a : Attribute.t) ->
        match (a.refkind, Domain.class_name a.domain) with
        | Attribute.Composite { exclusive; _ }, Some domain_cls
          when mem t domain_cls ->
            let via = if exclusive then `Exclusive else `Shared in
            let targets = domain_cls :: all_subclasses t domain_cls in
            List.iter
              (fun target ->
                if not (Hashtbl.mem seen (target, via)) then begin
                  Hashtbl.replace seen (target, via) ();
                  acc := { component = target; via } :: !acc;
                  visit target
                end)
              targets
        | (Attribute.Composite _ | Attribute.Weak), _ -> ())
      (effective_attributes t cls_name)
  in
  visit root;
  List.rev !acc

(* Export / import --------------------------------------------------------- *)

type exported = {
  x_classes : (string * string list * bool * int * Attribute.t list) list;
  x_segments : (string * int) list;
  x_next_segment : int;
}

let export t =
  (* Topological order: superclasses before subclasses, so import can
     replay through [define]-like validation. *)
  let emitted = Hashtbl.create 16 in
  let ordered = ref [] in
  let rec visit (c : Class_def.t) =
    if not (Hashtbl.mem emitted c.name) then begin
      Hashtbl.replace emitted c.name ();
      List.iter (fun super -> visit (find_exn t super)) c.superclasses;
      ordered := c :: !ordered
    end
  in
  List.iter visit (classes t);
  {
    x_classes =
      List.rev_map
        (fun (c : Class_def.t) ->
          (c.name, c.superclasses, c.versionable, c.segment, c.own_attributes))
        !ordered;
    x_segments = Hashtbl.fold (fun name id acc -> (name, id) :: acc) t.segments [];
    x_next_segment = t.next_segment;
  }

let import_into t exported =
  List.iter (fun (name, id) -> Hashtbl.replace t.segments name id) exported.x_segments;
  t.next_segment <- max t.next_segment exported.x_next_segment;
  List.iter
    (fun (name, superclasses, versionable, segment, own_attributes) ->
      if mem t name then error (Duplicate_class name);
      List.iter (fun super -> ignore (find_exn t super : Class_def.t)) superclasses;
      check_duplicate_attrs name own_attributes;
      List.iter (validate_attribute name) own_attributes;
      Hashtbl.replace t.by_name name
        { Class_def.name; superclasses; own_attributes; versionable; segment };
      bump t)
    exported.x_classes

(* Wholesale in-place replacement: the live-schema variant of
   {!import_into} for consumers that cannot swap the [t] out from under
   themselves — a replica refreshing its serving schema after the
   primary checkpoints a DDL change.  Replayed state was validated when
   first defined, so it deliberately bypasses the DDL gate. *)
let reimport t exported =
  Hashtbl.reset t.by_name;
  Hashtbl.reset t.segments;
  t.next_segment <- 0;
  import_into t exported;
  (* At least one bump even for an empty export: memos must refresh. *)
  bump t

(* Mutators --------------------------------------------------------------- *)

let add_attribute t ~cls attr =
  gated t @@ fun () ->
  let c = find_exn t cls in
  if Class_def.own_attribute c attr.Attribute.name <> None then
    error (Duplicate_attribute { cls; attr = attr.Attribute.name });
  validate_attribute cls attr;
  c.own_attributes <- c.own_attributes @ [ attr ];
  bump t

let drop_attribute t ~cls ~attr =
  gated t @@ fun () ->
  let c = find_exn t cls in
  match Class_def.own_attribute c attr with
  | None -> error (Unknown_attribute { cls; attr })
  | Some a ->
      c.own_attributes <-
        List.filter (fun (x : Attribute.t) -> not (String.equal x.name attr)) c.own_attributes;
      bump t;
      a

let replace_attribute t ~cls (attr : Attribute.t) =
  gated t @@ fun () ->
  let c = find_exn t cls in
  if Class_def.own_attribute c attr.name = None then
    error (Unknown_attribute { cls; attr = attr.name });
  validate_attribute cls attr;
  c.own_attributes <-
    List.map
      (fun (x : Attribute.t) -> if String.equal x.name attr.name then attr else x)
      c.own_attributes;
  bump t

let add_superclass t ~cls ~super =
  gated t @@ fun () ->
  let c = find_exn t cls in
  ignore (find_exn t super : Class_def.t);
  if is_subclass_of t ~sub:super ~super:cls then
    error (Lattice_cycle [ cls; super; cls ]);
  if not (List.exists (String.equal super) c.superclasses) then begin
    c.superclasses <- c.superclasses @ [ super ];
    bump t
  end

let drop_superclass t ~cls ~super =
  gated t @@ fun () ->
  let c = find_exn t cls in
  if not (List.exists (String.equal super) c.superclasses) then
    error (Not_a_superclass { cls; super });
  c.superclasses <- List.filter (fun s -> not (String.equal s super)) c.superclasses;
  bump t

let drop_class t name =
  gated t @@ fun () ->
  let c = find_exn t name in
  let subs = subclasses t name in
  (* §4.1(4): subclasses of C become immediate subclasses of C's
     superclasses. *)
  List.iter
    (fun sub_name ->
      let sub = find_exn t sub_name in
      let without = List.filter (fun s -> not (String.equal s name)) sub.superclasses in
      let inheriting =
        List.filter
          (fun super -> not (List.exists (String.equal super) without))
          c.superclasses
      in
      sub.superclasses <- without @ inheriting)
    subs;
  Hashtbl.remove t.by_name name;
  bump t;
  c
