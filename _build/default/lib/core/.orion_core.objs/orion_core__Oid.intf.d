lib/core/oid.mli: Format Hashtbl Map Set
