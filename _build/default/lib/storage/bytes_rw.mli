(** Binary encoding primitives used by the object serializer.

    Integers use zig-zag varint encoding; strings are length-prefixed;
    floats are stored as their 64-bit IEEE image. *)

module Writer : sig
  type t

  val create : unit -> t
  val contents : t -> bytes
  val u8 : t -> int -> unit

  val int : t -> int -> unit
  (** Zig-zag varint over the full [int] range. *)

  val float : t -> float -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
end

module Reader : sig
  type t

  exception Corrupt of string

  val of_bytes : bytes -> t
  val at_end : t -> bool
  val u8 : t -> int
  val int : t -> int
  val float : t -> float
  val string : t -> string
  val bool : t -> bool
end
