lib/schema/attribute.mli: Domain Format
