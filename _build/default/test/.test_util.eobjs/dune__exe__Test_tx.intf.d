test/test_tx.mli:
