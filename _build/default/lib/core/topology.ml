let card = List.length

let rule1 (s : Rref.refsets) = card s.ix <= 1 && card s.dx <= 1

let rule2 (s : Rref.refsets) =
  (card s.ix = 0 || card s.dx = 0) && (card s.dx = 0 || card s.ix = 0)

let rule3 (s : Rref.refsets) =
  let exclusive = card s.ix + card s.dx in
  let shared = card s.is_ + card s.ds in
  (exclusive = 0 || shared = 0) && (shared = 0 || exclusive = 0)

let holds s = rule1 s && rule2 s && rule3 s

let can_make_component (s : Rref.refsets) ~exclusive =
  let any_composite = card s.ix + card s.dx + card s.is_ + card s.ds > 0 in
  let any_exclusive = card s.ix + card s.dx > 0 in
  if exclusive then
    if any_composite then Error Core_error.Child_has_composite_parent else Ok ()
  else if any_exclusive then Error Core_error.Child_has_exclusive_parent
  else Ok ()
