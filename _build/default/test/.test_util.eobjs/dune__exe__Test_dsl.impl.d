test/test_dsl.ml: Alcotest Core_error Database Filename List Oid Option Orion_core Orion_dsl Orion_schema Orion_versions String Sys
