module A = Orion_schema.Attribute
module Schema = Orion_schema.Schema
open Orion_core

type t = {
  store : Version_store.t;
  db : Database.t;
  id : int;
  clock : int;
}

let make ~store ~db ~id ~clock = { store; db; id; clock }
let id t = t.id
let clock t = t.clock

let find t oid =
  match Version_store.read t.store ~clock:t.clock oid with
  | `Image img -> Some img.Version_store.inst
  | `Absent -> None
  | `Fallthrough -> Database.find t.db oid

let rrefs t oid =
  match Version_store.read t.store ~clock:t.clock oid with
  | `Image img -> img.Version_store.rrefs
  | `Absent -> []
  | `Fallthrough -> Database.rrefs t.db oid

let exists t oid = Option.is_some (find t oid)

let get t oid =
  match find t oid with
  | Some inst -> inst
  | None -> Core_error.raise_error (Core_error.Unknown_object oid)

let attr t oid name = Instance.attr (get t oid) name

(* Dynamic binding against the view — the mirror of
   Traversal.default_version/resolve with every lookup versioned. *)
let default_version t goid =
  match find t goid with
  | None -> None
  | Some inst -> (
      match Instance.generic_info inst with
      | None -> None
      | Some gi -> (
          match gi.user_default with
          | Some v when exists t v -> Some v
          | Some _ | None ->
              let latest =
                List.fold_left
                  (fun best v ->
                    match find t v with
                    | None -> best
                    | Some vinst -> (
                        match (Instance.version_info vinst, best) with
                        | Some vi, Some (_, best_at) when vi.created_at <= best_at
                          ->
                            best
                        | Some vi, _ -> Some (v, vi.created_at)
                        | None, _ -> best))
                  None gi.versions
              in
              Option.map fst latest))

let resolve t oid =
  match find t oid with
  | Some inst when Instance.is_generic inst -> (
      match default_version t oid with Some v -> v | None -> oid)
  | Some _ | None -> oid

let edges t oid =
  match find t oid with
  | None -> []
  | Some inst ->
      if Instance.is_generic inst then []
      else
        Schema.composite_attributes (Database.schema t.db) inst.Instance.cls
        |> List.concat_map (fun (a : A.t) ->
               match a.refkind with
               | A.Weak -> []
               | A.Composite { exclusive; _ } -> (
                   match Instance.attr inst a.name with
                   | None -> []
                   | Some v ->
                       List.map
                         (fun target -> (exclusive, resolve t target))
                         (Value.refs v)))

let parent_edges t oid =
  match find t oid with
  | None -> []
  | Some inst -> (
      match Instance.generic_info inst with
      | Some gi ->
          List.map
            (fun (g : Rref.gref) -> (g.g_parent, g.g_exclusive))
            gi.grefs
      | None ->
          List.map
            (fun (r : Rref.t) -> (r.parent, r.exclusive))
            (rrefs t oid))

let components_of t root =
  ignore (get t root : Instance.t);
  let _info, order = Traversal.reachability_via ~edges:(edges t) root in
  order

let ancestors_of t root =
  ignore (get t root : Instance.t);
  Traversal.ancestors_via ~parent_edges:(parent_edges t) ~filter:`All root
