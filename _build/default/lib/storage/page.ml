(* Layout:
     bytes 0..1   nslots (u16)
     bytes 2..3   free_off (u16), first unused byte above the records
     records      [len:u16][payload], each reserving [cap] bytes in total
     directory    4 bytes per slot at the page tail, slot 0 last:
                  [off:u16][capword:u16], dead flag = high bit of capword.
   Capacities are remembered across delete so dead slots can be reused by a
   later insert of a record that fits. *)

type t = bytes

let header_size = 4
let entry_size = 4
let dead_bit = 0x8000

let wrap image = image

let init image =
  Bytes.fill image 0 (Bytes.length image) '\000';
  Bytes.set_uint16_le image 0 0;
  Bytes.set_uint16_le image 2 header_size;
  image

let image t = t

let slot_count t = Bytes.get_uint16_le t 0

let free_off t = Bytes.get_uint16_le t 2

let set_slot_count t n = Bytes.set_uint16_le t 0 n

let set_free_off t off = Bytes.set_uint16_le t 2 off

let entry_pos t slot = Bytes.length t - (entry_size * (slot + 1))

let entry t slot =
  let pos = entry_pos t slot in
  let off = Bytes.get_uint16_le t pos in
  let capword = Bytes.get_uint16_le t (pos + 2) in
  (off, capword land lnot dead_bit, capword land dead_bit <> 0)

let set_entry t slot ~off ~cap ~dead =
  let pos = entry_pos t slot in
  Bytes.set_uint16_le t pos off;
  Bytes.set_uint16_le t (pos + 2) (if dead then cap lor dead_bit else cap)

let live_slots t =
  let n = slot_count t in
  let rec go slot acc =
    if slot < 0 then acc
    else
      let _, _, dead = entry t slot in
      go (slot - 1) (if dead then acc else slot :: acc)
  in
  go (n - 1) []

let dir_start t = Bytes.length t - (entry_size * slot_count t)

let free_space t = max 0 (dir_start t - free_off t - entry_size - 2)

let write_record t ~off record =
  Bytes.set_uint16_le t off (Bytes.length record);
  Bytes.blit record 0 t (off + 2) (Bytes.length record)

let find_dead_fit t need =
  let n = slot_count t in
  let rec go slot =
    if slot >= n then None
    else
      let _, cap, dead = entry t slot in
      if dead && cap >= need then Some slot else go (slot + 1)
  in
  go 0

let insert t record =
  let need = 2 + Bytes.length record in
  match find_dead_fit t need with
  | Some slot ->
      let off, cap, _ = entry t slot in
      write_record t ~off record;
      set_entry t slot ~off ~cap ~dead:false;
      Some slot
  | None ->
      let n = slot_count t in
      let off = free_off t in
      if off + need > dir_start t - entry_size then None
      else begin
        write_record t ~off record;
        set_entry t n ~off ~cap:need ~dead:false;
        set_slot_count t (n + 1);
        set_free_off t (off + need);
        Some n
      end

let read_slot t slot =
  if slot < 0 || slot >= slot_count t then None
  else
    let off, _, dead = entry t slot in
    if dead then None
    else
      let len = Bytes.get_uint16_le t off in
      Some (Bytes.sub t (off + 2) len)

let delete_slot t slot =
  if slot >= 0 && slot < slot_count t then
    let off, cap, dead = entry t slot in
    if not dead then set_entry t slot ~off ~cap ~dead:true

let update_slot t slot record =
  if slot < 0 || slot >= slot_count t then false
  else
    let off, cap, dead = entry t slot in
    let need = 2 + Bytes.length record in
    if dead || cap < need then false
    else begin
      write_record t ~off record;
      true
    end
