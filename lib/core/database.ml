module Schema = Orion_schema.Schema
module Store = Orion_storage.Store

type rref_repr = Inline | External

type wal_stats = { appends : int; bytes : int; syncs : int; truncations : int }

let no_wal = { appends = 0; bytes = 0; syncs = 0; truncations = 0 }

type checkpoint_phase = Ckpt_begin | Ckpt_end

type t = {
  schema : Schema.t;
  store : Store.t;
  objects : Instance.t Oid.Tbl.t;
  mutable next_oid : int;
  mutable clock : int;
  repr : rref_repr;
  external_rrefs : Rref.t list ref Oid.Tbl.t;
  acyclic : bool;
  edge_cache : Edge_cache.t option;
  mutable access_hook : (Instance.t -> unit) option;
  mutable current_cc : int;
  mutable listeners : (int * (event_ -> unit)) list;
  mutable next_subscription : int;
  mutable wal_source : (unit -> wal_stats) option;
  mutable checkpoint_hook : (checkpoint_phase -> unit) option;
}

and event_ =
  | Created of Oid.t
  | Deleted of Oid.t
  | Attr_written of { oid : Oid.t; attr : string; before : Value.t; after : Value.t }
  | Invalidated

(* Keep the composite-edge cache honest against every mutation event.
   [Created] matters only for version instances: a new version can
   become its generic's default, re-resolving every dynamic reference
   to that generic (§5.1). *)
let edge_cache_listener t cache event =
  match event with
  | Attr_written { oid; _ } | Deleted oid -> Edge_cache.invalidate cache oid
  | Created oid -> (
      Edge_cache.invalidate cache oid;
      match Oid.Tbl.find_opt t.objects oid with
      | Some inst -> (
          match Instance.version_info inst with
          | Some vi -> Edge_cache.invalidate cache vi.generic
          | None -> ())
      | None -> ())
  | Invalidated -> Edge_cache.flush cache

let create ?(page_size = 4096) ?(pool_capacity = 64) ?(rref_repr = Inline)
    ?(acyclic = true) ?(edge_cache = true) ?store () =
  let t =
    {
      schema = Schema.create ();
      store =
        (match store with
        | Some store -> store
        | None -> Store.create ~page_size ~pool_capacity ());
      objects = Oid.Tbl.create 1024;
      next_oid = 0;
      clock = 0;
      repr = rref_repr;
      external_rrefs = Oid.Tbl.create 1024;
      acyclic;
      edge_cache = (if edge_cache then Some (Edge_cache.create ()) else None);
      access_hook = None;
      current_cc = 0;
      listeners = [];
      next_subscription = 0;
      wal_source = None;
      checkpoint_hook = None;
    }
  in
  (match t.edge_cache with
  | Some cache ->
      t.listeners <- [ (0, edge_cache_listener t cache) ];
      t.next_subscription <- 1
  | None -> ());
  t

let schema t = t.schema
let store t = t.store
let rref_repr t = t.repr
let acyclic t = t.acyclic
let edge_cache t = t.edge_cache

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  wal : wal_stats;
}

let stats t =
  let cache =
    match t.edge_cache with
    | Some cache -> Edge_cache.stats cache
    | None -> { Edge_cache.hits = 0; misses = 0; invalidations = 0 }
  in
  let wal = match t.wal_source with Some f -> f () | None -> no_wal in
  {
    hits = cache.Edge_cache.hits;
    misses = cache.Edge_cache.misses;
    invalidations = cache.Edge_cache.invalidations;
    wal;
  }

let set_wal_stats_source t source = t.wal_source <- source

let set_checkpoint_hook t hook = t.checkpoint_hook <- hook

let notify_checkpoint t phase =
  match t.checkpoint_hook with Some hook -> hook phase | None -> ()

let reset_stats t =
  match t.edge_cache with
  | Some cache -> Edge_cache.reset_stats cache
  | None -> ()

let invalidate_edges t oid =
  match t.edge_cache with
  | Some cache -> Edge_cache.invalidate cache oid
  | None -> ()

let fresh_oid t =
  let oid = Oid.of_int t.next_oid in
  t.next_oid <- t.next_oid + 1;
  oid

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let counters t = (t.next_oid, t.clock)

let restore_counters t ~next_oid ~clock =
  t.next_oid <- next_oid;
  t.clock <- clock

let set_access_hook t hook = t.access_hook <- hook

type event = event_ =
  | Created of Oid.t
  | Deleted of Oid.t
  | Attr_written of { oid : Oid.t; attr : string; before : Value.t; after : Value.t }
  | Invalidated

type subscription = int

let subscribe t listener =
  let id = t.next_subscription in
  t.next_subscription <- id + 1;
  t.listeners <- (id, listener) :: t.listeners;
  id

let unsubscribe t id = t.listeners <- List.filter (fun (i, _) -> i <> id) t.listeners

let emit t event = List.iter (fun (_, listener) -> listener event) t.listeners

let write_value t (inst : Instance.t) attr value =
  let before = Option.value (Instance.attr inst attr) ~default:Value.Null in
  Instance.set_attr inst attr value;
  if t.listeners <> [] && not (Value.equal before value) then
    emit t (Attr_written { oid = inst.oid; attr; before; after = value })

let current_cc t = t.current_cc

let set_current_cc t cc = t.current_cc <- cc

let add t (inst : Instance.t) = Oid.Tbl.replace t.objects inst.oid inst

let remove t oid =
  match Oid.Tbl.find_opt t.objects oid with
  | None -> ()
  | Some inst ->
      (match inst.rid with
      | Some rid -> Store.delete t.store rid
      | None -> ());
      Oid.Tbl.remove t.objects oid;
      Oid.Tbl.remove t.external_rrefs oid;
      emit t (Deleted oid)

let find t oid = Oid.Tbl.find_opt t.objects oid

let get t oid =
  match find t oid with
  | None -> Core_error.raise_error (Core_error.Unknown_object oid)
  | Some inst ->
      (match t.access_hook with Some hook -> hook inst | None -> ());
      inst

let exists t oid = Oid.Tbl.mem t.objects oid

let count t = Oid.Tbl.length t.objects

let iter t f = Oid.Tbl.iter (fun _ inst -> f inst) t.objects

let fold t ~init ~f = Oid.Tbl.fold (fun _ inst acc -> f acc inst) t.objects init

let class_of t oid = (get t oid).cls

let instances_of t ?(subclasses = true) cls =
  let accepted =
    if subclasses then cls :: Schema.all_subclasses t.schema cls else [ cls ]
  in
  fold t ~init:[] ~f:(fun acc (inst : Instance.t) ->
      if List.exists (String.equal inst.cls) accepted then inst.oid :: acc
      else acc)
  |> List.sort Oid.compare

(* Reverse composite references ------------------------------------------ *)

let external_cell t oid =
  match Oid.Tbl.find_opt t.external_rrefs oid with
  | Some cell -> cell
  | None ->
      let cell = ref [] in
      Oid.Tbl.replace t.external_rrefs oid cell;
      cell

let rrefs t oid =
  match t.repr with
  | Inline -> (get t oid).rrefs
  | External -> !(external_cell t oid)

let set_rrefs t oid refs =
  match t.repr with
  | Inline -> (get t oid).rrefs <- refs
  | External -> external_cell t oid := refs

let add_rref t oid rref = set_rrefs t oid (rrefs t oid @ [ rref ])

let remove_rref t oid ~parent ~attr =
  let removed = ref None in
  let rec drop_first = function
    | [] -> []
    | (r : Rref.t) :: rest ->
        if !removed = None && Oid.equal r.parent parent && String.equal r.attr attr
        then begin
          removed := Some r;
          rest
        end
        else r :: drop_first rest
  in
  set_rrefs t oid (drop_first (rrefs t oid));
  !removed

let refsets t oid = Rref.classify (rrefs t oid)
