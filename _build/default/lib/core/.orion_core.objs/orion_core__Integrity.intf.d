lib/core/integrity.mli: Database Format Oid Rref
