(** LRU buffer pool over the simulated {!Disk}.

    All page traffic in {!Store} flows through a pool, so the hit/miss
    counters directly expose how physical clustering changes the number
    of page fetches of a composite-object traversal (experiment P5). *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : capacity:int -> Disk.t -> t
(** [capacity] is the number of resident page frames (>= 1). *)

val get : t -> int -> Page.t
(** Pin-free access: returns the resident page, fetching and possibly
    evicting (write-back) on a miss.  The returned page aliases the
    frame; call {!mark_dirty} after mutating it. *)

val mark_dirty : t -> int -> unit

val flush : t -> unit
(** Write back every dirty frame. *)

val dirty_count : t -> int
(** Number of resident frames with unwritten changes — the work a
    checkpoint's force step will push through {!Disk.write}. *)

val dirty_pages : t -> int list
(** Page numbers of the dirty frames, ascending. *)

val drop_all : t -> unit
(** Write back and empty the pool (used to measure cold traversals). *)

val stats : t -> stats

val reset_stats : t -> unit
