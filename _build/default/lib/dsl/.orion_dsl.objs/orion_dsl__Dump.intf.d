lib/dsl/dump.mli: Eval Orion_core
