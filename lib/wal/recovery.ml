open Orion_core
module Store = Orion_storage.Store
module Disk = Orion_storage.Disk

type stats = {
  scanned : int;
  valid_bytes : int;
  torn_tail : bool;
  dropped_checkpoint : bool;
  pages_replayed : int;
  directory_ops_replayed : int;
  committed_txs : int;
  objects_applied : int;
  objects_discarded : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>scanned %d records (%d bytes%s)%s@,\
     physical: %d pages, %d directory ops@,\
     logical: %d committed txs, %d objects applied, %d uncommitted discarded@]"
    s.scanned s.valid_bytes
    (if s.torn_tail then ", torn tail" else "")
    (if s.dropped_checkpoint then "; dropped unterminated checkpoint" else "")
    s.pages_replayed s.directory_ops_replayed s.committed_txs s.objects_applied
    s.objects_discarded

(* Split the intact records at the last {e sealed} checkpoint.  The
   physical stream is only meaningful as of that point: it reproduces
   the store exactly as the checkpoint flushed it (the catalog the
   [Catalog_set] inside the bracket names is consistent with it).
   Physical records after it — a crashed checkpoint's half-applied
   writes, mid-transaction record deletions, buffer-pool evictions —
   describe store state that was never sealed by a catalog and must not
   be redone.  Conversely the logical stream starts {e after} the
   sealed checkpoint: checkpoints run at transaction-quiescent points
   and absorb every earlier mutation (including non-transactional ones
   no commit record covers), so older after-images are stale.  With no
   sealed checkpoint in the log (the post-truncation shape), the base
   is the caller's snapshot and every logical record applies. *)
let split records =
  let last_ckpt = ref (-1) in
  List.iteri
    (fun i r -> if r = Wal_record.Checkpoint then last_ckpt := i)
    records;
  if !last_ckpt < 0 then
    let dropped =
      List.exists (fun r -> r = Wal_record.Checkpoint_begin) records
    in
    (* Nothing sealed: no physical base to rebuild (recovery needs a
       snapshot), and the whole log is post-checkpoint logically. *)
    ([], records, dropped)
  else begin
    let i = !last_ckpt in
    let physical = List.filteri (fun j _ -> j <= i) records in
    let logical = List.filteri (fun j _ -> j > i) records in
    let dropped =
      List.exists (fun r -> r = Wal_record.Checkpoint_begin) logical
    in
    (physical, logical, dropped)
  end

let surviving_records wal =
  let { Wal.records; torn_tail; valid_bytes } = Wal.scan wal in
  let scanned = List.length records in
  let physical, logical, dropped = split records in
  (physical, logical, scanned, valid_bytes, torn_tail, dropped)

(* Physical pass: rebuild a store bit-for-bit from the log.  Only
   possible when the log reaches back to the store's birth, i.e. starts
   with its [Genesis] record (attach-time truncation never ran). *)
let rebuild_from records =
  let page_size =
    match records with
    | Wal_record.Genesis { page_size } :: _ -> page_size
    | _ ->
        failwith
          "Recovery: log has no genesis record; rebuild needs a snapshot"
  in
  let store = Store.create ~page_size () in
  let disk = Store.disk store in
  let pages = ref 0 in
  let dir_ops = ref 0 in
  List.iter
    (fun record ->
      match record with
      | Wal_record.Genesis _ -> ()
      | Page_alloc { page_no } ->
          let got = Disk.alloc disk in
          if got <> page_no then
            failwith
              (Printf.sprintf
                 "Recovery: page allocation replayed out of order (%d, expected \
                  %d)"
                 got page_no)
      | Page_write { page_no; image } ->
          Disk.write disk page_no image;
          incr pages
      | Segment_new { id } ->
          Store.restore_segment store id;
          incr dir_ops
      | Record_put { rid } ->
          Store.restore_record store rid;
          incr dir_ops
      | Record_delete { rid } ->
          Store.forget_record store rid;
          incr dir_ops
      | Catalog_set { page } ->
          Store.restore_catalog store page;
          incr dir_ops
      | Obj_put _ | Obj_delete _ | Commit _ | Commit_group _ | Checkpoint_begin
      | Checkpoint ->
          ())
    records;
  (store, !pages, !dir_ops)

let rebuild_store wal =
  let physical, _, _, _, _, _ = surviving_records wal in
  let store, _, _ = rebuild_from physical in
  store

(* Logical pass: group [Obj_*] records by transaction, apply each group
   at its [Commit] — in log order, so later transactions overwrite
   earlier after-images of the same object.  Groups never sealed by a
   surviving [Commit] are discarded: redo-only, an unacknowledged commit
   never happened. *)
let apply_op db op =
  match op with
  | Wal_record.Obj_put { oid; cluster_with; rrefs; data; _ } ->
      let inst = Codec.decode data in
      (* Keep the checkpointed record slot, if any: the next checkpoint
         updates in place instead of leaking the old record. *)
      (inst.Instance.rid <-
        (match Database.find db oid with
        | Some old -> old.Instance.rid
        | None -> None));
      inst.Instance.cluster_with <- cluster_with;
      Database.add db inst;
      Database.set_rrefs db oid rrefs
  | Obj_delete { oid; _ } -> Database.remove db oid
  | _ -> ()

let apply_committed db records =
  let pending : (int, Wal_record.t list) Hashtbl.t = Hashtbl.create 16 in
  let push tx op =
    let sofar = Option.value (Hashtbl.find_opt pending tx) ~default:[] in
    Hashtbl.replace pending tx (op :: sofar)
  in
  let committed = ref 0 in
  let applied = ref 0 in
  let seal tx =
    let ops = List.rev (Option.value (Hashtbl.find_opt pending tx) ~default:[]) in
    Hashtbl.remove pending tx;
    incr committed;
    List.iter (apply_op db) ops;
    applied := !applied + List.length ops
  in
  let advance_counters ~next_oid ~clock ~cc =
    (* Counters only ever move forward: a log overlapping the
       snapshot (crash after checkpoint, before truncation) replays
       commits the catalog already accounts for. *)
    let next_oid0, clock0 = Database.counters db in
    Database.restore_counters db ~next_oid:(max next_oid next_oid0)
      ~clock:(max clock clock0);
    Database.set_current_cc db (max cc (Database.current_cc db))
  in
  List.iter
    (fun record ->
      match record with
      | Wal_record.Obj_put { tx; _ } -> push tx record
      | Obj_delete { tx; _ } -> push tx record
      | Commit { tx; next_oid; clock; cc } ->
          seal tx;
          advance_counters ~next_oid ~clock ~cc
      | Commit_group { txs; next_oid; clock; cc } ->
          (* The whole batch became durable with this one record: seal
             each member in submission order.  Batched transactions are
             non-overlapping writers (strict 2PL holds their locks until
             the sync completes), so member order within the batch
             cannot change the outcome. *)
          List.iter seal txs;
          advance_counters ~next_oid ~clock ~cc
      | _ -> ())
    records;
  let discarded =
    Hashtbl.fold (fun _ ops n -> n + List.length ops) pending 0
  in
  (!committed, !applied, discarded)

let replay ?snapshot wal =
  let physical, logical, scanned, valid_bytes, torn_tail, dropped_checkpoint =
    surviving_records wal
  in
  let store, pages_replayed, directory_ops_replayed =
    match snapshot with
    | Some store -> (store, 0, 0)
    | None -> rebuild_from physical
  in
  let db = Persist.load store in
  let committed_txs, objects_applied, objects_discarded =
    apply_committed db logical
  in
  if committed_txs > 0 then Database.emit db Database.Invalidated;
  ( db,
    {
      scanned;
      valid_bytes;
      torn_tail;
      dropped_checkpoint;
      pages_replayed;
      directory_ops_replayed;
      committed_txs;
      objects_applied;
      objects_discarded;
    } )
