examples/cad_versions.mli:
