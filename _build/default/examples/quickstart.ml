(* Quickstart: the public API in ~60 lines.

   Run with: dune exec examples/quickstart.exe

   We model a tiny assembly: a Robot whose Arm is an exclusive part
   (reusable after dismantling) and whose Firmware is a dependent part
   (dies with the robot). *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema

let () =
  let db = Database.create () in
  let schema = Database.schema db in

  (* 1. Define classes.  Composite attributes carry the IS-PART-OF
     semantics: exclusive/shared x dependent/independent. *)
  let define name attrs =
    ignore (Schema.define schema ~name ~attributes:attrs () : Orion_schema.Class_def.t)
  in
  define "Arm" [ A.make ~name:"Length" ~domain:(D.Primitive D.P_integer) () ];
  define "Firmware" [ A.make ~name:"Version" ~domain:(D.Primitive D.P_string) () ];
  define "Robot"
    [
      A.make ~name:"Name" ~domain:(D.Primitive D.P_string) ();
      (* independent exclusive: one robot at a time, survives it *)
      A.make ~name:"TheArm" ~domain:(D.Class "Arm")
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
      (* dependent exclusive: deleted with the robot *)
      A.make ~name:"TheFirmware" ~domain:(D.Class "Firmware")
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];

  (* 2. Create objects bottom-up: parts first, then the whole. *)
  let arm = Object_manager.create db ~cls:"Arm" ~attrs:[ ("Length", Value.Int 90) ] () in
  let firmware =
    Object_manager.create db ~cls:"Firmware" ~attrs:[ ("Version", Value.Str "1.0") ] ()
  in
  let robot =
    Object_manager.create db ~cls:"Robot"
      ~attrs:
        [
          ("Name", Value.Str "R2");
          ("TheArm", Value.Ref arm);
          ("TheFirmware", Value.Ref firmware);
        ]
      ()
  in

  (* 3. Query the composite object. *)
  Format.printf "components of %a: %a@." Oid.pp robot
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
    (Traversal.components_of db robot);
  Format.printf "parents of the arm: %a@."
    (Format.pp_print_list Oid.pp)
    (Traversal.parents_of db arm);
  Format.printf "arm is an exclusive component: %b@."
    (Traversal.exclusive_component_of db arm robot);

  (* 4. The Make-Component rule at work: the arm cannot join a second
     robot while attached. *)
  let robot2 =
    Object_manager.create db ~cls:"Robot" ~attrs:[ ("Name", Value.Str "R3") ] ()
  in
  (match Object_manager.make_component db ~parent:robot2 ~attr:"TheArm" ~child:arm with
  | () -> assert false
  | exception Core_error.Error e ->
      Format.printf "second attachment rejected: %a@." Core_error.pp e);

  (* 5. Deletion: the firmware (dependent) dies with the robot; the arm
     (independent) survives and is reusable. *)
  Object_manager.delete db robot;
  Format.printf "after deleting the robot: arm exists = %b, firmware exists = %b@."
    (Database.exists db arm) (Database.exists db firmware);
  Object_manager.make_component db ~parent:robot2 ~attr:"TheArm" ~child:arm;
  Format.printf "arm reattached to %a@." Oid.pp robot2;

  (* 6. Invariants hold by construction; the checker agrees. *)
  match Integrity.check db with
  | [] -> print_endline "integrity: consistent"
  | violations ->
      Format.printf "violations:@.%a@."
        (Format.pp_print_list Integrity.pp_violation)
        violations
