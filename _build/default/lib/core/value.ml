type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Ref of Oid.t
  | VSet of t list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Ref x, Ref y -> Oid.equal x y
  | VSet xs, VSet ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Null | Int _ | Float _ | Str _ | Bool _ | Ref _ | VSet _), _ -> false

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "nil"
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Ref oid -> Oid.pp ppf oid
  | VSet vs ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp)
        vs

let to_string t = Format.asprintf "%a" pp t

let refs t =
  let rec go acc = function
    | Ref oid -> oid :: acc
    | VSet vs -> List.fold_left go acc vs
    | Null | Int _ | Float _ | Str _ | Bool _ -> acc
  in
  let all = List.rev (go [] t) in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun oid ->
      if Hashtbl.mem seen oid then false
      else begin
        Hashtbl.replace seen oid ();
        true
      end)
    all

let contains_ref t oid = List.exists (Oid.equal oid) (refs t)

let add_ref t oid =
  match t with
  | Null -> Ref oid
  | VSet vs ->
      if List.exists (fun v -> equal v (Ref oid)) vs then t
      else VSet (vs @ [ Ref oid ])
  | Int _ | Float _ | Str _ | Bool _ | Ref _ ->
      invalid_arg "Value.add_ref: not a set or null"

let rec normalize t =
  match t with
  | VSet vs ->
      let deduped =
        List.fold_left
          (fun acc v ->
            let v = normalize v in
            if List.exists (equal v) acc then acc else v :: acc)
          [] vs
      in
      VSet (List.rev deduped)
  | Null | Int _ | Float _ | Str _ | Bool _ | Ref _ -> t

let remove_ref t oid =
  match t with
  | Ref o when Oid.equal o oid -> Null
  | VSet vs -> VSet (List.filter (fun v -> not (equal v (Ref oid))) vs)
  | Null | Int _ | Float _ | Str _ | Bool _ | Ref _ -> t
