open Orion_core
module Schema = Orion_schema.Schema

type config = {
  documents : int;
  sections_per_doc : int;
  paragraphs_per_section : int;
  share_section : float;
  share_paragraph : float;
  annotations_per_doc : int;
  figures_per_doc : int;
  seed : int;
}

let default =
  {
    documents = 10;
    sections_per_doc = 3;
    paragraphs_per_section = 4;
    share_section = 0.3;
    share_paragraph = 0.2;
    annotations_per_doc = 1;
    figures_per_doc = 1;
    seed = 77;
  }

type corpus = {
  db : Database.t;
  classes : Scenarios.document_classes;
  docs : Oid.t list;
  total : int;
  shared_sections : int;
}

let generate ?db config =
  let db = match db with Some db -> db | None -> Database.create () in
  let classes =
    if Schema.mem (Database.schema db) "Document" then
      {
        Scenarios.document = "Document";
        section = "Section";
        paragraph = "Paragraph";
        image = "Image";
      }
    else Scenarios.define_document_schema db
  in
  let rng = Random.State.make [| config.seed |] in
  let total = ref 0 in
  let fresh cls ?parents attrs =
    incr total;
    Object_manager.create db ~cls ?parents ~attrs ()
  in
  let sections : Oid.t list ref = ref [] in
  let paragraphs : Oid.t list ref = ref [] in
  let shared_sections = ref 0 in
  let pick pool = List.nth pool (Random.State.int rng (List.length pool)) in
  let make_paragraph section i =
    if !paragraphs <> [] && Random.State.float rng 1.0 < config.share_paragraph
    then
      let existing = pick !paragraphs in
      try Object_manager.make_component db ~parent:section ~attr:"Content" ~child:existing
      with Core_error.Error _ -> ()
    else
      let p =
        fresh classes.Scenarios.paragraph
          ~parents:[ (section, "Content") ]
          [ ("Text", Value.Str (Printf.sprintf "paragraph %d" i)) ]
      in
      paragraphs := p :: !paragraphs
  in
  let make_section doc =
    if !sections <> [] && Random.State.float rng 1.0 < config.share_section then begin
      let existing = pick !sections in
      try
        Object_manager.make_component db ~parent:doc ~attr:"Sections" ~child:existing;
        incr shared_sections
      with Core_error.Error _ -> ()
    end
    else begin
      let s = fresh classes.Scenarios.section ~parents:[ (doc, "Sections") ] [] in
      sections := s :: !sections;
      for i = 1 to config.paragraphs_per_section do
        make_paragraph s i
      done
    end
  in
  let docs =
    List.init config.documents (fun i ->
        let doc =
          fresh classes.Scenarios.document
            [ ("Title", Value.Str (Printf.sprintf "doc-%03d" i)) ]
        in
        for _ = 1 to config.sections_per_doc do
          make_section doc
        done;
        for a = 1 to config.annotations_per_doc do
          ignore
            (fresh classes.Scenarios.paragraph
               ~parents:[ (doc, "Annotations") ]
               [ ("Text", Value.Str (Printf.sprintf "note %d" a)) ]
              : Oid.t)
        done;
        for f = 1 to config.figures_per_doc do
          ignore
            (fresh classes.Scenarios.image
               ~parents:[ (doc, "Figures") ]
               [ ("File", Value.Str (Printf.sprintf "fig-%d-%d.png" i f)) ]
              : Oid.t)
        done;
        doc)
  in
  { db; classes; docs; total = !total; shared_sections = !shared_sections }
