open Orion_core
module Schema = Orion_schema.Schema

type access = Read_ | Update

let lock_for_access access role =
  match (access, role) with
  | Read_, `Class -> Lock_mode.IS
  | Update, `Class -> Lock_mode.IX
  | Read_, `Instance -> Lock_mode.S
  | Update, `Instance -> Lock_mode.X
  | Read_, `Comp_x -> Lock_mode.ISO
  | Update, `Comp_x -> Lock_mode.IXO
  | Read_, `Comp_s -> Lock_mode.ISOS
  | Update, `Comp_s -> Lock_mode.IXOS

let composite_object_locks db ~root access =
  let inst = Database.get db root in
  let components =
    Schema.composite_class_hierarchy (Database.schema db) inst.Instance.cls
  in
  [
    (Lock_table.G_class inst.Instance.cls, lock_for_access access `Class);
    (Lock_table.G_instance root, lock_for_access access `Instance);
  ]
  @ List.map
      (fun (c : Schema.component_class) ->
        let role = match c.via with `Exclusive -> `Comp_x | `Shared -> `Comp_s in
        (Lock_table.G_class c.component, lock_for_access access role))
      components

let instance_locks db oid access =
  let inst = Database.get db oid in
  [
    (Lock_table.G_class inst.Instance.cls, lock_for_access access `Class);
    (Lock_table.G_instance oid, lock_for_access access `Instance);
  ]

let acquire_all table ~tx locks =
  let rec go = function
    | [] -> `Granted
    | (granule, mode) :: rest -> (
        match Lock_table.acquire table ~tx granule mode with
        | `Granted -> go rest
        | `Blocked -> `Blocked (granule, mode))
  in
  go locks

let compatible_lock_sets set1 set2 ?(compat = Lock_mode.compat) () =
  List.for_all
    (fun (g1, m1) ->
      List.for_all
        (fun (g2, m2) -> (not (g1 = g2)) || compat m1 m2)
        set2)
    set1

(* Hierarchy scans (the S/SIX/X rows of Figures 7 and 8) ---------------------- *)

type scan_access = Scan_read | Scan_update_some | Scan_update_all

let hierarchy_scan_locks db ~root_cls access =
  let components = Schema.composite_class_hierarchy (Database.schema db) root_cls in
  let root_mode, comp_mode =
    match access with
    | Scan_read -> (Lock_mode.S, fun _ -> Lock_mode.S)
    | Scan_update_some ->
        ( Lock_mode.SIX,
          function `Exclusive -> Lock_mode.SIXO | `Shared -> Lock_mode.SIXOS )
    | Scan_update_all -> (Lock_mode.X, fun _ -> Lock_mode.X)
  in
  (Lock_table.G_class root_cls, root_mode)
  :: List.map
       (fun (c : Schema.component_class) ->
         (Lock_table.G_class c.component, comp_mode c.via))
       components

(* GARZ88 root locking -------------------------------------------------------- *)

let roots_of db oid =
  let ancestors = Traversal.ancestors_of db oid in
  let parentless o = Traversal.parents_of db o = [] in
  match List.filter parentless ancestors with
  | [] -> if parentless oid then [ oid ] else []
  | roots -> roots

let root_locking_locks db oid access =
  let mode = lock_for_access access `Instance in
  let self = (Lock_table.G_instance oid, mode) in
  let root_locks =
    List.map (fun root -> (Lock_table.G_instance root, mode)) (roots_of db oid)
  in
  self :: List.filter (fun (g, _) -> g <> fst self) root_locks

let implicit_coverage db locks =
  locks
  |> List.concat_map (fun (granule, mode) ->
         match granule with
         | Lock_table.G_class _ -> []
         | Lock_table.G_instance root ->
             (root, mode)
             :: List.map
                  (fun component -> (component, mode))
                  (Traversal.components_of db root))

let root_lock_anomaly db ~t1 ~t2 =
  let cover1 = implicit_coverage db t1 and cover2 = implicit_coverage db t2 in
  List.concat_map
    (fun (oid1, m1) ->
      List.filter_map
        (fun (oid2, m2) ->
          if Oid.equal oid1 oid2 && not (Lock_mode.compat m1 m2) then
            Some (oid1, m1, m2)
          else None)
        cover2)
    cover1
