type reference_kind =
  | Weak
  | Composite of { exclusive : bool; dependent : bool }

type collection = Single | Set

type t = {
  name : string;
  domain : Domain.t;
  collection : collection;
  refkind : reference_kind;
  source : string option;
}

let make ?(collection = Single) ?(refkind = Weak) ?source ~name ~domain () =
  { name; domain; collection; refkind; source }

let composite ?(dependent = true) ?(exclusive = true) () =
  Composite { exclusive; dependent }

let is_composite t = match t.refkind with Composite _ -> true | Weak -> false

let is_exclusive t =
  match t.refkind with Composite { exclusive; _ } -> exclusive | Weak -> false

let is_shared t =
  match t.refkind with
  | Composite { exclusive; _ } -> not exclusive
  | Weak -> false

let is_dependent t =
  match t.refkind with Composite { dependent; _ } -> dependent | Weak -> false

let pp_refkind ppf = function
  | Weak -> Format.pp_print_string ppf "weak"
  | Composite { exclusive; dependent } ->
      Format.fprintf ppf "%s %s composite"
        (if dependent then "dependent" else "independent")
        (if exclusive then "exclusive" else "shared")

let pp ppf t =
  Format.fprintf ppf "%s : %s%a [%a]" t.name
    (match t.collection with Single -> "" | Set -> "set-of ")
    Domain.pp t.domain pp_refkind t.refkind
