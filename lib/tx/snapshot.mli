(** Object snapshots for transaction undo.

    A snapshot deep-copies the mutable state of a set of instances
    (attribute values, reverse references — inline or external —,
    version/generic bookkeeping).  Restoring re-adds deleted objects
    and rolls every captured field back; objects created after the
    snapshot are untouched (the transaction layer removes those
    separately). *)

open Orion_core

type capture = {
  image : Instance.t;
      (** A private copy ({!Orion_core.Instance.copy}); never mutated
          after capture, so it stays the committed pre-image for as long
          as anyone holds it (the MVCC version store does). *)
  rrefs : Rref.t list;
}

type t

val take : Database.t -> Oid.t list -> t

val extend : t -> Database.t -> Oid.t list -> (Oid.t * capture) list
(** Capture more objects into the same snapshot (first capture of an
    OID wins, so a snapshot taken at operation start is preserved).
    Returns the captures newly taken by {e this} call — under strict
    2PL these are committed pre-images, which is what the transaction
    manager feeds the MVCC version store as chain bases. *)

val restore : t -> Database.t -> unit

val captured : t -> Oid.t list
