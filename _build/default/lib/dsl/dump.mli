(** Dump and restore a database as an ORION program.

    The schema dumps to [make-class] forms and the objects to [make] /
    [add-component] forms in dependency order (components before the
    objects that reference them, so bottom-up creation re-attaches
    everything).  Version-derivation structure is re-created with
    [derive-version]; user default versions with [set-default-version].

    [restore] evaluates such a program into a fresh environment; a
    dump/restore round-trip preserves the composite topology (asserted
    by the test suite). *)

val dump_schema : Orion_core.Database.t -> string
(** [make-class] forms, superclasses before subclasses. *)

val dump_objects : Orion_core.Database.t -> string
(** [setq o<n> (make …)] forms; every object is bound to a stable name
    derived from its OID. *)

val dump : Orion_core.Database.t -> string
(** Schema followed by objects. *)

val restore : string -> Eval.env
(** Evaluate a dump into a fresh environment.
    @raise Eval.Eval_error on malformed programs. *)
