(* Tests for Orion_versions: the §5 version model — generic/version
   instances, derivation (Figure 1 semantics), binding, defaults,
   CV-rule enforcement and deletion cascades. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager

let oid = Alcotest.testable Oid.pp Oid.equal

let check_integrity db =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations

(* Versionable Part; versionable Assembly with one attribute per
   composite reference flavour plus a weak one. *)
let fixture () =
  let db = Database.create () in
  let schema = Database.schema db in
  let define ?versionable name attrs =
    ignore
      (Schema.define schema ?versionable ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define ~versionable:true "Part"
    [ A.make ~name:"Id" ~domain:(D.Primitive D.P_string) () ];
  define ~versionable:true "Assembly"
    [
      A.make ~name:"IndepExcl" ~domain:(D.Class "Part")
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
      A.make ~name:"DepExcl" ~domain:(D.Class "Part")
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
      A.make ~name:"Shared" ~domain:(D.Class "Part") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
      A.make ~name:"Weak" ~domain:(D.Class "Part") ();
    ];
  db

let test_create_versionable () =
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" ~attrs:[ ("Id", Value.Str "p") ] () in
  Alcotest.(check bool) "versionable" true (VM.is_versionable db v0);
  Alcotest.(check int) "version number 0" 0 (VM.version_no db v0);
  Alcotest.(check bool) "no derivation parent" true (VM.derived_from db v0 = None);
  let g = VM.generic_of db v0 in
  Alcotest.(check bool) "generic distinct" false (Oid.equal g v0);
  Alcotest.(check (list oid)) "versions" [ v0 ] (VM.versions db g);
  Alcotest.(check oid) "generic_of generic" g (VM.generic_of db g);
  (* A generic instance holds no attribute values. *)
  (match Object_manager.read_attr db g "Id" with
  | exception Core_error.Error (Core_error.Not_an_instance_holder _) -> ()
  | _ -> Alcotest.fail "expected Not_an_instance_holder");
  check_integrity db

let test_plain_class_not_versionable () =
  let db = fixture () in
  ignore
    (Schema.define (Database.schema db) ~name:"Plain" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  let p = Object_manager.create db ~cls:"Plain" () in
  Alcotest.(check bool) "not versionable" false (VM.is_versionable db p);
  (match VM.generic_of db p with
  | exception Core_error.Error (Core_error.Not_versionable _) -> ()
  | _ -> Alcotest.fail "expected Not_versionable")

let test_derive_numbers_and_tree () =
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" () in
  let v1 = VM.derive db v0 in
  let v2 = VM.derive db v0 in
  let v3 = VM.derive db v1 in
  Alcotest.(check int) "v1 number" 1 (VM.version_no db v1);
  Alcotest.(check int) "v2 number" 2 (VM.version_no db v2);
  Alcotest.(check int) "v3 number" 3 (VM.version_no db v3);
  Alcotest.(check (option oid)) "v3 derived from v1" (Some v1) (VM.derived_from db v3);
  (match VM.derivation_tree db v0 with
  | [ { VM.node; children; _ } ] ->
      Alcotest.(check oid) "root of tree" v0 node;
      Alcotest.(check int) "two children of v0" 2 (List.length children)
  | trees -> Alcotest.failf "expected one tree, got %d" (List.length trees));
  check_integrity db

let test_default_version_resolution () =
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" () in
  let g = VM.generic_of db v0 in
  Alcotest.(check oid) "initial default" v0 (VM.default_version db g);
  let v1 = VM.derive db v0 in
  (* System default: the latest-created version. *)
  Alcotest.(check oid) "system default is latest" v1 (VM.default_version db g);
  VM.set_default_version db g (Some v0);
  Alcotest.(check oid) "user default wins" v0 (VM.default_version db g);
  VM.set_default_version db g None;
  Alcotest.(check oid) "cleared: back to system default" v1 (VM.default_version db g);
  (* A foreign version is rejected. *)
  let other = Object_manager.create db ~cls:"Part" () in
  (match VM.set_default_version db g (Some other) with
  | exception Core_error.Error (Core_error.Version_error _) -> ()
  | _ -> Alcotest.fail "expected Version_error")

let test_dynamic_binding_resolution () =
  let db = fixture () in
  let part0 = Object_manager.create db ~cls:"Part" () in
  let g = VM.generic_of db part0 in
  let asm =
    Object_manager.create db ~cls:"Assembly" ~attrs:[ ("IndepExcl", Value.Ref g) ] ()
  in
  (* components-of resolves the dynamic binding to the default version. *)
  Alcotest.(check (list oid)) "resolves to v0" [ part0 ]
    (Traversal.components_of db asm);
  let part1 = VM.derive db part0 in
  Alcotest.(check (list oid)) "resolves to latest" [ part1 ]
    (Traversal.components_of db asm);
  check_integrity db

let test_bind_static_dynamic () =
  let db = fixture () in
  let part = Object_manager.create db ~cls:"Part" () in
  let g = VM.generic_of db part in
  let asm =
    Object_manager.create db ~cls:"Assembly" ~attrs:[ ("IndepExcl", Value.Ref part) ] ()
  in
  VM.bind_dynamically db ~holder:asm ~attr:"IndepExcl" part;
  Alcotest.(check bool) "now references the generic" true
    (Value.equal (Object_manager.read_attr db asm "IndepExcl") (Value.Ref g));
  VM.bind_statically db ~holder:asm ~attr:"IndepExcl" ~version:part;
  Alcotest.(check bool) "back to the version instance" true
    (Value.equal (Object_manager.read_attr db asm "IndepExcl") (Value.Ref part));
  (* Binding a generic dynamically again is an error. *)
  (match VM.bind_dynamically db ~holder:asm ~attr:"IndepExcl" g with
  | exception Core_error.Error (Core_error.Version_error _) -> ()
  | _ -> Alcotest.fail "expected Version_error");
  check_integrity db

let test_derive_shared_increments_refcount () =
  let db = fixture () in
  let part = Object_manager.create db ~cls:"Part" () in
  let asm =
    Object_manager.create db ~cls:"Assembly"
      ~attrs:[ ("Shared", Value.VSet [ Value.Ref part ]) ]
      ()
  in
  let asm' = VM.derive db asm in
  (* Shared static references copy as is: both versions reference the
     same part version. *)
  Alcotest.(check bool) "copied" true
    (Value.equal
       (Object_manager.read_attr db asm' "Shared")
       (Value.VSet [ Value.Ref part ]));
  Alcotest.(check int) "part has two reverse references" 2
    (List.length (Database.rrefs db part));
  check_integrity db

let test_derive_weak_copies () =
  let db = fixture () in
  let part = Object_manager.create db ~cls:"Part" () in
  let asm =
    Object_manager.create db ~cls:"Assembly" ~attrs:[ ("Weak", Value.Ref part) ] ()
  in
  let asm' = VM.derive db asm in
  Alcotest.(check bool) "weak reference copied as is" true
    (Value.equal (Object_manager.read_attr db asm' "Weak") (Value.Ref part));
  check_integrity db

let test_delete_version_cascades () =
  (* CV-2X + CV-4X: deleting a version deletes version instances
     statically bound through dependent references. *)
  let db = fixture () in
  let part = Object_manager.create db ~cls:"Part" () in
  let asm =
    Object_manager.create db ~cls:"Assembly" ~attrs:[ ("DepExcl", Value.Ref part) ] ()
  in
  let g_part = VM.generic_of db part in
  Object_manager.delete db asm;
  Alcotest.(check bool) "dependent version deleted" false (Database.exists db part);
  (* The part was the last version: its generic dies too (CV-4X). *)
  Alcotest.(check bool) "generic deleted with last version" false
    (Database.exists db g_part);
  check_integrity db

let test_delete_generic_deletes_versions () =
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" () in
  let v1 = VM.derive db v0 in
  let g = VM.generic_of db v0 in
  Object_manager.delete db g;
  Alcotest.(check bool) "v0 gone" false (Database.exists db v0);
  Alcotest.(check bool) "v1 gone" false (Database.exists db v1);
  check_integrity db

let test_delete_version_updates_generic () =
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" () in
  let v1 = VM.derive db v0 in
  let g = VM.generic_of db v0 in
  VM.set_default_version db g (Some v1);
  Object_manager.delete db v1;
  Alcotest.(check (list oid)) "one version left" [ v0 ] (VM.versions db g);
  Alcotest.(check oid) "default falls back to v0" v0 (VM.default_version db g);
  check_integrity db

let test_dangling_dynamic_ref_scrubbed () =
  let db = fixture () in
  let part = Object_manager.create db ~cls:"Part" () in
  let g = VM.generic_of db part in
  let asm =
    Object_manager.create db ~cls:"Assembly"
      ~attrs:[ ("Shared", Value.VSet [ Value.Ref g ]) ]
      ()
  in
  (* Deleting the whole versionable object scrubs the dynamic reference
     from the holder. *)
  Object_manager.delete db g;
  Alcotest.(check bool) "holder value scrubbed" true
    (Value.equal (Object_manager.read_attr db asm "Shared") (Value.VSet []));
  check_integrity db

let test_derive_failure_rolls_back () =
  (* A derive whose copy would violate CV-2X rolls back cleanly.  The
     shared set contains a PLAIN object held exclusively elsewhere:
     copying would give it a second reference.  Construct instead via a
     plain class target: exclusive refs to plain objects cannot be
     duplicated, so derive nulls them rather than failing — meaning
     derive should never fail through translate; test the invariant
     that the version count stays consistent after derive. *)
  let db = fixture () in
  let v0 = Object_manager.create db ~cls:"Part" () in
  let before = List.length (VM.versions db v0) in
  let v1 = VM.derive db v0 in
  Alcotest.(check int) "version count grew by one" (before + 1)
    (List.length (VM.versions db v0));
  Alcotest.(check bool) "fresh version live" true (Database.exists db v1);
  check_integrity db

let test_exclusive_to_plain_not_duplicated () =
  (* An exclusive reference to a PLAIN (non-versionable) object cannot
     be copied into the derived version — that would violate Topology
     Rule 1 — so the copy holds Nil. *)
  let db = fixture () in
  ignore
    (Schema.define (Database.schema db) ~name:"PlainPart" ~attributes:[] ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define (Database.schema db) ~versionable:true ~name:"Asm2"
       ~attributes:
         [
           A.make ~name:"P" ~domain:(D.Class "PlainPart")
             ~refkind:(A.composite ~exclusive:true ~dependent:false ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  let p = Object_manager.create db ~cls:"PlainPart" () in
  let a = Object_manager.create db ~cls:"Asm2" ~attrs:[ ("P", Value.Ref p) ] () in
  let a' = VM.derive db a in
  Alcotest.(check bool) "copy holds Nil" true
    (Value.equal (Object_manager.read_attr db a' "P") Value.Null);
  Alcotest.(check bool) "original keeps its part" true
    (Value.equal (Object_manager.read_attr db a "P") (Value.Ref p));
  check_integrity db

let prop_derive_preserves_integrity =
  QCheck.Test.make ~name:"random derive/bind/delete preserve integrity" ~count:40
    QCheck.(make Gen.(list_size (int_bound 40) (pair (int_bound 4) small_nat)))
    (fun ops ->
      let db = fixture () in
      let versions = ref [] in
      let pick idx =
        match !versions with
        | [] -> None
        | l -> Some (List.nth l (idx mod List.length l))
      in
      List.iter
        (fun (op, x) ->
          versions := List.filter (Database.exists db) !versions;
          try
            match op with
            | 0 -> versions := Object_manager.create db ~cls:"Part" () :: !versions
            | 1 -> (
                match pick x with
                | Some v when Instance.is_version (Database.get db v) ->
                    versions := VM.derive db v :: !versions
                | _ -> ())
            | 2 -> (
                match pick x with
                | Some v -> Object_manager.delete db v
                | None -> ())
            | 3 -> (
                match pick x with
                | Some v when Instance.is_version (Database.get db v) ->
                    let g = VM.generic_of db v in
                    VM.set_default_version db g (Some v)
                | _ -> ())
            | _ -> (
                match pick x with
                | Some v ->
                    ignore
                      (Object_manager.create db ~cls:"Assembly"
                         ~attrs:[ ("Shared", Value.VSet [ Value.Ref v ]) ]
                         ()
                        : Oid.t)
                | None -> ())
          with Core_error.Error _ -> ())
        ops;
      Integrity.check db = [])

let () =
  Alcotest.run "orion_versions"
    [
      ( "model (§5.1)",
        [
          Alcotest.test_case "create versionable" `Quick test_create_versionable;
          Alcotest.test_case "plain class" `Quick test_plain_class_not_versionable;
          Alcotest.test_case "derivation numbering/tree" `Quick
            test_derive_numbers_and_tree;
          Alcotest.test_case "default resolution" `Quick
            test_default_version_resolution;
          Alcotest.test_case "dynamic binding" `Quick test_dynamic_binding_resolution;
          Alcotest.test_case "bind static/dynamic" `Quick test_bind_static_dynamic;
        ] );
      ( "composite versions (§5.2)",
        [
          Alcotest.test_case "shared refs copy" `Quick
            test_derive_shared_increments_refcount;
          Alcotest.test_case "weak refs copy" `Quick test_derive_weak_copies;
          Alcotest.test_case "exclusive-to-plain nulls" `Quick
            test_exclusive_to_plain_not_duplicated;
          Alcotest.test_case "derive grows version set" `Quick
            test_derive_failure_rolls_back;
        ] );
      ( "deletion (CV-4X)",
        [
          Alcotest.test_case "dependent cascade" `Quick test_delete_version_cascades;
          Alcotest.test_case "generic deletes versions" `Quick
            test_delete_generic_deletes_versions;
          Alcotest.test_case "version removal updates generic" `Quick
            test_delete_version_updates_generic;
          Alcotest.test_case "dynamic refs scrubbed" `Quick
            test_dangling_dynamic_ref_scrubbed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_derive_preserves_integrity ]);
    ]
