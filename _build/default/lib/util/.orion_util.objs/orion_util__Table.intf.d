lib/util/table.mli:
