open Orion_core
module Schema = Orion_schema.Schema

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type path = string list

type t =
  | Const of bool
  | Cmp of comparison * path * Value.t
  | Refers of path * Oid.t
  | Has of path
  | In_class of path * string
  | Component_of of Oid.t
  | And of t list
  | Or of t list
  | Not of t
  | Exists of path * t
  | Forall of path * t

let pp_comparison ppf c =
  Format.pp_print_string ppf
    (match c with Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let pp_path ppf path = Format.pp_print_string ppf (String.concat "." path)

let rec pp ppf = function
  | Const b -> Format.pp_print_bool ppf b
  | Cmp (c, path, v) ->
      Format.fprintf ppf "(%a %a %a)" pp_comparison c pp_path path Value.pp v
  | Refers (path, oid) -> Format.fprintf ppf "(refers %a %a)" pp_path path Oid.pp oid
  | Has path -> Format.fprintf ppf "(has %a)" pp_path path
  | In_class (path, cls) -> Format.fprintf ppf "(is-a %a %s)" pp_path path cls
  | Component_of oid -> Format.fprintf ppf "(part-of %a)" Oid.pp oid
  | And es ->
      Format.fprintf ppf "(and %a)" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) es
  | Or es ->
      Format.fprintf ppf "(or %a)" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) es
  | Not e -> Format.fprintf ppf "(not %a)" pp e
  | Exists (path, e) -> Format.fprintf ppf "(exists %a %a)" pp_path path pp e
  | Forall (path, e) -> Format.fprintf ppf "(forall %a %a)" pp_path path pp e

(* Path resolution ------------------------------------------------------------ *)

let rec flatten v acc =
  match v with
  | Value.VSet vs -> List.fold_left (fun acc v -> flatten v acc) acc vs
  | Value.Null -> acc
  | other -> other :: acc

let step db values attr =
  List.concat_map
    (fun v ->
      match v with
      | Value.Ref target -> (
          (* Dynamic bindings resolve through the default version. *)
          let resolved = Traversal.resolve db target in
          match Database.find db resolved with
          | None -> []
          | Some inst -> (
              if Instance.is_generic inst then []
              else
                match Instance.attr inst attr with
                | Some next -> flatten next []
                | None -> []))
      | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _
      | Value.VSet _ ->
          [])
    values

let resolve_path db oid path =
  List.fold_left (step db) [ Value.Ref oid ] path

(* Objects (not primitive leaves) reached by a path. *)
let objects_at db oid path =
  resolve_path db oid path
  |> List.filter_map (function
       | Value.Ref target ->
           let resolved = Traversal.resolve db target in
           if Database.exists db resolved then Some resolved else None
       | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _
       | Value.VSet _ ->
           None)

(* Comparisons: same-constructor primitives only, no coercion. *)
let compare_values c a b =
  let ordered lt le gt ge cmp =
    match c with
    | Lt -> lt cmp
    | Le -> le cmp
    | Gt -> gt cmp
    | Ge -> ge cmp
    | Eq | Neq -> assert false
  in
  match c with
  | Eq -> Value.equal a b
  | Neq -> not (Value.equal a b)
  | Lt | Le | Gt | Ge -> (
      let of_cmp cmp =
        ordered (fun n -> n < 0) (fun n -> n <= 0) (fun n -> n > 0) (fun n -> n >= 0) cmp
      in
      match (a, b) with
      | Value.Int x, Value.Int y -> of_cmp (Int.compare x y)
      | Value.Float x, Value.Float y -> of_cmp (Float.compare x y)
      | Value.Str x, Value.Str y -> of_cmp (String.compare x y)
      | _ -> false)

let rec eval db oid expr =
  match expr with
  | Const b -> b
  | Cmp (c, path, v) ->
      List.exists (fun reached -> compare_values c reached v) (resolve_path db oid path)
  | Refers (path, target) ->
      List.exists
        (function Value.Ref r -> Oid.equal r target | _ -> false)
        (resolve_path db oid path)
  | Has path -> resolve_path db oid path <> []
  | In_class (path, cls) ->
      let candidates = match path with [] -> [ oid ] | _ -> objects_at db oid path in
      List.exists
        (fun candidate ->
          match Database.find db candidate with
          | Some inst ->
              Schema.mem (Database.schema db) cls
              && Schema.is_subclass_of (Database.schema db) ~sub:inst.Instance.cls
                   ~super:cls
          | None -> false)
        candidates
  | Component_of whole -> Traversal.component_of db oid whole
  | And es -> List.for_all (eval db oid) es
  | Or es -> List.exists (eval db oid) es
  | Not e -> not (eval db oid e)
  | Exists (path, e) -> List.exists (fun o -> eval db o e) (objects_at db oid path)
  | Forall (path, e) -> List.for_all (fun o -> eval db o e) (objects_at db oid path)

let rec indexable = function
  | Cmp (Eq, [ attr ], (Value.Int _ | Value.Str _ | Value.Bool _ | Value.Float _ as v))
    ->
      Some (attr, v)
  | And es -> List.find_map indexable es
  | Const _ | Cmp _ | Refers _ | Has _ | In_class _ | Component_of _ | Or _ | Not _
  | Exists _ | Forall _ ->
      None
