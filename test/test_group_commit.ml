(* Unit tests for the group-commit batcher: K coincident commits become
   one log append + one sync sealed by a single [Commit_group]; a solo
   commit seals with a plain [Commit] (byte-identical to the direct
   path); a crash anywhere inside a batch makes the whole batch abort —
   on the submitters' side via the failure notification, and on replay
   because the unsealed records are invisible to recovery.  The offline
   checker accepts a group-committed store. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Store = Orion_storage.Store
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module Group_commit = Orion_wal.Group_commit
module Recovery = Orion_wal.Recovery
module Tx = Orion_tx.Tx_manager
module Obs = Orion_obs.Metrics
module SC = Orion_analysis.Store_check

let define_schema db =
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leaf" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ];
  define "Node"
    [
      A.make ~name:"Kids" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ]

(* A database wired to an in-memory log, checkpointed once so the log
   holds the catalog. *)
let boot () =
  let db = Database.create () in
  define_schema db;
  let wal = Wal.create () in
  Wal.attach wal db;
  Persist.save db;
  let manager = Tx.create ~wal db in
  (db, wal, manager)

(* One open transaction that created a fresh family (no lock conflicts
   between several of these, so they can all commit in one batch). *)
let open_tx manager tag =
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  ignore
    (Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ]
       ~attrs:[ ("Tag", Value.Int tag) ] ()
      : Oid.t);
  (tx, node)

(* Capture all after-images first, then submit everything inside the
   window, then wait for the committer's verdicts. *)
let submit_all gc manager txs ~eager =
  let captured = List.map (fun tx -> (tx, Tx.submit_commit manager tx)) txs in
  let mu = Mutex.create () in
  let verdicts = ref [] in
  List.iter
    (fun (tx, (records, (next_oid, clock, cc))) ->
      Group_commit.submit gc ~tx:(Tx.tx_id tx) ~records ~next_oid ~clock ~cc
        ~eager ~notify:(fun ~ok ~err ->
          Mutex.lock mu;
          verdicts := (Tx.tx_id tx, ok, err) :: !verdicts;
          Mutex.unlock mu))
    captured;
  let deadline = Unix.gettimeofday () +. 10. in
  let all_in () =
    Mutex.lock mu;
    let n = List.length !verdicts in
    Mutex.unlock mu;
    n = List.length txs
  in
  while (not (all_in ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (all_in ()) then Alcotest.fail "committer never reported";
  !verdicts

(* Read through a snapshot: [Obs.counter] would register a fresh
   instrument over the log's live one. *)
let syncs () =
  Option.value (Obs.find_counter (Obs.snapshot ()) "wal.syncs") ~default:0

let seals records =
  List.filter_map
    (function
      | Wal_record.Commit { tx; _ } -> Some (`Commit tx)
      | Wal_record.Commit_group { txs; _ } -> Some (`Group txs)
      | _ -> None)
    records

let test_batch_seals_once () =
  let db, wal, manager = boot () in
  let opened = List.map (fun tag -> open_tx manager tag) [ 1; 2; 3 ] in
  let txs = List.map fst opened in
  (* A long window next to a fast submit loop: all three land in one
     batch deterministically. *)
  let gc = Group_commit.create ~window:0.2 wal in
  let syncs_before = syncs () in
  let verdicts = submit_all gc manager txs ~eager:false in
  List.iter
    (fun (tx, ok, err) ->
      if not ok then Alcotest.failf "tx %d failed to commit: %s" tx err)
    verdicts;
  Alcotest.(check int) "one sync for the whole batch" 1 (syncs () - syncs_before);
  List.iter (fun tx -> ignore (Tx.complete_commit manager tx : int list)) txs;
  Group_commit.shutdown gc;
  (* One [Commit_group] seal naming all three, no per-transaction
     commit records. *)
  (match seals (Wal.scan wal).Wal.records with
  | [ `Group sealed ] ->
      Alcotest.(check (list int))
        "all members sealed"
        (List.sort compare (List.map Tx.tx_id txs))
        (List.sort compare sealed)
  | other -> Alcotest.failf "expected one group seal, found %d" (List.length other));
  (* Replay applies every member. *)
  let recovered, rstats = Recovery.replay (Wal.of_bytes (Wal.contents wal)) in
  Alcotest.(check int) "all batched txs replayed" 3 rstats.Recovery.committed_txs;
  Alcotest.(check int) "recovered object count" (Database.count db)
    (Database.count recovered);
  List.iter
    (fun (_, node) ->
      Alcotest.(check bool) "family root recovered" true
        (Database.exists recovered node))
    opened;
  (match Integrity.check recovered with
  | [] -> ()
  | violations ->
      Alcotest.failf "recovered integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

let test_solo_commit_seals_plain () =
  let _db, wal, manager = boot () in
  let tx, _node = open_tx manager 7 in
  let gc = Group_commit.create ~window:0.2 wal in
  let verdicts = submit_all gc manager [ tx ] ~eager:true in
  (match verdicts with
  | [ (_, true, _) ] -> ()
  | _ -> Alcotest.fail "solo commit did not succeed");
  ignore (Tx.complete_commit manager tx : int list);
  Group_commit.shutdown gc;
  (* Byte-compat: a batch of one is indistinguishable from the direct
     commit path — a plain [Commit], never a singleton group. *)
  (match seals (Wal.scan wal).Wal.records with
  | [ `Commit sealed ] -> Alcotest.(check int) "sealed tx" (Tx.tx_id tx) sealed
  | _ -> Alcotest.fail "expected exactly one plain commit seal");
  let _, rstats = Recovery.replay (Wal.of_bytes (Wal.contents wal)) in
  Alcotest.(check int) "replayed" 1 rstats.Recovery.committed_txs

let test_fail_mid_batch_aborts_all () =
  let db, wal, manager = boot () in
  let baseline = Database.count db in
  let tx1, _ = open_tx manager 1 in
  let tx2, _ = open_tx manager 2 in
  (* Let one record of the batch reach the log, then crash: the seal
     never lands, so durably the batch never happened. *)
  Wal.inject_fault wal (Some (`Fail_after 1));
  let gc = Group_commit.create ~window:0.05 wal in
  let verdicts = submit_all gc manager [ tx1; tx2 ] ~eager:false in
  List.iter
    (fun (tx, ok, _) ->
      Alcotest.(check bool) (Printf.sprintf "tx %d reported failed" tx) false ok)
    verdicts;
  Group_commit.kill gc;
  (* The submitters roll their workspaces back on the failure verdict,
     exactly like the shards do. *)
  ignore (Tx.commit_failed manager tx1 : int list);
  ignore (Tx.commit_failed manager tx2 : int list);
  Alcotest.(check int) "workspace rolled back" baseline (Database.count db);
  (* Replay of the surviving bytes: zero commits, baseline state. *)
  let recovered, rstats = Recovery.replay (Wal.of_bytes (Wal.contents wal)) in
  Alcotest.(check int) "no tx replayed" 0 rstats.Recovery.committed_txs;
  Alcotest.(check int) "baseline state" baseline (Database.count recovered)

let test_torn_seal_replays_nothing () =
  let db, wal, manager = boot () in
  let baseline = Database.count db in
  let tx1, _ = open_tx manager 1 in
  let tx2, _ = open_tx manager 2 in
  (* Capture first so we can aim the tear at the seal itself: every
     member record is appended intact, the [Commit_group] frame tears
     mid-write — the worst case for all-or-none. *)
  let captured =
    List.map (fun tx -> (tx, Tx.submit_commit manager tx)) [ tx1; tx2 ]
  in
  let n_records =
    List.fold_left (fun n (_, (rs, _)) -> n + List.length rs) 0 captured
  in
  Wal.inject_fault wal (Some (`Torn_after n_records));
  let gc = Group_commit.create ~window:0.05 wal in
  let mu = Mutex.create () in
  let verdicts = ref [] in
  List.iter
    (fun (tx, (records, (next_oid, clock, cc))) ->
      Group_commit.submit gc ~tx:(Tx.tx_id tx) ~records ~next_oid ~clock ~cc
        ~eager:false ~notify:(fun ~ok ~err:_ ->
          Mutex.lock mu;
          verdicts := (Tx.tx_id tx, ok) :: !verdicts;
          Mutex.unlock mu))
    captured;
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (Mutex.lock mu;
     let n = List.length !verdicts in
     Mutex.unlock mu;
     n < 2)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  List.iter
    (fun (tx, ok) ->
      Alcotest.(check bool) (Printf.sprintf "tx %d reported failed" tx) false ok)
    !verdicts;
  Group_commit.kill gc;
  ignore (Tx.commit_failed manager tx1 : int list);
  ignore (Tx.commit_failed manager tx2 : int list);
  (* The torn seal is detected and everything under it discarded: the
     member records are a dead prefix with no seal, so replay applies
     ZERO transactions of the batch. *)
  let { Wal.torn_tail; _ } = Wal.scan wal in
  Alcotest.(check bool) "torn tail detected" true torn_tail;
  let recovered, rstats = Recovery.replay (Wal.of_bytes (Wal.contents wal)) in
  Alcotest.(check int) "no tx replayed" 0 rstats.Recovery.committed_txs;
  Alcotest.(check int) "baseline state" baseline (Database.count recovered);
  (match Integrity.check recovered with
  | [] -> ()
  | violations ->
      Alcotest.failf "recovered integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations)

(* The offline checker on a group-committed store: [Commit_group] is
   just another sealed frame to fsck — clean store, clean log. *)
let test_fsck_clean_on_group_committed_store () =
  let temp name =
    let path = Filename.temp_file "orion_gc_fsck" name in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    path
  in
  let wal_path = temp ".wal" in
  let db = Database.create () in
  define_schema db;
  let wal = Wal.create () in
  Wal.attach wal db;
  Wal.set_backing wal (Some wal_path);
  Persist.save db;
  let manager = Tx.create ~wal db in
  let tx1, _ = open_tx manager 1 in
  let tx2, _ = open_tx manager 2 in
  let gc = Group_commit.create ~window:0.2 wal in
  let verdicts = submit_all gc manager [ tx1; tx2 ] ~eager:false in
  List.iter
    (fun (tx, ok, err) ->
      if not ok then Alcotest.failf "tx %d failed: %s" tx err)
    verdicts;
  ignore (Tx.complete_commit manager tx1 : int list);
  ignore (Tx.complete_commit manager tx2 : int list);
  Group_commit.shutdown gc;
  Persist.save db;
  let store_path = temp ".odb" in
  Store.save_file (Database.store db) store_path;
  let report = SC.check_file ~wal:wal_path store_path in
  if report.SC.issues <> [] then
    Alcotest.failf "fsck issues on group-committed store:\n%s"
      (String.concat "\n"
         (List.map (Format.asprintf "%a" SC.pp_issue) report.SC.issues))

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_group_commit"
    [
      ( "batching",
        [
          Alcotest.test_case "batch of 3 seals once" `Quick test_batch_seals_once;
          Alcotest.test_case "solo seals as plain commit" `Quick
            test_solo_commit_seals_plain;
        ] );
      ( "crash",
        [
          Alcotest.test_case "fail mid-batch aborts all" `Quick
            test_fail_mid_batch_aborts_all;
          Alcotest.test_case "torn seal replays nothing" `Quick
            test_torn_seal_replays_nothing;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "clean on group-committed store" `Quick
            test_fsck_clean_on_group_committed_store;
        ] );
    ]
