(* Tests for the MVCC-lite subsystem: version-store visibility and GC,
   lock-free snapshot transactions (zero lock-table traffic asserted
   through the obs counters), all-or-none visibility of group-commit
   batches, the crash drill (log dies mid-batch -> recover -> a
   snapshot agrees with replay), and the wire/replica paths: a
   `--snapshot` reader against a live server and against a read-only
   replica answering at its applied clock. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Version_store = Orion_mvcc.Version_store
module Snapshot_read = Orion_mvcc.Snapshot_read
module Tx = Orion_tx.Tx_manager
module Wal = Orion_wal.Wal
module Wal_record = Orion_wal.Wal_record
module Group_commit = Orion_wal.Group_commit
module Recovery = Orion_wal.Recovery
module Obs = Orion_obs.Metrics
module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Tx_service = Orion_server.Tx_service
module Tailer = Orion_replication.Tailer
module Replica = Orion_replication.Replica
module Client = Orion_client
module Message = Orion_protocol.Message

let fixture () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leaf" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ];
  define "Node"
    [
      A.make ~name:"Kids" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];
  db

let capture db oid =
  {
    Version_store.inst = Instance.copy (Database.get db oid);
    rrefs = Database.rrefs db oid;
  }

let tag_of = function
  | `Image img -> Instance.attr img.Version_store.inst "Tag"
  | `Absent -> None
  | `Fallthrough -> Alcotest.fail "unexpected fall-through"

let counter name =
  Option.value (Obs.find_counter (Obs.snapshot ()) name) ~default:0

(* Version store ---------------------------------------------------------------- *)

let test_store_visibility () =
  let db = fixture () in
  let leaf =
    Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 0) ] ()
  in
  let vs = Version_store.create db in
  let c0 = Version_store.current_clock vs in
  Alcotest.(check bool) "unwritten object falls through" true
    (Version_store.read vs ~clock:c0 leaf = `Fallthrough);
  (* A writer about to dirty the object notes its committed state. *)
  Version_store.note_base vs leaf (Some (capture db leaf));
  let s1 = Version_store.open_snap vs ~id:1 in
  Object_manager.write_attr db leaf "Tag" (Value.Int 1);
  Version_store.publish vs ~clock:(c0 + 1) [ (leaf, Some (capture db leaf)) ];
  let s2 = Version_store.open_snap vs ~id:2 in
  Object_manager.write_attr db leaf "Tag" (Value.Int 2);
  Version_store.publish vs ~clock:(c0 + 2) [ (leaf, Some (capture db leaf)) ];
  Alcotest.(check bool) "snapshot 1 reads the base" true
    (tag_of (Version_store.read vs ~clock:s1 leaf) = Some (Value.Int 0));
  Alcotest.(check bool) "snapshot 2 reads version 1" true
    (tag_of (Version_store.read vs ~clock:s2 leaf) = Some (Value.Int 1));
  Alcotest.(check bool) "the sealed clock reads version 2" true
    (tag_of (Version_store.read vs ~clock:(c0 + 2) leaf) = Some (Value.Int 2));
  (* A tombstone hides the object from later clocks, not earlier ones. *)
  Version_store.publish vs ~clock:(c0 + 3) [ (leaf, None) ];
  Alcotest.(check bool) "deleted at the new clock" true
    (Version_store.read vs ~clock:(c0 + 3) leaf = `Absent);
  Alcotest.(check bool) "snapshot 2 unaffected by the delete" true
    (tag_of (Version_store.read vs ~clock:s2 leaf) = Some (Value.Int 1));
  (* Closing every snapshot lets the watermark catch up and the chain
     collapse to the live state, i.e. disappear. *)
  Version_store.close_snap vs ~id:1;
  Version_store.close_snap vs ~id:2;
  Alcotest.(check int) "chains dropped once nobody watches" 0
    (Version_store.chain_count vs)

let test_store_pins_survive_gc () =
  let db = fixture () in
  let leaf =
    Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 0) ] ()
  in
  let vs = Version_store.create db in
  let c0 = Version_store.current_clock vs in
  (* A dirty writer pins its chain: publish-time GC must not drop it
     even with no snapshot open. *)
  Version_store.note_base ~tx:7 vs leaf (Some (capture db leaf));
  Object_manager.write_attr db leaf "Tag" (Value.Int 1);
  Version_store.publish vs ~clock:(c0 + 1) [ (leaf, Some (capture db leaf)) ];
  Alcotest.(check int) "pinned chain survives publish-time GC" 1
    (Version_store.chain_count vs);
  Version_store.settle vs ~tx:7;
  Alcotest.(check int) "settle releases the pin and the chain" 0
    (Version_store.chain_count vs);
  Version_store.settle vs ~tx:7 (* idempotent *)

(* Snapshot transactions -------------------------------------------------------- *)

let test_snapshot_isolation () =
  let db = fixture () in
  let manager = Tx.create db in
  let tx1 = Tx.begin_tx manager in
  let leaf =
    Tx.create_object manager tx1 ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 1) ] ()
  in
  ignore (Tx.commit manager tx1 : int list);
  let snap = Tx.begin_snapshot manager in
  let view = Tx.snapshot_view snap in
  (* A concurrent writer commits an update and a brand-new object. *)
  let tx2 = Tx.begin_tx manager in
  Tx.write_attr manager tx2 leaf "Tag" (Value.Int 2);
  let node = Tx.create_object manager tx2 ~cls:"Node" () in
  ignore (Tx.commit manager tx2 : int list);
  Alcotest.(check bool) "snapshot reads the begin-clock value" true
    (Snapshot_read.attr view leaf "Tag" = Some (Value.Int 1));
  Alcotest.(check bool) "objects created after the begin clock are absent"
    false
    (Snapshot_read.exists view node);
  Alcotest.(check bool) "the live database moved on" true
    (Value.equal (Object_manager.read_attr db leaf "Tag") (Value.Int 2));
  Tx.end_snapshot manager snap;
  (* A fresh snapshot begins past the writer's seal. *)
  let snap2 = Tx.begin_snapshot manager in
  let view2 = Tx.snapshot_view snap2 in
  Alcotest.(check bool) "fresh snapshot sees the commit" true
    (Snapshot_read.attr view2 leaf "Tag" = Some (Value.Int 2)
    && Snapshot_read.exists view2 node);
  Alcotest.(check bool) "clocks advance monotonically" true
    (Tx.snapshot_clock snap2 > Tx.snapshot_clock snap);
  Tx.end_snapshot manager snap2;
  Tx.end_snapshot manager snap2 (* idempotent *)

let test_snapshot_traversals () =
  let db = fixture () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  let l1 =
    Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ] ()
  in
  ignore (Tx.commit manager tx : int list);
  let snap = Tx.begin_snapshot manager in
  let view = Tx.snapshot_view snap in
  (* Another leaf joins the composite after the snapshot began. *)
  let tx2 = Tx.begin_tx manager in
  let l2 =
    Tx.create_object manager tx2 ~cls:"Leaf" ~parents:[ (node, "Kids") ] ()
  in
  ignore (Tx.commit manager tx2 : int list);
  Alcotest.(check (list int))
    "components-of at the begin clock"
    [ Oid.to_int l1 ]
    (List.map Oid.to_int (Snapshot_read.components_of view node));
  Alcotest.(check (list int))
    "ancestors-of at the begin clock"
    [ Oid.to_int node ]
    (List.map Oid.to_int (Snapshot_read.ancestors_of view l1));
  Tx.end_snapshot manager snap;
  let snap2 = Tx.begin_snapshot manager in
  let view2 = Tx.snapshot_view snap2 in
  Alcotest.(check bool) "fresh snapshot sees both components" true
    (let comps = Snapshot_read.components_of view2 node in
     List.mem l1 comps && List.mem l2 comps && List.length comps = 2);
  Tx.end_snapshot manager snap2;
  Alcotest.(check bool) "live traversal agrees" true
    (List.length (Traversal.components_of db node) = 2)

(* The acceptance bar: a snapshot resolves attribute reads and both
   traversals while a writer holds locks mid-transaction, without a
   single lock-table acquisition or block of its own. *)
let test_snapshot_takes_no_locks () =
  let db = fixture () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  let leaf =
    Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ]
      ~attrs:[ ("Tag", Value.Int 1) ] ()
  in
  ignore (Tx.commit manager tx : int list);
  (* The concurrent writer: locked and dirty, commit still in flight. *)
  let writer = Tx.begin_tx manager in
  ignore
    (Tx.lock_composite manager writer ~root:node Orion_locking.Protocol.Update
      : [ `Granted | `Blocked ]);
  Tx.write_attr manager writer leaf "Tag" (Value.Int 99);
  let acq0 = counter "lock.acquisitions" and blk0 = counter "lock.blocks" in
  let snap = Tx.begin_snapshot manager in
  let view = Tx.snapshot_view snap in
  Alcotest.(check bool) "snapshot reads the pre-write value under the lock"
    true
    (Snapshot_read.attr view leaf "Tag" = Some (Value.Int 1));
  ignore (Snapshot_read.components_of view node : Oid.t list);
  ignore (Snapshot_read.ancestors_of view leaf : Oid.t list);
  Tx.end_snapshot manager snap;
  Alcotest.(check int) "zero lock acquisitions by the snapshot" acq0
    (counter "lock.acquisitions");
  Alcotest.(check int) "zero lock blocks by the snapshot" blk0
    (counter "lock.blocks");
  (* The writer was never blocked either: its commit lands. *)
  ignore (Tx.commit manager writer : int list);
  let snap2 = Tx.begin_snapshot manager in
  Alcotest.(check bool) "post-commit snapshot sees the write" true
    (Snapshot_read.attr (Tx.snapshot_view snap2) leaf "Tag"
    = Some (Value.Int 99));
  Tx.end_snapshot manager snap2

(* Group commit ----------------------------------------------------------------- *)

(* A database wired to an in-memory log whose group committer feeds the
   manager's version store — the same hook the server installs. *)
let boot_wal () =
  let db = fixture () in
  let wal = Wal.create () in
  Wal.attach wal db;
  Persist.save db;
  let manager = Tx.create ~wal db in
  (db, wal, manager)

let wire_gc ?(window = 0.2) wal manager =
  Group_commit.create ~window
    ~on_sealed:(fun ~clock records ->
      Version_store.publish_records (Tx.version_store manager) ~clock records)
    wal

let open_family manager tag =
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  ignore
    (Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ]
       ~attrs:[ ("Tag", Value.Int tag) ] ()
      : Oid.t);
  (tx, node)

let submit_all gc manager txs =
  let captured = List.map (fun tx -> (tx, Tx.submit_commit manager tx)) txs in
  let mu = Mutex.create () in
  let verdicts = ref [] in
  List.iter
    (fun (tx, (records, (next_oid, clock, cc))) ->
      Group_commit.submit gc ~tx:(Tx.tx_id tx) ~records ~next_oid ~clock ~cc
        ~eager:false ~notify:(fun ~ok ~err:_ ->
          Mutex.lock mu;
          verdicts := (Tx.tx_id tx, ok) :: !verdicts;
          Mutex.unlock mu))
    captured;
  let deadline = Unix.gettimeofday () +. 10. in
  let all_in () =
    Mutex.lock mu;
    let n = List.length !verdicts in
    Mutex.unlock mu;
    n = List.length txs
  in
  while (not (all_in ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (all_in ()) then Alcotest.fail "committer never reported";
  !verdicts

(* Satellite: a group-commit batch becomes visible to snapshots
   atomically — every concurrent snapshot sees none or all of it. *)
let test_group_commit_all_or_none () =
  let db, wal, manager = boot_wal () in
  let vs = Tx.version_store manager in
  let opened = List.map (open_family manager) [ 1; 2; 3 ] in
  let txs = List.map fst opened and nodes = List.map snd opened in
  let s0 = Tx.begin_snapshot manager in
  (* Hammer the store with snapshots from another thread while the
     batch commits; record any partial sighting. *)
  let stop = ref false and partial = ref false in
  let poller =
    Thread.create
      (fun () ->
        let id = ref 1_000_000 in
        while not !stop do
          incr id;
          let clock = Version_store.open_snap vs ~id:!id in
          let view =
            Snapshot_read.make ~store:vs ~db ~id:!id ~clock
          in
          let seen =
            List.length (List.filter (Snapshot_read.exists view) nodes)
          in
          if seen <> 0 && seen <> 3 then partial := true;
          Version_store.close_snap vs ~id:!id
        done)
      ()
  in
  let gc = wire_gc wal manager in
  let verdicts = submit_all gc manager txs in
  List.iter
    (fun (tx, ok) ->
      if not ok then Alcotest.failf "tx %d failed to commit" tx)
    verdicts;
  List.iter (fun tx -> ignore (Tx.complete_commit manager tx : int list)) txs;
  stop := true;
  Thread.join poller;
  Group_commit.shutdown gc;
  Alcotest.(check bool) "no snapshot ever saw a partial batch" false !partial;
  Alcotest.(check int) "pre-batch snapshot sees none of it" 0
    (List.length
       (List.filter (Snapshot_read.exists (Tx.snapshot_view s0)) nodes));
  Tx.end_snapshot manager s0;
  let s1 = Tx.begin_snapshot manager in
  Alcotest.(check int) "post-batch snapshot sees all of it" 3
    (List.length
       (List.filter (Snapshot_read.exists (Tx.snapshot_view s1)) nodes));
  Tx.end_snapshot manager s1

(* The crash drill: the log dies one record into a batch (the kill -9
   moment between append and seal), the submitters roll back, and a
   snapshot then agrees exactly with what replay of the surviving bytes
   reconstructs — the sealed prefix, none of the torn batch. *)
let test_crash_mid_batch_snapshot_agrees_with_replay () =
  let db, wal, manager = boot_wal () in
  (* One family committed and sealed before the crash. *)
  let pre_tx = Tx.begin_tx manager in
  let pre_node = Tx.create_object manager pre_tx ~cls:"Node" () in
  let pre_leaf =
    Tx.create_object manager pre_tx ~cls:"Leaf" ~parents:[ (pre_node, "Kids") ]
      ~attrs:[ ("Tag", Value.Int 10) ] ()
  in
  ignore (Tx.commit manager pre_tx : int list);
  let baseline = Database.count db in
  let (tx1, n1) = open_family manager 1 and (tx2, n2) = open_family manager 2 in
  Wal.inject_fault wal (Some (`Fail_after 1));
  let gc = wire_gc ~window:0.05 wal manager in
  let verdicts = submit_all gc manager [ tx1; tx2 ] in
  List.iter
    (fun (tx, ok) ->
      Alcotest.(check bool) (Printf.sprintf "tx %d reported failed" tx) false ok)
    verdicts;
  Group_commit.kill gc;
  ignore (Tx.commit_failed manager tx1 : int list);
  ignore (Tx.commit_failed manager tx2 : int list);
  (* Replay of the surviving bytes: the pre-crash commit, nothing else. *)
  let recovered, rstats = Recovery.replay (Wal.of_bytes (Wal.contents wal)) in
  Alcotest.(check int) "only the sealed tx replays" 1
    rstats.Recovery.committed_txs;
  Alcotest.(check int) "replay reconstructs the baseline" baseline
    (Database.count recovered);
  (* A snapshot over the recovered node agrees with replay, read for
     read. *)
  let rmanager = Tx.create recovered in
  let snap = Tx.begin_snapshot rmanager in
  let view = Tx.snapshot_view snap in
  Alcotest.(check bool) "pre-crash commit visible" true
    (Snapshot_read.exists view pre_node
    && Snapshot_read.attr view pre_leaf "Tag" = Some (Value.Int 10));
  Alcotest.(check bool) "torn batch invisible" false
    (Snapshot_read.exists view n1 || Snapshot_read.exists view n2);
  Tx.end_snapshot rmanager snap;
  (* The crashed node's own snapshots agree too (workspaces rolled
     back, nothing published). *)
  let snap' = Tx.begin_snapshot manager in
  let view' = Tx.snapshot_view snap' in
  Alcotest.(check bool) "crashed node's snapshot agrees with replay" true
    ((not (Snapshot_read.exists view' n1))
    && (not (Snapshot_read.exists view' n2))
    && Snapshot_read.attr view' pre_leaf "Tag" = Some (Value.Int 10));
  Tx.end_snapshot manager snap'

(* Wire ------------------------------------------------------------------------- *)

let temp_dir () =
  let dir = Filename.temp_file "orion_mvcc_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let connect addr = Client.connect ~client_name:"test" addr

let eventually ?(timeout = 10.) probe =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if probe () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let test_wire_snapshot_reads () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "orion.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let server = Server.create env (Server.Unix_path sock) in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread)
    (fun () ->
      let addr = Orion_protocol.Addr.Unix_path sock in
      let writer = connect addr and reader = connect addr in
      ignore (Client.begin_tx writer : int);
      let a = Client.make writer ~cls:"Assembly" () in
      let p1 =
        Client.make writer ~cls:"Part" ~parents:[ (a, "Parts") ]
          ~attrs:[ ("Name", Value.Str "one") ] ()
      in
      Client.commit writer;
      let clock1 = Client.begin_snapshot reader in
      Alcotest.(check bool) "snapshot attr read" true
        (Client.read_attr reader p1 "Name" = Value.Str "one");
      Alcotest.(check (list int)) "snapshot components-of"
        [ Oid.to_int p1 ]
        (List.map Oid.to_int (Client.components_of reader a));
      Alcotest.(check (list int)) "snapshot ancestors-of"
        [ Oid.to_int a ]
        (List.map Oid.to_int (Client.ancestors_of reader p1));
      (* A transaction cannot open while the snapshot is (and vice
         versa). *)
      Alcotest.(check bool) "begin refused under a snapshot" true
        (match Client.begin_tx reader with
        | exception Client.Error (Message.Bad_request, _) -> true
        | _ -> false);
      (* A concurrent writer commits; the open snapshot holds still. *)
      ignore (Client.begin_tx writer : int);
      let p2 = Client.make writer ~cls:"Part" ~parents:[ (a, "Parts") ] () in
      Client.commit writer;
      Alcotest.(check int) "open snapshot still sees one part" 1
        (List.length (Client.components_of reader a));
      Alcotest.(check bool) "post-snapshot object unreadable" true
        (match Client.read_attr reader p2 "Name" with
        | exception Client.Error (Message.Eval_error, _) -> true
        | _ -> false);
      Client.end_snapshot reader;
      let clock2 = Client.begin_snapshot reader in
      Alcotest.(check bool) "begin clock advanced" true (clock2 > clock1);
      Alcotest.(check int) "fresh snapshot sees both parts" 2
        (List.length (Client.components_of reader a));
      Alcotest.(check bool) "fresh snapshot reads the new object" true
        (Client.read_attr reader p2 "Name" = Value.Null);
      Client.end_snapshot reader;
      Alcotest.(check bool) "double end refused" true
        (match Client.end_snapshot reader with
        | exception Client.Error (Message.Bad_request, _) -> true
        | _ -> false);
      Client.close reader;
      Client.close writer)

(* Replica ---------------------------------------------------------------------- *)

let start_primary dir =
  let db_path = Filename.concat dir "p.odb" in
  let sock = Filename.concat dir "p.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  let wal = Wal.create () in
  Wal.attach ~snapshot_path:db_path ~truncate_on_checkpoint:false wal
    (Eval.database env);
  Wal.set_backing wal (Some (db_path ^ ".wal"));
  Wal.sync wal;
  Persist.save (Eval.database env);
  let server =
    Server.create ~wal
      ~repl:(Tx_service.Primary (Tailer.create wal))
      env (Server.Unix_path sock)
  in
  let thread = Thread.create Server.run server in
  (server, thread, Orion_protocol.Addr.Unix_path sock)

(* A replica as `orion serve --replica-of` builds one, version store
   wired so snapshot reads answer at the applied clock. *)
let start_replica dir primary_addr =
  let db_path = Filename.concat dir "r.odb" in
  let sock = Filename.concat dir "r.sock" in
  let wal = Wal.create () in
  Wal.set_backing wal (Some (db_path ^ ".wal"));
  let replica = Replica.create ~primary:primary_addr ~wal ~db_path () in
  let db = Replica.bootstrap replica in
  let env = Eval.create_env ~db () in
  let server =
    Server.create
      ~repl:(Tx_service.Replica_of { replica; promote_gate = None })
      env (Server.Unix_path sock)
  in
  Replica.set_locked replica (fun f ->
      Tx_service.with_lock (Server.service server) f);
  Replica.set_mvcc replica
    (Tx.version_store (Server.service server).Tx_service.manager);
  Replica.start replica;
  let thread = Thread.create Server.run server in
  (server, thread, replica, db, Orion_protocol.Addr.Unix_path sock)

let test_replica_snapshot_reads () =
  let dir = temp_dir () in
  let p_server, p_thread, p_addr = start_primary dir in
  Fun.protect
    ~finally:(fun () ->
      Server.stop p_server;
      Thread.join p_thread)
    (fun () ->
      let r_server, r_thread, replica, r_db, r_addr =
        start_replica dir p_addr
      in
      Fun.protect
        ~finally:(fun () ->
          Server.stop r_server;
          Thread.join r_thread;
          Replica.stop replica)
        (fun () ->
          let w = connect p_addr in
          ignore (Client.begin_tx w : int);
          let a = Client.make w ~cls:"Assembly" () in
          let p1 =
            Client.make w ~cls:"Part" ~parents:[ (a, "Parts") ]
              ~attrs:[ ("Name", Value.Str "one") ] ()
          in
          Client.commit w;
          Alcotest.(check bool) "replica applied the commit" true
            (eventually (fun () -> Database.count r_db = 2));
          (* A snapshot opens on the read-only replica — no Read_only
             refusal — and answers at the applied clock. *)
          let rc = connect r_addr in
          let clock1 = Client.begin_snapshot rc in
          Alcotest.(check bool) "replica snapshot attr read" true
            (Client.read_attr rc p1 "Name" = Value.Str "one");
          Alcotest.(check (list int)) "replica snapshot components-of"
            [ Oid.to_int p1 ]
            (List.map Oid.to_int (Client.components_of rc a));
          (* The primary commits more; the open replica snapshot holds
             its clock. *)
          ignore (Client.begin_tx w : int);
          let p2 = Client.make w ~cls:"Part" ~parents:[ (a, "Parts") ] () in
          Client.commit w;
          Alcotest.(check bool) "replica applied the second commit" true
            (eventually (fun () -> Database.count r_db = 3));
          Alcotest.(check int) "open replica snapshot still sees one part" 1
            (List.length (Client.components_of rc a));
          Alcotest.(check bool) "post-snapshot object unreadable" true
            (match Client.read_attr rc p2 "Name" with
            | exception Client.Error (Message.Eval_error, _) -> true
            | _ -> false);
          (* Read-your-watermark: a fresh snapshot begun after the
             apply sees the new commit, at a strictly later clock. *)
          Client.end_snapshot rc;
          Alcotest.(check bool) "fresh replica snapshot catches up" true
            (eventually (fun () ->
                 let clock2 = Client.begin_snapshot rc in
                 let n = List.length (Client.components_of rc a) in
                 Client.end_snapshot rc;
                 clock2 > clock1 && n = 2));
          Client.close rc;
          Client.close w))

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_mvcc"
    [
      ( "version store",
        [
          Alcotest.test_case "clock visibility" `Quick test_store_visibility;
          Alcotest.test_case "pins survive gc" `Quick
            test_store_pins_survive_gc;
        ] );
      ( "snapshot transactions",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "traversals" `Quick test_snapshot_traversals;
          Alcotest.test_case "zero lock-table traffic" `Quick
            test_snapshot_takes_no_locks;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "all-or-none visibility" `Quick
            test_group_commit_all_or_none;
          Alcotest.test_case "crash mid-batch agrees with replay" `Quick
            test_crash_mid_batch_snapshot_agrees_with_replay;
        ] );
      ( "wire",
        [
          Alcotest.test_case "snapshot session" `Quick test_wire_snapshot_reads;
        ] );
      ( "replica",
        [
          Alcotest.test_case "snapshot at applied clock" `Quick
            test_replica_snapshot_reads;
        ] );
    ]
