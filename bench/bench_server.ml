(* Multi-client throughput/latency benchmark for the network layer.

   Spins up the reactor on a Unix-domain socket — sharded across 1, 2
   and 4 domains — and drives it with 1, 8 and 32 concurrent clients
   under two workloads:

   - conflict-heavy: every transaction takes the X composite lock on
     one shared Assembly root before appending a Part, so commits are
     strictly serialized and most sessions spend their time parked;
   - disjoint: each client owns a private root, so transactions never
     contend and the bench measures raw reactor/protocol overhead and
     how well the shards parallelize it.

   The server runs with an in-memory log and a group-commit window, so
   each scenario also reports WAL syncs per commit — under concurrent
   load the committer batches coincident commits and the ratio drops
   below 1.0.

   Each op is one transaction (begin, lock-composite, make, commit);
   latency is wall time per op including deadlock/timeout retries.
   Every scenario runs a warmup (excluded from the numbers), then
   measures for at least `--min-duration` seconds (default 1.5; 0.3
   with `--quick`) — or exactly `--ops N` per client when given.
   `--json PATH` writes BENCH_PR6.json-style output. *)

module Eval = Orion_dsl.Eval
module Server = Orion_server.Server
module Client = Orion_client
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr
module Oid = Orion_core.Oid
module Value = Orion_core.Value
module Wal = Orion_wal.Wal
module Obs = Orion_obs.Metrics

let schema_forms =
  {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Assembly :attributes (
  (Parts :domain (set-of Part) :composite true :exclusive true :dependent true)))
|}

let temp_dir () =
  let dir = Filename.temp_file "orion_bench_server" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

type result = {
  workload : string;
  clients : int;
  domains : int;
  partitions : int;
  ops : int;
  elapsed_s : float;
  throughput : float; (* ops/s *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  retries : int;
  syncs_per_commit : float;
  partition_acquires : int array;  (* txsvc.partition{p=K}.acquires *)
  partition_contended : int array;
  merged_searches : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let snap_counter name =
  Option.value (Obs.find_counter (Obs.snapshot ()) name) ~default:0

(* One scenario on a fresh server: [clients] threads appending Parts
   against either one shared root or a per-client root, on a reactor
   sharded across [domains] domains.  Workers first run [warmup_ops]
   unmeasured ops each, then measure until the scenario has run for at
   least [min_duration] seconds (and at least one op); with [fixed_ops]
   they run exactly that many measured ops instead. *)
let run_scenario ~workload ~clients ~domains ~partitions ~warmup_ops
    ~min_duration ~fixed_ops =
  let dir = temp_dir () in
  let sock = Filename.concat dir "bench.sock" in
  let env = Eval.create_env () in
  ignore (Eval.eval_program env schema_forms : Eval.v list);
  (* An in-memory log: commits pay the append + sync protocol (so group
     commit has something to batch) without disk noise. *)
  let wal = Wal.create () in
  Wal.attach wal (Eval.database env);
  let config =
    {
      Server.default_config with
      max_sessions = 64;
      domains;
      lock_partitions = partitions;
      group_commit_window = Some 0.0005;
    }
  in
  let server = Server.create ~config ~wal env (Addr.Unix_path sock) in
  let thread = Thread.create Server.run server in
  let addr = Addr.Unix_path sock in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread;
      (try Sys.remove sock with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let setup = Client.connect ~client_name:"bench-setup" addr in
      let shared_root =
        match Client.eval setup "(make Assembly)" with
        | Message.Obj oid -> oid
        | _ -> failwith "make Assembly"
      in
      let roots =
        Array.init clients (fun _ ->
            match workload with
            | "conflict-heavy" -> shared_root
            | _ -> (
                match Client.eval setup "(make Assembly)" with
                | Message.Obj oid -> oid
                | _ -> failwith "make Assembly"))
      in
      Client.close setup;
      let latencies = Array.init clients (fun _ -> ref []) in
      let op_counts = Array.make clients 0 in
      let retries = Array.make clients 0 in
      let failures = Queue.create () in
      let failures_mu = Mutex.create () in
      (* Two barriers around the measured section so every client warms
         up before any clock starts and the deadline spans all of them. *)
      let barrier = ref 0 in
      let barrier_mu = Mutex.create () in
      let barrier_cond = Condition.create () in
      let await_all () =
        Mutex.lock barrier_mu;
        incr barrier;
        if !barrier mod clients = 0 then Condition.broadcast barrier_cond
        else begin
          let target = ((!barrier / clients) + 1) * clients in
          while !barrier < target do
            Condition.wait barrier_cond barrier_mu
          done
        end;
        Mutex.unlock barrier_mu
      in
      let deadline = ref infinity in
      let worker i () =
        try
          let c = Client.connect ~client_name:"bench" addr in
          let root = roots.(i) in
          let one_op j ~measured =
            let t0 = Unix.gettimeofday () in
            let rec attempt budget =
              ignore (Client.begin_tx c : int);
              match
                Client.lock_composite c ~root Message.Update;
                ignore
                  (Client.make c ~cls:"Part" ~parents:[ (root, "Parts") ]
                     ~attrs:[ ("Name", Value.Str (Printf.sprintf "p-%d-%d" i j)) ]
                     ()
                    : Oid.t);
                Client.commit c
              with
              | () -> ()
              | exception Client.Error ((Message.Conflict | Message.Timeout), _)
                when budget > 0 ->
                  if measured then retries.(i) <- retries.(i) + 1;
                  attempt (budget - 1)
            in
            attempt 20;
            if measured then begin
              latencies.(i) := (Unix.gettimeofday () -. t0) :: !(latencies.(i));
              op_counts.(i) <- op_counts.(i) + 1
            end
          in
          for j = 1 to warmup_ops do
            one_op (-j) ~measured:false
          done;
          await_all ();
          (* Client 0 opens the measured window once everyone is warm. *)
          if i = 0 then deadline := Unix.gettimeofday () +. min_duration;
          await_all ();
          (match fixed_ops with
          | Some n ->
              for j = 1 to n do
                one_op j ~measured:true
              done
          | None ->
              let j = ref 0 in
              while op_counts.(i) = 0 || Unix.gettimeofday () < !deadline do
                incr j;
                one_op !j ~measured:true
              done);
          Client.close c
        with e ->
          Mutex.lock failures_mu;
          Queue.push (i, Printexc.to_string e) failures;
          Mutex.unlock failures_mu
      in
      (* Snapshot the log counters at launch; warmup commits are later
         subtracted via their op count (1 op = 1 commit = [0..1] sync). *)
      let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
      (* The main thread observes the measured window boundaries the
         workers agreed on. *)
      let syncs_before = ref 0 in
      let t_start = ref 0. in
      let observer =
        Thread.create
          (fun () ->
            Mutex.lock barrier_mu;
            while !barrier < clients do
              Condition.wait barrier_cond barrier_mu
            done;
            Mutex.unlock barrier_mu;
            syncs_before := snap_counter "wal.syncs";
            t_start := Unix.gettimeofday ())
          ()
      in
      Thread.join observer;
      List.iter Thread.join threads;
      let elapsed = Unix.gettimeofday () -. !t_start in
      let syncs_after = snap_counter "wal.syncs" in
      (match Queue.peek_opt failures with
      | Some (i, msg) -> failwith (Printf.sprintf "client %d failed: %s" i msg)
      | None -> ());
      let total_ops = Array.fold_left ( + ) 0 op_counts in
      (* Serializability spot-check rides along for free: every append
         (warmup included) must be visible exactly once. *)
      let check = Client.connect ~client_name:"bench-check" addr in
      (* Live reads require a transaction since the dirty-read fix;
         every writer has joined, so these lock without contention. *)
      ignore (Client.begin_tx check : int);
      let seen =
        Array.fold_left
          (fun acc root -> if List.mem root acc then acc else root :: acc)
          [] roots
        |> List.fold_left
             (fun acc root -> acc + List.length (Client.components_of check root))
             0
      in
      Client.commit check;
      Client.close check;
      let expected = total_ops + (clients * warmup_ops) in
      if seen <> expected then
        failwith
          (Printf.sprintf "lost updates: %d parts visible, %d committed" seen
             expected);
      let all =
        Array.of_list (List.concat_map (fun l -> !l) (Array.to_list latencies))
      in
      let sorted = Array.copy all in
      Array.sort Float.compare sorted;
      let mean = Array.fold_left ( +. ) 0.0 all /. float_of_int total_ops in
      (* Per-partition lock traffic, read while this scenario's server
         still owns the registry cells (each scenario re-registers
         them, so only p < partitions is current). *)
      let partition_counters field =
        Array.init partitions (fun k ->
            snap_counter (Printf.sprintf "txsvc.partition{p=%d}.%s" k field))
      in
      {
        workload;
        clients;
        domains;
        partitions;
        ops = total_ops;
        elapsed_s = elapsed;
        throughput = float_of_int total_ops /. elapsed;
        mean_ms = mean *. 1e3;
        p50_ms = percentile sorted 0.50 *. 1e3;
        p95_ms = percentile sorted 0.95 *. 1e3;
        max_ms = sorted.(Array.length sorted - 1) *. 1e3;
        retries = Array.fold_left ( + ) 0 retries;
        syncs_per_commit =
          (if total_ops = 0 then 0.
           else float_of_int (syncs_after - !syncs_before) /. float_of_int total_ops);
        partition_acquires = partition_counters "acquires";
        partition_contended = partition_counters "contended";
        merged_searches = snap_counter "txsvc.merged_searches";
      })

let int_array_json a =
  "["
  ^ String.concat ", " (Array.to_list (Array.map string_of_int a))
  ^ "]"

let write_json ~path results ~workloads ~client_counts ~domain_counts
    ~partition_counts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-server-v3\",\n";
  Bench_meta.add buf;
  (* The servers ran in this process: the registry holds the last
     scenario's lock, pool, dispatch and group-commit numbers alongside
     the latency rows below. *)
  Bench_meta.add_metrics buf (Obs.snapshot ());
  Buffer.add_string buf "  \"results\": {\n";
  List.iteri
    (fun wi workload ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" workload);
      List.iteri
        (fun ci clients ->
          Buffer.add_string buf (Printf.sprintf "      \"clients-%d\": {\n" clients);
          List.iteri
            (fun di domains ->
              Buffer.add_string buf
                (Printf.sprintf "        \"domains-%d\": {\n" domains);
              List.iteri
                (fun pi partitions ->
                  let r =
                    List.find
                      (fun r ->
                        r.workload = workload && r.clients = clients
                        && r.domains = domains && r.partitions = partitions)
                      results
                  in
                  Buffer.add_string buf
                    (Printf.sprintf
                       "          \"partitions-%d\": { \"ops\": %d, \
                        \"elapsed_s\": %.3f, \"throughput_ops_per_s\": %.1f, \
                        \"latency_ms\": { \"mean\": %.3f, \"p50\": %.3f, \
                        \"p95\": %.3f, \"max\": %.3f }, \"retries\": %d, \
                        \"wal_syncs_per_commit\": %.3f, \
                        \"partition_acquires\": %s, \"partition_contended\": \
                        %s, \"merged_searches\": %d }%s\n"
                       r.partitions r.ops r.elapsed_s r.throughput r.mean_ms
                       r.p50_ms r.p95_ms r.max_ms r.retries r.syncs_per_commit
                       (int_array_json r.partition_acquires)
                       (int_array_json r.partition_contended)
                       r.merged_searches
                       (if pi = List.length partition_counts - 1 then ""
                        else ",")))
                partition_counts;
              Buffer.add_string buf
                (Printf.sprintf "        }%s\n"
                   (if di = List.length domain_counts - 1 then "" else ",")))
            domain_counts;
          Buffer.add_string buf
            (Printf.sprintf "      }%s\n"
               (if ci = List.length client_counts - 1 then "" else ",")))
        client_counts;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if wi = List.length workloads - 1 then "" else ",")))
    workloads;
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let arg_value name =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) name then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let json_path = arg_value "--json" in
  let fixed_ops = Option.map int_of_string (arg_value "--ops") in
  let min_duration =
    match arg_value "--min-duration" with
    | Some s -> float_of_string s
    | None -> if quick then 0.3 else 1.5
  in
  let warmup_ops = if quick then 2 else 5 in
  let client_counts = if quick then [ 1; 8 ] else [ 1; 8; 32 ] in
  let domain_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let partition_counts = if quick then [ 1; 2 ] else [ 1; 4 ] in
  let workloads = [ "conflict-heavy"; "disjoint" ] in
  print_endline
    "=== Network server bench: multi-client transactions, sharded reactor ===";
  (match fixed_ops with
  | Some n -> Printf.printf "%d ops/client, one transaction per op\n%!" n
  | None ->
      Printf.printf
        "min %.1fs per scenario after %d warmup ops/client, one transaction \
         per op\n\
         %!"
        min_duration warmup_ops);
  let results =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun clients ->
            List.concat_map
              (fun domains ->
                List.map
                  (fun partitions ->
                    let r =
                      run_scenario ~workload ~clients ~domains ~partitions
                        ~warmup_ops ~min_duration ~fixed_ops
                    in
                    let busy =
                      Array.fold_left
                        (fun n c -> if c > 0 then n + 1 else n)
                        0 r.partition_acquires
                    in
                    Printf.printf
                      "%-15s %2d clients x %d domains x %d partitions: %7.1f \
                       ops/s  mean %6.2f ms  p95 %7.2f ms  syncs/commit %.3f  \
                       (%d retries, %d/%d partitions busy)\n\
                       %!"
                      workload clients domains partitions r.throughput
                      r.mean_ms r.p95_ms r.syncs_per_commit r.retries busy
                      partitions;
                    r)
                  partition_counts)
              domain_counts)
          client_counts)
      workloads
  in
  (* Smoke assertion: under real load a partitioned lock space must
     actually split its traffic — a keying bug that funnels every
     granule into one partition would pass every correctness test while
     silently restoring the global-mutex behavior this PR removes. *)
  List.iter
    (fun r ->
      if r.partitions >= 2 && r.clients >= 8 then begin
        let busy =
          Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0
            r.partition_acquires
        in
        if busy < 2 then
          failwith
            (Printf.sprintf
               "partition split check: %s, %d clients x %d partitions drove \
                all lock traffic into one partition (%s)"
               r.workload r.clients r.partitions
               (int_array_json r.partition_acquires))
      end)
    results;
  match json_path with
  | Some path ->
      write_json ~path results ~workloads ~client_counts ~domain_counts
        ~partition_counts
  | None -> ()
