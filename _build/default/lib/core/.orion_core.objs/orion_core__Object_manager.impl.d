lib/core/object_manager.ml: Core_error Database Format Instance List Oid Option Orion_schema Rref String Topology Value
