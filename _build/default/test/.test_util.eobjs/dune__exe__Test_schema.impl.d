test/test_schema.ml: Alcotest List Option Orion_schema
