lib/locking/lock_mode.mli: Format
