(* Composite objects as units of authorization (§6) and locking (§7):
   a shared design library accessed by several engineers.

   Run with: dune exec examples/design_authority.exe *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Auth = Orion_authz.Auth
module Authz = Orion_authz.Authz_manager
module Protocol = Orion_locking.Protocol
module Tx = Orion_tx.Tx_manager

let () =
  let db = Database.create () in
  let schema = Database.schema db in
  let define ?superclasses name attrs =
    ignore
      (Schema.define schema ?superclasses ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Cell" [ A.make ~name:"Id" ~domain:(D.Primitive D.P_string) () ];
  define "Block"
    [
      A.make ~name:"Cells" ~domain:(D.Class "Cell") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  define "Chip"
    [
      A.make ~name:"Blocks" ~domain:(D.Class "Block") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];

  (* Two chip designs sharing a standard-cell. *)
  let chip_a = Object_manager.create db ~cls:"Chip" () in
  let chip_b = Object_manager.create db ~cls:"Chip" () in
  let block_a = Object_manager.create db ~cls:"Block" ~parents:[ (chip_a, "Blocks") ] () in
  let block_b = Object_manager.create db ~cls:"Block" ~parents:[ (chip_b, "Blocks") ] () in
  let shared_cell =
    Object_manager.create db ~cls:"Cell"
      ~parents:[ (block_a, "Cells"); (block_b, "Cells") ]
      ~attrs:[ ("Id", Value.Str "nand2") ]
      ()
  in

  (* --- Authorization ----------------------------------------------- *)
  let authz = Authz.create db in
  let must = function Ok () -> () | Error _ -> failwith "unexpected conflict" in
  (* One grant on the composite object covers every component. *)
  must (Authz.grant authz ~subject:"alice" ~auth:(Auth.make Auth.Write)
          ~target:(Authz.On_object chip_a));
  must (Authz.grant authz ~subject:"alice" ~auth:(Auth.make Auth.Read)
          ~target:(Authz.On_object chip_b));
  Format.printf "alice on the shared cell: %s (W from chip A, R from chip B)@."
    (Auth.display (Authz.implied_on authz ~subject:"alice" shared_cell));
  Format.printf "alice may write the cell: %b@."
    (Authz.check authz ~subject:"alice" ~op:Auth.Write shared_cell);

  (* A strong negative on one composite conflicts with a positive
     implied through the other: the grant is rejected. *)
  must (Authz.grant authz ~subject:"bob" ~auth:(Auth.make Auth.Read)
          ~target:(Authz.On_object chip_a));
  (match
     Authz.grant authz ~subject:"bob"
       ~auth:(Auth.make ~sign:Auth.Negative Auth.Read)
       ~target:(Authz.On_object chip_b)
   with
  | Error conflicting ->
      Format.printf "bob's s¬R on chip B rejected (%d conflicting grant(s))@."
        (List.length conflicting)
  | Ok () -> failwith "conflict not detected");

  (* A class-level grant: Read on Chip covers chips and their parts. *)
  must (Authz.grant authz ~subject:"carol" ~auth:(Auth.make Auth.Read)
          ~target:(Authz.On_class "Chip"));
  Format.printf "carol may read block A: %b (granted only on class Chip)@."
    (Authz.check authz ~subject:"carol" ~op:Auth.Read block_a);

  (* --- Locking ------------------------------------------------------ *)
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  let t3 = Tx.begin_tx manager in
  (* Two readers of different chips coexist: ISOS is compatible with
     ISOS on the shared Cell class, and the root locks disambiguate the
     Block class (ISO vs ISO). *)
  assert (Tx.lock_composite manager t1 ~root:chip_a Protocol.Read_ = `Granted);
  assert (Tx.lock_composite manager t2 ~root:chip_b Protocol.Read_ = `Granted);
  print_endline "t1 reads chip A while t2 reads chip B: both granted";
  (* A writer of chip A must wait: cells are SHARED components, so an
     update of chip A may touch a cell some reader is seeing through
     chip B — the paper's matrix admits several readers or one writer
     on a shared-reference component class (IXOS vs ISOS conflicts). *)
  (match Tx.lock_composite manager t3 ~root:chip_a Protocol.Update with
  | `Blocked ->
      print_endline
        "t3's update of chip A blocks: the shared cells might be in t2's read set"
  | `Granted -> failwith "expected blocking");
  ignore (Tx.commit manager t1 : int list);
  ignore (Tx.commit manager t2 : int list);
  (* The releases wake t3. *)
  assert (Tx.state t3 = Tx.Active);
  assert (Tx.lock_composite manager t3 ~root:chip_a Protocol.Update = `Granted);
  print_endline "after the readers commit, t3 proceeds";
  ignore (Tx.commit manager t3 : int list);

  Integrity.assert_ok db;
  print_endline "integrity: consistent"
