(* Tests for Orion_dsl.Dump: dumping a database as an ORION program and
   restoring it preserves schema and composite topology. *)

open Orion_core
module Eval = Orion_dsl.Eval
module Dump = Orion_dsl.Dump
module Schema = Orion_schema.Schema
module A = Orion_schema.Attribute
module VM = Orion_versions.Version_manager
module Scenarios = Orion_workload.Scenarios
module Part_gen = Orion_workload.Part_gen

let restore_of db = Dump.restore (Dump.dump db)

(* Compare the composite topology of two databases up to the stable
   naming (o<oid> in the dump equals the original OID). *)
let same_topology original env =
  let restored = Eval.database env in
  Database.count original = Database.count restored
  && Database.fold original ~init:true ~f:(fun acc (inst : Instance.t) ->
         acc
         &&
         match Eval.lookup env (Printf.sprintf "o%d" (Oid.to_int inst.oid)) with
         | None -> Instance.is_generic inst (* generics bound lazily *)
         | Some mapped -> (
             match Database.find restored mapped with
             | None -> false
             | Some r_inst ->
                 String.equal inst.cls r_inst.Instance.cls
                 && List.length (Database.rrefs original inst.oid)
                    = List.length (Database.rrefs restored mapped)))

let test_schema_roundtrip () =
  let db = Database.create () in
  let _ = Scenarios.define_vehicle_schema db in
  let _ = Scenarios.define_document_schema db in
  let env = Dump.restore (Dump.dump_schema db) in
  let schema = Database.schema (Eval.database env) in
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " restored") true (Schema.mem schema cls))
    [ "Vehicle"; "AutoBody"; "Document"; "Section"; "Paragraph"; "Image" ];
  let attr = Option.get (Schema.attribute schema "Document" "Sections") in
  Alcotest.(check bool) "flags preserved" true
    (A.is_composite attr && A.is_shared attr && A.is_dependent attr);
  let tires = Option.get (Schema.attribute schema "Vehicle" "Tires") in
  Alcotest.(check bool) "set-of preserved" true (tires.A.collection = A.Set)

let test_objects_roundtrip () =
  let db = Database.create () in
  let classes = Scenarios.define_document_schema db in
  let d1 =
    Scenarios.build_document db classes ~title:"one" ~sections:2
      ~paragraphs_per_section:2
  in
  let d2 =
    Scenarios.build_document db classes ~title:"two" ~sections:1
      ~paragraphs_per_section:1
  in
  (* Introduce sharing so reverse-reference counts are non-trivial. *)
  Object_manager.make_component db ~parent:d2.Scenarios.d_document ~attr:"Sections"
    ~child:(List.hd d1.Scenarios.d_sections);
  let env = restore_of db in
  Alcotest.(check bool) "topology preserved" true (same_topology db env);
  Integrity.assert_ok (Eval.database env);
  (* The shared section still has two document parents. *)
  let section_name =
    Printf.sprintf "o%d" (Oid.to_int (List.hd d1.Scenarios.d_sections))
  in
  let restored_section = Option.get (Eval.lookup env section_name) in
  Alcotest.(check int) "two parents after restore" 2
    (List.length (Traversal.parents_of (Eval.database env) restored_section))

let test_random_forest_roundtrip () =
  let forest =
    Part_gen.generate ~roots:3
      { Part_gen.default with exclusive = false; share_prob = 0.3; seed = 17 }
  in
  let env = restore_of forest.Part_gen.db in
  Alcotest.(check bool) "topology preserved" true
    (same_topology forest.Part_gen.db env);
  Integrity.assert_ok (Eval.database env)

let test_versions_roundtrip () =
  let db = Database.create () in
  let define ?versionable name attrs =
    ignore
      (Schema.define (Database.schema db) ?versionable ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define ~versionable:true "M"
    [ A.make ~name:"Rev" ~domain:(Orion_schema.Domain.Primitive Orion_schema.Domain.P_integer) () ];
  let v0 = Object_manager.create db ~cls:"M" ~attrs:[ ("Rev", Value.Int 0) ] () in
  let v1 = VM.derive db v0 in
  Object_manager.write_attr db v1 "Rev" (Value.Int 1);
  let v2 = VM.derive db v1 in
  Object_manager.write_attr db v2 "Rev" (Value.Int 2);
  VM.set_default_version db (VM.generic_of db v0) (Some v1);
  let env = restore_of db in
  let rdb = Eval.database env in
  let r_v0 = Option.get (Eval.lookup env (Printf.sprintf "o%d" (Oid.to_int v0))) in
  let r_v1 = Option.get (Eval.lookup env (Printf.sprintf "o%d" (Oid.to_int v1))) in
  Alcotest.(check int) "three versions" 3 (List.length (VM.versions rdb r_v0));
  Alcotest.(check bool) "derivation chain" true
    (VM.derived_from rdb r_v1 = Some r_v0);
  Alcotest.(check bool) "user default restored" true
    (Oid.equal (VM.default_version rdb (VM.generic_of rdb r_v0)) r_v1);
  Alcotest.(check bool) "attribute values restored" true
    (Value.equal (Object_manager.read_attr rdb r_v1 "Rev") (Value.Int 1));
  Integrity.assert_ok rdb

let test_dangling_weak_dropped () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "T" [];
  define "H" [ A.make ~name:"W" ~domain:(Orion_schema.Domain.Class "T") () ];
  let t = Object_manager.create db ~cls:"T" () in
  let h = Object_manager.create db ~cls:"H" ~attrs:[ ("W", Value.Ref t) ] () in
  Object_manager.delete db t;
  ignore h;
  (* The dangling weak reference must not break the dump. *)
  let env = restore_of db in
  Integrity.assert_ok (Eval.database env);
  Alcotest.(check int) "one object restored" 1 (Database.count (Eval.database env))

module Doc_gen = Orion_workload.Doc_gen

let prop_dump_restore_topology =
  QCheck.Test.make ~name:"dump/restore preserves random corpora" ~count:15
    QCheck.(make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let corpus =
        Doc_gen.generate
          { Doc_gen.default with documents = 6; seed; share_section = 0.4 }
      in
      let db = corpus.Doc_gen.db in
      let env = restore_of db in
      same_topology db env
      && Integrity.check (Eval.database env) = [])

let () =
  Alcotest.run "orion_dump"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "schema" `Quick test_schema_roundtrip;
          Alcotest.test_case "documents with sharing" `Quick test_objects_roundtrip;
          Alcotest.test_case "random logical forest" `Quick
            test_random_forest_roundtrip;
          Alcotest.test_case "versions" `Quick test_versions_roundtrip;
          Alcotest.test_case "dangling weak refs" `Quick test_dangling_weak_dropped;
          QCheck_alcotest.to_alcotest prop_dump_restore_topology;
        ] );
    ]
