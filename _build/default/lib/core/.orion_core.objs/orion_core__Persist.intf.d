lib/core/persist.mli: Database Instance Oid Orion_storage
