lib/authz/auth.ml: Format List Printf String
