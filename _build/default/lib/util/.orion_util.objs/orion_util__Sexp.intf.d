lib/util/sexp.mli: Format
