module Schema = Orion_schema.Schema
module Class_def = Orion_schema.Class_def
module Attribute = Orion_schema.Attribute
module Domain = Orion_schema.Domain
module Obs = Orion_obs.Metrics

type severity = Info | Warning | Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with Info -> "info" | Warning -> "warning" | Error -> "error")

type finding = {
  severity : severity;
  code : string;
  cls : string;
  path : string list;
  detail : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%a %s %s: %s" pp_severity f.severity f.code f.cls
    f.detail;
  if f.path <> [] then
    Format.fprintf ppf " [%s]" (String.concat "; " f.path)

let finding_to_sexp f =
  let atoms l = String.concat " " (List.map (Printf.sprintf "%S") l) in
  Printf.sprintf
    "(finding (severity %s) (code %s) (class %S) (path (%s)) (detail %S))"
    (Format.asprintf "%a" pp_severity f.severity)
    f.code f.cls (atoms f.path) f.detail

let errors = List.filter (fun f -> f.severity = Error)
let warnings = List.filter (fun f -> f.severity = Warning)

(* The composite-attribute graph.  One edge per (source class,
   attribute, expanded target): the source side already ranges over
   every class (effective attributes include inherited ones), the
   target side expands the domain with its subclasses — an attribute of
   domain C may hold instances of any subclass of C. *)
type edge = {
  e_src : string;
  e_attr : string;
  e_dst : string;
  e_exclusive : bool;
  e_dependent : bool;
}

let edge_label e = Printf.sprintf "%s.%s->%s" e.e_src e.e_attr e.e_dst

let composite_edges schema =
  List.concat_map
    (fun (c : Class_def.t) ->
      Schema.composite_attributes schema c.name
      |> List.concat_map (fun (a : Attribute.t) ->
             match (a.refkind, Domain.class_name a.domain) with
             | Attribute.Composite { exclusive; dependent }, Some d
               when Schema.mem schema d ->
                 List.map
                   (fun dst ->
                     {
                       e_src = c.name;
                       e_attr = a.Attribute.name;
                       e_dst = dst;
                       e_exclusive = exclusive;
                       e_dependent = dependent;
                     })
                   (d :: Schema.all_subclasses schema d)
             | _ -> []))
    (Schema.classes schema)

let out_edges edges src = List.filter (fun e -> e.e_src = src) edges

(* composite-cycle ---------------------------------------------------------- *)

(* A DFS from [start] looking for a path of composite edges back to
   [start]; each cycle is reported once, for its lexicographically
   smallest member. *)
let find_cycle edges start =
  let visited = Hashtbl.create 16 in
  let rec go cls path =
    List.fold_left
      (fun acc e ->
        match acc with
        | Some _ -> acc
        | None ->
            if e.e_dst = start then Some (List.rev (e :: path))
            else if Hashtbl.mem visited e.e_dst then None
            else begin
              Hashtbl.replace visited e.e_dst ();
              go e.e_dst (e :: path)
            end)
      None (out_edges edges cls)
  in
  go start []

let cycles schema edges =
  List.filter_map
    (fun (c : Class_def.t) ->
      match find_cycle edges c.name with
      | None -> None
      | Some cycle ->
          let members = List.map (fun e -> e.e_src) cycle in
          if List.for_all (fun m -> c.name <= m) members then
            Some
              {
                severity = Error;
                code = "composite-cycle";
                cls = c.name;
                path = List.map edge_label cycle;
                detail =
                  Printf.sprintf
                    "composite references cycle through %d class%s; a \
                     delete-cascade or acyclic-regime check over this schema \
                     can chase its own tail"
                    (List.length members)
                    (if List.length members = 1 then "" else "es");
              }
          else None)
    (Schema.classes schema)

(* cascade-radius ----------------------------------------------------------- *)

(* BFS over dependent composite edges: the classes a delete of one
   instance may transitively cascade into, with the discovery path of
   the furthest one as witness. *)
let cascade_closure edges root =
  let parent = Hashtbl.create 16 in
  (* class -> edge that discovered it *)
  let queue = Queue.create () in
  Queue.add root queue;
  let last = ref None in
  while not (Queue.is_empty queue) do
    let cls = Queue.pop queue in
    List.iter
      (fun e ->
        if e.e_dependent && e.e_dst <> root && not (Hashtbl.mem parent e.e_dst)
        then begin
          Hashtbl.replace parent e.e_dst e;
          last := Some e.e_dst;
          Queue.add e.e_dst queue
        end)
      (out_edges edges cls)
  done;
  let rec witness cls acc =
    match Hashtbl.find_opt parent cls with
    | None -> acc
    | Some e -> witness e.e_src (e :: acc)
  in
  (Hashtbl.length parent, match !last with
   | None -> []
   | Some deepest -> List.map edge_label (witness deepest []))

let cascades schema edges ~threshold =
  List.filter_map
    (fun (c : Class_def.t) ->
      let radius, path = cascade_closure edges c.name in
      if radius >= threshold then
        Some
          {
            severity = Warning;
            code = "cascade-radius";
            cls = c.name;
            path;
            detail =
              Printf.sprintf
                "deleting one %s may cascade across %d classes of dependent \
                 components, all under the root's X lock"
                c.name radius;
          }
      else None)
    (Schema.classes schema)

(* clustering-ambiguity ----------------------------------------------------- *)

let clustering schema edges =
  List.filter_map
    (fun (c : Class_def.t) ->
      let seg = Schema.segment_of_class schema c.name in
      let in_edges =
        List.filter
          (fun e ->
            e.e_dst = c.name && e.e_exclusive && e.e_src <> c.name
            && Schema.segment_of_class schema e.e_src = seg)
          edges
      in
      let parents =
        List.sort_uniq String.compare (List.map (fun e -> e.e_src) in_edges)
      in
      if List.length parents >= 2 then
        Some
          {
            severity = Warning;
            code = "clustering-ambiguity";
            cls = c.name;
            path = List.map edge_label in_edges;
            detail =
              Printf.sprintf
                "%s shares a segment with %d exclusive-composite parent \
                 classes (%s); which parent a new instance clusters with \
                 depends on creation order"
                c.name (List.length parents)
                (String.concat ", " parents);
          }
      else None)
    (Schema.classes schema)

(* lock-fanin (with optional snapshot join) --------------------------------- *)

let observed_blocks snapshot cls =
  match snapshot with
  | None -> None
  | Some s ->
      Obs.find_counter s (Obs.labeled "lock.blocks" ("class", cls))

let fanin schema edges ~threshold ~snapshot =
  let flagged = Hashtbl.create 16 in
  let findings =
    List.filter_map
      (fun (c : Class_def.t) ->
        let in_edges =
          List.filter (fun e -> e.e_dst = c.name && e.e_src <> c.name) edges
        in
        let parents =
          List.sort_uniq String.compare (List.map (fun e -> e.e_src) in_edges)
        in
        let n = List.length parents in
        if n >= threshold then begin
          Hashtbl.replace flagged c.name ();
          let observed =
            match observed_blocks snapshot c.name with
            | Some b -> Printf.sprintf "; %d blocked requests observed" b
            | None -> ""
          in
          Some
            {
              severity = Warning;
              code = "lock-fanin";
              cls = c.name;
              path = List.map edge_label in_edges;
              detail =
                Printf.sprintf
                  "%d classes hold composite references into %s (%s): \
                   unrelated composite roots contend for intention locks on \
                   its class granule%s"
                  n c.name
                  (String.concat ", " parents)
                  observed;
            }
        end
        else None)
      (Schema.classes schema)
  in
  (* Snapshot cross-check: contention the schema shape does not
     predict. *)
  let surprises =
    match snapshot with
    | None -> []
    | Some s ->
        List.filter_map
          (fun (name, v) ->
            match Obs.label_value name ~base:"lock.blocks" ~key:"class" with
            | Some cls when v > 0 && not (Hashtbl.mem flagged cls) ->
                Some
                  {
                    severity = Info;
                    code = "observed-contention";
                    cls;
                    path = [];
                    detail =
                      Printf.sprintf
                        "%d blocked lock requests observed on %s, which has \
                         composite fan-in below the hazard threshold"
                        v cls;
                  }
            | _ -> None)
          s.Obs.counters
  in
  findings @ surprises

(* dead / shadowed composite attributes ------------------------------------- *)

let dead_attributes schema =
  List.concat_map
    (fun (c : Class_def.t) ->
      List.filter_map
        (fun (a : Attribute.t) ->
          match (a.refkind, Domain.class_name a.domain) with
          | Attribute.Composite _, Some d when not (Schema.mem schema d) ->
              Some
                {
                  severity = Warning;
                  code = "dead-composite-attribute";
                  cls = c.name;
                  path = [ Printf.sprintf "%s.%s->%s" c.name a.name d ];
                  detail =
                    Printf.sprintf
                      "composite attribute %s.%s references class %s, which \
                       no longer exists (dropped during schema evolution?)"
                      c.name a.name d;
                }
          | _ -> None)
        c.own_attributes)
    (Schema.classes schema)

(* A class shadows a composite attribute when some superclass resolves
   the name to a composite reference but the class itself resolves it
   to a non-composite one (own override, or first-superclass-wins
   conflict resolution).  Reported where the shadowing is introduced:
   at the first class down the lattice whose resolution flips. *)
let shadowing_source schema cls attr_name =
  List.find_opt
    (fun super ->
      match Schema.attribute schema super attr_name with
      | Some a -> Attribute.is_composite a
      | None -> false)
    (Schema.all_superclasses schema cls)

let shadowed_here schema cls attr_name =
  (match Schema.attribute schema cls attr_name with
  | Some a -> not (Attribute.is_composite a)
  | None -> false)
  && shadowing_source schema cls attr_name <> None

let shadowed_attributes schema =
  List.concat_map
    (fun (c : Class_def.t) ->
      let candidates =
        List.sort_uniq String.compare
          (List.concat_map
             (fun super ->
               List.map
                 (fun (a : Attribute.t) -> a.name)
                 (Schema.composite_attributes schema super))
             (Schema.all_superclasses schema c.name))
      in
      List.filter_map
        (fun attr_name ->
          if
            shadowed_here schema c.name attr_name
            && not
                 (List.exists
                    (fun super -> shadowed_here schema super attr_name)
                    (Schema.superclasses schema c.name))
          then
            let source =
              Option.value
                (shadowing_source schema c.name attr_name)
                ~default:"?"
            in
            Some
              {
                severity = Warning;
                code = "shadowed-composite-attribute";
                cls = c.name;
                path =
                  [
                    Printf.sprintf "%s.%s" source attr_name;
                    Printf.sprintf "%s.%s" c.name attr_name;
                  ];
                detail =
                  Printf.sprintf
                    "%s inherits composite attribute %s from %s but resolves \
                     it to a non-composite reference, dropping IS-PART-OF \
                     semantics in this subtree"
                    c.name attr_name source;
              }
          else None)
        candidates)
    (Schema.classes schema)

(* ---------------------------------------------------------------------------- *)

let analyze ?snapshot ?(cascade_threshold = 6) ?(fanin_threshold = 3) schema =
  let edges = composite_edges schema in
  let findings =
    cycles schema edges
    @ cascades schema edges ~threshold:cascade_threshold
    @ clustering schema edges
    @ fanin schema edges ~threshold:fanin_threshold ~snapshot
    @ dead_attributes schema
    @ shadowed_attributes schema
  in
  List.sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
          match String.compare a.cls b.cls with
          | 0 -> String.compare a.code b.code
          | n -> n)
      | n -> n)
    findings
