(* Frames form an intrusive doubly-linked list in recency order:
   [head] is the most recently used frame, [tail] the eviction victim.
   Both [get] paths are O(1) — a hit splices the frame to the front, a
   miss unlinks the tail — where the previous implementation scanned
   every resident frame ([Hashtbl.fold]) to find the minimum-use one. *)

type frame = {
  page_no : int;
  page : Page.t;
  mutable dirty : bool;
  mutable prev : frame option;  (* toward head (more recent) *)
  mutable next : frame option;  (* toward tail (less recent) *)
}

module Obs = Orion_obs.Metrics

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable head : frame option;
  mutable tail : frame option;
  hits : Obs.counter;
  misses : Obs.counter;
  evictions : Obs.counter;
}

type stats = { hits : int; misses : int; evictions : int }

let create ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = Obs.counter "pool.hits";
    misses = Obs.counter "pool.misses";
    evictions = Obs.counter "pool.evictions";
  }

let unlink t frame =
  (match frame.prev with
  | Some prev -> prev.next <- frame.next
  | None -> t.head <- frame.next);
  (match frame.next with
  | Some next -> next.prev <- frame.prev
  | None -> t.tail <- frame.prev);
  frame.prev <- None;
  frame.next <- None

let push_front t frame =
  frame.prev <- None;
  frame.next <- t.head;
  (match t.head with Some old -> old.prev <- Some frame | None -> t.tail <- Some frame);
  t.head <- Some frame

let touch t frame =
  match t.head with
  | Some h when h == frame -> ()
  | _ ->
      unlink t frame;
      push_front t frame

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page_no (Page.image frame.page);
    frame.dirty <- false
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
      write_back t victim;
      unlink t victim;
      Hashtbl.remove t.frames victim.page_no;
      Obs.incr t.evictions

let get t page_no =
  match Hashtbl.find_opt t.frames page_no with
  | Some frame ->
      Obs.incr t.hits;
      touch t frame;
      frame.page
  | None ->
      Obs.incr t.misses;
      if Hashtbl.length t.frames >= t.capacity then evict_lru t;
      let page = Page.wrap (Disk.read t.disk page_no) in
      let frame = { page_no; page; dirty = false; prev = None; next = None } in
      Hashtbl.replace t.frames page_no frame;
      push_front t frame;
      page

let mark_dirty t page_no =
  match Hashtbl.find_opt t.frames page_no with
  | Some frame -> frame.dirty <- true
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let flush t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let dirty_count t =
  Hashtbl.fold (fun _ frame n -> if frame.dirty then n + 1 else n) t.frames 0

let dirty_pages t =
  Hashtbl.fold (fun no frame acc -> if frame.dirty then no :: acc else acc) t.frames []
  |> List.sort Int.compare

let drop_all t =
  flush t;
  Hashtbl.reset t.frames;
  t.head <- None;
  t.tail <- None

let stats (t : t) =
  {
    hits = Obs.counter_value t.hits;
    misses = Obs.counter_value t.misses;
    evictions = Obs.counter_value t.evictions;
  }

let reset_stats (t : t) =
  Obs.reset_counter t.hits;
  Obs.reset_counter t.misses;
  Obs.reset_counter t.evictions
