(* The lock-discipline checker, tested the way it is built: the engine
   core on synthesized event streams (each test plays a deterministic
   cross-thread interleaving under explicit thread keys), then real
   Omutex traffic through a private engine, then the trace
   record/replay round-trip.  No test installs the global engine — the
   suites that exercise it live run under ORION_LOCKDEP=1 in CI, where
   install's exit hook turns any violation into a red build. *)

module Omutex = Orion_util.Omutex
module Lockdep = Orion_analysis.Lockdep
module SA = Orion_analysis.Schema_analysis

(* Private classes for order-graph tests: equal ranks (so only the
   may-precede graph, not the rank check, can object) and a rank well
   above the engine hierarchy.  Declared once per process. *)
let alpha =
  Omutex.declare ~doc:"test: order-graph node" ~name:"test.alpha" ~rank:100 ()

let beta =
  Omutex.declare ~doc:"test: order-graph node" ~name:"test.beta" ~rank:100 ()

let gamma =
  Omutex.declare ~doc:"test: nesting-free class" ~name:"test.gamma" ~rank:110 ()

let acq ?(inst = 0) ~site cls = Omutex.Acquire { cls; inst; site }
let rel ?(inst = 0) cls = Omutex.Release { cls; inst }

let feed eng key evs = List.iter (fun ev -> Lockdep.handle eng ~key ev) evs

let codes eng =
  List.map (fun f -> f.SA.code) (Lockdep.engine_findings eng)

let find_code eng code =
  List.find_opt
    (fun f -> String.equal f.SA.code code)
    (Lockdep.engine_findings eng)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let detail_mentions f needle = contains f.SA.detail needle

(* Respecting the hierarchy — including ascending same-class nesting
   inside the declared region and a clean wait-style release/reacquire
   — produces nothing. *)
let test_clean_run () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      acq ~site:"a.ml:1" Omutex.txsvc_core;
      acq ~site:"a.ml:2" Omutex.wal_log;
      rel Omutex.wal_log;
      rel Omutex.txsvc_core;
      Omutex.Region_enter "merged-search";
      acq ~inst:0 ~site:"a.ml:3" Omutex.lock_partition;
      acq ~inst:1 ~site:"a.ml:4" Omutex.lock_partition;
      acq ~inst:2 ~site:"a.ml:5" Omutex.lock_partition;
      rel ~inst:2 Omutex.lock_partition;
      rel ~inst:1 Omutex.lock_partition;
      rel ~inst:0 Omutex.lock_partition;
      Omutex.Region_exit "merged-search";
    ];
  (* Another thread taking the same classes in the same order adds
     edges, never findings. *)
  feed eng "t2"
    [
      acq ~site:"b.ml:1" Omutex.txsvc_core;
      acq ~site:"b.ml:2" Omutex.wal_log;
      rel Omutex.wal_log;
      rel Omutex.txsvc_core;
    ];
  Alcotest.(check (list string)) "no findings" [] (codes eng);
  Alcotest.(check bool) "edges observed" true (Lockdep.edge_count eng >= 1)

let test_rank_inversion () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [ acq ~site:"w.ml:10" Omutex.wal_log; acq ~site:"c.ml:20" Omutex.txsvc_core ];
  match find_code eng "rank-inversion" with
  | None -> Alcotest.fail "rank inversion missed"
  | Some f ->
      Alcotest.(check bool) "severity error" true (f.SA.severity = SA.Error);
      Alcotest.(check bool) "outer site in witness" true
        (detail_mentions f "w.ml:10");
      Alcotest.(check bool) "inner site in witness" true
        (detail_mentions f "c.ml:20")

(* The flagship detector: neither order deadlocks on its own; only the
   pair of observations — on two different threads, at four distinct
   sites — is contradictory, and the witness names all four. *)
let test_lock_order_inversion () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      acq ~site:"x.ml:1" alpha;
      acq ~site:"x.ml:2" beta;
      rel beta;
      rel alpha;
    ];
  Alcotest.(check (list string)) "first order is fine" [] (codes eng);
  feed eng "t2"
    [ acq ~site:"y.ml:8" beta; acq ~site:"y.ml:9" alpha ];
  match find_code eng "lock-order-inversion" with
  | None -> Alcotest.fail "order inversion missed"
  | Some f ->
      Alcotest.(check bool) "severity error" true (f.SA.severity = SA.Error);
      List.iter
        (fun site ->
          Alcotest.(check bool)
            (Printf.sprintf "witness names %s" site)
            true (detail_mentions f site))
        [ "x.ml:1"; "x.ml:2"; "y.ml:8"; "y.ml:9" ]

let test_recursive_lock () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [ acq ~inst:3 ~site:"r.ml:1" gamma; acq ~inst:3 ~site:"r.ml:2" gamma ];
  match find_code eng "recursive-lock" with
  | None -> Alcotest.fail "recursive lock missed"
  | Some f ->
      Alcotest.(check bool) "both sites named" true
        (detail_mentions f "r.ml:1" && detail_mentions f "r.ml:2")

let test_same_class_nesting () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [ acq ~inst:0 ~site:"n.ml:1" gamma; acq ~inst:1 ~site:"n.ml:2" gamma ];
  Alcotest.(check bool) "nesting flagged" true
    (find_code eng "same-class-nesting" <> None)

let test_merged_search_protocol () =
  (* Two partition instances outside the region: flagged. *)
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      acq ~inst:0 ~site:"p.ml:1" Omutex.lock_partition;
      acq ~inst:1 ~site:"p.ml:2" Omutex.lock_partition;
    ];
  Alcotest.(check bool) "multi-hold outside region flagged" true
    (find_code eng "merged-search-protocol" <> None);
  (* Descending instance order inside the region: also flagged. *)
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      Omutex.Region_enter "merged-search";
      acq ~inst:2 ~site:"q.ml:1" Omutex.lock_partition;
      acq ~inst:1 ~site:"q.ml:2" Omutex.lock_partition;
    ];
  (match find_code eng "merged-search-protocol" with
  | None -> Alcotest.fail "descending order missed"
  | Some f ->
      Alcotest.(check bool) "names the region" true
        (detail_mentions f "merged-search"));
  (* Ascending inside the region: clean (the sanctioned search). *)
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      Omutex.Region_enter "merged-search";
      acq ~inst:0 ~site:"s.ml:1" Omutex.lock_partition;
      acq ~inst:3 ~site:"s.ml:2" Omutex.lock_partition;
    ];
  Alcotest.(check (list string)) "ascending is clean" [] (codes eng)

let test_held_across_blocking () =
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      acq ~site:"c.ml:1" Omutex.txsvc_core;
      Omutex.Blocking { op = "wal.fsync"; site = "f.ml:9" };
    ];
  (match find_code eng "held-across-blocking" with
  | None -> Alcotest.fail "blocking under no-block class missed"
  | Some f ->
      Alcotest.(check bool) "warning, not error" true
        (f.SA.severity = SA.Warning);
      Alcotest.(check bool) "op and site named" true
        (detail_mentions f "wal.fsync" && detail_mentions f "f.ml:9"));
  (* The same shape inside an allow_blocking bracket is the declared
     exemption — silent.  wal.log is not a no-block class at all. *)
  let eng = Lockdep.create_engine () in
  feed eng "t1"
    [
      acq ~site:"c.ml:1" Omutex.txsvc_core;
      Omutex.Allow_enter "direct-commit-durability";
      Omutex.Blocking { op = "wal.fsync"; site = "f.ml:9" };
      Omutex.Allow_exit "direct-commit-durability";
      rel Omutex.txsvc_core;
      acq ~site:"w.ml:2" Omutex.wal_log;
      Omutex.Blocking { op = "wal.fsync"; site = "f.ml:10" };
    ];
  Alcotest.(check (list string)) "exemption and non-no-block are clean" []
    (codes eng)

(* Findings dedup: the same inverted pair observed a thousand times is
   one finding, and the severity sort puts errors first. *)
let test_dedup_and_ordering () =
  let eng = Lockdep.create_engine () in
  feed eng "t1" [ acq ~site:"c.ml:1" Omutex.txsvc_core ];
  feed eng "t1" [ Omutex.Blocking { op = "unix.select"; site = "s.ml:1" } ];
  for _ = 1 to 1000 do
    feed eng "t2"
      [
        acq ~site:"w.ml:1" Omutex.wal_log;
        acq ~site:"c.ml:2" Omutex.txsvc_core;
        rel Omutex.txsvc_core;
        rel Omutex.wal_log;
      ]
  done;
  let fs = Lockdep.engine_findings eng in
  Alcotest.(check int) "one warning + one error" 2 (List.length fs);
  Alcotest.(check bool) "error sorts first" true
    ((List.hd fs).SA.severity = SA.Error);
  Alcotest.(check int) "exit code is 2" 2 (Lockdep.exit_code fs);
  Alcotest.(check int) "warning alone is 1" 1
    (Lockdep.exit_code
       (List.filter (fun f -> f.SA.severity = SA.Warning) fs));
  Alcotest.(check int) "clean is 0" 0 (Lockdep.exit_code []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "sexp parses" true
        (match Orion_util.Sexp.parse (SA.finding_to_sexp f) with
        | _ -> true
        | exception _ -> false))
    fs

(* Real Omutex traffic: a private engine watches actual lock/unlock
   calls through set_tracer, including the site capture.  The global
   tracer (installed when the suite runs under ORION_LOCKDEP=1) is
   saved and restored around the deliberate inversion. *)
let with_private_engine f =
  let eng = Lockdep.create_engine () in
  Omutex.set_tracer (Some (Lockdep.tracer_of eng));
  Fun.protect
    ~finally:(fun () ->
      match Lockdep.installed () with
      | Some global -> Omutex.set_tracer (Some (Lockdep.tracer_of global))
      | None -> Omutex.set_tracer None)
    (fun () -> f eng)

let test_live_traffic () =
  with_private_engine (fun eng ->
      let core = Omutex.create Omutex.txsvc_core in
      let wal = Omutex.create Omutex.wal_log in
      (* Clean direction. *)
      Omutex.with_lock core (fun () -> Omutex.with_lock wal (fun () -> ()));
      Alcotest.(check (list string)) "clean direction" [] (codes eng);
      (* Seeded inversion: wal then core. *)
      Omutex.with_lock wal (fun () -> Omutex.with_lock core (fun () -> ()));
      match find_code eng "rank-inversion" with
      | None -> Alcotest.fail "live inversion missed"
      | Some f ->
          (* Site capture names this file (with debug info compiled in;
             "?" would mean the backtrace machinery regressed). *)
          Alcotest.(check bool) "witness names this file" true
            (detail_mentions f "test_lockdep.ml"))

let test_live_try_lock_and_wait () =
  with_private_engine (fun eng ->
      let core = Omutex.create Omutex.txsvc_core in
      (* try_lock failure must NOT enter the held-set: a successful
         re-lock afterwards would otherwise be a false recursive-lock. *)
      Omutex.lock core;
      let self_blocked = Omutex.try_lock core in
      Alcotest.(check bool) "self try_lock fails" false self_blocked;
      Omutex.unlock core;
      Alcotest.(check (list string)) "failed try_lock leaves no residue" []
        (codes eng);
      Alcotest.(check bool) "relock is clean" true (Omutex.try_lock core);
      Omutex.unlock core;
      (* wait releases and re-acquires through the wrapper: holding the
         lock across a wait plus a second acquisition elsewhere must
         not look recursive. *)
      let cond = Condition.create () in
      let m = Omutex.create Omutex.group_commit in
      let woken = ref false in
      let waiter =
        Thread.create
          (fun () ->
            Omutex.with_lock m (fun () ->
                while not !woken do
                  Omutex.wait cond m
                done))
          ()
      in
      Thread.delay 0.05;
      Omutex.with_lock m (fun () ->
          woken := true;
          Condition.signal cond);
      Thread.join waiter;
      Alcotest.(check (list string)) "wait round-trip is clean" [] (codes eng))

(* Record through a private engine, replay through check_trace: the
   replayed findings are the recorded run's. *)
let test_trace_roundtrip () =
  let path = Filename.temp_file "lockdep" ".trace" in
  Sys.remove path;
  let eng = Lockdep.create_engine ~trace:path () in
  feed eng "7.0.1"
    [
      acq ~site:"x.ml:1" alpha;
      acq ~site:"x.ml:2" beta;
      rel beta;
      rel alpha;
    ];
  feed eng "7.0.2" [ acq ~site:"y.ml:8" beta; acq ~site:"y.ml:9" alpha ];
  feed eng "7.0.1"
    [
      acq ~site:"c.ml:1" Omutex.txsvc_core;
      Omutex.Blocking { op = "unix.select"; site = "s.ml:3" };
      Omutex.Region_enter "merged-search";
      Omutex.Allow_enter "checkpoint-durability";
      Omutex.Allow_exit "checkpoint-durability";
      Omutex.Region_exit "merged-search";
    ];
  Lockdep.flush_trace eng;
  let live = Lockdep.engine_findings eng in
  let replayed = Lockdep.check_trace path in
  Alcotest.(check (list string)) "same findings, same order"
    (List.map (fun f -> f.SA.code) live)
    (List.map (fun f -> f.SA.code) replayed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same witness" a.SA.detail b.SA.detail)
    live replayed;
  Sys.remove path

let test_trace_rejects_garbage () =
  let path = Filename.temp_file "lockdep" ".trace" in
  let oc = open_out path in
  output_string oc "A 1.0.1 wal.log 0 w.ml:1\n";
  close_out oc;
  (* An A line for a class with no C header is a malformed trace, not
     an empty finding list. *)
  (match Lockdep.check_trace path with
  | _ -> Alcotest.fail "headerless trace accepted"
  | exception Failure msg ->
      Alcotest.(check bool) "names file and line" true (contains msg ":1:"));
  let oc = open_out path in
  output_string oc "Z what is this\n";
  close_out oc;
  (match Lockdep.check_trace path with
  | _ -> Alcotest.fail "garbage line accepted"
  | exception Failure _ -> ());
  Sys.remove path

let () =
  Lockdep.install_from_env ();
  Alcotest.run "orion_lockdep"
    [
      ( "engine",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "rank inversion" `Quick test_rank_inversion;
          Alcotest.test_case "lock-order inversion" `Quick
            test_lock_order_inversion;
          Alcotest.test_case "recursive lock" `Quick test_recursive_lock;
          Alcotest.test_case "same-class nesting" `Quick
            test_same_class_nesting;
          Alcotest.test_case "merged-search protocol" `Quick
            test_merged_search_protocol;
          Alcotest.test_case "held across blocking" `Quick
            test_held_across_blocking;
          Alcotest.test_case "dedup, ordering, exit codes" `Quick
            test_dedup_and_ordering;
        ] );
      ( "live",
        [
          Alcotest.test_case "real traffic witnessed" `Quick test_live_traffic;
          Alcotest.test_case "try_lock and wait" `Quick
            test_live_try_lock_and_wait;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record/replay round-trip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "malformed trace rejected" `Quick
            test_trace_rejects_garbage;
        ] );
    ]
