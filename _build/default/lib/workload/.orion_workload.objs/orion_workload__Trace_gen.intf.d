lib/workload/trace_gen.mli: Database Oid Orion_core Orion_tx
