(** Simulated disk.

    The paper's ORION prototype ran against a page server; we are
    laptop-scale, so the "disk" is an in-memory map from page number to
    page image, instrumented with read/write counters.  All I/O-cost
    observations in the benchmarks (physical clustering, cold composite
    traversals) are expressed in these counters, which is exactly the
    quantity the paper's clustering argument is about.

    For the durability work the disk doubles as the crash-injection
    layer: a scripted fault makes the Nth physical write fail (or tear,
    applying only a prefix of the image), after which the device is
    {e crashed} — every further operation raises {!Crashed}, simulating
    process death.  A write {e observer} lets the write-ahead log see
    every page image before the device may fail it. *)

type t

type stats = { reads : int; writes : int; allocated : int }

exception Crashed
(** Raised by any operation once an injected fault has fired (and by the
    faulting write itself). *)

val create : page_size:int -> t

val page_size : t -> int

val alloc : t -> int
(** Allocate a fresh zeroed page; returns its page number. *)

val read : t -> int -> bytes
(** Fetch a copy of the page image (counted as one physical read). *)

val write : t -> int -> bytes -> unit
(** Store a page image (counted as one physical write).
    @raise Invalid_argument if the image size differs from [page_size]
    or the page number was never allocated ({!alloc} is the only way to
    grow the disk).
    @raise Crashed when an injected fault fires. *)

(** {1 Crash injection}

    [`Fail_after n]: the next [n] writes succeed, the one after raises
    {!Crashed} without touching the page.  [`Torn_after n]: same, but
    the failing write applies only a prefix of the image (a torn page).
    Either way the disk is then crashed until {!revive}. *)

val inject_fault : t -> [ `Fail_after of int | `Torn_after of int ] option -> unit

val crashed : t -> bool

val revive : t -> unit
(** Clear the crashed flag and any armed fault (the test harness's
    "reboot" — the surviving page images are whatever the crash left). *)

(** {1 Write-ahead observers}

    Called by {!write} with the page number and full image {e before}
    the write is applied (and before any injected fault can fire), and
    by {!alloc} with the fresh page number.  This is the hook the WAL
    attaches to. *)

val set_observer : t -> (int -> bytes -> unit) option -> unit
val set_alloc_observer : t -> (int -> unit) option -> unit

val stats : t -> stats

val reset_stats : t -> unit
