(* Example 2 of the paper (§2.3): electronic documents as a logical
   part hierarchy, driven through the ORION surface syntax (the DSL).

   Sections and paragraphs are dependent shared components: they exist
   while at least one document (resp. section) contains them.
   Annotations are dependent exclusive; figures are independent shared.

   Run with: dune exec examples/document_store.exe *)

module Eval = Orion_dsl.Eval
module Sexp = Orion_util.Sexp

let program =
  {|
(make-class 'Paragraph :attributes ((Text :domain String)))
(make-class 'Image :attributes ((File :domain String)))
(make-class 'Section :attributes (
  (Content :domain (set-of Paragraph) :composite true :exclusive nil :dependent true)))
(make-class 'Document :attributes (
  (Title   :domain String)
  (Authors :domain (set-of String))
  (Sections :domain (set-of Section) :composite true :exclusive nil :dependent true)
  (Figures  :domain (set-of Image)   :composite true :exclusive nil :dependent nil)
  (Annotations :domain (set-of Paragraph) :composite true :exclusive true :dependent true)))

;; Two books share a chapter -- "an identical chapter may be a part of
;; two different books" (the paper's motivating case for logical part
;; hierarchies).
(setq tutorial (make Document :Title "An OODB Tutorial"))
(setq handbook (make Document :Title "The Design Handbook"))
(setq shared-chapter (make Section :parent ((tutorial Sections) (handbook Sections))))
(setq p1 (make Paragraph :parent ((shared-chapter Content)) :Text "Composite objects..."))
(setq p2 (make Paragraph :parent ((shared-chapter Content)) :Text "...revisited."))

;; Tutorial-only material.
(setq intro (make Section :parent ((tutorial Sections))))
(setq fig (make Image :parent ((tutorial Figures)) :File "architecture.png"))
(setq note (make Paragraph :parent ((tutorial Annotations)) :Text "reviewer note"))

(components-of tutorial)
(parents-of shared-chapter)
(shared-component-of shared-chapter tutorial)
(compositep Document Sections)
(dependent-compositep Document Figures)
|}

let steps =
  [
    ("(delete tutorial)", "deleting the tutorial...");
    ("(describe shared-chapter)", "the shared chapter survives (handbook holds it):");
    ("(describe fig)", "the figure survives (independent reference):");
    ("(count-objects)", "objects left:");
    ("(delete handbook)", "deleting the handbook...");
    ("(count-objects)", "now only the figure remains:");
    ("(integrity-check)", "checker says:");
  ]

let () =
  let env = Eval.create_env () in
  List.iter
    (fun form ->
      Format.printf "orion> %s@." (Sexp.to_string form);
      Format.printf "  %a@." (Eval.pp_v env) (Eval.eval env form))
    (Sexp.parse_many program);
  print_endline "---";
  List.iter
    (fun (src, caption) ->
      print_endline caption;
      Format.printf "orion> %s@." src;
      match Eval.eval_string env src with
      | v -> Format.printf "  %a@." (Eval.pp_v env) v
      | exception Orion_core.Core_error.Error e ->
          Format.printf "  error: %a@." Orion_core.Core_error.pp e)
    steps
