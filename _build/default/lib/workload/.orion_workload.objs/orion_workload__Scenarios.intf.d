lib/workload/scenarios.mli: Database Oid Orion_core
