(** Offline store / WAL checker ([orion fsck]).

    Runs against the {e bytes} of a saved [.odb] file (and optionally a
    WAL file) — no live {!Orion_core.Database.t} is built, so a
    corrupted file cannot take the checker down with it.  Four layers
    are verified, outside-in:

    + {b pages}: every page of a v2 store file must match its recorded
      checksum;
    + {b directory vs. allocation}: every catalog directory entry must
      point at a live record, and every live record must be reachable
      from the directory;
    + {b WAL}: the frame chain must decode to the end (a torn tail is
      reported), must start with [Genesis], and
      [Checkpoint_begin]/[Checkpoint] brackets must nest sanely (an
      {e open trailing} bracket is only a warning — it is the legal
      residue of a crash mid-checkpoint, which recovery discards);
    + {b objects}: every instance is decoded and its composite
      references and reverse references are cross-checked against the
      schema's [:dependent]/[:exclusive] declarations — reusing
      {!Orion_core.Integrity}'s violation vocabulary for the structural
      part, plus {!issue.Flag_mismatch} for a stored D or X flag that
      contradicts the declaration. *)

module Store = Orion_storage.Store
module Integrity = Orion_core.Integrity
module Oid = Orion_core.Oid

type issue =
  | File_error of string
      (** unreadable, bad magic, or a structurally unparsable file *)
  | Page_checksum of { page : int; expected : int; actual : int }
  | No_catalog
  | Catalog_corrupt of string
  | Dead_directory_entry of { oid : Oid.t; rid : Store.rid }
      (** the directory points at a deleted or never-written record *)
  | Unreachable_record of { rid : Store.rid }
      (** a live record no directory entry claims (leaked slot) *)
  | Undecodable_record of { oid : Oid.t; rid : Store.rid; reason : string }
  | Class_unknown of { oid : Oid.t; cls : string }
  | Flag_mismatch of {
      child : Oid.t;
      parent : Oid.t;
      attr : string;
      flag : [ `D | `X ];
      declared : bool;
      stored : bool;
    }  (** a reverse-reference flag contradicts the schema declaration *)
  | Object_violation of Integrity.violation
  | Wal_torn of { valid_frames : int; valid_bytes : int }
  | Wal_missing_genesis
  | Wal_unbalanced_checkpoint of string
  | Wal_open_trailing_checkpoint
      (** the log ends inside a checkpoint bracket: crash residue that
          recovery discards — a warning, not corruption *)

val severity : issue -> [ `Error | `Warning ]
val pp_issue : Format.formatter -> issue -> unit

type report = {
  issues : issue list;
  pages : int;  (** pages in the store file *)
  live_records : int;
  directory_entries : int;
  wal_frames : int option;  (** [None] when no WAL was supplied *)
}

val failed : ?strict:bool -> report -> bool
(** Whether the report warrants a non-zero exit: any error-severity
    issue; with [~strict:true], any issue at all. *)

val pp_report : Format.formatter -> report -> unit

val check_file : ?wal:string -> string -> report
(** Check the store file at the path (plus the WAL file, when given).
    Never raises on damaged input — unreadable or unparsable files
    surface as {!issue.File_error}. *)

val check_image : ?wal:Orion_wal.Wal.t -> Store.file_image -> report
(** The in-memory variant, for tests seeding faults through
    {!Orion_storage.Store.write_file_image}. *)

(** {1 Repair} *)

type wal_repair =
  | Wal_intact of { frames : int; bytes : int }
      (** the log scanned clean: nothing written *)
  | Wal_repaired of {
      backup : string;  (** the damaged original, saved verbatim *)
      valid_frames : int;
      valid_bytes : int;  (** what the log was truncated down to *)
      dropped_bytes : int;
    }

val repair_wal_tail : string -> (wal_repair, string) result
(** [orion fsck --repair]: truncate a torn WAL tail down to its longest
    intact frame prefix — the same prefix {!check_file} reports as
    {!issue.Wal_torn} — after first copying the damaged original to
    [path ^ ".bak"].  Only the tail is ever touched; an intact log is
    left byte-identical.  [Error msg] on I/O failure (the original is
    never truncated unless the backup was written). *)

(** {1 Page digests} *)

val page_digests : string -> (int array, string) result
(** The adler32 of every page image in the store file, computed from
    the bytes actually on disk (not the recorded checksums), in page
    order.  Two stores whose digests agree hold byte-identical page
    arrays — the replication smoke test compares a replica's
    checkpointed mirror against its primary this way, ignoring the
    allocator trailer (free-page list order is not replicated). *)
