lib/core/value.mli: Format Oid
