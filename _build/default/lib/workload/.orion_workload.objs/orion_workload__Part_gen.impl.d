lib/workload/part_gen.ml: Core_error Database List Object_manager Oid Orion_core Orion_schema Random Value
