(** Seeded transaction-script generator for the concurrency
    benchmarks (P6/P7). *)

open Orion_core

type config = {
  txs : int;
  ops_per_tx : int;
  update_ratio : float;  (** fraction of composite accesses that update *)
  seed : int;
}

val default : config
(** 16 transactions, 4 ops each, 30% updates, seed 7. *)

val composite_scripts :
  Database.t -> roots:Oid.t list -> config -> Orion_tx.Scheduler.script list
(** Each op locks a whole composite object through the §7 protocol. *)

val instance_scripts :
  Database.t -> roots:Oid.t list -> config -> Orion_tx.Scheduler.script list
(** The instance-at-a-time alternative: each op locks the root and
    every component individually. *)
