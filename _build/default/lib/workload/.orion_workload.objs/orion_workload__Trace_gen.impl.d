lib/workload/trace_gen.ml: List Orion_core Orion_locking Orion_tx Random Traversal
