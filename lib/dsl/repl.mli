(** Interactive REPL over {!Eval}: the paper's syntax at a prompt.

    Forms may span lines; input is evaluated once the parentheses
    balance.  Errors print without ending the session. *)

val run : ?env:Eval.env -> in_channel -> out_channel -> unit
(** Reads until EOF or [(quit)]. *)

val balanced : string -> bool
(** Whether every paren closes (string-literal aware) — the reader
    keeps accepting lines until this holds.  Shared with the network
    shell ([orion shell --connect]). *)

val run_script : Eval.env -> string -> (Orion_util.Sexp.t * Eval.v) list
(** Evaluate every form of a program text, returning (form, result)
    pairs — used by [orion run] and the examples. *)
