lib/workload/doc_gen.ml: Core_error Database List Object_manager Oid Orion_core Orion_schema Printf Random Scenarios Value
