open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema

type config = {
  depth : int;
  fanout : int;
  exclusive : bool;
  dependent : bool;
  share_prob : float;
  seed : int;
}

let default =
  { depth = 3; fanout = 3; exclusive = true; dependent = true; share_prob = 0.2; seed = 42 }

type forest = { db : Database.t; roots : Oid.t list; node_class : string; total : int }

let node_class_name config = if config.exclusive then "PhysNode" else "LogNode"

let ensure_schema db config =
  let schema = Database.schema db in
  let name = node_class_name config in
  if not (Schema.mem schema name) then begin
    (* Self-referential composite class: every node can hold subparts. *)
    ignore
      (Schema.define schema ~name
         ~attributes:[ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ]
         ()
        : Orion_schema.Class_def.t);
    Schema.add_attribute schema ~cls:name
      (A.make ~name:"Subs" ~domain:(D.Class name) ~collection:A.Set
         ~refkind:
           (A.composite ~exclusive:config.exclusive ~dependent:config.dependent ())
         ())
  end;
  name

let generate ?db ~roots config =
  let db = match db with Some db -> db | None -> Database.create () in
  let node_class = ensure_schema db config in
  let rng = Random.State.make [| config.seed |] in
  let total = ref 0 in
  let shareable : Oid.t list ref = ref [] in
  let fresh ?parents tag =
    incr total;
    Object_manager.create db ~cls:node_class ?parents
      ~attrs:[ ("Tag", Value.Int tag) ]
      ()
  in
  let rec build_children parent depth =
    if depth > 0 then begin
      let n = max 1 (config.fanout - 1 + Random.State.int rng 3) in
      for i = 1 to n do
        let reuse =
          (not config.exclusive)
          && !shareable <> []
          && Random.State.float rng 1.0 < config.share_prob
        in
        if reuse then begin
          let candidate =
            List.nth !shareable (Random.State.int rng (List.length !shareable))
          in
          (* Sharing an existing logical part: legal because only
             shared-reference nodes are candidates. *)
          try
            Object_manager.make_component db ~parent ~attr:"Subs" ~child:candidate
          with Core_error.Error _ -> ()
          (* cycle guard may reject; skip *)
        end
        else begin
          let child = fresh ~parents:[ (parent, "Subs") ] (depth * 100 + i) in
          if not config.exclusive then shareable := child :: !shareable;
          build_children child (depth - 1)
        end
      done
    end
  in
  let root_oids =
    List.init roots (fun i ->
        let root = fresh i in
        build_children root config.depth;
        root)
  in
  { db; roots = root_oids; node_class; total = !total }
