open Orion_core
module W = Orion_storage.Bytes_rw.Writer
module R = Orion_storage.Bytes_rw.Reader

(* v2: histogram summaries in [Stats_reply] carry raw bucket counts.
   v3: the replication frame family ([Repl_subscribe]/[Repl_ack]/
   [Promote] requests, [Repl_ok] reply, [Repl_frames]/[Repl_heartbeat]
   pushes) and the [Read_only]/[Repl_error] error codes.
   v4: snapshot reads ([Begin_snapshot]/[End_snapshot] plus the
   snapshot-scoped [Read_attr]/[Ancestors_of] reads) and the [Value]
   result payload. *)
let version = 4

type access = Read | Update

type request =
  | Hello of { version : int; client : string }
  | Eval of string
  | Begin
  | Commit
  | Abort
  | Lock_composite of { root : Oid.t; access : access }
  | Lock_instance of { oid : Oid.t; access : access }
  | Make of {
      cls : string;
      parents : (Oid.t * string) list;
      attrs : (string * Value.t) list;
    }
  | Components_of of Oid.t
  | Ping
  | Stats
  | Bye
  | Repl_subscribe of { from_lsn : int }
  | Repl_ack of { lsn : int }
      (* fire-and-forget: the one request with NO reply, so a replica
         can ack while the primary keeps pushing frames full-duplex *)
  | Promote
  | Begin_snapshot
      (* open a lock-free read-only snapshot at the server's sealed
         commit clock; replies [Result (Num clock)].  Works on a
         replica (at its applied clock) — snapshots never write. *)
  | End_snapshot
  | Read_attr of { oid : Oid.t; attr : string }
      (* inside a snapshot: the attribute as of the begin clock; outside
         one, the live committed value.  Replies [Result (Value v)]. *)
  | Ancestors_of of Oid.t

type v =
  | Unit
  | Bool of bool
  | Num of int
  | Str of string
  | Obj of Oid.t
  | Objs of Oid.t list
  | Value of Value.t
      (* a full attribute value ([Read_attr]) — richer than [Num]/[Str]:
         references, sets, nil travel intact *)

type err_code =
  | Unsupported_version
  | Bad_request
  | Parse_error
  | Eval_error
  | Conflict
  | Timeout
  | Too_many_sessions
  | Queue_full
  | Shutting_down
  | Read_only
  | Repl_error

type reply =
  | Welcome of { version : int; session : int }
  | Result of v
  | Granted
  | Pong
  | Stats_reply of Orion_obs.Metrics.snapshot
  | Repl_ok of { lsn : int }
  | Error of { code : err_code; msg : string }

type push =
  | Deadlock_victim of { tx : int; msg : string }
  | Goodbye of { msg : string }
  | Repl_frames of { lsn : int; data : bytes }
      (* verbatim WAL frames starting at byte offset [lsn] of the
         primary's log: length+adler32 framed exactly as on disk, so a
         replica appends them unchanged and fsck checks them as-is *)
  | Repl_heartbeat of { lsn : int }

type server_msg = Reply of reply | Push of push

let err_code_to_string = function
  | Unsupported_version -> "unsupported-version"
  | Bad_request -> "bad-request"
  | Parse_error -> "parse-error"
  | Eval_error -> "eval-error"
  | Conflict -> "conflict"
  | Timeout -> "timeout"
  | Too_many_sessions -> "too-many-sessions"
  | Queue_full -> "queue-full"
  | Shutting_down -> "shutting-down"
  | Read_only -> "read-only"
  | Repl_error -> "repl-error"

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Update -> Format.pp_print_string ppf "update"

let pp_request ppf = function
  | Hello { version; client } -> Format.fprintf ppf "hello v%d (%s)" version client
  | Eval src -> Format.fprintf ppf "eval %S" src
  | Begin -> Format.pp_print_string ppf "begin"
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
  | Lock_composite { root; access } ->
      Format.fprintf ppf "lock-composite %a %a" Oid.pp root pp_access access
  | Lock_instance { oid; access } ->
      Format.fprintf ppf "lock-instance %a %a" Oid.pp oid pp_access access
  | Make { cls; parents; attrs } ->
      Format.fprintf ppf "make %s (%d parents, %d attrs)" cls (List.length parents)
        (List.length attrs)
  | Components_of oid -> Format.fprintf ppf "components-of %a" Oid.pp oid
  | Ping -> Format.pp_print_string ppf "ping"
  | Stats -> Format.pp_print_string ppf "stats"
  | Bye -> Format.pp_print_string ppf "bye"
  | Repl_subscribe { from_lsn } ->
      Format.fprintf ppf "repl-subscribe from %d" from_lsn
  | Repl_ack { lsn } -> Format.fprintf ppf "repl-ack %d" lsn
  | Promote -> Format.pp_print_string ppf "promote"
  | Begin_snapshot -> Format.pp_print_string ppf "begin-snapshot"
  | End_snapshot -> Format.pp_print_string ppf "end-snapshot"
  | Read_attr { oid; attr } ->
      Format.fprintf ppf "read-attr %a %s" Oid.pp oid attr
  | Ancestors_of oid -> Format.fprintf ppf "ancestors-of %a" Oid.pp oid

let pp_v ppf = function
  | Unit -> Format.pp_print_string ppf "ok"
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "nil")
  | Num n -> Format.pp_print_int ppf n
  | Str s -> Format.pp_print_string ppf s
  | Obj oid -> Oid.pp ppf oid
  | Objs oids ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
        oids
  | Value v -> Value.pp ppf v

(* Codec ---------------------------------------------------------------------- *)

let corrupt fmt = Format.kasprintf (fun msg -> raise (R.Corrupt msg)) fmt

let write_oid w oid = W.int w (Oid.to_int oid)
let read_oid r = Oid.of_int (R.int r)

let write_access w = function Read -> W.u8 w 0 | Update -> W.u8 w 1

let read_access r =
  match R.u8 r with
  | 0 -> Read
  | 1 -> Update
  | tag -> corrupt "bad access tag %d" tag

let write_list w f items =
  W.int w (List.length items);
  List.iter (f w) items

let read_list r f =
  let n = R.int r in
  if n < 0 then corrupt "negative list length %d" n;
  List.init n (fun _ -> f r)

let encode_request request =
  let w = W.create () in
  (match request with
  | Hello { version; client } ->
      W.u8 w 0;
      W.int w version;
      W.string w client
  | Eval src ->
      W.u8 w 1;
      W.string w src
  | Begin -> W.u8 w 2
  | Commit -> W.u8 w 3
  | Abort -> W.u8 w 4
  | Lock_composite { root; access } ->
      W.u8 w 5;
      write_oid w root;
      write_access w access
  | Lock_instance { oid; access } ->
      W.u8 w 6;
      write_oid w oid;
      write_access w access
  | Make { cls; parents; attrs } ->
      W.u8 w 7;
      W.string w cls;
      write_list w
        (fun w (oid, attr) ->
          write_oid w oid;
          W.string w attr)
        parents;
      write_list w
        (fun w (name, value) ->
          W.string w name;
          Codec.write_value w value)
        attrs
  | Components_of oid ->
      W.u8 w 8;
      write_oid w oid
  | Ping -> W.u8 w 9
  | Bye -> W.u8 w 10
  | Stats -> W.u8 w 11
  | Repl_subscribe { from_lsn } ->
      W.u8 w 12;
      W.int w from_lsn
  | Repl_ack { lsn } ->
      W.u8 w 13;
      W.int w lsn
  | Promote -> W.u8 w 14
  | Begin_snapshot -> W.u8 w 15
  | End_snapshot -> W.u8 w 16
  | Read_attr { oid; attr } ->
      W.u8 w 17;
      write_oid w oid;
      W.string w attr
  | Ancestors_of oid ->
      W.u8 w 18;
      write_oid w oid);
  W.contents w

let decode_request payload =
  let r = R.of_bytes payload in
  let request =
    match R.u8 r with
    | 0 ->
        let version = R.int r in
        let client = R.string r in
        Hello { version; client }
    | 1 -> Eval (R.string r)
    | 2 -> Begin
    | 3 -> Commit
    | 4 -> Abort
    | 5 ->
        let root = read_oid r in
        let access = read_access r in
        Lock_composite { root; access }
    | 6 ->
        let oid = read_oid r in
        let access = read_access r in
        Lock_instance { oid; access }
    | 7 ->
        let cls = R.string r in
        let parents =
          read_list r (fun r ->
              let oid = read_oid r in
              let attr = R.string r in
              (oid, attr))
        in
        let attrs =
          read_list r (fun r ->
              let name = R.string r in
              let value = Codec.read_value r in
              (name, value))
        in
        Make { cls; parents; attrs }
    | 8 -> Components_of (read_oid r)
    | 9 -> Ping
    | 10 -> Bye
    | 11 -> Stats
    | 12 -> Repl_subscribe { from_lsn = R.int r }
    | 13 -> Repl_ack { lsn = R.int r }
    | 14 -> Promote
    | 15 -> Begin_snapshot
    | 16 -> End_snapshot
    | 17 ->
        let oid = read_oid r in
        let attr = R.string r in
        Read_attr { oid; attr }
    | 18 -> Ancestors_of (read_oid r)
    | tag -> corrupt "bad request tag %d" tag
  in
  if not (R.at_end r) then corrupt "trailing bytes after request";
  request

let write_v w = function
  | Unit -> W.u8 w 0
  | Bool b ->
      W.u8 w 1;
      W.bool w b
  | Num n ->
      W.u8 w 2;
      W.int w n
  | Str s ->
      W.u8 w 3;
      W.string w s
  | Obj oid ->
      W.u8 w 4;
      write_oid w oid
  | Objs oids ->
      W.u8 w 5;
      write_list w write_oid oids
  | Value v ->
      W.u8 w 6;
      Codec.write_value w v

let read_v r =
  match R.u8 r with
  | 0 -> Unit
  | 1 -> Bool (R.bool r)
  | 2 -> Num (R.int r)
  | 3 -> Str (R.string r)
  | 4 -> Obj (read_oid r)
  | 5 -> Objs (read_list r read_oid)
  | 6 -> Value (Codec.read_value r)
  | tag -> corrupt "bad value tag %d" tag

(* Snapshot codec: flat name/value lists mirroring
   [Orion_obs.Metrics.snapshot]. *)

let write_summary w (h : Orion_obs.Metrics.histogram_summary) =
  W.int w h.count;
  W.float w h.sum;
  W.float w h.max;
  W.float w h.p50;
  W.float w h.p95;
  W.float w h.p99;
  (* Raw bucket counts ride along so a client can merge percentiles
     across servers/shards instead of averaging them. *)
  write_list w W.int (Array.to_list h.buckets)

let read_summary r : Orion_obs.Metrics.histogram_summary =
  let count = R.int r in
  let sum = R.float r in
  let max = R.float r in
  let p50 = R.float r in
  let p95 = R.float r in
  let p99 = R.float r in
  let buckets = Array.of_list (read_list r R.int) in
  { count; sum; max; p50; p95; p99; buckets }

let write_snapshot w (s : Orion_obs.Metrics.snapshot) =
  let named f w (name, v) =
    W.string w name;
    f w v
  in
  write_list w (named W.int) s.counters;
  write_list w (named W.int) s.gauges;
  write_list w (named write_summary) s.histograms

let read_snapshot r : Orion_obs.Metrics.snapshot =
  let named f r =
    let name = R.string r in
    let v = f r in
    (name, v)
  in
  let counters = read_list r (named R.int) in
  let gauges = read_list r (named R.int) in
  let histograms = read_list r (named read_summary) in
  { counters; gauges; histograms }

let err_code_tag = function
  | Unsupported_version -> 0
  | Bad_request -> 1
  | Parse_error -> 2
  | Eval_error -> 3
  | Conflict -> 4
  | Timeout -> 5
  | Too_many_sessions -> 6
  | Queue_full -> 7
  | Shutting_down -> 8
  | Read_only -> 9
  | Repl_error -> 10

let err_code_of_tag = function
  | 0 -> Unsupported_version
  | 1 -> Bad_request
  | 2 -> Parse_error
  | 3 -> Eval_error
  | 4 -> Conflict
  | 5 -> Timeout
  | 6 -> Too_many_sessions
  | 7 -> Queue_full
  | 8 -> Shutting_down
  | 9 -> Read_only
  | 10 -> Repl_error
  | tag -> corrupt "bad error-code tag %d" tag

let encode_server msg =
  let w = W.create () in
  (match msg with
  | Reply reply -> (
      W.u8 w 0;
      match reply with
      | Welcome { version; session } ->
          W.u8 w 0;
          W.int w version;
          W.int w session
      | Result v ->
          W.u8 w 1;
          write_v w v
      | Granted -> W.u8 w 2
      | Pong -> W.u8 w 3
      | Error { code; msg } ->
          W.u8 w 4;
          W.u8 w (err_code_tag code);
          W.string w msg
      | Stats_reply snapshot ->
          W.u8 w 5;
          write_snapshot w snapshot
      | Repl_ok { lsn } ->
          W.u8 w 6;
          W.int w lsn)
  | Push push -> (
      W.u8 w 1;
      match push with
      | Deadlock_victim { tx; msg } ->
          W.u8 w 0;
          W.int w tx;
          W.string w msg
      | Goodbye { msg } ->
          W.u8 w 1;
          W.string w msg
      | Repl_frames { lsn; data } ->
          W.u8 w 2;
          W.int w lsn;
          W.string w (Bytes.unsafe_to_string data)
      | Repl_heartbeat { lsn } ->
          W.u8 w 3;
          W.int w lsn));
  W.contents w

let decode_server payload =
  let r = R.of_bytes payload in
  let msg =
    match R.u8 r with
    | 0 -> (
        Reply
          (match R.u8 r with
          | 0 ->
              let version = R.int r in
              let session = R.int r in
              Welcome { version; session }
          | 1 -> Result (read_v r)
          | 2 -> Granted
          | 3 -> Pong
          | 4 ->
              let code = err_code_of_tag (R.u8 r) in
              let msg = R.string r in
              Error { code; msg }
          | 5 -> Stats_reply (read_snapshot r)
          | 6 -> Repl_ok { lsn = R.int r }
          | tag -> corrupt "bad reply tag %d" tag))
    | 1 -> (
        Push
          (match R.u8 r with
          | 0 ->
              let tx = R.int r in
              let msg = R.string r in
              Deadlock_victim { tx; msg }
          | 1 -> Goodbye { msg = R.string r }
          | 2 ->
              let lsn = R.int r in
              let data = Bytes.of_string (R.string r) in
              Repl_frames { lsn; data }
          | 3 -> Repl_heartbeat { lsn = R.int r }
          | tag -> corrupt "bad push tag %d" tag))
    | tag -> corrupt "bad server-message tag %d" tag
  in
  if not (R.at_end r) then corrupt "trailing bytes after server message";
  msg
