(* Tests for Orion_dsl: the paper's surface syntax end to end —
   make-class keyword defaults, make with :parent, the §3 messages,
   version/authorization/evolution commands, and error reporting. *)

open Orion_core
module Eval = Orion_dsl.Eval
module Repl = Orion_dsl.Repl
module Schema = Orion_schema.Schema
module A = Orion_schema.Attribute

let env_with program =
  let env = Eval.create_env () in
  ignore (Eval.eval_program env program : Eval.v list);
  env

let eval_bool env src =
  match Eval.eval_string env src with
  | Eval.Bool b -> b
  | other -> Alcotest.failf "expected bool, got %a" (Eval.pp_v env) other

let eval_num env src =
  match Eval.eval_string env src with
  | Eval.Num n -> n
  | other -> Alcotest.failf "expected number, got %a" (Eval.pp_v env) other

let eval_objs env src =
  match Eval.eval_string env src with
  | Eval.Objs l -> l
  | Eval.Obj o -> [ o ]
  | other -> Alcotest.failf "expected objects, got %a" (Eval.pp_v env) other

let test_make_class_defaults () =
  (* §2.3: "The default value for both the exclusive and dependent
     keywords is True". *)
  let env =
    env_with
      {|
(make-class 'P :attributes ((X :domain String)))
(make-class 'Q :attributes ((R :domain P :composite true)))
|}
  in
  let schema = Database.schema (Eval.database env) in
  let attr = Option.get (Schema.attribute schema "Q" "R") in
  Alcotest.(check bool) "exclusive by default" true (A.is_exclusive attr);
  Alcotest.(check bool) "dependent by default" true (A.is_dependent attr);
  Alcotest.(check bool) "compositep" true (eval_bool env "(compositep Q R)")

let test_make_class_superclasses_and_sets () =
  let env =
    env_with
      {|
(make-class 'Base :attributes ((Name :domain String)))
(make-class 'Derived :superclasses (Base)
            :attributes ((Items :domain (set-of Base) :composite true :exclusive nil :dependent nil)))
|}
  in
  let schema = Database.schema (Eval.database env) in
  Alcotest.(check bool) "lattice edge" true
    (Schema.is_subclass_of schema ~sub:"Derived" ~super:"Base");
  let attr = Option.get (Schema.attribute schema "Derived" "Items") in
  Alcotest.(check bool) "set-of" true (attr.A.collection = A.Set);
  Alcotest.(check bool) "shared" true (A.is_shared attr);
  Alcotest.(check bool) "inherited attribute visible" true
    (Schema.attribute schema "Derived" "Name" <> None)

let doc_program =
  {|
(make-class 'Para :attributes ((Text :domain String)))
(make-class 'Sec :attributes (
  (Content :domain (set-of Para) :composite true :exclusive nil :dependent true)))
(make-class 'Doc :attributes (
  (Title :domain String)
  (Secs :domain (set-of Sec) :composite true :exclusive nil :dependent true)))
(setq d1 (make Doc :Title "one"))
(setq d2 (make Doc :Title "two"))
(setq s (make Sec :parent ((d1 Secs) (d2 Secs))))
(setq p (make Para :parent ((s Content)) :Text "body"))
|}

let test_make_with_parents_and_traversal () =
  let env = env_with doc_program in
  Alcotest.(check int) "components of d1" 2
    (List.length (eval_objs env "(components-of d1)"));
  Alcotest.(check int) "level 1 only" 1
    (List.length (eval_objs env "(components-of d1 nil nil 1)"));
  Alcotest.(check int) "class filter" 1
    (List.length (eval_objs env "(components-of d1 (Para))"));
  Alcotest.(check int) "parents of s" 2 (List.length (eval_objs env "(parents-of s)"));
  Alcotest.(check int) "ancestors of p" 3
    (List.length (eval_objs env "(ancestors-of p)"));
  Alcotest.(check bool) "component-of" true (eval_bool env "(component-of p d1)");
  Alcotest.(check bool) "child-of direct" true (eval_bool env "(child-of s d1)");
  Alcotest.(check bool) "child-of indirect is false" false
    (eval_bool env "(child-of p d1)");
  Alcotest.(check bool) "shared-component-of" true
    (eval_bool env "(shared-component-of s d1)");
  Alcotest.(check bool) "exclusive-component-of is false" false
    (eval_bool env "(exclusive-component-of s d1)")

let test_deletion_through_dsl () =
  let env = env_with doc_program in
  ignore (Eval.eval_string env "(delete d1)" : Eval.v);
  Alcotest.(check bool) "shared section survives" true
    (Eval.lookup env "s" <> None
    && Database.exists (Eval.database env) (Option.get (Eval.lookup env "s")));
  ignore (Eval.eval_string env "(delete d2)" : Eval.v);
  Alcotest.(check int) "everything gone" 0 (eval_num env "(count-objects)");
  (match Eval.eval_string env "(integrity-check)" with
  | Eval.Str "consistent" -> ()
  | other ->
      Alcotest.failf "inconsistent: %a" (Eval.pp_v env) other)

let test_set_and_get_attr () =
  let env =
    env_with
      {|
(make-class 'Thing :attributes ((N :domain Integer) (S :domain String)))
(setq t1 (make Thing :N 42))
|}
  in
  Alcotest.(check int) "get int" 42 (eval_num env "(get-attr t1 N)");
  ignore (Eval.eval_string env {|(set-attr t1 S "hello")|} : Eval.v);
  (match Eval.eval_string env "(get-attr t1 S)" with
  | Eval.Str "hello" -> ()
  | other -> Alcotest.failf "wrong value: %a" (Eval.pp_v env) other)

let test_versions_through_dsl () =
  let env =
    env_with
      {|
(make-class 'Design :versionable true :attributes ((Rev :domain Integer)))
(setq v0 (make Design :Rev 1))
(setq v1 (derive-version v0))
|}
  in
  Alcotest.(check int) "two versions" 2 (List.length (eval_objs env "(versions-of v0)"));
  let v1 = Option.get (Eval.lookup env "v1") in
  (match Eval.eval_string env "(default-version v0)" with
  | Eval.Obj d -> Alcotest.(check bool) "default is latest" true (Oid.equal d v1)
  | other -> Alcotest.failf "expected object: %a" (Eval.pp_v env) other);
  ignore (Eval.eval_string env "(set-default-version v0 v0)" : Eval.v);
  match Eval.eval_string env "(default-version v1)" with
  | Eval.Obj d ->
      Alcotest.(check bool) "user default" true
        (Oid.equal d (Option.get (Eval.lookup env "v0")))
  | other -> Alcotest.failf "expected object: %a" (Eval.pp_v env) other

let test_authz_through_dsl () =
  let env = env_with doc_program in
  (match Eval.eval_string env {|(grant "kim" sR (object d1))|} with
  | Eval.Unit -> ()
  | other -> Alcotest.failf "grant failed: %a" (Eval.pp_v env) other);
  Alcotest.(check bool) "read allowed on component" true
    (eval_bool env {|(check "kim" R p)|});
  Alcotest.(check bool) "write denied" false (eval_bool env {|(check "kim" W p)|});
  (match Eval.eval_string env {|(implied-on "kim" p)|} with
  | Eval.Str "sR" -> ()
  | other -> Alcotest.failf "implied-on: %a" (Eval.pp_v env) other);
  (* Conflicting grant reports rejection rather than raising. *)
  (match Eval.eval_string env {|(grant "kim" s~R (object d2))|} with
  | Eval.Str msg ->
      Alcotest.(check bool) "mentions rejection" true
        (String.length msg >= 8 && String.sub msg 0 8 = "rejected")
  | other -> Alcotest.failf "expected rejection string: %a" (Eval.pp_v env) other)

let test_evolution_through_dsl () =
  let env = env_with doc_program in
  (match
     Eval.eval_string env
       "(change-attribute-type Doc Secs :composite true :exclusive nil :dependent nil)"
   with
  | Eval.Str "I3" -> ()
  | other -> Alcotest.failf "expected I3: %a" (Eval.pp_v env) other);
  (* Now deleting both documents keeps the section (independent). *)
  ignore (Eval.eval_string env "(delete d1)" : Eval.v);
  ignore (Eval.eval_string env "(delete d2)" : Eval.v);
  let s = Option.get (Eval.lookup env "s") in
  Alcotest.(check bool) "section survives after I3" true
    (Database.exists (Eval.database env) s);
  ignore (Eval.eval_string env "(drop-attribute Sec Content)" : Eval.v);
  Alcotest.(check bool) "drop-attribute applied" false
    (eval_bool env "(compositep Sec)")

let test_errors_are_reported () =
  let env = env_with "(make-class 'K :attributes ((X :domain String)))" in
  let expect_error src =
    match Eval.eval_string env src with
    | exception Eval.Eval_error _ -> true
    | exception Core_error.Error _ -> true
    | exception Orion_schema.Schema.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unbound name" true (expect_error "(delete nobody)");
  Alcotest.(check bool) "unknown command" true (expect_error "(frobnicate)");
  Alcotest.(check bool) "unknown class" true (expect_error "(make Ghost)");
  Alcotest.(check bool) "unknown attribute" true
    (expect_error {|(setq k (make K :Nope 3))|})

let test_repl_script_and_balanced () =
  let env = Eval.create_env () in
  let results =
    Repl.run_script env
      "(make-class 'Z :attributes ((N :domain Integer)))\n(setq z (make Z :N 7))\n(get-attr z N)"
  in
  Alcotest.(check int) "three results" 3 (List.length results);
  (match List.rev results with
  | (_, Eval.Num 7) :: _ -> ()
  | _ -> Alcotest.fail "last result should be 7");
  (* Multi-line REPL input through a pipe. *)
  let input = "(make-class 'Y\n  :attributes ((M :domain Integer)))\n(quit)\n" in
  let tmp_in = Filename.temp_file "orion" ".in" in
  let oc = open_out tmp_in in
  output_string oc input;
  close_out oc;
  let ic = open_in tmp_in in
  let tmp_out = Filename.temp_file "orion" ".out" in
  let out = open_out tmp_out in
  Repl.run ic out;
  close_in ic;
  close_out out;
  let ic = open_in tmp_out in
  let n = in_channel_length ic in
  let captured = really_input_string ic n in
  close_in ic;
  Sys.remove tmp_in;
  Sys.remove tmp_out;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "class echoed" true (contains captured "Y");
  Alcotest.(check bool) "session closed" true (contains captured "bye")

let test_watch_through_dsl () =
  let env = env_with doc_program in
  ignore (Eval.eval_string env "(watch w1 d1)" : Eval.v);
  Alcotest.(check bool) "initially quiet" false (eval_bool env "(changed w1)");
  ignore (Eval.eval_string env {|(set-attr p Text "edited")|} : Eval.v);
  Alcotest.(check bool) "flag raised" true (eval_bool env "(changed w1)");
  (match Eval.eval_string env "(changes w1)" with
  | Eval.Str s -> Alcotest.(check bool) "mentions Text" true
      (let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains s ".Text")
  | other -> Alcotest.failf "unexpected %a" (Eval.pp_v env) other);
  ignore (Eval.eval_string env "(clear-watch w1)" : Eval.v);
  Alcotest.(check bool) "cleared" false (eval_bool env "(changed w1)")

let test_misc_commands () =
  let env = env_with doc_program in
  (match Eval.eval_string env "(progn (count-objects) (instances-of Doc))" with
  | Eval.Objs l -> Alcotest.(check int) "progn returns last" 2 (List.length l)
  | other -> Alcotest.failf "unexpected %a" (Eval.pp_v env) other);
  (match Eval.eval_string env "(describe s)" with
  | Eval.Str text ->
      Alcotest.(check bool) "describe mentions the class" true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains text "Sec")
  | other -> Alcotest.failf "unexpected %a" (Eval.pp_v env) other);
  ignore (Eval.eval_string env "(create-index Doc Title)" : Eval.v);
  Alcotest.(check bool) "drop-index true" true (eval_bool env "(drop-index Doc Title)");
  Alcotest.(check bool) "drop-index again false" false
    (eval_bool env "(drop-index Doc Title)");
  (* generic-of on a versionable object through the DSL. *)
  ignore
    (Eval.eval_program env
       {|
(make-class 'Vd :versionable true :attributes ())
(setq vv (make Vd))
(setq gg (generic-of vv))
|}
      : Eval.v list);
  let vv = Option.get (Eval.lookup env "vv") in
  let gg = Option.get (Eval.lookup env "gg") in
  Alcotest.(check bool) "generic-of bound" true
    (Oid.equal gg
       (Orion_versions.Version_manager.generic_of (Eval.database env) vv))

let test_help_lists_commands () =
  let env = Eval.create_env () in
  match Eval.eval_string env "(help)" with
  | Eval.Str text ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun cmd ->
          Alcotest.(check bool) ("help mentions " ^ cmd) true (contains text cmd))
        [ "make-class"; "components-of"; "derive-version"; "grant"; "change-attribute-type" ]
  | other -> Alcotest.failf "expected help text: %a" (Eval.pp_v env) other

let () =
  Alcotest.run "orion_dsl"
    [
      ( "make-class",
        [
          Alcotest.test_case "keyword defaults (§2.3)" `Quick test_make_class_defaults;
          Alcotest.test_case "superclasses and sets" `Quick
            test_make_class_superclasses_and_sets;
        ] );
      ( "messages (§2.3/§3)",
        [
          Alcotest.test_case "make/:parent + traversal" `Quick
            test_make_with_parents_and_traversal;
          Alcotest.test_case "deletion" `Quick test_deletion_through_dsl;
          Alcotest.test_case "set/get attr" `Quick test_set_and_get_attr;
        ] );
      ( "subsystem commands",
        [
          Alcotest.test_case "versions" `Quick test_versions_through_dsl;
          Alcotest.test_case "authorization" `Quick test_authz_through_dsl;
          Alcotest.test_case "evolution" `Quick test_evolution_through_dsl;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "errors reported" `Quick test_errors_are_reported;
          Alcotest.test_case "watch commands" `Quick test_watch_through_dsl;
          Alcotest.test_case "misc commands" `Quick test_misc_commands;
          Alcotest.test_case "repl/script" `Quick test_repl_script_and_balanced;
          Alcotest.test_case "help" `Quick test_help_lists_commands;
        ] );
    ]
