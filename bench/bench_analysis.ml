(* Static-analysis throughput: how long `orion analyze` and `orion
   fsck` take as the inputs grow.

   - analyze: a synthetic lattice of [n] classes arranged as composite
     chains hanging off shared hubs — enough structure to exercise the
     cycle DFS, cascade closure and fan-in ranking on every class;
   - fsck: a store of [m] parent/child composite objects saved to a
     temp .odb (plus a WAL) and re-checked from bytes.

   Both must stay comfortably interactive at schema/store sizes an
   order of magnitude past the examples, since CI runs the analyzer on
   every schema and the acceptance bar is "runs without a live
   session".  `--json PATH` writes BENCH_PR5.json-style output,
   `--quick` trims sizes to a smoke test. *)

module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Store = Orion_storage.Store
module SA = Orion_analysis.Schema_analysis
module SC = Orion_analysis.Store_check
open Orion_core

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let comp name domain =
  A.make ~name ~domain:(D.Class domain) ~collection:A.Set
    ~refkind:(A.composite ~dependent:true ~exclusive:true ())
    ()

(* [n] classes: every tenth one is a hub holding composite references
   into the nine that follow it, which chain into each other — deep
   cascades and multi-parent fan-in without any cycle. *)
let synthetic_schema n =
  let schema = Schema.create () in
  let name i = Printf.sprintf "C%d" i in
  for i = n - 1 downto 0 do
    let attrs =
      if i mod 10 = 0 then
        List.filteri
          (fun j _ -> i + j + 1 < n)
          (List.init 9 (fun j -> comp (Printf.sprintf "A%d" j) (name (i + j + 1))))
      else if i + 1 < n && (i + 1) mod 10 <> 0 then
        [ comp "Next" (name (i + 1)) ]
      else []
    in
    ignore
      (Schema.define schema ~name:(name i) ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  done;
  schema

type row = { case : string; size : int; elapsed_s : float; findings : int }

let bench_analyze n =
  let schema = synthetic_schema n in
  let findings, elapsed = time (fun () -> SA.analyze schema) in
  { case = "analyze"; size = n; elapsed_s = elapsed; findings = List.length findings }

let bench_fsck m =
  let db = Database.create () in
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Child"
       ~attributes:[ A.make ~name:"Name" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Parent" ~attributes:[ comp "Kids" "Child" ] ()
      : Orion_schema.Class_def.t);
  for _ = 1 to m do
    let p = Object_manager.create db ~cls:"Parent" () in
    for _ = 1 to 4 do
      ignore (Object_manager.create db ~cls:"Child" ~parents:[ (p, "Kids") ] () : Oid.t)
    done
  done;
  Persist.save db;
  let path = Filename.temp_file "orion_bench_fsck" ".odb" in
  Store.save_file (Database.store db) path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let report, elapsed = time (fun () -> SC.check_file path) in
      if SC.failed report then failwith "fsck found issues in a clean store";
      {
        case = "fsck";
        size = report.SC.live_records;
        elapsed_s = elapsed;
        findings = List.length report.SC.issues;
      })

let write_json ~path rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-analysis-v1\",\n";
  Bench_meta.add buf;
  Buffer.add_string buf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"case\": \"%s\", \"size\": %d, \"elapsed_s\": %.4f, \
            \"findings\": %d }%s\n"
           r.case r.size r.elapsed_s r.findings
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let json_path =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let schema_sizes = if quick then [ 50 ] else [ 50; 200; 800 ] in
  let store_sizes = if quick then [ 50 ] else [ 200; 1000 ] in
  print_endline "=== Static analysis bench: schema analyzer and offline fsck ===";
  let rows =
    List.map bench_analyze schema_sizes @ List.map bench_fsck store_sizes
  in
  List.iter
    (fun r ->
      Printf.printf "%-8s size %5d: %8.2f ms  (%d findings)\n%!" r.case r.size
        (r.elapsed_s *. 1e3) r.findings)
    rows;
  match json_path with Some path -> write_json ~path rows | None -> ()
