(** In-memory object representation.

    An instance is either a plain object, a {e version instance}, or a
    {e generic instance} (§5.1).  Attribute values live on plain and
    version instances; a generic instance carries the version-derivation
    bookkeeping and the reverse composite {e generic} references of
    §5.3.

    Mutation goes through {!Object_manager} / {!Database}; the record is
    exposed for the managers, the serializer and the integrity checker. *)

type version_info = {
  generic : Oid.t;
  version_no : int;
  derived_from : Oid.t option;  (** parent in the version-derivation hierarchy *)
  created_at : int;  (** logical timestamp, for the system-default version *)
}

type generic_info = {
  mutable versions : Oid.t list;  (** live version instances, oldest first *)
  mutable user_default : Oid.t option;  (** user-specified default version *)
  mutable next_version_no : int;
  mutable grefs : Rref.gref list;
}

type kind = Plain | Generic of generic_info | Version of version_info

type t = {
  oid : Oid.t;
  cls : string;
  kind : kind;
  mutable attrs : (string * Value.t) list;
  mutable rrefs : Rref.t list;  (** unused when the database keeps them externally *)
  mutable cc : int;  (** change count, deferred schema evolution (§4.3) *)
  mutable cluster_with : Oid.t option;
      (** first [:parent] at creation — the clustering hint of §2.3 *)
  mutable rid : Orion_storage.Store.rid option;  (** set once checkpointed *)
}

val copy : t -> t
(** A copy safe to retain across later mutation of [t]: the generic
    bookkeeping (including its mutable reverse generic references) is
    duplicated, immutable fields are shared.  The attribute list is
    shared too — {!set_attr} replaces the whole list rather than
    mutating a cell, so the copy keeps the values as of the copy. *)

val attr : t -> string -> Value.t option
val set_attr : t -> string -> Value.t -> unit
val remove_attr : t -> string -> unit
val is_generic : t -> bool
val is_version : t -> bool
val generic_info : t -> generic_info option
val version_info : t -> version_info option
val pp : Format.formatter -> t -> unit
