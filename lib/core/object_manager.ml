module A = Orion_schema.Attribute
module Domain = Orion_schema.Domain
module Schema = Orion_schema.Schema
module E = Core_error

let attribute_exn db cls attr =
  match Schema.attribute (Database.schema db) cls attr with
  | Some a -> a
  | None -> E.raise_error (E.Unknown_attribute { cls; attr })

let get = Database.get

let holder_exn db oid =
  let inst = get db oid in
  if Instance.is_generic inst then E.raise_error (E.Not_an_instance_holder oid);
  inst

(* Type conformance ------------------------------------------------------- *)

let conforms_single db domain v =
  match (domain, v) with
  | _, Value.Null -> true
  | Domain.Primitive Domain.P_integer, Value.Int _ -> true
  | Domain.Primitive Domain.P_float, Value.Float _ -> true
  | Domain.Primitive Domain.P_string, Value.Str _ -> true
  | Domain.Primitive Domain.P_boolean, Value.Bool _ -> true
  | Domain.Primitive _, (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.Ref _ | Value.VSet _) ->
      false
  | Domain.Class c, Value.Ref oid -> (
      match Database.find db oid with
      | None -> false
      | Some inst ->
          Schema.is_subclass_of (Database.schema db) ~sub:inst.cls ~super:c)
  | Domain.Class _, (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.VSet _) ->
      false
  | Domain.Any, (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.Ref _) ->
      true
  | Domain.Any, Value.VSet _ -> false

let value_conforms db (a : A.t) v =
  match (a.collection, v) with
  | A.Set, Value.VSet elems -> List.for_all (conforms_single db a.domain) elems
  | A.Set, Value.Null -> true
  | A.Set, (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.Ref _) ->
      false
  | A.Single, v -> conforms_single db a.domain v

(* Element-level conformance: a single reference checked against the
   attribute's domain regardless of the attribute's collection kind. *)
let check_element_conforms db cls (a : A.t) child =
  if not (conforms_single db a.domain (Value.Ref child)) then
    E.raise_error
      (E.Type_error
         {
           cls;
           attr = a.name;
           value = Value.to_string (Value.Ref child);
           expected = Orion_schema.Domain.to_string a.domain;
         })

let check_conforms db cls (a : A.t) v =
  if not (value_conforms db a v) then
    E.raise_error
      (E.Type_error
         {
           cls;
           attr = a.name;
           value = Value.to_string v;
           expected =
             Format.asprintf "%s%a"
               (match a.collection with A.Set -> "set-of " | A.Single -> "")
               Domain.pp a.domain;
         })

(* Generic-instance bookkeeping ------------------------------------------- *)

(* The key under which a composite reference is accounted at the child's
   generic instance: the parent's own generic when the parent is a version
   instance, the parent itself otherwise (§5.3). *)
let gref_key db parent =
  match Database.find db parent with
  | Some inst -> (
      match Instance.version_info inst with
      | Some vi -> vi.generic
      | None -> parent)
  | None -> parent

let add_gref (gi : Instance.generic_info) ~pkey ~attr ~exclusive ~dependent =
  match
    List.find_opt
      (fun (g : Rref.gref) -> Oid.equal g.g_parent pkey && String.equal g.g_attr attr)
      gi.grefs
  with
  | Some g -> g.count <- g.count + 1
  | None ->
      gi.grefs <-
        gi.grefs
        @ [
            {
              Rref.g_parent = pkey;
              g_attr = attr;
              g_exclusive = exclusive;
              g_dependent = dependent;
              count = 1;
            };
          ]

let decr_gref (gi : Instance.generic_info) ~pkey ~attr =
  gi.grefs <-
    List.filter_map
      (fun (g : Rref.gref) ->
        if Oid.equal g.g_parent pkey && String.equal g.g_attr attr then begin
          g.count <- g.count - 1;
          if g.count <= 0 then None else Some g
        end
        else Some g)
      gi.grefs

let generic_info_exn db goid =
  match Instance.generic_info (get db goid) with
  | Some gi -> gi
  | None ->
      E.raise_error (E.Version_error { oid = goid; reason = "not a generic instance" })

(* Cycle prevention (design decision D4) ----------------------------------- *)

exception Found_cycle

let composite_children db (inst : Instance.t) =
  Schema.composite_attributes (Database.schema db) inst.cls
  |> List.filter_map (fun (a : A.t) ->
         match Instance.attr inst a.name with
         | Some v -> Some (a, Value.refs v)
         | None -> None)

let would_cycle db ~parent ~child =
  if Oid.equal parent child then true
  else begin
    let seen = Oid.Tbl.create 16 in
    let rec visit oid =
      if Oid.equal oid parent then raise Found_cycle;
      if not (Oid.Tbl.mem seen oid) then begin
        Oid.Tbl.add seen oid ();
        match Database.find db oid with
        | None -> ()
        | Some inst -> (
            match inst.kind with
            | Instance.Generic gi -> List.iter visit gi.versions
            | Instance.Plain | Instance.Version _ ->
                List.iter
                  (fun (_, targets) -> List.iter visit targets)
                  (composite_children db inst))
      end
    in
    try
      visit child;
      false
    with Found_cycle -> true
  end

(* Make-Component (§2.4) ---------------------------------------------------- *)

let check_attach db ~parent ~attr ~(spec : A.t) ~child =
  let child_inst = get db child in
  let exclusive = A.is_exclusive spec in
  if Database.acyclic db && would_cycle db ~parent ~child then
    E.raise_error
      (E.Topology_violation
         { child; parent; attr; reason = E.Would_create_cycle [ parent; child ] });
  let check_generic_level (gi : Instance.generic_info) =
    let pkey = gref_key db parent in
    if
      exclusive
      && List.exists
           (fun (g : Rref.gref) -> g.g_exclusive && not (Oid.equal g.g_parent pkey))
           gi.grefs
    then
      E.raise_error
        (E.Topology_violation
           { child; parent; attr; reason = E.Generic_exclusive_other_hierarchy })
  in
  match child_inst.kind with
  | Instance.Generic gi -> check_generic_level gi
  | Instance.Plain | Instance.Version _ -> (
      (match Topology.can_make_component (Database.refsets db child) ~exclusive with
      | Error reason -> E.raise_error (E.Topology_violation { child; parent; attr; reason })
      | Ok () -> ());
      match Instance.version_info child_inst with
      | Some vi -> check_generic_level (generic_info_exn db vi.generic)
      | None -> ())

let perform_attach db ~parent ~attr ~(spec : A.t) ~child =
  let child_inst = get db child in
  let exclusive = A.is_exclusive spec and dependent = A.is_dependent spec in
  match child_inst.kind with
  | Instance.Generic gi ->
      add_gref gi ~pkey:(gref_key db parent) ~attr ~exclusive ~dependent
  | Instance.Plain | Instance.Version _ -> (
      Database.add_rref db child { Rref.parent; attr; exclusive; dependent };
      match Instance.version_info child_inst with
      | Some vi ->
          add_gref (generic_info_exn db vi.generic) ~pkey:(gref_key db parent)
            ~attr ~exclusive ~dependent
      | None -> ())

let attach_child db ~parent ~attr ~spec ~child =
  if A.is_composite spec then begin
    check_attach db ~parent ~attr ~spec ~child;
    perform_attach db ~parent ~attr ~spec ~child
  end

(* Scrubbing: remove a dangling composite reference from a parent's value. *)
let scrub_value db ~parent ~attr ~child =
  match Database.find db parent with
  | None -> ()
  | Some p -> (
      match Instance.attr p attr with
      | Some v -> Database.write_value db p attr (Value.remove_ref v child)
      | None -> ())

(* A gref parent key may be a generic instance; dynamic references live in
   its version instances' values. *)
let scrub_from_parent_key db ~pkey ~attr ~child =
  match Database.find db pkey with
  | None -> ()
  | Some p -> (
      match p.kind with
      | Instance.Generic gi ->
          List.iter (fun v -> scrub_value db ~parent:v ~attr ~child) gi.versions
      | Instance.Plain | Instance.Version _ ->
          scrub_value db ~parent:pkey ~attr ~child)

(* Deletion (§2.2 Deletion Rule; §5.2 CV-4X; decisions D1/D2/D9) ----------- *)

(* [lost_dep] marks children that lost a dependent reference to the
   dying set but survived at that moment: a later removal of an
   independent reference from another dying parent must re-run their
   existence decision, otherwise the outcome would depend on the order
   in which the dying parents are processed. *)
let rec delete_rec_go db lost_dep deleting oid =
  if not (Oid.Tbl.mem deleting oid) then
    match Database.find db oid with
    | None -> ()
    | Some inst -> (
        Oid.Tbl.add deleting oid ();
        match inst.kind with
        | Instance.Generic gi ->
            (* CV-4X: all version instances die with the generic. *)
            List.iter (delete_rec_go db lost_dep deleting) gi.versions;
            List.iter
              (fun (g : Rref.gref) ->
                if not (Oid.Tbl.mem deleting g.g_parent) then
                  scrub_from_parent_key db ~pkey:g.g_parent ~attr:g.g_attr
                    ~child:oid)
              gi.grefs;
            Database.remove db oid
        | Instance.Plain | Instance.Version _ ->
            (* Cascade into components per the Deletion Rule. *)
            List.iter
              (fun ((spec : A.t), targets) ->
                List.iter
                  (fun child ->
                    child_on_parent_delete db lost_dep deleting ~parent:oid ~spec
                      ~child)
                  targets)
              (composite_children db inst);
            (* Detach from surviving parents (D9). *)
            List.iter
              (fun (r : Rref.t) ->
                if not (Oid.Tbl.mem deleting r.parent) then
                  scrub_value db ~parent:r.parent ~attr:r.attr ~child:oid)
              (Database.rrefs db oid);
            (match Instance.version_info inst with
            | Some vi -> (
                match Database.find db vi.generic with
                | Some g when not (Oid.Tbl.mem deleting g.Instance.oid) -> (
                    match Instance.generic_info g with
                    | Some gi ->
                        (* Mirror each remaining reverse reference's
                           generic-level count before the version goes. *)
                        List.iter
                          (fun (r : Rref.t) ->
                            decr_gref gi ~pkey:(gref_key db r.parent) ~attr:r.attr)
                          (Database.rrefs db oid);
                        gi.versions <-
                          List.filter (fun v -> not (Oid.equal v oid)) gi.versions;
                        (match gi.user_default with
                        | Some d when Oid.equal d oid -> gi.user_default <- None
                        | Some _ | None -> ());
                        if gi.versions = [] then
                          delete_rec_go db lost_dep deleting vi.generic
                    | None -> ())
                | Some _ | None -> ())
            | None -> ());
            Database.remove db oid)

and child_on_parent_delete db lost_dep deleting ~parent ~(spec : A.t) ~child =
  if (not (Oid.Tbl.mem deleting child)) && Database.exists db child then begin
    let child_inst = get db child in
    (* Mark the loss of dependent support; the existence decision then
       re-runs on every later removal, independent ones included. *)
    if A.is_dependent spec then Oid.Tbl.replace lost_dep child ();
    let lost_dependent = Oid.Tbl.mem lost_dep child in
    (* References from objects already being deleted cannot sustain the
       child: the dying parent may still hold other (even independent)
       references through sibling attributes not yet processed. *)
    let no_live_rrefs () =
      List.for_all
        (fun (r : Rref.t) -> Oid.Tbl.mem deleting r.parent)
        (Database.rrefs db child)
    in
    match child_inst.kind with
    | Instance.Generic gi ->
        decr_gref gi ~pkey:(gref_key db parent) ~attr:spec.name;
        if
          lost_dependent
          && List.for_all
               (fun (g : Rref.gref) -> Oid.Tbl.mem deleting g.g_parent)
               gi.grefs
        then delete_rec_go db lost_dep deleting child
    | Instance.Plain ->
        ignore
          (Database.remove_rref db child ~parent ~attr:spec.name : Rref.t option);
        if lost_dependent && no_live_rrefs () then
          delete_rec_go db lost_dep deleting child
    | Instance.Version vi ->
        ignore
          (Database.remove_rref db child ~parent ~attr:spec.name : Rref.t option);
        (match Database.find db vi.generic with
        | Some g -> (
            match Instance.generic_info g with
            | Some gi -> decr_gref gi ~pkey:(gref_key db parent) ~attr:spec.name
            | None -> ())
        | None -> ());
        if lost_dependent && no_live_rrefs () then
          delete_rec_go db lost_dep deleting child
  end

let delete db oid =
  ignore (get db oid : Instance.t);
  delete_rec_go db (Oid.Tbl.create 8) (Oid.Tbl.create 16) oid

(* Detach (reference removal outside deletion; decision D1) ----------------- *)

let detach_child_gen db ~parent ~attr ~(spec : A.t) ~child ~existence =
  if A.is_composite spec then
    match Database.find db child with
    | None -> ()
    | Some child_inst -> (
        let dependent = A.is_dependent spec in
        let auto_delete () =
          if existence && dependent then delete db child
        in
        match child_inst.kind with
        | Instance.Generic gi ->
            decr_gref gi ~pkey:(gref_key db parent) ~attr;
            if gi.grefs = [] then auto_delete ()
        | Instance.Plain ->
            ignore (Database.remove_rref db child ~parent ~attr : Rref.t option);
            if Database.rrefs db child = [] then auto_delete ()
        | Instance.Version vi ->
            ignore (Database.remove_rref db child ~parent ~attr : Rref.t option);
            (match Database.find db vi.generic with
            | Some g -> (
                match Instance.generic_info g with
                | Some gi -> decr_gref gi ~pkey:(gref_key db parent) ~attr
                | None -> ())
            | None -> ());
            if Database.rrefs db child = [] then auto_delete ())

let detach_child db ~parent ~attr ~spec ~child =
  detach_child_gen db ~parent ~attr ~spec ~child ~existence:true

let detach_child_quiet db ~parent ~attr ~spec ~child =
  detach_child_gen db ~parent ~attr ~spec ~child ~existence:false

(* Attribute reads and writes ---------------------------------------------- *)

let read_attr db oid attr =
  let inst = holder_exn db oid in
  ignore (attribute_exn db inst.cls attr : A.t);
  Option.value (Instance.attr inst attr) ~default:Value.Null

let write_attr db oid attr value =
  let inst = holder_exn db oid in
  let spec = attribute_exn db inst.cls attr in
  let value = Value.normalize value in
  check_conforms db inst.cls spec value;
  if A.is_composite spec then begin
    let old_refs =
      match Instance.attr inst attr with Some v -> Value.refs v | None -> []
    in
    let new_refs = Value.refs value in
    let added =
      List.filter (fun r -> not (List.exists (Oid.equal r) old_refs)) new_refs
    in
    let removed =
      List.filter (fun r -> not (List.exists (Oid.equal r) new_refs)) old_refs
    in
    (* Attach first (so a child moving deeper keeps a reference alive),
       rolling back on failure; then detach with the existence rule. *)
    let attached = ref [] in
    (try
       List.iter
         (fun child ->
           attach_child db ~parent:oid ~attr ~spec ~child;
           attached := child :: !attached)
         added
     with exn ->
       List.iter
         (fun child ->
           detach_child_gen db ~parent:oid ~attr ~spec ~child ~existence:false)
         !attached;
       raise exn);
    List.iter
      (fun child -> detach_child_gen db ~parent:oid ~attr ~spec ~child ~existence:true)
      removed;
    (* A cascade triggered by a detach may have scrubbed this value or even
       deleted some of the new targets; drop references to dead objects. *)
    let live_value =
      List.fold_left
        (fun v r -> if Database.exists db r then v else Value.remove_ref v r)
        value new_refs
    in
    if Database.exists db oid then Database.write_value db inst attr live_value
  end
  else Database.write_value db inst attr value

let add_to_set db oid attr child =
  let inst = holder_exn db oid in
  ignore (attribute_exn db inst.cls attr : A.t);
  let old_value = Option.value (Instance.attr inst attr) ~default:Value.Null in
  let base = match old_value with Value.Null -> Value.VSet [] | v -> v in
  write_attr db oid attr (Value.add_ref base child)

let remove_from_set db oid attr child =
  let inst = holder_exn db oid in
  ignore (attribute_exn db inst.cls attr : A.t);
  let old_value = Option.value (Instance.attr inst attr) ~default:Value.Null in
  write_attr db oid attr (Value.remove_ref old_value child)

let make_component db ~parent ~attr ~child =
  let parent_inst = holder_exn db parent in
  let spec = attribute_exn db parent_inst.cls attr in
  if not (A.is_composite spec) then
    E.raise_error (E.Not_composite_attribute { cls = parent_inst.cls; attr });
  check_element_conforms db parent_inst.cls spec child;
  let old_value = Option.value (Instance.attr parent_inst attr) ~default:Value.Null in
  match spec.collection with
  | A.Single ->
      if Value.contains_ref old_value child then ()
      else write_attr db parent attr (Value.Ref child)
  | A.Set ->
      if Value.contains_ref old_value child then ()
      else add_to_set db parent attr child

let remove_component db ~parent ~attr ~child =
  let parent_inst = holder_exn db parent in
  let spec = attribute_exn db parent_inst.cls attr in
  if not (A.is_composite spec) then
    E.raise_error (E.Not_composite_attribute { cls = parent_inst.cls; attr });
  let old_value = Option.value (Instance.attr parent_inst attr) ~default:Value.Null in
  if not (Value.contains_ref old_value child) then
    E.raise_error (E.Not_a_component { child; parent; attr });
  write_attr db parent attr (Value.remove_ref old_value child)

(* Creation (§2.3 make) ------------------------------------------------------ *)

let create_raw db ~cls ~kind =
  let oid = Database.fresh_oid db in
  let inst : Instance.t =
    {
      oid;
      cls;
      kind;
      attrs = [];
      rrefs = [];
      cc = Database.current_cc db;
      cluster_with = None;
      rid = None;
    }
  in
  Database.add db inst;
  Database.emit db (Database.Created oid);
  oid

let apply_initial_attrs db oid attrs ~undo =
  let inst = get db oid in
  List.iter
    (fun (name, value) ->
      let spec = attribute_exn db inst.cls name in
      let value = Value.normalize value in
      check_conforms db inst.cls spec value;
      if A.is_composite spec then
        List.iter
          (fun child ->
            attach_child db ~parent:oid ~attr:name ~spec ~child;
            undo :=
              (fun () ->
                detach_child_gen db ~parent:oid ~attr:name ~spec ~child
                  ~existence:false)
              :: !undo)
          (Value.refs value);
      Database.write_value db inst name value)
    attrs

let apply_parents db oid parents ~undo =
  List.iteri
    (fun i (parent, attr) ->
      let parent_inst = holder_exn db parent in
      let spec = attribute_exn db parent_inst.cls attr in
      check_element_conforms db parent_inst.cls spec oid;
      let old_value =
        Option.value (Instance.attr parent_inst attr) ~default:Value.Null
      in
      if A.is_composite spec then begin
        attach_child db ~parent ~attr ~spec ~child:oid;
        undo :=
          (fun () ->
            detach_child_gen db ~parent ~attr ~spec ~child:oid ~existence:false)
          :: !undo
      end;
      (match spec.collection with
      | A.Single -> Database.write_value db parent_inst attr (Value.Ref oid)
      | A.Set ->
          let base =
            match old_value with Value.Null -> Value.VSet [] | v -> v
          in
          Database.write_value db parent_inst attr (Value.add_ref base oid));
      undo :=
        (fun () ->
          match Database.find db parent with
          | Some p -> Database.write_value db p attr old_value
          | None -> ())
        :: !undo;
      if i = 0 then (get db oid).cluster_with <- Some parent)
    parents

let create db ~cls ?(parents = []) ?(attrs = []) () =
  let cdef = Schema.find_exn (Database.schema db) cls in
  let undo = ref [] in
  let created =
    if cdef.versionable then begin
      let gi : Instance.generic_info =
        { versions = []; user_default = None; next_version_no = 1; grefs = [] }
      in
      let goid = create_raw db ~cls ~kind:(Instance.Generic gi) in
      let vinfo : Instance.version_info =
        {
          generic = goid;
          version_no = 0;
          derived_from = None;
          created_at = Database.tick db;
        }
      in
      let void = create_raw db ~cls ~kind:(Instance.Version vinfo) in
      gi.versions <- [ void ];
      gi.next_version_no <- 1;
      undo :=
        (fun () ->
          Database.remove db void;
          Database.remove db goid)
        :: !undo;
      void
    end
    else begin
      let oid = create_raw db ~cls ~kind:Instance.Plain in
      undo := (fun () -> Database.remove db oid) :: !undo;
      oid
    end
  in
  (try
     apply_initial_attrs db created attrs ~undo;
     apply_parents db created parents ~undo
   with exn ->
     List.iter (fun f -> f ()) !undo;
     raise exn);
  created
