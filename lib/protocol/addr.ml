type t = Tcp of string * int | Unix_path of string

let pp ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "%s:%d" host port
  | Unix_path path -> Format.pp_print_string ppf path

let parse s =
  if String.contains s '/' then Unix_path s
  else
    match String.rindex_opt s ':' with
    | Some i ->
        let host = String.sub s 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        (match int_of_string_opt port with
        | Some port -> Tcp (host, port)
        | None -> invalid_arg ("Addr.parse: bad port in " ^ s))
    | None -> (
        match int_of_string_opt s with
        | Some port -> Tcp ("127.0.0.1", port)
        | None -> invalid_arg ("Addr.parse: " ^ s))

let domain = function Tcp _ -> Unix.PF_INET | Unix_path _ -> Unix.PF_UNIX

let to_sockaddr = function
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (inet, port)
  | Unix_path path -> Unix.ADDR_UNIX path
