lib/dsl/eval.mli: Database Format Oid Orion_authz Orion_core Orion_evolution Orion_notify Orion_query Orion_util
